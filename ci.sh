#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test suite.
#
# Offline-registry caveat: this workspace resolves its external dependencies
# (rand, serde, serde_json, proptest, criterion, iai_callgrind) to the
# API-compatible stubs
# vendored under vendor/ via path entries in [workspace.dependencies] —
# `cargo` never touches a registry, so the script runs in fully offline
# environments. Do not add registry dependencies without vendoring them the
# same way.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== perf snapshot gate (vs BENCH_seed.json) =="
# The standard sweep is deterministic (quiet testbed, fixed seeds): any
# makespan drift against the committed baseline is a code change. If a
# change legitimately shifts performance, regenerate the baseline in the
# same PR: target/release/cocopelia snapshot --out BENCH_seed.json
target/release/cocopelia snapshot --out target/BENCH_ci.json --label ci
target/release/cocopelia compare BENCH_seed.json target/BENCH_ci.json

echo "== scheduling policy gate (predictive < fifo, edf deadline wins) =="
# The policy-comparison acceptance tests: Predictive must strictly beat
# FIFO's makespan on the skewed trace, EDF must meet the deadline FIFO
# misses, and all three policies must export sched_predict_abs_err.
cargo test --release -q -p cocopelia-xp --test serve_sched

echo "== open-arrival gate (backpressure, coalescing, closed-queue identity) =="
# The ServeSession acceptance bars: seeded Poisson overload sheds to a
# bounded queue and replays bit-identically, coalescing uploads strictly
# fewer h2d bytes and beats the non-coalesced makespan, and the deprecated
# closed-queue Executor::run wrapper stays bit-identical to a session drain.
cargo test --release -q -p cocopelia-xp --test serve_open

echo "== chaos soak gate (seeded fault injection) =="
# Fault injection is seeded and rolled at enqueue time, so the soak —
# scheduler retries, quarantine + re-dispatch, host fallback, leak and
# trace-invariant checks over three fixed seeds — must pass bit-identically
# on every run. The seeds live in tests/serve_faults.rs.
cargo test --release -q -p cocopelia-xp --test serve_faults

echo "== straggler defense gate (hedging, probation, retry budgets) =="
# The self-healing acceptance bars over the 3-seed straggler/probation
# matrix: hedged re-dispatch strictly improves p99 flow on the degraded-
# link scenario with bit-identical total flops, canary probation re-admits
# a drained device that then serves again, the retry-budget breaker fails
# fast under a fault storm, a device lost mid-hedge leaks nothing, and a
# fully-defended run replays bit-identically. Seeds live in
# tests/serve_straggler.rs.
cargo test --release -q -p cocopelia-xp --test serve_straggler

echo "== prefetch gate (prefetch beats baseline, estimate fixes, off-identity) =="
# The cross-request prefetch acceptance bars: on the warm skewed trace,
# --prefetch strictly beats the FIFO no-prefetch makespan through
# measured h2d/exec overlap (staged copies drain on the background stream
# under the running attempt's compute and their targets claim them as
# residency hits), a prefetch-off run replays bit-identically to the
# prefetch-unaware path, the residency-aware service estimate admits warm
# repeat arrivals a cold twin's watermark sheds, the degrade-aware upload
# estimate routes dispatch to the healthy peer, and a drained session
# leaves no pinned or leaked staging buffers.
cargo test --release -q -p cocopelia-xp --test serve_prefetch

echo "== trace pipeline gate (spans, perfetto, timeline) =="
# The serve tracing pipeline end to end: span invariants on chaos runs,
# Perfetto round-trip decode (track counts, flows, per-track monotonicity),
# timeline rendering, and traced-vs-untraced timing identity.
cargo test --release -q -p cocopelia-xp --test serve_trace

echo "== streaming telemetry gate (watch windows, SLO dumps, bounded memory) =="
# The serve --watch acceptance run at full size: a 50k-request drain under
# telemetry keeps span memory bounded by the flight-recorder ring, emits a
# deterministic window stream, streams a decodable Perfetto file, and fires
# exactly one SLO-breach dump — while staying bit-identical to the
# telemetry-off run. (Debug `cargo test` runs a 5k slice of the same test.)
cargo test --release -q -p cocopelia-xp --test serve_watch

echo "== microbench smoke (dispatch / residency / trace hot paths) =="
# Builds and runs the iai-callgrind-style microbenches once so the hot-path
# bench targets can't rot. Numbers are informational (the vendored harness
# reports wall clock, not instruction counts).
cargo bench --bench micro_hotpaths

echo "CI gate passed."
