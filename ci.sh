#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test suite.
#
# Offline-registry caveat: this workspace resolves its external dependencies
# (rand, serde, serde_json, proptest, criterion) to the API-compatible stubs
# vendored under vendor/ via path entries in [workspace.dependencies] —
# `cargo` never touches a registry, so the script runs in fully offline
# environments. Do not add registry dependencies without vendoring them the
# same way.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "CI gate passed."
