//! End-to-end tests of the perf-snapshot/regression subsystem: collect →
//! serialize → parse → compare round trips, injected-slowdown detection,
//! and the committed seed snapshot staying honest.

use cocopelia_gpusim::testbed_i;
use cocopelia_obs::{DiffConfig, DiffReport, Snapshot, Verdict, SNAPSHOT_SCHEMA_VERSION};
use cocopelia_xp::{collect_snapshot, standard_sweep};

fn live_snapshot(label: &str) -> Snapshot {
    collect_snapshot(&testbed_i(), label).expect("standard sweep runs")
}

#[test]
fn snapshot_round_trips_and_self_compare_is_clean() {
    let snap = live_snapshot("live");
    let json = snap.to_json().expect("serializes");
    let back = Snapshot::from_json(&json).expect("parses");
    assert_eq!(snap, back, "snapshot JSON round trip must be lossless");

    let report = DiffReport::compare(&snap, &back, DiffConfig::default()).expect("compares");
    assert!(
        !report.has_regressions(),
        "self-compare regressed: {}",
        report.render()
    );
    assert_eq!(report.count(Verdict::Neutral), snap.entries.len());
}

#[test]
fn injected_slowdown_is_detected() {
    let base = live_snapshot("base");
    let mut slow = base.clone();
    slow.label = "slow".to_owned();
    // A synthetic 10% slowdown on the square dgemm point — exactly the
    // class of change the CI gate exists to catch.
    let victim = slow
        .entries
        .iter_mut()
        .find(|e| e.id == "dgemm 2048x2048x2048")
        .expect("standard sweep has the square dgemm point");
    victim.makespan_ns = victim.makespan_ns + victim.makespan_ns / 10;

    let report = DiffReport::compare(&base, &slow, DiffConfig::default()).expect("compares");
    assert!(report.has_regressions(), "10% slowdown must fail the gate");
    let entry = report
        .entries
        .iter()
        .find(|e| e.id == "dgemm 2048x2048x2048")
        .expect("diffed");
    assert_eq!(entry.verdict, Verdict::Regression);
    assert!(entry.makespan_delta_rel > 0.05);
    // The other sweep points are untouched.
    assert_eq!(report.count(Verdict::Regression), 1);
    assert_eq!(report.count(Verdict::Neutral), base.entries.len() - 1);
}

#[test]
fn dropped_coverage_is_a_regression() {
    let base = live_snapshot("base");
    let mut pruned = base.clone();
    pruned.entries.pop();
    let report = DiffReport::compare(&base, &pruned, DiffConfig::default()).expect("compares");
    assert!(report.has_regressions(), "lost coverage must fail the gate");
    assert_eq!(report.missing.len(), 1);
}

#[test]
fn committed_seed_snapshot_matches_this_tree() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_seed.json");
    let text = std::fs::read_to_string(path).expect("BENCH_seed.json is committed at repo root");
    let seed = Snapshot::from_json(&text).expect("seed snapshot parses");
    assert_eq!(seed.schema_version, SNAPSHOT_SCHEMA_VERSION);
    assert_eq!(seed.label, "seed");

    let sweep = standard_sweep();
    assert_eq!(
        seed.entries.len(),
        sweep.len(),
        "seed snapshot must cover the full standard sweep"
    );
    for p in &sweep {
        assert!(
            seed.entry(&p.id).is_some(),
            "seed snapshot is missing sweep point `{}` — regenerate with \
             `cocopelia snapshot --out BENCH_seed.json`",
            p.id
        );
    }

    // The exact CI gate: the current tree must not regress against the
    // committed baseline. If a change legitimately shifts performance,
    // regenerate BENCH_seed.json in the same PR.
    let live = live_snapshot("live");
    let report = DiffReport::compare(&seed, &live, DiffConfig::default()).expect("compares");
    assert!(
        !report.has_regressions(),
        "tree regressed against BENCH_seed.json:\n{}",
        report.render()
    );
}

#[test]
fn future_schema_versions_are_rejected() {
    let mut snap = live_snapshot("v-next");
    snap.schema_version = SNAPSHOT_SCHEMA_VERSION + 1;
    let json = snap.to_json().expect("serializes");
    let err = Snapshot::from_json(&json).expect_err("must reject");
    assert!(err.contains("schema version"), "{err}");
}
