//! Open-arrival serving end to end: the acceptance bars for the
//! `ServeSession` API. Seeded Poisson overload keeps the queue bounded
//! through admission shedding and replays bit-identically; coalescing
//! repeated identical-shape arrivals uploads strictly fewer h2d bytes
//! and beats the non-coalesced makespan; and the closed-queue
//! `Executor::run` wrapper stays bit-identical to a session drain.

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{testbed_i, ExecMode, FaultSpec, NoiseSpec, SimTime, TestbedSpec};
use cocopelia_runtime::serve::{
    Executor, ExecutorConfig, RequestStatus, ServeOptions, ServeReport, ServeSession,
    TelemetryConfig,
};
use cocopelia_runtime::{GemmRequest, MatOperand, MultiGpu, RoutineRequest, SharedMat, TileChoice};
use cocopelia_xp::ArrivalSpec;
use proptest::prelude::*;

const MB: usize = 1 << 20;

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

/// Free transfers and no exec tables: scheduling runs on its degraded
/// paths while the gpusim still charges virtual time for the work.
fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "open-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn pool(devices: usize) -> MultiGpu {
    MultiGpu::new(&quiet(), devices, ExecMode::TimingOnly, 42, dummy_profile())
}

fn ghost(n: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows: n, cols: n }
}

fn ghost_gemm(n: usize) -> GemmRequest<f64> {
    GemmRequest::<f64>::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512))
}

/// An identical-shape request sharing `A` and `B`: every instance keys
/// the same coalesce class and the same residency entries.
fn shared_gemm() -> RoutineRequest {
    GemmRequest::<f64>::new(
        SharedMat::new("A", 1024, 1024),
        SharedMat::new("B", 1024, 1024),
        ghost(1024),
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Fixed(512))
    .into()
}

/// 64 seeded Poisson arrivals at 10 MHz into a 2-device pool with a
/// queue cap of 8: the arrival rate dwarfs the service rate, so the
/// drain must shed.
fn overload_run(opts: ServeOptions) -> ServeReport {
    let mut session =
        ServeSession::with_options(pool(2), ExecutorConfig::default(), opts).expect("session");
    let times = ArrivalSpec::poisson(1e7, 42).times(64);
    for at in times {
        session.submit_at(ghost_gemm(1024), at);
    }
    session.drain()
}

#[test]
fn poisson_overload_sheds_keeps_the_queue_bounded_and_replays_bit_identically() {
    // Acceptance bar (a): under seeded overload the queue depth stays at
    // or below the cap via admission shedding, every arrival terminates
    // (completed or rejected, nothing lost), and a replay with the same
    // seed is bit-identical.
    let run = || overload_run(ServeOptions::new().queue_cap(8));
    let a = run();
    assert_eq!(a.outcomes.len(), 64, "every arrival reaches an outcome");
    assert!(a.rejected() > 0, "overload must shed");
    assert!(a.completed() > 0, "admitted requests still complete");
    assert_eq!(a.completed() + a.rejected(), 64);
    assert!(
        a.peak_queue_depth <= 8,
        "cap bounds the queue: peak {}",
        a.peak_queue_depth
    );
    assert_eq!(
        a.metrics.counter("serve_shed_total"),
        a.rejected() as u64,
        "every rejection here is a backpressure shed"
    );
    assert_eq!(
        a.metrics.counter("serve_rejected_total"),
        a.rejected() as u64
    );
    for o in &a.outcomes {
        if let RequestStatus::Rejected { reason } = &o.status {
            assert!(reason.contains("queue full"), "{reason}");
            assert!(o.device.is_none());
        }
    }

    let b = run();
    assert_eq!(a.makespan.as_nanos(), b.makespan.as_nanos());
    assert_eq!(a.per_device_busy, b.per_device_busy);
    assert_eq!(a.render(), b.render(), "replay must be bit-identical");
}

#[test]
fn shed_watermark_bounds_predicted_flow_time() {
    // The flow-time watermark is the second shedding lever: a watermark
    // far above any backlog admits everything; a sub-microsecond one
    // sheds every arrival whose own service estimate already exceeds it.
    let generous = overload_run(ServeOptions::new().shed_flow_secs(10.0));
    assert_eq!(generous.rejected(), 0);
    assert_eq!(generous.completed(), 64);

    let mut session = ServeSession::with_options(
        pool(1),
        ExecutorConfig::default(),
        ServeOptions::new().shed_flow_secs(1e-9),
    )
    .expect("session");
    for i in 0..4u64 {
        session.submit_at(shared_gemm(), SimTime::from_nanos(1_000 + i));
    }
    let report = session.drain();
    assert_eq!(
        report.rejected(),
        4,
        "every arrival predicted over the watermark"
    );
    assert_eq!(report.completed(), 0);
    assert_eq!(report.metrics.counter("serve_shed_total"), 4);
    for o in &report.outcomes {
        let RequestStatus::Rejected { reason } = &o.status else {
            panic!("expected rejection, got {:?}", o.status);
        };
        assert!(reason.contains("predicted flow"), "{reason}");
    }
}

#[test]
fn coalescing_uploads_strictly_fewer_bytes_and_beats_the_baseline_makespan() {
    // Acceptance bar (b): six identical-shape arrivals land in one
    // admission batch. Coalesced, one leader executes and five ride
    // along — half the uploaded bytes (one device's A+B instead of both
    // devices') and a makespan of one gemm instead of three per device.
    let run = |coalesce: bool| {
        let opts = if coalesce {
            ServeOptions::new().coalesce()
        } else {
            ServeOptions::new()
        };
        let mut session =
            ServeSession::with_options(pool(2), ExecutorConfig::default(), opts).expect("session");
        for _ in 0..6 {
            session.submit_at(shared_gemm(), SimTime::from_nanos(1_000));
        }
        session.drain()
    };
    let base = run(false);
    let coal = run(true);

    assert_eq!(base.completed(), 6);
    assert_eq!(base.coalesced(), 0);
    assert_eq!(coal.completed(), 6, "followers complete through the leader");
    assert_eq!(coal.coalesced(), 5);
    assert_eq!(coal.metrics.counter("serve_coalesced_total"), 5);

    let up_base = base.metrics.counter("residency_bytes_uploaded");
    let up_coal = coal.metrics.counter("residency_bytes_uploaded");
    assert!(
        up_coal < up_base,
        "coalescing must upload strictly fewer h2d bytes: {up_coal} vs {up_base}"
    );
    assert_eq!(up_coal, (16 * MB) as u64, "one device's A+B only");
    assert_eq!(
        up_base,
        (32 * MB) as u64,
        "baseline uploads A+B on both devices"
    );

    let m_base = base.makespan.as_secs_f64();
    let m_coal = coal.makespan.as_secs_f64();
    assert!(
        m_coal < m_base,
        "coalesced makespan must strictly beat the baseline: {m_coal} vs {m_base}"
    );

    // Work accounting counts the single execution once: the leader's
    // flops, not six copies of them.
    let one = 2.0 * 1024f64.powi(3);
    assert!(
        (coal.total_flops - one).abs() < 1.0,
        "leader-only flops: {}",
        coal.total_flops
    );
    assert!((base.total_flops - 6.0 * one).abs() < 1.0);
}

#[test]
fn deprecated_run_wrapper_is_bit_identical_to_a_session_drain() {
    // Acceptance bar (c): the closed-queue path through the open-arrival
    // event loop changes nothing — `Executor::run` (now a deprecated
    // wrapper) and `ServeSession::drain` agree bit for bit.
    let trace = |n: usize| -> Vec<RoutineRequest> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    shared_gemm()
                } else {
                    ghost_gemm(if i % 2 == 0 { 2048 } else { 1024 }).into()
                }
            })
            .collect()
    };

    let mut legacy = Executor::new(pool(2), ExecutorConfig::default());
    for req in trace(8) {
        legacy.submit(req);
    }
    #[allow(deprecated)]
    let old = legacy.run();

    let mut session = ServeSession::new(pool(2), ExecutorConfig::default());
    for req in trace(8) {
        session.submit(req);
    }
    let new = session.drain();

    assert_eq!(old.makespan.as_nanos(), new.makespan.as_nanos());
    assert_eq!(old.per_device_busy, new.per_device_busy);
    assert_eq!(old.total_flops.to_bits(), new.total_flops.to_bits());
    assert_eq!(old.host_flops.to_bits(), new.host_flops.to_bits());
    assert_eq!(old.render(), new.render());
    assert_eq!(old.peak_queue_depth, new.peak_queue_depth);
}

#[test]
fn rejections_land_in_windowed_counters_and_leak_no_buffers() {
    // Satellite: the telemetry pipeline sees every shed — the windowed
    // `rejected` counters sum to the report's count — and a rejected
    // request leaves nothing behind on any device.
    let report = overload_run(ServeOptions::new().queue_cap(4).telemetry(TelemetryConfig {
        window: SimTime::from_secs_f64(1e-3),
        ..TelemetryConfig::default()
    }));
    assert!(report.rejected() > 0);
    let tele = report.telemetry.as_ref().expect("telemetry armed");
    let windowed: u64 = tele.windows.iter().map(|w| w.rejected).sum();
    assert_eq!(
        windowed,
        report.rejected() as u64,
        "every shed lands in a window's rejected counter"
    );
    let finished: u64 = tele.windows.iter().map(|w| w.finished).sum();
    assert_eq!(finished, report.completed() as u64);

    // No buffer leaks on reject: live device buffers are exactly the
    // residency caches' contents.
    let mut session = ServeSession::with_options(
        pool(2),
        ExecutorConfig::default(),
        ServeOptions::new().queue_cap(4),
    )
    .expect("session");
    for at in ArrivalSpec::poisson(1e7, 42).times(64) {
        session.submit_at(shared_gemm(), at);
    }
    let report = session.drain();
    assert!(report.rejected() > 0);
    for d in 0..session.pool().device_count() {
        let live: std::collections::BTreeSet<_> = session.pool().devices()[d]
            .gpu()
            .live_device_buffers()
            .into_iter()
            .collect();
        let cached: std::collections::BTreeSet<_> =
            session.residency(d).device_buffers().into_iter().collect();
        assert_eq!(live, cached, "dev{d} must hold exactly its cached operands");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Property form of the bit-identity bar: whatever seeded fault
    /// pressure the pool is under — transient links, flaky kernels, even
    /// devices that die outright — the deprecated `Executor::run` wrapper
    /// and a `ServeSession` drain of the same trace agree bit for bit on
    /// timing, accounting, outcomes, and quarantine state.
    #[test]
    fn deprecated_run_matches_session_drain_under_fault_plans(
        seed in 0u64..1000,
        h2d in 0.0f64..0.3,
        kernel in 0.0f64..0.3,
        lost_after_n in 0u64..4,
        n in 4usize..9,
    ) {
        // 0 encodes "never lost"; 1..4 lose the device after that many
        // injected faults.
        let spec = FaultSpec {
            seed,
            h2d,
            kernel,
            lost_after: (lost_after_n > 0).then_some(lost_after_n),
            ..FaultSpec::none()
        };
        let faulty = || {
            MultiGpu::with_faults(
                &quiet(),
                2,
                ExecMode::TimingOnly,
                42,
                dummy_profile(),
                &spec,
            )
        };
        let trace = |n: usize| -> Vec<RoutineRequest> {
            (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        shared_gemm()
                    } else {
                        ghost_gemm(if i % 2 == 0 { 2048 } else { 1024 }).into()
                    }
                })
                .collect()
        };

        let mut legacy = Executor::new(faulty(), ExecutorConfig::default());
        for req in trace(n) {
            legacy.submit(req);
        }
        #[allow(deprecated)]
        let old = legacy.run();

        let mut session = ServeSession::new(faulty(), ExecutorConfig::default());
        for req in trace(n) {
            session.submit(req);
        }
        let new = session.drain();

        prop_assert_eq!(old.makespan.as_nanos(), new.makespan.as_nanos());
        prop_assert_eq!(&old.per_device_busy, &new.per_device_busy);
        prop_assert_eq!(old.total_flops.to_bits(), new.total_flops.to_bits());
        prop_assert_eq!(old.host_flops.to_bits(), new.host_flops.to_bits());
        prop_assert_eq!(&old.outcomes, &new.outcomes);
        prop_assert_eq!(&old.quarantined, &new.quarantined);
        prop_assert_eq!(old.render(), new.render());
        prop_assert_eq!(old.peak_queue_depth, new.peak_queue_depth);
    }
}
