//! Scheduling policies and serve-report accounting end to end: the
//! device/host flops split, queue-depth sampling, self-multiply residency,
//! and the acceptance bars — `Predictive` strictly beats `Fifo` on the
//! standard skewed trace, `Edf` strictly beats `Fifo` on the deadline
//! trace, and every policy exports `sched_predict_abs_err`.

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{testbed_i, ExecMode, FaultSpec, NoiseSpec, TestbedSpec};
use cocopelia_runtime::serve::{ExecutorConfig, SchedulePolicy, ServeOptions, ServeSession};
use cocopelia_runtime::{GemmRequest, MatOperand, MultiGpu, RoutineRequest, SharedMat, TileChoice};
use cocopelia_xp::{deadline_request_trace, run_serve_with_policy, skewed_request_trace};

const MB: usize = 1 << 20;

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

/// A profile with free transfers and no exec tables: predictions are
/// unavailable, so these tests exercise the policies' degraded paths.
fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "sched-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn pool(devices: usize) -> MultiGpu {
    MultiGpu::new(&quiet(), devices, ExecMode::TimingOnly, 42, dummy_profile())
}

fn ghost(n: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows: n, cols: n }
}

fn gemm(n: usize) -> GemmRequest<f64> {
    GemmRequest::<f64>::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512))
}

#[test]
fn timed_out_device_work_counts_as_device_flops() {
    // A deadline so tight the run must blow it: the device work still
    // happened and stretched the makespan, so it must count in
    // total_flops — otherwise throughput is under-reported.
    let mut exec = ServeSession::new(pool(1), ExecutorConfig::default());
    exec.submit(gemm(1024).deadline_secs(1e-12));
    let report = exec.drain();
    assert_eq!(report.timed_out(), 1);
    assert_eq!(report.completed(), 0);
    let flops = 2.0 * 1024f64.powi(3);
    assert!(
        (report.total_flops - flops).abs() < 1.0,
        "timed-out device work must count: {} vs {flops}",
        report.total_flops
    );
    assert_eq!(report.host_flops, 0.0);
    assert!(report.throughput_gflops() > 0.0);
}

#[test]
fn host_fallback_work_is_split_out_of_device_throughput() {
    // Every upload faults and the devices die after one injected fault
    // each: both requests complete on the host. Host work must land in
    // host_flops/host_time, never in the device-only total_flops that
    // throughput_gflops divides by the device makespan.
    let spec = FaultSpec {
        seed: 7,
        h2d: 1.0,
        lost_after: Some(1),
        ..FaultSpec::none()
    };
    let pool = MultiGpu::with_faults(
        &quiet(),
        2,
        ExecMode::TimingOnly,
        42,
        dummy_profile(),
        &spec,
    );
    let mut exec = ServeSession::new(pool, ExecutorConfig::default());
    exec.submit(gemm(1024));
    exec.submit(gemm(1024));
    let report = exec.drain();
    assert_eq!(report.host_fallbacks(), 2);
    assert_eq!(
        report.total_flops, 0.0,
        "no device completed anything, so device flops must be zero"
    );
    let flops = 2.0 * 2.0 * 1024f64.powi(3);
    assert!(
        (report.host_flops - flops).abs() < 1.0,
        "host work is accounted separately: {}",
        report.host_flops
    );
    assert!(report.host_time.as_secs_f64() > 0.0);
    // With host flops out of the numerator, a dead pool reports zero
    // throughput instead of host-work-over-near-zero-makespan.
    assert_eq!(report.throughput_gflops(), 0.0);
    // Host runs never tiled: the render says so instead of showing the
    // fabricated tile 0.
    let text = report.render();
    assert!(text.contains("T=-"), "{text}");
    assert!(!text.contains("T=0"), "{text}");
    assert!(text.contains("on host"), "{text}");
}

#[test]
fn queue_depth_is_sampled_at_submit_and_dispatch() {
    let mut exec = ServeSession::new(pool(1), ExecutorConfig::default());
    for _ in 0..3 {
        exec.submit(gemm(1024));
    }
    let report = exec.drain();
    let h = report
        .metrics
        .histogram("serve_queue_depth")
        .expect("depth histogram");
    // Submission observes depths 1, 2, 3; dispatch observes 3, 2, 1
    // (the pulled request included, no off-by-one patch-up).
    assert_eq!(h.count(), 6);
    assert!((h.sum() - 12.0).abs() < 1e-12, "sum {}", h.sum());
}

#[test]
fn self_multiply_shares_one_cached_upload() {
    // W·W names the same key for `a` and `b`: one upload, one hit, one
    // cache entry — the duplicate insert is rejected, not double-counted.
    let mut exec = ServeSession::new(pool(1), ExecutorConfig::default());
    let w = || SharedMat::new("W", 1024, 1024);
    exec.submit(
        GemmRequest::<f64>::new(w(), w(), ghost(1024))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Fixed(512)),
    );
    let report = exec.drain();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.metrics.counter("residency_misses_total"), 1);
    assert_eq!(report.metrics.counter("residency_hits_total"), 1);
    assert_eq!(
        report.metrics.counter("residency_bytes_uploaded"),
        (8 * MB) as u64,
        "W is uploaded exactly once"
    );
    assert_eq!(exec.residency(0).len(), 1);
    assert_eq!(exec.residency(0).used_bytes(), 8 * MB);
}

#[test]
fn edf_meets_a_deadline_fifo_misses() {
    // Calibrate: how long does the small request take alone?
    let mut solo = ServeSession::new(pool(1), ExecutorConfig::default());
    solo.submit(gemm(1024));
    let t_small = solo.drain().makespan.as_secs_f64();
    assert!(t_small > 0.0);

    // Two requests on one device: a big deadline-less gemm submitted
    // first, then a small one whose budget fits its own flow time but not
    // a wait behind the big request.
    let run = |policy: SchedulePolicy| {
        let mut exec = ServeSession::with_options(
            pool(1),
            ExecutorConfig::default(),
            ServeOptions::new().policy(policy),
        )
        .expect("session");
        exec.submit(gemm(2048));
        exec.submit(gemm(1024).deadline_secs(2.0 * t_small));
        exec.drain()
    };
    let fifo = run(SchedulePolicy::Fifo);
    let edf = run(SchedulePolicy::Edf);
    assert_eq!(
        fifo.timed_out(),
        1,
        "FIFO leaves the deadline request queued behind the big one"
    );
    assert_eq!(edf.timed_out(), 0, "EDF pulls the deadline request first");
    assert_eq!(edf.completed(), 2);
    assert!(edf.timed_out() < fifo.timed_out());
}

#[test]
fn predictive_beats_fifo_on_the_skewed_trace() {
    // The acceptance bar: on the standard skewed trace (six small gemms
    // then one eight-times-larger straggler) over two devices, the
    // prediction-guided policy must achieve a strictly lower pool
    // makespan than FIFO, and every policy must export the
    // predicted-vs-actual histogram.
    let tb = testbed_i();
    let fifo = run_serve_with_policy(
        &tb,
        2,
        skewed_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Fifo,
    )
    .expect("fifo serve");
    let edf = run_serve_with_policy(
        &tb,
        2,
        skewed_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Edf,
    )
    .expect("edf serve");
    let pred = run_serve_with_policy(
        &tb,
        2,
        skewed_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Predictive,
    )
    .expect("predictive serve");
    for cmp in [&fifo, &edf, &pred] {
        assert_eq!(cmp.report.completed(), 7);
        assert!(
            cmp.report
                .metrics
                .histogram("sched_predict_abs_err")
                .is_some(),
            "every policy records predicted-vs-actual"
        );
        assert!(!cmp.report.drift.records().is_empty());
    }
    // The policy-labelled histograms tell the runs apart in one registry
    // dump.
    assert!(fifo
        .report
        .metrics
        .histogram("sched_predict_abs_err_fifo")
        .is_some());
    assert!(pred
        .report
        .metrics
        .histogram("sched_predict_abs_err_predictive")
        .is_some());
    let m_fifo = fifo.report.makespan.as_secs_f64();
    let m_pred = pred.report.makespan.as_secs_f64();
    assert!(
        m_pred < m_fifo,
        "predictive must strictly beat FIFO: {m_pred} vs {m_fifo}"
    );
}

#[test]
fn edf_beats_fifo_on_the_deadline_trace() {
    // The acceptance bar on a deployed profile: the standard deadline
    // trace served on one device misses under FIFO and meets under EDF.
    let tb = testbed_i();
    let fifo = run_serve_with_policy(
        &tb,
        1,
        deadline_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Fifo,
    )
    .expect("fifo serve");
    let edf = run_serve_with_policy(
        &tb,
        1,
        deadline_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Edf,
    )
    .expect("edf serve");
    assert_eq!(fifo.report.timed_out(), 1);
    assert_eq!(edf.report.timed_out(), 0);
    assert!(edf.report.timed_out() < fifo.report.timed_out());
    assert!(fifo
        .report
        .metrics
        .histogram("sched_predict_abs_err")
        .is_some());
}

#[test]
fn fifo_policy_reproduces_the_default_run() {
    // The default policy is FIFO, and an explicit FIFO run is
    // bit-identical to a default one — the snapshot gate depends on it.
    let trace: Vec<RoutineRequest> = (0..4)
        .map(|i| gemm(if i == 3 { 2048 } else { 1024 }).into())
        .collect();
    let mut default_exec = ServeSession::new(pool(2), ExecutorConfig::default());
    for req in trace.clone() {
        default_exec.submit(req);
    }
    let default_report = default_exec.drain();
    let mut fifo_exec = ServeSession::with_options(
        pool(2),
        ExecutorConfig::default(),
        ServeOptions::new().policy(SchedulePolicy::Fifo),
    )
    .expect("session");
    assert_eq!(fifo_exec.policy(), SchedulePolicy::Fifo);
    for req in trace {
        fifo_exec.submit(req);
    }
    let fifo_report = fifo_exec.drain();
    assert_eq!(default_report.makespan, fifo_report.makespan);
    assert_eq!(default_report.per_device_busy, fifo_report.per_device_busy);
    assert_eq!(default_report.total_flops, fifo_report.total_flops);
}
