//! The prediction loop closed end-to-end: deploy micro-benchmarks on a
//! simulated testbed, predict offload times with the paper's models, run
//! the actual schedules, and check the predictions track the measurements.

use cocopelia_core::models::{predict, ModelCtx, ModelKind};
use cocopelia_core::params::{Loc, ProblemSpec};
use cocopelia_deploy::{deploy, measure_full_kernel, CiConfig, DeployConfig};
use cocopelia_gpusim::{testbed_i, ExecMode, Gpu, KernelShape, NoiseSpec, TestbedSpec};
use cocopelia_hostblas::Dtype;
use cocopelia_runtime::{Cocopelia, GemmRequest, MatOperand, TileChoice};
use proptest::prelude::*;

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn lab() -> (TestbedSpec, cocopelia_core::profile::SystemProfile) {
    let tb = quiet();
    let mut cfg = DeployConfig::quick();
    cfg.transfer_dims = vec![512, 1024, 2048];
    cfg.gemm_tiles = (1..=8).map(|i| i * 256).collect();
    cfg.axpy_tiles = vec![1 << 19, 1 << 20, 1 << 21, 1 << 22];
    cfg.gemv_tiles = vec![512, 1024];
    let report = deploy(&tb, &cfg).expect("deploys");
    (tb, report.profile)
}

fn measure_gemm(
    tb: &TestbedSpec,
    profile: &cocopelia_core::profile::SystemProfile,
    n: usize,
    t: usize,
) -> f64 {
    let mut ctx = Cocopelia::new(
        Gpu::new(tb.clone(), ExecMode::TimingOnly, 5),
        profile.clone(),
    );
    GemmRequest::new(
        MatOperand::<f64>::HostGhost { rows: n, cols: n },
        MatOperand::HostGhost { rows: n, cols: n },
        MatOperand::HostGhost { rows: n, cols: n },
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Fixed(t))
    .run(&mut ctx)
    .expect("runs")
    .report
    .elapsed
    .as_secs_f64()
}

#[test]
fn dr_model_tracks_reuse_scheduler_within_15_percent() {
    let (tb, profile) = lab();
    let exec = profile
        .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
        .expect("gemm table");
    for n in [2048usize, 4096] {
        for t in [512usize, 1024] {
            let problem =
                ProblemSpec::gemm(Dtype::F64, n, n, n, Loc::Host, Loc::Host, Loc::Host, true);
            let ctx = ModelCtx {
                problem: &problem,
                transfer: &profile.transfer,
                exec,
                full_kernel_time: None,
            };
            let pred = predict(ModelKind::DataReuse, &ctx, t)
                .expect("predicts")
                .total;
            let meas = measure_gemm(&tb, &profile, n, t);
            let err = (pred - meas).abs() / meas;
            assert!(
                err < 0.15,
                "n={n} T={t}: pred {pred:.4} meas {meas:.4} err {:.1}%",
                err * 100.0
            );
        }
    }
}

#[test]
fn dr_predictions_rank_tiles_usefully() {
    // The measured best tile must be within 5% of the tile the model picks.
    let (tb, profile) = lab();
    let exec = profile
        .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
        .expect("gemm table");
    let n = 4096;
    let problem = ProblemSpec::gemm(Dtype::F64, n, n, n, Loc::Host, Loc::Host, Loc::Host, true);
    let ctx = ModelCtx {
        problem: &problem,
        transfer: &profile.transfer,
        exec,
        full_kernel_time: None,
    };
    let tiles: Vec<usize> = (1..=8).map(|i| i * 256).collect();
    let mut best_pred = (0usize, f64::INFINITY);
    let mut best_meas = (0usize, f64::INFINITY);
    let mut meas_at = std::collections::HashMap::new();
    for &t in &tiles {
        let p = predict(ModelKind::DataReuse, &ctx, t)
            .expect("predicts")
            .total;
        let m = measure_gemm(&tb, &profile, n, t);
        meas_at.insert(t, m);
        if p < best_pred.1 {
            best_pred = (t, p);
        }
        if m < best_meas.1 {
            best_meas = (t, m);
        }
    }
    let selected_meas = meas_at[&best_pred.0];
    assert!(
        selected_meas <= best_meas.1 * 1.05,
        "selected T={} measures {selected_meas:.4}, optimum T={} measures {:.4}",
        best_pred.0,
        best_meas.0,
        best_meas.1
    );
}

#[test]
fn cso_underpredicts_on_reuse_scheduler() {
    // The headline qualitative claim of Figure 5: the reuse-blind CSO model
    // is much less accurate than DR on the CoCoPeLia implementation.
    let (tb, profile) = lab();
    let exec = profile
        .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
        .expect("gemm table");
    let n = 4096;
    let t = 512;
    let problem = ProblemSpec::gemm(Dtype::F64, n, n, n, Loc::Host, Loc::Host, Loc::Host, true);
    let full = measure_full_kernel(
        &tb,
        KernelShape::Gemm {
            dtype: Dtype::F64,
            m: n,
            n,
            k: n,
        },
        &CiConfig::default(),
        3,
    )
    .expect("kernel probe");
    let ctx = ModelCtx {
        problem: &problem,
        transfer: &profile.transfer,
        exec,
        full_kernel_time: Some(full),
    };
    let meas = measure_gemm(&tb, &profile, n, t);
    let dr = predict(ModelKind::DataReuse, &ctx, t).expect("dr").total;
    let cso = predict(ModelKind::Cso, &ctx, t).expect("cso").total;
    let dr_err = (dr - meas).abs() / meas;
    let cso_err = (cso - meas).abs() / meas;
    assert!(
        dr_err < cso_err,
        "DR {:.1}% !< CSO {:.1}%",
        dr_err * 100.0,
        cso_err * 100.0
    );
}

#[test]
fn drift_records_populated_and_match_hand_computed_errors() {
    // Every model-driven (and fixed-tile, profile-backed) call must leave
    // per-model drift records whose errors agree with predictions recomputed
    // here by hand from the same profile.
    let (tb, profile) = lab();
    let mut ctx = Cocopelia::new(Gpu::new(tb, ExecMode::TimingOnly, 5), profile.clone());
    let n = 4096;
    let out = GemmRequest::new(
        MatOperand::<f64>::HostGhost { rows: n, cols: n },
        MatOperand::HostGhost { rows: n, cols: n },
        MatOperand::HostGhost { rows: n, cols: n },
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Model(ModelKind::DataReuse))
    .run(&mut ctx)
    .expect("runs")
    .report;

    // One record per evaluable model: CSO is skipped (no full kernel time).
    assert_eq!(out.drift.len(), 4);
    assert!(out.drift.iter().all(|r| r.model != ModelKind::Cso));

    let exec = profile
        .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
        .expect("gemm table");
    let problem = ProblemSpec::gemm(Dtype::F64, n, n, n, Loc::Host, Loc::Host, Loc::Host, true);
    let mctx = ModelCtx {
        problem: &problem,
        transfer: &profile.transfer,
        exec,
        full_kernel_time: None,
    };
    let actual = out.elapsed.as_secs_f64();
    for rec in &out.drift {
        assert_eq!(rec.tile, out.tile);
        assert_eq!(rec.actual_secs, actual);
        let by_hand = predict(rec.model, &mctx, out.tile).expect("predicts").total;
        assert_eq!(rec.predicted_secs, by_hand, "{:?}", rec.model);
        let hand_err = (by_hand - actual) / actual;
        assert!((rec.signed_rel_err() - hand_err).abs() < 1e-15);
    }

    // The observer aggregates agree with the same hand computation, and the
    // chosen DR model tracks the scheduler far better than reuse-blind Eq. 1.
    let obs = ctx.observer();
    assert_eq!(obs.drift().records().len(), 4);
    let dr = obs
        .drift()
        .model_stats(ModelKind::DataReuse)
        .expect("DR scored");
    let dr_hand = (predict(ModelKind::DataReuse, &mctx, out.tile)
        .expect("dr")
        .total
        - actual)
        / actual;
    assert_eq!(dr.count, 1);
    assert!((dr.mean_signed() - dr_hand).abs() < 1e-15);
    assert!((dr.mean_abs() - dr_hand.abs()).abs() < 1e-15);
    let base = obs
        .drift()
        .model_stats(ModelKind::Baseline)
        .expect("baseline scored");
    assert!(
        dr.mean_abs() < base.mean_abs(),
        "DR must out-predict Eq. 1 on the reuse scheduler"
    );
    assert!(
        dr.mean_abs() < 0.15,
        "DR drift {:.1}% too large",
        dr.mean_abs() * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Model sanity: predictions are positive, finite, and monotone in the
    /// problem volume for a fixed tile.
    #[test]
    fn predictions_monotone_in_problem_size(
        base in 1024usize..2048,
        growth in 1usize..4,
        t in 256usize..512,
    ) {
        let (_, profile) = lab_cached();
        let exec = profile
            .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
            .expect("gemm table");
        let small = ProblemSpec::gemm(Dtype::F64, base, base, base, Loc::Host, Loc::Host, Loc::Host, true);
        let big_n = base * (1 + growth);
        let big = ProblemSpec::gemm(Dtype::F64, big_n, big_n, big_n, Loc::Host, Loc::Host, Loc::Host, true);
        for kind in [ModelKind::Baseline, ModelKind::DataLoc, ModelKind::Bts, ModelKind::DataReuse] {
            let c1 = ModelCtx { problem: &small, transfer: &profile.transfer, exec, full_kernel_time: None };
            let c2 = ModelCtx { problem: &big, transfer: &profile.transfer, exec, full_kernel_time: None };
            let p1 = predict(kind, &c1, t).expect("small").total;
            let p2 = predict(kind, &c2, t).expect("big").total;
            prop_assert!(p1.is_finite() && p2.is_finite() && p1 > 0.0);
            prop_assert!(p2 > p1, "{kind:?}: {p2} !> {p1}");
        }
    }

    /// Reuse can only help: DR <= DataLoc for full-offload gemm.
    #[test]
    fn reuse_never_predicted_slower(
        n in 1024usize..4096,
        t in 256usize..1024,
    ) {
        let (_, profile) = lab_cached();
        let exec = profile
            .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
            .expect("gemm table");
        let problem = ProblemSpec::gemm(Dtype::F64, n, n, n, Loc::Host, Loc::Host, Loc::Host, true);
        let ctx = ModelCtx { problem: &problem, transfer: &profile.transfer, exec, full_kernel_time: None };
        let dl = predict(ModelKind::DataLoc, &ctx, t).expect("dataloc").total;
        let dr = predict(ModelKind::DataReuse, &ctx, t).expect("dr").total;
        prop_assert!(dr <= dl * 1.001, "DR {dr} vs DataLoc {dl}");
    }
}

/// Deployment is expensive relative to a proptest case; cache one profile
/// for the whole process.
fn lab_cached() -> (TestbedSpec, cocopelia_core::profile::SystemProfile) {
    use std::sync::OnceLock;
    static LAB: OnceLock<(TestbedSpec, cocopelia_core::profile::SystemProfile)> = OnceLock::new();
    LAB.get_or_init(lab).clone()
}
