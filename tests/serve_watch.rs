//! Streaming telemetry end to end: a 50 000-request serve under watch
//! keeps span memory bounded by the flight-recorder ring, emits a
//! deterministic window stream, streams an openable Perfetto trace
//! incrementally, fires exactly one SLO-breach dump containing the
//! breaching request's spans — and leaves virtual timing bit-identical
//! to the telemetry-off run.

use std::cell::RefCell;
use std::rc::Rc;

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{testbed_i, ExecMode, FaultSpec, NoiseSpec, SimTime, TestbedSpec};
use cocopelia_obs::perfetto::decode::decode_trace;
use cocopelia_obs::{Histogram, SloSpec, WindowedMetrics};
use cocopelia_runtime::serve::{
    ExecutorConfig, ServeOptions as SessionOptions, ServeReport, ServeSession, TelemetryConfig,
};
use cocopelia_runtime::{AxpyRequest, MultiGpu, RoutineRequest, SharedVec, TileChoice, VecOperand};
use cocopelia_xp::{chaos_fault_spec, chaos_request_trace, run_serve_streaming, ServeOptions};

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "watch-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn pool(devices: usize, faults: &FaultSpec) -> MultiGpu {
    MultiGpu::with_faults(
        &quiet(),
        devices,
        ExecMode::TimingOnly,
        42,
        dummy_profile(),
        faults,
    )
}

/// `count` small single-tile daxpy requests sharing `X`, with one
/// impossible-deadline request at `breach_at` to trip the deadline SLO.
fn watch_trace(count: usize, breach_at: usize) -> Vec<RoutineRequest> {
    let v = 1usize << 12;
    (0..count)
        .map(|i| {
            let mut r =
                AxpyRequest::<f64>::new(SharedVec::new("X", v), VecOperand::HostGhost { len: v })
                    .alpha(1.0)
                    .tile(TileChoice::Fixed(v));
            if i == breach_at {
                r = r.deadline_secs(1e-12);
            }
            r.into()
        })
        .collect()
}

fn run_watch_trace(
    count: usize,
    breach_at: usize,
    telemetry: Option<TelemetryConfig>,
) -> ServeReport {
    let mut opts = SessionOptions::new();
    if let Some(cfg) = telemetry {
        opts = opts.telemetry(cfg);
    }
    let mut exec =
        ServeSession::with_options(pool(2, &FaultSpec::none()), ExecutorConfig::default(), opts)
            .expect("stream file creatable");
    for req in watch_trace(count, breach_at) {
        exec.submit(req);
    }
    exec.drain()
}

#[test]
fn watch_50k_is_bounded_streamed_and_bit_identical() {
    // Debug builds run a 5k-request slice of the same workload to keep
    // `cargo test` quick; the release CI gate runs the full 50k
    // acceptance size.
    #[cfg(debug_assertions)]
    const REQUESTS: usize = 5_000;
    #[cfg(not(debug_assertions))]
    const REQUESTS: usize = 50_000;
    const BREACH_AT: usize = REQUESTS / 2;
    const RING: usize = 512;
    const TRACE_CAP: usize = 2_048;

    // Reference run with telemetry fully disabled sizes the windows and
    // anchors the bit-identity check.
    let plain = run_watch_trace(REQUESTS, BREACH_AT, None);
    assert_eq!(plain.completed(), REQUESTS - 1);
    assert_eq!(plain.timed_out(), 1);
    let window = SimTime::from_nanos((plain.makespan.as_nanos() / 32).max(1));

    let stream_path = std::env::temp_dir().join(format!(
        "cocopelia_serve_watch_{}.pftrace",
        std::process::id()
    ));
    let report = run_watch_trace(
        REQUESTS,
        BREACH_AT,
        Some(TelemetryConfig {
            window,
            slos: SloSpec::parse_list("deadline_miss<=0.0").expect("valid slo"),
            recorder_cap: RING,
            trace_cap: Some(TRACE_CAP),
            stream_path: Some(stream_path.clone()),
        }),
    );

    // Telemetry only reads clocks: virtual timing is bit-identical.
    assert_eq!(plain.makespan.as_nanos(), report.makespan.as_nanos());
    assert_eq!(plain.per_device_busy, report.per_device_busy);
    assert_eq!(plain.completed(), report.completed());
    assert_eq!(plain.timed_out(), report.timed_out());
    assert!(plain.telemetry.is_none());
    assert_eq!(plain.trace_dropped, 0);

    let tele = report.telemetry.as_ref().expect("telemetry armed");
    assert!(
        tele.windows.len() >= 10,
        "expected >= 10 windows, got {}",
        tele.windows.len()
    );
    let finished: u64 = tele.windows.iter().map(|w| w.finished).sum();
    assert_eq!(finished, REQUESTS as u64, "every request lands in a window");

    // Span memory stays bounded by the ring and the trace cap, not by the
    // request count.
    assert!(tele.recorder_len <= RING);
    assert!(
        tele.recorder_dropped > 0,
        "a {REQUESTS}-request run must overflow a {RING}-span ring"
    );
    let trace = report.trace.as_ref().expect("telemetry implies tracing");
    assert!(
        trace.spans.len() <= TRACE_CAP,
        "span log exceeded its cap: {}",
        trace.spans.len()
    );
    assert!(report.trace_dropped > 0);
    let rendered = report.render();
    assert!(rendered.contains("trace capped:"), "{rendered}");
    assert!(rendered.contains("telemetry:"), "{rendered}");

    // Exactly one SLO breach, exactly one dump, and the dump holds the
    // breaching request's span chain (it was ringed moments before).
    assert_eq!(tele.breaches.len(), 1, "breaches: {:?}", tele.breaches);
    assert_eq!(tele.dumps.len(), 1, "dumps: {:?}", tele.dumps.len());
    let dump = &tele.dumps[0];
    assert!(dump.reason.contains("deadline_miss"), "{}", dump.reason);
    assert!(
        dump.has_request_chain(BREACH_AT as u64),
        "dump must contain request {BREACH_AT}'s attempt and completion"
    );
    assert!(!dump.to_jsonl().is_empty());

    // The incrementally streamed Perfetto file decodes like the batch
    // exporter's output.
    assert!(tele.stream_error.is_none(), "{:?}", tele.stream_error);
    assert!(tele.stream_packets > 0);
    let bytes = std::fs::read(&stream_path).expect("stream file exists");
    assert_eq!(bytes.len() as u64, tele.stream_bytes);
    let decoded = decode_trace(&bytes).expect("streamed trace decodes");
    assert!(!decoded.events.is_empty());
    assert!(!decoded.descriptors.is_empty());
    let _ = std::fs::remove_file(&stream_path);
}

#[test]
fn windowed_percentiles_match_whole_run_histogram() {
    let bounds: Vec<f64> = (1..=20).map(|i| i as f64).collect();
    // Seeded LCG value stream in [0, 20).
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let values: Vec<f64> = (0..5_000)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 2000) as f64 / 100.0
        })
        .collect();

    // One observation per virtual nanosecond, 1000-ns windows.
    let window_ns = 1_000u64;
    let mut win = WindowedMetrics::new(window_ns);
    let mut whole = Histogram::new(bounds.clone());
    let mut by_window: Vec<Vec<f64>> = Vec::new();
    let mut snaps = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        snaps.extend(win.advance_to(i as u64));
        win.histogram_observe("flow", &bounds, v);
        whole.observe(v);
        let idx = i / window_ns as usize;
        if by_window.len() <= idx {
            by_window.resize(idx + 1, Vec::new());
        }
        by_window[idx].push(v);
    }
    snaps.push(win.close_now(values.len() as u64));

    assert_eq!(snaps.len(), by_window.len());
    let mut total = 0u64;
    for snap in &snaps {
        let d = snap.digest("flow").expect("every window saw observations");
        let mut h = Histogram::new(bounds.clone());
        for &v in &by_window[snap.index as usize] {
            h.observe(v);
        }
        assert_eq!(d.count, h.count(), "window {}", snap.index);
        for (q, got) in [(0.5, d.p50), (0.95, d.p95), (0.99, d.p99)] {
            let want = h.quantile(q).expect("non-empty");
            assert_eq!(got, want, "q{q} of window {}", snap.index);
        }
        total += d.count;
    }
    assert_eq!(total, whole.count(), "windows partition the run");

    // A single all-covering window reproduces the whole-run histogram's
    // percentiles exactly.
    let mut one = WindowedMetrics::new(u64::MAX);
    for &v in &values {
        one.histogram_observe("flow", &bounds, v);
    }
    let snap = one.close_now(values.len() as u64);
    let d = snap.digest("flow").expect("observed");
    assert_eq!(d.count, whole.count());
    assert_eq!(d.p50, whole.quantile(0.5).expect("non-empty"));
    assert_eq!(d.p95, whole.quantile(0.95).expect("non-empty"));
    assert_eq!(d.p99, whole.quantile(0.99).expect("non-empty"));
}

#[test]
fn quarantine_dump_contains_the_faulting_requests_span_chain() {
    // Every h2d enqueue faults and the first fault is terminal: request 0
    // loses dev0, re-dispatches to dev1, loses that too, and completes on
    // the host — two quarantines, each dumping the flight recorder.
    let spec = FaultSpec {
        seed: 1,
        h2d: 1.0,
        lost_after: Some(1),
        ..FaultSpec::none()
    };
    let mut exec = ServeSession::with_options(
        pool(2, &spec),
        ExecutorConfig::default(),
        SessionOptions::new().telemetry(TelemetryConfig::default()),
    )
    .expect("no stream file needed");
    for req in watch_trace(2, usize::MAX) {
        exec.submit(req);
    }
    let report = exec.drain();
    assert_eq!(report.quarantined, vec![0, 1]);

    let tele = report.telemetry.as_ref().expect("telemetry armed");
    assert_eq!(tele.dumps.len(), 2, "one dump per quarantined device");
    for (dump, dev) in tele.dumps.iter().zip(["dev0", "dev1"]) {
        assert!(
            dump.reason.contains(&format!("quarantine {dev}")),
            "{}",
            dump.reason
        );
        assert!(
            dump.has_request_chain(0),
            "dump at {dev} must hold request 0's attempts and completion"
        );
        // The chain is complete: the faulted attempts and the terminal
        // completion marker all survived in the ring.
        assert!(!dump.request_spans(0).is_empty());
    }
}

#[test]
fn watch_line_stream_is_deterministic_across_runs() {
    let run = || {
        let lines: Rc<RefCell<Vec<String>>> = Rc::default();
        let sink_lines = Rc::clone(&lines);
        let options = ServeOptions {
            trace: false,
            watch: Some(TelemetryConfig {
                window: SimTime::from_secs_f64(2e-3),
                ..TelemetryConfig::default()
            }),
            ..ServeOptions::default()
        };
        let cmp = run_serve_streaming(
            &testbed_i(),
            2,
            chaos_request_trace(2),
            &chaos_fault_spec(5),
            &options,
            Box::new(move |w| sink_lines.borrow_mut().push(w.render())),
        )
        .expect("watched chaos run succeeds");
        let lines = lines.borrow().clone();
        (lines, cmp.report.makespan.as_nanos())
    };
    let (lines_a, makespan_a) = run();
    let (lines_b, makespan_b) = run();
    assert!(
        !lines_a.is_empty(),
        "2 ms windows on a chaos run must close"
    );
    assert_eq!(lines_a, lines_b, "watch lines must be deterministic");
    assert_eq!(makespan_a, makespan_b);
    // Every line carries the fixed field skeleton.
    for line in &lines_a {
        for field in ["q=", "done=", "miss=", "p95=", "hit=", "faults=", "slo="] {
            assert!(line.contains(field), "{line}");
        }
    }
}
