//! End-to-end observability: structural trace invariants on real scheduler
//! output, per-op attribution tags, trace exports, and the
//! overlap-efficiency metric recomputed independently from the raw trace.

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{testbed_i, EngineKind, ExecMode, Gpu, NoiseSpec, OperandRole, TraceEntry};
use cocopelia_obs::{export, invariants, OverlapStats};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatOperand, TileChoice,
    VecOperand,
};
use serde::Value;

/// A deterministic pipeline with no deployed exec tables — fixed tiles only.
fn pipeline() -> Cocopelia {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    let dummy = SystemProfile::new(
        "obs-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    );
    Cocopelia::new(Gpu::new(tb, ExecMode::TimingOnly, 7), dummy)
}

fn ghost(rows: usize, cols: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows, cols }
}

fn run_dgemm(ctx: &mut Cocopelia, n: usize, t: usize) -> cocopelia_runtime::RoutineReport {
    GemmRequest::new(ghost(n, n), ghost(n, n), ghost(n, n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(t))
        .run(ctx)
        .expect("gemm runs")
        .report
}

#[test]
fn runtime_traces_satisfy_invariants() {
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    AxpyRequest::new(
        VecOperand::<f64>::HostGhost { len: 1 << 20 },
        VecOperand::HostGhost { len: 1 << 20 },
    )
    .alpha(2.0)
    .tile(TileChoice::Fixed(1 << 18))
    .run(&mut ctx)
    .expect("axpy runs");
    DotRequest::new(
        VecOperand::<f64>::HostGhost { len: 1 << 20 },
        VecOperand::HostGhost { len: 1 << 20 },
    )
    .tile(TileChoice::Fixed(1 << 18))
    .run(&mut ctx)
    .expect("dot runs");
    GemvRequest::new(
        ghost(1024, 1024),
        VecOperand::HostGhost { len: 1024 },
        VecOperand::HostGhost { len: 1024 },
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Fixed(256))
    .run(&mut ctx)
    .expect("gemv runs");
    let entries = ctx.gpu().trace().entries();
    assert!(!entries.is_empty());
    if let Err(problems) = invariants::check_entries(entries) {
        panic!("trace violates invariants:\n{}", problems.join("\n"));
    }
}

#[test]
fn every_enqueued_op_traced_exactly_once() {
    // dgemm 2048/512 tiles into a 4x4x4 grid: 48 h2d fetches (A, B, C tiles
    // each moved exactly once), 64 kernels, 16 C write-backs. Invariant 4
    // (unique op ids) plus these exact counts pin down "exactly once".
    let mut ctx = pipeline();
    let report = run_dgemm(&mut ctx, 2048, 512);
    assert_eq!(report.subkernels, 64);
    let entries = ctx.gpu().trace().entries();
    let count = |engine: EngineKind| entries.iter().filter(|e| e.engine == engine).count();
    assert_eq!(count(EngineKind::Compute), 64);
    assert_eq!(count(EngineKind::CopyH2d), 48);
    assert_eq!(count(EngineKind::CopyD2h), 16);
    invariants::check_entries(entries).expect("no duplicate ops");
}

#[test]
fn tags_attribute_every_entry() {
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    for e in ctx.gpu().trace().entries() {
        let tag = e
            .tag
            .as_ref()
            .unwrap_or_else(|| panic!("untagged op {}", e.op));
        assert_eq!(tag.routine, "gemm");
        assert_eq!(tag.call, 0);
        match e.engine {
            EngineKind::Compute => {
                assert_eq!(tag.operand, None, "kernels carry no operand role");
                assert!(!tag.get && !tag.set);
            }
            EngineKind::CopyH2d => {
                assert!(tag.get, "fetches are get ops");
                assert!(tag.operand.is_some());
            }
            EngineKind::CopyD2h => {
                assert!(tag.set, "write-backs are set ops");
                assert_eq!(tag.operand, Some(OperandRole::C));
            }
        }
    }
}

#[test]
fn tile_cache_hits_counted_for_reuse() {
    // 4x4x4 grid: 48 + 64*2 + 16*... tile requests total; every A/B/C tile
    // is fetched once (48 misses) and all remaining requests hit the cache.
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    let m = ctx.observer().metrics();
    assert_eq!(m.counter("tile_cache_misses_total"), 48);
    // Requests: C once per (i,j) = 16, A and B once per (i,j,p) = 64 each.
    assert_eq!(m.counter("tile_cache_hits_total"), 16 + 2 * 64 - 48);
}

/// Acceptance: the Chrome trace export of a dgemm run parses as valid JSON
/// and contains complete events for all three engines.
#[test]
fn chrome_trace_export_parses_with_all_engines() {
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    let text = export::to_chrome_trace(ctx.gpu().trace().entries()).expect("exports");
    let doc: Value = serde_json::from_str(&text).expect("valid JSON");
    let Ok(Value::Seq(events)) = doc.field("traceEvents") else {
        panic!("traceEvents must be a list")
    };
    let mut engines_seen = std::collections::BTreeSet::new();
    for ev in events {
        if matches!(ev.field("ph").expect("ph").as_str(), Ok("X")) {
            engines_seen.insert(
                ev.field("cat")
                    .expect("cat")
                    .as_str()
                    .expect("str")
                    .to_owned(),
            );
        }
    }
    assert_eq!(
        engines_seen.into_iter().collect::<Vec<_>>(),
        vec!["d2h".to_owned(), "exec".to_owned(), "h2d".to_owned()]
    );
}

#[test]
fn jsonl_export_round_trips_every_entry() {
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    let entries = ctx.gpu().trace().entries();
    let text = export::to_jsonl(entries).expect("exports");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), entries.len());
    for line in lines {
        let v: Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v.field("engine").expect("engine").as_str().is_ok());
    }
}

/// Independent recomputation of the busy-interval union: an event sweep
/// over +1/−1 coverage deltas, deliberately a different algorithm from the
/// sort-and-merge inside `OverlapStats`.
fn union_by_sweep(entries: &[TraceEntry]) -> u64 {
    let mut deltas: Vec<(u64, i64)> = Vec::new();
    for e in entries {
        deltas.push((e.start.as_nanos(), 1));
        deltas.push((e.end.as_nanos(), -1));
    }
    deltas.sort_unstable();
    let (mut depth, mut covered, mut last_t) = (0i64, 0u64, 0u64);
    for (t, d) in deltas {
        if depth > 0 {
            covered += t - last_t;
        }
        depth += d;
        last_t = t;
    }
    covered
}

/// Acceptance: the reported overlap-efficiency equals the value recomputed
/// independently from the raw trace.
#[test]
fn overlap_efficiency_matches_independent_recomputation() {
    let mut ctx = pipeline();
    let report = run_dgemm(&mut ctx, 2048, 512);
    let entries = ctx.gpu().trace().entries();

    let busy = |engine: EngineKind| -> u64 {
        entries
            .iter()
            .filter(|e| e.engine == engine)
            .map(|e| e.end.as_nanos() - e.start.as_nanos())
            .sum()
    };
    let sum_busy =
        busy(EngineKind::CopyH2d) + busy(EngineKind::Compute) + busy(EngineKind::CopyD2h);
    let union = union_by_sweep(entries);
    let expected = sum_busy as f64 / union as f64;

    // The report, the observer's per-call summary, and a fresh OverlapStats
    // must all agree with the sweep.
    assert_eq!(report.overlap.union_busy_ns, union);
    assert_eq!(report.overlap.sum_busy_ns(), sum_busy);
    assert!((report.overlap.efficiency() - expected).abs() < 1e-12);
    let summary = &ctx.observer().calls()[0];
    assert_eq!(summary.overlap, report.overlap);
    assert_eq!(OverlapStats::from_entries(entries), report.overlap);
    // A 4x4x4 pipelined gemm genuinely overlaps.
    assert!(expected > 1.2, "expected real overlap, got {expected:.2}x");
}

#[test]
fn observer_totals_match_trace_byte_counts() {
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    let trace_h2d = ctx.gpu().trace().bytes_moved(EngineKind::CopyH2d) as u64;
    let trace_d2h = ctx.gpu().trace().bytes_moved(EngineKind::CopyD2h) as u64;
    let m = ctx.observer().metrics();
    assert_eq!(m.counter("h2d_bytes_total"), trace_h2d);
    assert_eq!(m.counter("d2h_bytes_total"), trace_d2h);
    assert_eq!(m.counter("calls_total"), 1);
    assert_eq!(m.counter("calls_gemm"), 1);
    assert_eq!(m.counter("subkernels_total"), 64);
    // Fixed tile: no drift scored (no exec tables in the dummy profile).
    assert!(ctx.observer().drift().records().is_empty());
}

#[test]
fn calls_share_one_trace_but_separate_summaries() {
    let mut ctx = pipeline();
    run_dgemm(&mut ctx, 2048, 512);
    run_dgemm(&mut ctx, 2048, 1024);
    let calls = ctx.observer().calls();
    assert_eq!(calls.len(), 2);
    assert_eq!((calls[0].call, calls[1].call), (0, 1));
    assert_eq!(calls[0].tile, 512);
    assert_eq!(calls[1].tile, 1024);
    // Per-call makespans sum to no more than the whole trace's extent.
    let whole = OverlapStats::from_entries(ctx.gpu().trace().entries());
    assert!(calls[0].overlap.makespan_ns + calls[1].overlap.makespan_ns <= whole.makespan_ns);
    // Tags distinguish the two calls.
    let calls_in_trace: std::collections::BTreeSet<u64> = ctx
        .gpu()
        .trace()
        .entries()
        .iter()
        .filter_map(|e| e.tag.as_ref().map(|t| t.call))
        .collect();
    assert_eq!(calls_in_trace.into_iter().collect::<Vec<_>>(), vec![0, 1]);
}
