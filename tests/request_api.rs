//! Parity contract of the request-builder redesign: every deprecated
//! positional wrapper must produce a report identical to the equivalent
//! typed builder on a same-seed fresh device — bit-for-bit in virtual
//! time, selection, and overlap accounting.

#![allow(deprecated)] // the whole point of this file is legacy-vs-builder

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{testbed_i, ExecMode, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatOperand, RoutineReport,
    RuntimeError, SharedMat, TileChoice, VecOperand,
};

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "request-api-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

/// A fresh timing-only pipeline; identical seeds give identical virtual
/// clocks, so matching reports prove matching schedules.
fn ctx(seed: u64) -> Cocopelia {
    Cocopelia::new(
        Gpu::new(quiet(), ExecMode::TimingOnly, seed),
        dummy_profile(),
    )
}

fn ghost(rows: usize, cols: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows, cols }
}

fn gvec(len: usize) -> VecOperand<f64> {
    VecOperand::HostGhost { len }
}

#[test]
fn dgemm_wrapper_matches_builder() {
    let legacy = ctx(7)
        .dgemm(
            1.5,
            ghost(1024, 1024),
            ghost(1024, 1024),
            0.5,
            ghost(1024, 1024),
            TileChoice::Fixed(256),
        )
        .expect("legacy runs")
        .report;
    let built = GemmRequest::new(ghost(1024, 1024), ghost(1024, 1024), ghost(1024, 1024))
        .alpha(1.5)
        .beta(0.5)
        .tile(TileChoice::Fixed(256))
        .run(&mut ctx(7))
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
}

#[test]
fn sgemm_wrapper_matches_builder() {
    let g = |r, c| MatOperand::<f32>::HostGhost { rows: r, cols: c };
    let legacy = ctx(11)
        .sgemm(
            2.0,
            g(512, 512),
            g(512, 512),
            1.0,
            g(512, 512),
            TileChoice::Fixed(128),
        )
        .expect("legacy runs")
        .report;
    let built = GemmRequest::new(g(512, 512), g(512, 512), g(512, 512))
        .alpha(2.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(128))
        .run(&mut ctx(11))
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
}

#[test]
fn daxpy_wrapper_matches_builder() {
    let n = 1 << 21;
    let legacy = ctx(13)
        .daxpy(2.5, gvec(n), gvec(n), TileChoice::Fixed(1 << 19))
        .expect("legacy runs")
        .report;
    let built = AxpyRequest::new(gvec(n), gvec(n))
        .alpha(2.5)
        .tile(TileChoice::Fixed(1 << 19))
        .run(&mut ctx(13))
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
}

#[test]
fn ddot_wrapper_matches_builder() {
    let n = 1 << 21;
    let legacy = ctx(17)
        .ddot(gvec(n), gvec(n), TileChoice::Fixed(1 << 19))
        .expect("legacy runs")
        .report;
    let built = DotRequest::new(gvec(n), gvec(n))
        .tile(TileChoice::Fixed(1 << 19))
        .run(&mut ctx(17))
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
}

#[test]
fn dgemv_wrapper_matches_builder() {
    let legacy = ctx(19)
        .dgemv(
            0.5,
            ghost(2048, 1024),
            gvec(1024),
            2.0,
            gvec(2048),
            TileChoice::Fixed(512),
        )
        .expect("legacy runs")
        .report;
    let built = GemvRequest::new(ghost(2048, 1024), gvec(1024), gvec(2048))
        .alpha(0.5)
        .beta(2.0)
        .tile(TileChoice::Fixed(512))
        .run(&mut ctx(19))
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
}

#[test]
fn builder_defaults_are_alpha_one_beta_zero() {
    let legacy = ctx(23)
        .dgemm(
            1.0,
            ghost(768, 768),
            ghost(768, 768),
            0.0,
            ghost(768, 768),
            TileChoice::Fixed(256),
        )
        .expect("legacy runs")
        .report;
    let built = GemmRequest::new(ghost(768, 768), ghost(768, 768), ghost(768, 768))
        .tile(TileChoice::Fixed(256))
        .run(&mut ctx(23))
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
}

/// Auto selection goes through the full deploy → profile → model path;
/// the wrapper and the builder must still agree report-for-report.
#[test]
fn auto_selection_parity_through_deployed_profile() {
    let tb = quiet();
    let mut cfg = DeployConfig::quick();
    cfg.transfer_dims = vec![512, 1024, 2048];
    cfg.gemm_tiles = vec![256, 512, 1024];
    let profile = deploy(&tb, &cfg).expect("deploys").profile;
    let fresh = || {
        Cocopelia::new(
            Gpu::new(tb.clone(), ExecMode::TimingOnly, 29),
            profile.clone(),
        )
    };

    let legacy = fresh()
        .dgemm(
            1.0,
            ghost(2048, 2048),
            ghost(2048, 2048),
            1.0,
            ghost(2048, 2048),
            TileChoice::Auto,
        )
        .expect("legacy runs")
        .report;
    let built = GemmRequest::new(ghost(2048, 2048), ghost(2048, 2048), ghost(2048, 2048))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .run(&mut fresh())
        .expect("builder runs")
        .report;
    assert_eq!(legacy, built);
    assert!(legacy.selection.is_some(), "auto actually selected");
}

/// `submit` erases the request type but must not change its behaviour.
#[test]
fn submit_matches_typed_run() {
    let request = || {
        GemmRequest::new(ghost(1024, 1024), ghost(1024, 1024), ghost(1024, 1024))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Fixed(512))
    };
    let typed: RoutineReport = request().run(&mut ctx(31)).expect("typed runs").report;
    let erased = ctx(31).submit(request()).expect("submit runs");
    assert_eq!(typed, erased);
}

/// Shared operands are an executor feature; a direct call must refuse
/// them loudly instead of guessing.
#[test]
fn direct_submit_rejects_shared_operands() {
    let req = GemmRequest::<f64>::new(
        SharedMat::new("A", 256, 256),
        ghost(256, 256),
        ghost(256, 256),
    )
    .tile(TileChoice::Fixed(128));
    let err = ctx(37).submit(req).expect_err("must refuse");
    assert!(
        matches!(&err, RuntimeError::SharedOperand { key } if key == "A"),
        "unexpected error: {err}"
    );
}
