//! Cross-request h2d prefetch: the overlap-predicted pre-upload of the
//! next queued request's missing shared operands, the estimate fixes
//! that gate it (residency-aware service estimates, degrade-aware upload
//! estimates), and the bit-identity of prefetch-off runs.

use std::collections::BTreeSet;

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{
    testbed_i, DegradeWindow, ExecMode, FaultSpec, NoiseSpec, SimTime, TestbedSpec,
};
use cocopelia_obs::{check_spans, SpanPhase};
use cocopelia_runtime::serve::ServeOptions as SessionOptions;
use cocopelia_runtime::serve::{ExecutorConfig, RequestStatus, ServeSession};
use cocopelia_runtime::{GemmRequest, MatOperand, MultiGpu, RoutineRequest, SharedMat, TileChoice};
use cocopelia_xp::{run_serve_with_options, run_serve_with_policy, ServeOptions};

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "prefetch-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn ghost(n: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows: n, cols: n }
}

/// A skewed trace with prefetch opportunity: each big ghost-operand gemm
/// (long predicted run, ample h2d idle tail) is followed by a small gemm
/// whose shared operands are unique to it — so while the big request
/// runs, the small one's operands are the next thing worth staging.
fn skewed_trace(pairs: usize) -> Vec<RoutineRequest> {
    let (big, small) = (4096usize, 512usize);
    let mut trace = Vec::new();
    for i in 0..pairs {
        trace.push(
            GemmRequest::<f64>::new(ghost(big), ghost(big), ghost(big))
                .alpha(1.0)
                .beta(1.0)
                .tile(TileChoice::Fixed(1024))
                .into(),
        );
        trace.push(
            GemmRequest::<f64>::new(
                SharedMat::new(format!("A{i}"), small, small),
                SharedMat::new(format!("B{i}"), small, small),
                ghost(small),
            )
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Fixed(256))
            .into(),
        );
    }
    trace
}

/// The headline acceptance bar: on a warm skewed trace, `--prefetch`
/// strictly beats the FIFO no-prefetch makespan through measured h2d/exec
/// overlap — the staged copies demonstrably hid under the running
/// attempt's compute, and their targets claimed them as residency hits.
#[test]
fn prefetch_beats_fifo_makespan_via_measured_overlap() {
    let base = ServeOptions {
        trace: true,
        ..ServeOptions::default()
    };
    let prefetching = ServeOptions {
        prefetch: true,
        ..base.clone()
    };
    let off = run_serve_with_options(&quiet(), 1, skewed_trace(4), &FaultSpec::none(), &base)
        .expect("no-prefetch run");
    let on = run_serve_with_options(
        &quiet(),
        1,
        skewed_trace(4),
        &FaultSpec::none(),
        &prefetching,
    )
    .expect("prefetch run");

    for cmp in [&off, &on] {
        assert_eq!(cmp.report.outcomes.len(), 8);
        assert!(cmp
            .report
            .outcomes
            .iter()
            .all(|o| matches!(o.status, RequestStatus::Completed(_))));
        check_spans(&cmp.report.trace.as_ref().unwrap().spans)
            .expect("span invariants hold with prefetch");
    }
    assert_eq!(off.report.metrics.counter("prefetch_issued_total"), 0);

    let issued = on.report.metrics.counter("prefetch_issued_total");
    let hits = on.report.metrics.counter("prefetch_hits_total");
    let overlap_ns = on.report.metrics.counter("prefetch_overlap_ns");
    assert!(issued > 0, "the skewed trace must trigger prefetches");
    assert_eq!(hits, issued, "every staged operand's target must claim it");
    assert!(
        overlap_ns > 0,
        "prefetch copies must measurably overlap the running attempt's compute"
    );
    assert!(
        on.report
            .trace
            .as_ref()
            .unwrap()
            .spans
            .iter()
            .any(|s| s.phase == SpanPhase::Prefetch),
        "prefetch copies must surface as Prefetch spans"
    );

    let m_on = on.report.makespan.as_nanos();
    let m_off = off.report.makespan.as_nanos();
    assert!(
        m_on < m_off,
        "prefetch must strictly beat the no-prefetch makespan ({m_on} ns vs {m_off} ns)"
    );
    // Same useful work: hiding uploads must not change what was computed.
    assert_eq!(
        on.report.total_flops.to_bits(),
        off.report.total_flops.to_bits()
    );
}

/// With prefetch off, a run through the full option plumbing is
/// bit-identical to one where prefetch is never mentioned at all — the
/// feature adds zero enqueues, zero metrics, and zero scheduling
/// perturbation when disarmed.
#[test]
fn prefetch_off_replays_bit_identical_to_unaware_path() {
    use cocopelia_runtime::serve::SchedulePolicy;
    let unaware = run_serve_with_policy(
        &quiet(),
        2,
        skewed_trace(3),
        &FaultSpec::none(),
        SchedulePolicy::Fifo,
    )
    .expect("prefetch-unaware run");
    let off = run_serve_with_options(
        &quiet(),
        2,
        skewed_trace(3),
        &FaultSpec::none(),
        &ServeOptions {
            prefetch: false,
            ..ServeOptions::default()
        },
    )
    .expect("prefetch-off run");
    assert_eq!(
        off.report.makespan.as_nanos(),
        unaware.report.makespan.as_nanos()
    );
    assert_eq!(off.report.per_device_busy, unaware.report.per_device_busy);
    assert_eq!(off.report.outcomes, unaware.report.outcomes);
    assert_eq!(
        off.report.total_flops.to_bits(),
        unaware.report.total_flops.to_bits()
    );
    assert_eq!(off.report.render(), unaware.report.render());
    assert_eq!(off.report.metrics.counter("prefetch_issued_total"), 0);
    assert_eq!(off.report.metrics.counter("prefetch_skipped_total"), 0);
}

/// The residency-aware service estimate: under a shed watermark sized
/// between the warm and cold costs of the same request, the arrival whose
/// shared operand is already resident is admitted while the identical-
/// shape cold arrival is shed. (The old estimate priced every shared
/// operand as a fresh upload against device 0, so warm repeat traffic was
/// spuriously rejected.)
#[test]
fn residency_warm_arrival_admitted_while_cold_twin_sheds() {
    let tb = quiet();
    let n = 2048usize; // 2 x 32 MiB shared inputs: upload dominates the estimate.
    let upload_secs = 2.0 * tb.link.h2d.ideal_time(n * n * 8);
    let gemm = |prefix: &str| -> RoutineRequest {
        GemmRequest::<f64>::new(
            SharedMat::new(format!("{prefix}_a"), n, n),
            SharedMat::new(format!("{prefix}_b"), n, n),
            ghost(n),
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512))
        .into()
    };

    let pool = MultiGpu::new(&tb, 1, ExecMode::TimingOnly, 42, dummy_profile());
    let opts = SessionOptions::new().shed_flow_secs(upload_secs / 2.0);
    let mut exec =
        ServeSession::with_options(pool, ExecutorConfig::default(), opts).expect("session");

    // Closed-queue warm-up (the watermark governs arrivals only).
    exec.submit(gemm("warm"));
    let warmup = exec.drain();
    assert!(warmup
        .outcomes
        .iter()
        .all(|o| matches!(o.status, RequestStatus::Completed(_))));

    let warm_id = exec.submit_at(gemm("warm"), SimTime::from_nanos(0));
    let cold_id = exec.submit_at(gemm("cold"), SimTime::from_nanos(1));
    let report = exec.drain();
    let status = |id| {
        &report
            .outcomes
            .iter()
            .find(|o| o.id == id)
            .expect("outcome present")
            .status
    };
    assert!(
        matches!(status(warm_id), RequestStatus::Completed(_)),
        "warm repeat arrival must be admitted: {:?}",
        status(warm_id)
    );
    assert!(
        matches!(status(cold_id), RequestStatus::Rejected { .. }),
        "cold twin must shed on the same watermark: {:?}",
        status(cold_id)
    );
}

/// The degrade-aware upload estimate: with device 0's h2d link inside a
/// fault-plan degrade window, dispatch prices the shared-operand upload
/// at the degraded bandwidth and routes the request to the healthy peer
/// (the old estimate used ideal link time, leaving the tie to fall on
/// device 0).
#[test]
fn degraded_link_dispatch_prefers_healthy_peer() {
    let degraded = FaultSpec {
        degrade: vec![DegradeWindow {
            start_s: 0.0,
            end_s: 1e6,
            factor: 0.01,
        }],
        ..FaultSpec::none()
    };
    let plans = [degraded, FaultSpec::none()];
    let pool =
        MultiGpu::with_fault_plans(&quiet(), ExecMode::TimingOnly, 42, dummy_profile(), &plans);
    let mut exec = ServeSession::new(pool, ExecutorConfig::default());
    let n = 2048;
    exec.submit(
        GemmRequest::<f64>::new(
            SharedMat::new("A", n, n),
            SharedMat::new("B", n, n),
            ghost(n),
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512)),
    );
    let report = exec.drain();
    assert_eq!(report.outcomes.len(), 1);
    assert!(matches!(
        report.outcomes[0].status,
        RequestStatus::Completed(_)
    ));
    assert_eq!(
        report.outcomes[0].device,
        Some(1),
        "the degraded-link device must lose the upload-cost comparison"
    );
}

/// Prefetched-but-unclaimed operands are released with accounting, and a
/// drained session leaves no pinned entries or stray allocations behind:
/// every device's live buffers are exactly its residency cache.
#[test]
fn prefetch_pins_release_and_nothing_leaks() {
    let tb = quiet();
    let deployed =
        cocopelia_deploy::deploy(&tb, &cocopelia_deploy::DeployConfig::quick()).expect("deploy");
    let pool = MultiGpu::new(&tb, 1, ExecMode::TimingOnly, 42, deployed.profile);
    let opts = SessionOptions::new().tracing().prefetch();
    let mut exec =
        ServeSession::with_options(pool, ExecutorConfig::default(), opts).expect("session");
    for req in skewed_trace(3) {
        exec.submit(req);
    }
    let report = exec.drain();
    assert!(report
        .outcomes
        .iter()
        .all(|o| matches!(o.status, RequestStatus::Completed(_))));
    let issued = report.metrics.counter("prefetch_issued_total");
    assert!(issued > 0, "the skewed trace must trigger prefetches");
    assert_eq!(
        issued,
        report.metrics.counter("prefetch_hits_total")
            + report.metrics.counter("prefetch_released_total")
            + report.metrics.counter("prefetch_aborted_total"),
        "every staged operand must be claimed, released, or aborted"
    );
    // No pinned leftovers, no allocation the cache does not track.
    for (d, dev) in exec.pool().devices().iter().enumerate() {
        let live: BTreeSet<_> = dev.gpu().live_device_buffers().into_iter().collect();
        let resident: BTreeSet<_> = exec.residency(d).device_buffers().into_iter().collect();
        assert_eq!(live, resident, "dev{d} live buffers != residency cache");
        assert!(
            dev.gpu().live_host_buffers().is_empty(),
            "dev{d} still pins staging ghosts"
        );
    }
    check_spans(&report.trace.as_ref().unwrap().spans).expect("prefetch spans satisfy invariants");
}
