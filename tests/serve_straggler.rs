//! Straggler-defense soak: hedged re-dispatch against a degraded link,
//! quarantine probation with canary re-admission, the session retry
//! budget under a sustained fault storm, compound failure (device lost
//! while its hedge is in flight) without leaks or orphan spans, and
//! bit-identical replay with every defense armed at once.

use std::collections::BTreeSet;

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{testbed_i, ExecMode, FaultSpec, NoiseSpec, SimTime, TestbedSpec};
use cocopelia_obs::{check_spans, SpanPhase};
use cocopelia_runtime::serve::ServeOptions as SessionOptions;
use cocopelia_runtime::serve::{
    ExecutorConfig, HedgeConfig, ProbationConfig, RequestStatus, RetryBudgetConfig, ServeReport,
    ServeSession,
};
use cocopelia_runtime::{GemmRequest, MatOperand, MultiGpu, RoutineRequest, SharedMat, TileChoice};
use cocopelia_xp::{
    run_serve_with_options, straggler_fault_plans, straggler_request_trace, ServeOptions,
};

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "straggler-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn ghost(n: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows: n, cols: n }
}

fn shared_gemm(n: usize) -> RoutineRequest {
    GemmRequest::<f64>::new(
        SharedMat::new("A", n, n),
        SharedMat::new("B", n, n),
        ghost(n),
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Fixed(512))
    .into()
}

/// Per-request flow times in virtual seconds, derived from the trace:
/// the gap between the request's queue-span start (arrival on the shared
/// axis) and its terminal `Complete` span.
fn flows_secs(report: &ServeReport) -> Vec<f64> {
    let trace = report.trace.as_ref().expect("tracing armed");
    let mut flows = Vec::new();
    for o in &report.outcomes {
        if !matches!(o.status, RequestStatus::Completed(_)) {
            continue;
        }
        let spans = trace.request_spans(o.id.0);
        let queued = spans
            .iter()
            .find(|s| s.phase == SpanPhase::Queued)
            .expect("every dispatched request has a queue span");
        let complete = spans
            .iter()
            .find(|s| s.phase == SpanPhase::Complete)
            .expect("every terminal request has a complete span");
        flows.push((complete.start_ns - queued.start_ns) as f64 * 1e-9);
    }
    flows
}

fn p99(flows: &[f64]) -> f64 {
    assert!(!flows.is_empty());
    let mut sorted = flows.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[((sorted.len() as f64) * 0.99).ceil() as usize - 1]
}

/// No device holds an allocation the executor does not know about: a
/// quarantined device is fully drained, a healthy device's live buffers
/// are exactly its residency cache.
fn assert_no_leaks(exec: &ServeSession) {
    let quarantined = exec.quarantined();
    for (d, dev) in exec.pool().devices().iter().enumerate() {
        let live: BTreeSet<_> = dev.gpu().live_device_buffers().into_iter().collect();
        let host_live = dev.gpu().live_host_buffers();
        if quarantined.contains(&d) {
            assert!(live.is_empty(), "dev{d} quarantined but holds {live:?}");
            assert!(
                host_live.is_empty(),
                "dev{d} quarantined but pins {host_live:?}"
            );
        } else {
            let resident: BTreeSet<_> = exec.residency(d).device_buffers().into_iter().collect();
            assert_eq!(live, resident, "dev{d} live buffers != residency cache");
        }
    }
}

/// The headline acceptance bar: on a seeded straggler trace (device 0's
/// link degraded to 1% bandwidth inside repeating windows, device 1
/// clean), hedged re-dispatch strictly improves the p99 flow time over a
/// `--hedge off` run while completing the exact same useful flops — the
/// cancelled losers are charged to nobody.
#[test]
fn hedging_improves_tail_flow_with_identical_flops() {
    for seed in [11u64, 23, 47] {
        let base = ServeOptions {
            trace: true,
            fault_plans: Some(straggler_fault_plans(2, seed, 0.01)),
            ..ServeOptions::default()
        };
        let hedged = ServeOptions {
            hedge: Some(HedgeConfig::default()),
            ..base.clone()
        };
        let off = run_serve_with_options(
            &quiet(),
            2,
            straggler_request_trace(16),
            &FaultSpec::none(),
            &base,
        )
        .expect("unhedged straggler run");
        let on = run_serve_with_options(
            &quiet(),
            2,
            straggler_request_trace(16),
            &FaultSpec::none(),
            &hedged,
        )
        .expect("hedged straggler run");

        for cmp in [&off, &on] {
            assert_eq!(cmp.report.outcomes.len(), 16, "seed {seed}");
            assert!(cmp
                .report
                .outcomes
                .iter()
                .all(|o| matches!(o.status, RequestStatus::Completed(_))));
            check_spans(&cmp.report.trace.as_ref().unwrap().spans)
                .expect("span invariants hold under hedging");
        }
        assert_eq!(off.report.metrics.counter("hedge_attempts_total"), 0);
        let attempts = on.report.metrics.counter("hedge_attempts_total");
        let wins = on.report.metrics.counter("hedge_wins_total");
        assert!(attempts > 0, "seed {seed}: straggler never hedged");
        assert!(wins > 0, "seed {seed}: no hedge beat the degraded link");

        let p99_off = p99(&flows_secs(&off.report));
        let p99_on = p99(&flows_secs(&on.report));
        assert!(
            p99_on < p99_off,
            "seed {seed}: hedging must strictly improve p99 flow \
             ({p99_on:.4}s vs {p99_off:.4}s)"
        );
        // Same useful work, bit for bit: every request's flops are charged
        // exactly once, to whichever attempt won its race.
        assert_eq!(
            on.report.total_flops.to_bits(),
            off.report.total_flops.to_bits(),
            "seed {seed}: hedging changed the total flops"
        );
    }
}

/// Probation end to end: a device drained operationally (the maintenance
/// workflow behind [`cocopelia_runtime::serve::Executor::force_quarantine`])
/// is re-admitted after consecutive clean canary probes and then serves
/// requests again.
#[test]
fn probation_readmits_a_drained_device_that_then_serves() {
    let pool = MultiGpu::new(&quiet(), 2, ExecMode::TimingOnly, 42, dummy_profile());
    let opts = SessionOptions::new().tracing().probation(ProbationConfig {
        backoff: SimTime::from_secs_f64(1e-3),
        successes: 2,
        max_rounds: 6,
        seed: 9,
    });
    let mut exec = ServeSession::with_options(pool, ExecutorConfig::default(), opts)
        .expect("session with probation");

    for _ in 0..4 {
        exec.submit(shared_gemm(1024));
    }
    let warm = exec.drain();
    let used: BTreeSet<_> = warm.outcomes.iter().filter_map(|o| o.device).collect();
    assert_eq!(used, BTreeSet::from([0, 1]), "warmup must use both devices");

    exec.executor_mut().force_quarantine(0);
    assert_eq!(exec.quarantined(), vec![0]);

    for _ in 0..10 {
        exec.submit(shared_gemm(1024));
    }
    let healed = exec.drain();

    assert!(
        healed.metrics.counter("probe_attempts_total") >= 2,
        "two consecutive canaries are required for re-admission"
    );
    assert_eq!(healed.metrics.counter("probe_success_total"), 2);
    assert_eq!(healed.metrics.counter("probe_readmit_total"), 1);
    assert_eq!(healed.metrics.counter("probe_fail_total"), 0);
    assert!(
        exec.quarantined().is_empty(),
        "probation must re-admit dev0"
    );
    let served_after_readmit = healed
        .outcomes
        .iter()
        .any(|o| o.device == Some(0) && matches!(o.status, RequestStatus::Completed(_)));
    assert!(
        served_after_readmit,
        "the re-admitted device must complete at least one request"
    );
    assert!(healed
        .outcomes
        .iter()
        .all(|o| matches!(o.status, RequestStatus::Completed(_)) && !o.host_fallback));
    check_spans(&healed.trace.as_ref().unwrap().spans).expect("probe spans satisfy invariants");
    assert_no_leaks(&exec);
}

/// Without probation, an operational drain is permanent — the control
/// case for the self-healing path.
#[test]
fn force_quarantine_without_probation_is_permanent() {
    let pool = MultiGpu::new(&quiet(), 2, ExecMode::TimingOnly, 42, dummy_profile());
    let mut exec = ServeSession::new(pool, ExecutorConfig::default());
    exec.executor_mut().force_quarantine(0);
    for _ in 0..4 {
        exec.submit(shared_gemm(1024));
    }
    let report = exec.drain();
    assert_eq!(exec.quarantined(), vec![0]);
    assert_eq!(report.metrics.counter("probe_attempts_total"), 0);
    assert!(report.outcomes.iter().all(|o| o.device == Some(1)));
}

/// A sustained fault storm drains the session retry budget: the breaker
/// opens, later faulting requests skip further device picks and fail
/// fast to host BLAS instead of burning device time on doomed retries.
#[test]
fn retry_budget_breaker_fails_fast_under_fault_storm() {
    let storm = FaultSpec {
        seed: 7,
        h2d: 1.0,
        ..FaultSpec::none()
    };
    let plans = [storm.clone(), storm];
    let pool =
        MultiGpu::with_fault_plans(&quiet(), ExecMode::TimingOnly, 42, dummy_profile(), &plans);
    let opts = SessionOptions::new().retry_budget(RetryBudgetConfig {
        tokens: 1.0,
        refill_per_sec: 0.0,
        cooldown: SimTime::from_secs_f64(10.0),
    });
    let mut exec = ServeSession::with_options(pool, ExecutorConfig::default(), opts)
        .expect("session with retry budget");
    for _ in 0..6 {
        exec.submit(shared_gemm(1024));
    }
    let report = exec.drain();

    // Every request still completes — on the host.
    assert!(report
        .outcomes
        .iter()
        .all(|o| matches!(o.status, RequestStatus::Completed(_))));
    assert!(report.outcomes.iter().filter(|o| o.host_fallback).count() >= 4);
    assert_eq!(report.metrics.counter("budget_spent_total"), 1);
    assert_eq!(report.metrics.counter("budget_exhausted_total"), 1);
    assert!(report.metrics.counter("budget_fastfail_total") >= 2);
    // The breaker capped the retry bill at the bucket size.
    assert_eq!(report.metrics.counter("retry_attempts_total"), 1);
    assert_no_leaks(&exec);
}

/// Compound failure: device 1 is lost the instant its first operation
/// runs — which, by construction, is a hedge launched against device 0's
/// degraded link. The hedge faults mid-flight; the primary result stands,
/// the dead device is quarantined with every allocation freed, and the
/// trace holds together (no orphan hedge spans).
#[test]
fn device_lost_during_hedge_frees_everything() {
    let tb = quiet();
    let deployed = deploy(&tb, &DeployConfig::quick()).expect("deploy");
    let mut plans = straggler_fault_plans(2, 5, 0.01);
    plans[1] = FaultSpec {
        seed: 7,
        h2d: 1.0,
        lost_after: Some(0),
        ..FaultSpec::none()
    };
    let pool = MultiGpu::with_fault_plans(&tb, ExecMode::TimingOnly, 42, deployed.profile, &plans);
    let opts = SessionOptions::new()
        .tracing()
        .hedge(HedgeConfig::default());
    let mut exec = ServeSession::with_options(pool, ExecutorConfig::default(), opts)
        .expect("session with hedging");
    for req in straggler_request_trace(4) {
        exec.submit(req);
    }
    let report = exec.drain();

    assert!(report
        .outcomes
        .iter()
        .all(|o| matches!(o.status, RequestStatus::Completed(_))));
    assert!(
        report.metrics.counter("hedge_attempts_total") >= 1,
        "the degraded primary must trigger a hedge"
    );
    assert!(
        report.metrics.counter("hedge_fail_total") >= 1,
        "the hedge must die with its device"
    );
    assert_eq!(report.metrics.counter("hedge_wins_total"), 0);
    assert_eq!(
        exec.quarantined(),
        vec![1],
        "the lost hedge device is quarantined"
    );
    check_spans(&report.trace.as_ref().unwrap().spans)
        .expect("no orphan spans after a hedge death");
    assert_no_leaks(&exec);
}

/// Replay determinism with the whole defense tier armed: two runs from
/// the same seed are bit-identical in timing, outcome, accounting, and
/// defense activity.
#[test]
fn replay_is_bit_identical_with_all_defenses_armed() {
    let run = || {
        let options = ServeOptions {
            trace: true,
            fault_plans: Some(straggler_fault_plans(2, 11, 0.01)),
            hedge: Some(HedgeConfig::default()),
            probation: Some(ProbationConfig::default()),
            retry_budget: Some(RetryBudgetConfig::default()),
            ..ServeOptions::default()
        };
        run_serve_with_options(
            &quiet(),
            2,
            straggler_request_trace(12),
            &FaultSpec::none(),
            &options,
        )
        .expect("defended straggler run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.makespan.as_nanos(), b.report.makespan.as_nanos());
    assert_eq!(a.report.per_device_busy, b.report.per_device_busy);
    assert_eq!(
        a.report.total_flops.to_bits(),
        b.report.total_flops.to_bits()
    );
    assert_eq!(a.report.host_flops.to_bits(), b.report.host_flops.to_bits());
    assert_eq!(a.report.outcomes, b.report.outcomes);
    assert_eq!(a.report.render(), b.report.render());
    assert_eq!(
        a.report.metrics.counter("hedge_attempts_total"),
        b.report.metrics.counter("hedge_attempts_total")
    );
    assert_eq!(
        a.report.metrics.counter("hedge_wins_total"),
        b.report.metrics.counter("hedge_wins_total")
    );
    let ta = a.report.trace.as_ref().unwrap();
    let tb = b.report.trace.as_ref().unwrap();
    assert_eq!(ta.spans.len(), tb.spans.len());
    for (x, y) in ta.spans.iter().zip(&tb.spans) {
        assert_eq!(
            (x.request, x.device, x.phase, x.start_ns, x.end_ns),
            (y.request, y.device, y.phase, y.start_ns, y.end_ns)
        );
    }
}
