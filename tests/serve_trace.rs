//! The serve tracing pipeline end to end: request-lifecycle spans from
//! real executor runs satisfy the span invariants, the Perfetto export
//! round-trips through the decoder with the track topology viewers
//! expect, the timeline renders every device and the fault glyphs, and
//! tracing never perturbs virtual timing.

use cocopelia_gpusim::{testbed_i, FaultSpec};
use cocopelia_obs::perfetto::{decode::decode_trace, to_perfetto};
use cocopelia_obs::timeline::{render, TimelineOptions};
use cocopelia_obs::{check_spans, ServeTrace, SpanPhase};
use cocopelia_runtime::serve::SchedulePolicy;
use cocopelia_xp::{
    chaos_fault_spec, chaos_request_trace, run_serve_with_options, standard_request_trace,
    ServeComparison, ServeOptions,
};

fn traced_run(
    devices: usize,
    trace: Vec<cocopelia_runtime::RoutineRequest>,
    faults: &FaultSpec,
    policy: SchedulePolicy,
) -> ServeComparison {
    let options = ServeOptions {
        policy,
        trace: true,
        snapshot_interval: Some(cocopelia_gpusim::SimTime::from_secs_f64(5e-3)),
        ..ServeOptions::default()
    };
    run_serve_with_options(&testbed_i(), devices, trace, faults, &options)
        .expect("traced serve run succeeds")
}

fn serve_trace(cmp: &ServeComparison) -> &ServeTrace {
    cmp.report.trace.as_ref().expect("tracing was enabled")
}

#[test]
fn standard_run_perfetto_has_expected_track_topology() {
    let cmp = traced_run(
        2,
        standard_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Predictive,
    );
    let trace = serve_trace(&cmp);
    check_spans(&trace.spans).expect("span invariants hold on the standard run");

    let decoded = decode_trace(&to_perfetto(trace)).expect("exporter output decodes");

    // One serve process plus one process per device.
    let processes = decoded.process_tracks();
    assert!(
        processes.len() >= 3,
        "expected serve + 2 device processes, got {}",
        processes.len()
    );
    for dev in ["dev0", "dev1"] {
        let proc = processes
            .iter()
            .find(|p| p.process_name.as_deref() == Some(dev))
            .unwrap_or_else(|| panic!("missing process track for {dev}"));
        let pid = proc.pid.expect("process track carries a pid");
        let threads = decoded.thread_tracks_of(pid);
        assert!(
            threads.len() >= 3,
            "{dev} needs h2d/exec/d2h engine threads, got {threads:?}"
        );
        for engine in ["h2d", "exec", "d2h"] {
            assert!(
                threads
                    .iter()
                    .any(|t| t.thread_name.as_deref() == Some(engine)),
                "{dev} missing {engine} thread track"
            );
        }
    }

    // At least one flow links the queue track to a device-side track.
    let queue_uuid = track_named(&decoded, "queue");
    let queue_flows: Vec<u64> = decoded
        .events_on(queue_uuid)
        .iter()
        .flat_map(|e| e.flows.iter().copied())
        .collect();
    assert!(!queue_flows.is_empty(), "queue events carry flow ids");
    let linked = decoded
        .events
        .iter()
        .any(|e| e.track_uuid != queue_uuid && e.flows.iter().any(|f| queue_flows.contains(f)));
    assert!(linked, "no device event shares a flow id with the queue");

    // Timestamps stay monotone per track across the whole decode.
    for desc in &decoded.descriptors {
        let events = decoded.events_on(desc.uuid);
        for pair in events.windows(2) {
            assert!(
                pair[0].ts_ns <= pair[1].ts_ns,
                "track {} timestamps regress: {} then {}",
                desc.name,
                pair[0].ts_ns,
                pair[1].ts_ns
            );
        }
    }
}

fn track_named(decoded: &cocopelia_obs::perfetto::decode::DecodedTrace, name: &str) -> u64 {
    decoded
        .descriptors
        .iter()
        .find(|d| d.name == name || d.thread_name.as_deref() == Some(name))
        .unwrap_or_else(|| panic!("missing track named {name}"))
        .uuid
}

#[test]
fn chaos_run_spans_hold_invariants_and_timeline_shows_faults() {
    let cmp = traced_run(
        2,
        chaos_request_trace(3),
        &chaos_fault_spec(11),
        SchedulePolicy::Predictive,
    );
    let trace = serve_trace(&cmp);
    check_spans(&trace.spans).expect("span invariants hold under chaos");

    // The chaos plan actually exercised the fault machinery.
    let faulted = trace.spans.iter().any(|s| {
        matches!(
            s.phase,
            SpanPhase::Retry | SpanPhase::Quarantine | SpanPhase::HostFallback
        )
    });
    assert!(
        faulted,
        "chaos run produced no retry/quarantine/fallback spans"
    );

    let text = render(
        trace,
        &TimelineOptions {
            width: 100,
            color: false,
        },
    );
    assert!(text.contains("dev0"), "timeline missing dev0 row:\n{text}");
    assert!(text.contains("dev1"), "timeline missing dev1 row:\n{text}");
    assert!(
        text.contains('!') || text.contains('Q') || text.contains('H'),
        "timeline missing fault glyphs:\n{text}"
    );

    // The chaos trace still decodes as a valid perfetto stream.
    let decoded = decode_trace(&to_perfetto(trace)).expect("chaos trace decodes");
    assert!(decoded.packets > 0);
}

#[test]
fn re_issued_attempts_never_overlap_per_request() {
    let cmp = traced_run(
        2,
        chaos_request_trace(3),
        &chaos_fault_spec(23),
        SchedulePolicy::Fifo,
    );
    let trace = serve_trace(&cmp);
    // check_spans enforces this globally; assert it directly per request
    // so a future invariant relaxation can't silently weaken the bar.
    for span in &trace.spans {
        if !matches!(
            span.phase,
            SpanPhase::Dispatch | SpanPhase::Retry | SpanPhase::HostFallback
        ) {
            continue;
        }
        for other in trace.request_spans(span.request) {
            if std::ptr::eq(span, other)
                || !matches!(
                    other.phase,
                    SpanPhase::Dispatch | SpanPhase::Retry | SpanPhase::HostFallback
                )
            {
                continue;
            }
            let disjoint = span.end_ns <= other.start_ns || other.end_ns <= span.start_ns;
            assert!(
                disjoint,
                "request {} attempts overlap: {:?} vs {:?}",
                span.request, span, other
            );
        }
    }
}

#[test]
fn chrome_export_gives_each_device_its_own_pid() {
    let cmp = traced_run(
        2,
        standard_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Fifo,
    );
    let json = cocopelia_obs::export::serve_trace_to_chrome(serve_trace(&cmp))
        .expect("chrome export succeeds");
    // pid 10 and 11 are dev0/dev1; pid 1 is the serve process.
    assert!(json.contains("\"pid\":10"), "missing dev0 pid");
    assert!(json.contains("\"pid\":11"), "missing dev1 pid");
    assert!(json.contains("\"pid\":1,"), "missing serve pid");
    assert!(json.contains("process_name"));
}

#[test]
fn snapshots_are_monotone_and_tracing_leaves_timing_unchanged() {
    let traced = traced_run(
        2,
        standard_request_trace(),
        &FaultSpec::none(),
        SchedulePolicy::Predictive,
    );
    let plain = run_serve_with_options(
        &testbed_i(),
        2,
        standard_request_trace(),
        &FaultSpec::none(),
        &ServeOptions {
            policy: SchedulePolicy::Predictive,
            trace: false,
            snapshot_interval: None,
            ..ServeOptions::default()
        },
    )
    .expect("untraced run succeeds");
    assert_eq!(
        traced.report.makespan, plain.report.makespan,
        "tracing must not perturb virtual timing"
    );
    assert!(plain.report.trace.is_none());
    assert!(plain.report.snapshots.is_empty());

    let snaps = &traced.report.snapshots;
    assert!(!snaps.is_empty(), "5 ms interval on a >5 ms run snapshots");
    for pair in snaps.windows(2) {
        assert!(pair[0].at < pair[1].at, "snapshot times strictly increase");
        for d in 0..2 {
            assert!(
                pair[0].device_clock[d] <= pair[1].device_clock[d],
                "device {d} clock regressed between snapshots"
            );
        }
    }
    let last = snaps.last().expect("non-empty");
    assert!(last.at <= traced.report.makespan);
    assert!(snaps[0].queue_depth <= standard_request_trace().len());
}
