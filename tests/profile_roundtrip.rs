//! Deployment artifact persistence: a `SystemProfile` survives the
//! JSON round trip bit-exactly and keeps producing identical predictions —
//! the property that makes deployment a one-off cost per machine (§IV-A).

use cocopelia_core::models::{predict, ModelCtx, ModelKind};
use cocopelia_core::params::{Loc, ProblemSpec};
use cocopelia_core::profile::SystemProfile;
use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{testbed_i, NoiseSpec};
use cocopelia_hostblas::Dtype;

fn deployed_profile() -> SystemProfile {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    let mut cfg = DeployConfig::quick();
    cfg.transfer_dims = vec![512, 1024];
    cfg.gemm_tiles = vec![256, 512, 1024];
    cfg.axpy_tiles = vec![1 << 20];
    cfg.gemv_tiles = vec![512];
    deploy(&tb, &cfg).expect("deploys").profile
}

#[test]
fn json_round_trip_is_exact() {
    let profile = deployed_profile();
    let json = profile.to_json().expect("serializes");
    let back = SystemProfile::from_json(&json).expect("parses");
    assert_eq!(profile, back);
}

#[test]
fn reloaded_profile_gives_identical_predictions() {
    let profile = deployed_profile();
    let json = profile.to_json().expect("serializes");
    let back = SystemProfile::from_json(&json).expect("parses");
    let problem = ProblemSpec::gemm(
        Dtype::F64,
        4096,
        4096,
        4096,
        Loc::Host,
        Loc::Host,
        Loc::Host,
        true,
    );
    for t in [256usize, 512, 1024] {
        for kind in [
            ModelKind::Baseline,
            ModelKind::DataLoc,
            ModelKind::Bts,
            ModelKind::DataReuse,
        ] {
            let exec1 = profile
                .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
                .expect("table");
            let exec2 = back
                .exec_table(cocopelia_core::params::RoutineClass::Gemm, Dtype::F64)
                .expect("table");
            let p1 = predict(
                kind,
                &ModelCtx {
                    problem: &problem,
                    transfer: &profile.transfer,
                    exec: exec1,
                    full_kernel_time: None,
                },
                t,
            )
            .expect("predicts");
            let p2 = predict(
                kind,
                &ModelCtx {
                    problem: &problem,
                    transfer: &back.transfer,
                    exec: exec2,
                    full_kernel_time: None,
                },
                t,
            )
            .expect("predicts");
            assert_eq!(p1.total.to_bits(), p2.total.to_bits(), "{kind:?} T={t}");
        }
    }
}

#[test]
fn profile_survives_a_file_round_trip() {
    let profile = deployed_profile();
    let dir = std::env::temp_dir().join("cocopelia-profile-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("testbed_i.json");
    std::fs::write(&path, profile.to_json().expect("serializes")).expect("write");
    let text = std::fs::read_to_string(&path).expect("read");
    let back = SystemProfile::from_json(&text).expect("parses");
    assert_eq!(profile, back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn deployment_is_reproducible_per_seed() {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::REALISTIC; // exercised *with* noise
    let mut cfg = DeployConfig::quick();
    cfg.transfer_dims = vec![512, 1024];
    cfg.gemm_tiles = vec![256, 512];
    cfg.axpy_tiles = vec![1 << 20];
    cfg.gemv_tiles = vec![512];
    let a = deploy(&tb, &cfg).expect("deploys");
    let b = deploy(&tb, &cfg).expect("deploys");
    assert_eq!(a, b, "same seed, same measurements, same profile");
    cfg.seed ^= 0xdead;
    let c = deploy(&tb, &cfg).expect("deploys");
    assert_ne!(
        a.profile.transfer, c.profile.transfer,
        "different seed, different noise"
    );
}
