//! Cross-policy behavioural contracts: transfer-volume accounting, overlap
//! structure, and the performance orderings the paper's comparisons rely
//! on.

use cocopelia_gpusim::{testbed_i, testbed_ii, EngineKind, ExecMode, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_runtime::{AxpyRequest, Cocopelia, GemmRequest, MatOperand, TileChoice, VecOperand};

fn quiet(mut tb: TestbedSpec) -> TestbedSpec {
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> cocopelia_core::profile::SystemProfile {
    cocopelia_core::profile::SystemProfile::new(
        "test",
        cocopelia_core::transfer::TransferModel {
            h2d: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn ghost(n: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows: n, cols: n }
}

#[test]
fn transfer_volumes_match_policy_definitions() {
    let n = 1024;
    let t = 256;
    let kt = n / t; // 4 tiles per dim
    let tile_bytes = t * t * 8;

    // CoCoPeLia / BLASX (full reuse): each matrix moves exactly once.
    let mut ctx = Cocopelia::new(
        Gpu::new(quiet(testbed_i()), ExecMode::TimingOnly, 1),
        dummy_profile(),
    );
    GemmRequest::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(t))
        .run(&mut ctx)
        .expect("runs");
    assert_eq!(
        ctx.gpu().trace().bytes_moved(EngineKind::CopyH2d),
        3 * n * n * 8
    );
    assert_eq!(
        ctx.gpu().trace().bytes_moved(EngineKind::CopyD2h),
        n * n * 8
    );

    // cuBLASXt (no reuse): 3 tiles in + 1 tile out per sub-kernel.
    let mut gpu = Gpu::new(quiet(testbed_i()), ExecMode::TimingOnly, 1);
    cocopelia_baselines::cublasxt::gemm::<f64>(&mut gpu, 1.0, ghost(n), ghost(n), 1.0, ghost(n), t)
        .expect("runs");
    let k = kt * kt * kt;
    assert_eq!(
        gpu.trace().bytes_moved(EngineKind::CopyH2d),
        3 * k * tile_bytes
    );
    assert_eq!(gpu.trace().bytes_moved(EngineKind::CopyD2h), k * tile_bytes);
}

#[test]
fn reuse_scheduler_beats_no_reuse_on_transfer_bound_problems() {
    // Full offload on the low-bandwidth testbed: reuse wins by a large
    // factor (the Fig. 7 full-offload ordering).
    let n = 2048;
    let t = 512;
    let mut ctx = Cocopelia::new(
        Gpu::new(quiet(testbed_i()), ExecMode::TimingOnly, 1),
        dummy_profile(),
    );
    let coco = GemmRequest::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(t))
        .run(&mut ctx)
        .expect("runs")
        .report
        .elapsed
        .as_secs_f64();
    let mut gpu = Gpu::new(quiet(testbed_i()), ExecMode::TimingOnly, 1);
    let xt = cocopelia_baselines::cublasxt::gemm::<f64>(
        &mut gpu,
        1.0,
        ghost(n),
        ghost(n),
        1.0,
        ghost(n),
        t,
    )
    .expect("runs")
    .elapsed
    .as_secs_f64();
    assert!(xt > coco * 1.5, "cublasxt {xt} vs cocopelia {coco}");
}

#[test]
fn blasx_equals_cocopelia_at_the_same_tile() {
    // BLASX is the same reuse engine with a static tile: at T=2048 both
    // must produce identical schedules (and identical virtual times,
    // noise-free).
    let n = 4096;
    let mut ctx = Cocopelia::new(
        Gpu::new(quiet(testbed_ii()), ExecMode::TimingOnly, 1),
        dummy_profile(),
    );
    let coco = GemmRequest::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(2048))
        .run(&mut ctx)
        .expect("runs")
        .report
        .elapsed;
    let mut blasx =
        cocopelia_baselines::Blasx::new(Gpu::new(quiet(testbed_ii()), ExecMode::TimingOnly, 1));
    let bx = blasx
        .gemm::<f64>(1.0, ghost(n), ghost(n), 1.0, ghost(n))
        .expect("runs")
        .elapsed;
    assert_eq!(coco, bx);
}

#[test]
fn unified_memory_daxpy_pays_the_migration_penalty() {
    let n = 1 << 24;
    let mut gpu = Gpu::new(quiet(testbed_ii()), ExecMode::TimingOnly, 1);
    let um = cocopelia_baselines::unified::daxpy_prefetch(
        &mut gpu,
        1.0,
        VecOperand::HostGhost { len: n },
        VecOperand::HostGhost { len: n },
        1 << 21,
    )
    .expect("runs")
    .elapsed
    .as_secs_f64();
    let mut ctx = Cocopelia::new(
        Gpu::new(quiet(testbed_ii()), ExecMode::TimingOnly, 1),
        dummy_profile(),
    );
    let pinned = AxpyRequest::new(
        VecOperand::<f64>::HostGhost { len: n },
        VecOperand::HostGhost { len: n },
    )
    .alpha(1.0)
    .tile(TileChoice::Fixed(1 << 21))
    .run(&mut ctx)
    .expect("runs")
    .report
    .elapsed
    .as_secs_f64();
    // Pageable factor is 0.55: UM should be roughly 1.5-2x slower.
    assert!(um > pinned * 1.3, "um {um} vs pinned {pinned}");
    assert!(um < pinned * 3.0, "um {um} suspiciously slow vs {pinned}");
}

#[test]
fn serial_offload_is_the_slowest_policy() {
    let n = 2048;
    let mut gpu = Gpu::new(quiet(testbed_i()), ExecMode::TimingOnly, 1);
    let serial =
        cocopelia_baselines::serial::gemm::<f64>(&mut gpu, 1.0, ghost(n), ghost(n), 1.0, ghost(n))
            .expect("runs")
            .elapsed
            .as_secs_f64();
    let mut ctx = Cocopelia::new(
        Gpu::new(quiet(testbed_i()), ExecMode::TimingOnly, 1),
        dummy_profile(),
    );
    let coco = GemmRequest::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512))
        .run(&mut ctx)
        .expect("runs")
        .report
        .elapsed
        .as_secs_f64();
    assert!(serial > coco);
}

#[test]
fn makespan_bounded_by_engine_work_and_critical_path() {
    // Schedule-sanity invariant: the makespan can never beat the busiest
    // engine, and never exceed the serial sum of all engine work.
    let n = 2048;
    let mut ctx = Cocopelia::new(
        Gpu::new(quiet(testbed_ii()), ExecMode::TimingOnly, 1),
        dummy_profile(),
    );
    GemmRequest::new(ghost(n), ghost(n), ghost(n))
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512))
        .run(&mut ctx)
        .expect("runs");
    let trace = ctx.gpu().trace();
    let makespan = trace
        .entries()
        .iter()
        .map(|e| e.end.as_nanos())
        .max()
        .expect("entries");
    let busy: Vec<u64> = [
        EngineKind::CopyH2d,
        EngineKind::Compute,
        EngineKind::CopyD2h,
    ]
    .iter()
    .map(|&e| trace.engine_busy(e).as_nanos())
    .collect();
    let max_busy = *busy.iter().max().expect("engines");
    let sum_busy: u64 = busy.iter().sum();
    assert!(
        makespan >= max_busy,
        "makespan {makespan} < busiest engine {max_busy}"
    );
    assert!(
        makespan <= sum_busy,
        "makespan {makespan} > serial sum {sum_busy}"
    );
}
