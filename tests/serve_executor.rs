//! The request-serving executor end to end: admission control, deadlines,
//! cross-request residency reuse, transient-failure retry, multi-device
//! affinity dispatch — and the acceptance bar that serving a mixed trace
//! with sharing strictly beats a sequential no-reuse replay.

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{testbed_i, ExecMode, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_runtime::serve::{ExecutorConfig, RequestStatus, ServeSession};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatOperand, MultiGpu,
    RoutineRequest, SharedMat, SharedVec, TileChoice, VecOperand,
};

/// A quiet testbed with device memory clamped to `mem` bytes, so the
/// admission/OOM paths are reachable with small problems.
fn small_tb(mem: usize) -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb.gpu.mem_capacity_bytes = mem;
    tb
}

fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "serve-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn pool(tb: &TestbedSpec, devices: usize) -> MultiGpu {
    MultiGpu::new(tb, devices, ExecMode::TimingOnly, 42, dummy_profile())
}

const MB: usize = 1 << 20;

fn ghost(rows: usize, cols: usize) -> MatOperand<f64> {
    MatOperand::HostGhost { rows, cols }
}

/// A 1024³ dgemm (8 MB per operand) sharing `A`/`B` via the cache.
fn shared_gemm() -> RoutineRequest {
    GemmRequest::<f64>::new(
        SharedMat::new("A", 1024, 1024),
        SharedMat::new("B", 1024, 1024),
        ghost(1024, 1024),
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Fixed(512))
    .into()
}

/// The standard mixed 8-request trace used by the acceptance test:
/// 4 gemms sharing `A`/`B`, 2 axpys and a dot sharing `X`, and a gemv
/// reusing `A`.
fn mixed_trace() -> Vec<RoutineRequest> {
    let n = 1 << 20; // 8 MB vectors
    let x = || SharedVec::new("X", n);
    vec![
        shared_gemm(),
        shared_gemm(),
        shared_gemm(),
        shared_gemm(),
        AxpyRequest::<f64>::new(x(), VecOperand::HostGhost { len: n })
            .alpha(1.5)
            .tile(TileChoice::Fixed(1 << 19))
            .into(),
        AxpyRequest::<f64>::new(x(), VecOperand::HostGhost { len: n })
            .alpha(-0.5)
            .tile(TileChoice::Fixed(1 << 19))
            .into(),
        DotRequest::<f64>::new(x(), SharedVec::new("Y", n))
            .tile(TileChoice::Fixed(1 << 19))
            .into(),
        GemvRequest::<f64>::new(
            SharedMat::new("A", 1024, 1024),
            VecOperand::HostGhost { len: 1024 },
            VecOperand::HostGhost { len: 1024 },
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Fixed(512))
        .into(),
    ]
}

#[test]
fn admission_control_rejects_oversized_requests() {
    // 64 MB device, 0.9 admission limit: a 2048^3 dgemm (96 MB) is refused
    // at submission; a 1024^3 (24 MB) is admitted and served.
    let mut exec = ServeSession::new(pool(&small_tb(64 * MB), 1), ExecutorConfig::default());
    let big = GemmRequest::<f64>::new(ghost(2048, 2048), ghost(2048, 2048), ghost(2048, 2048))
        .tile(TileChoice::Fixed(512));
    let rejected_id = exec.submit(big);
    let admitted_id = exec.submit(shared_gemm());
    assert_eq!(exec.queue_len(), 1, "the rejected request never queues");
    let report = exec.drain();
    assert_eq!(report.outcomes.len(), 2);
    assert_eq!(report.rejected(), 1);
    assert_eq!(report.completed(), 1);
    let rejected = &report.outcomes[0];
    assert_eq!(rejected.id, rejected_id);
    assert_eq!(rejected.device, None);
    assert!(
        matches!(&rejected.status, RequestStatus::Rejected { reason } if reason.contains("admission")),
        "{:?}",
        rejected.status
    );
    assert_eq!(report.outcomes[1].id, admitted_id);
    assert_eq!(report.metrics.counter("serve_requests_total"), 2);
    assert_eq!(report.metrics.counter("serve_rejected_total"), 1);
}

#[test]
fn deadline_misses_terminate_as_timed_out() {
    let mut exec = ServeSession::new(pool(&small_tb(256 * MB), 1), ExecutorConfig::default());
    let req = GemmRequest::<f64>::new(ghost(1024, 1024), ghost(1024, 1024), ghost(1024, 1024))
        .tile(TileChoice::Fixed(512))
        .deadline_secs(1e-9);
    exec.submit(req);
    let report = exec.drain();
    assert_eq!(report.timed_out(), 1);
    assert_eq!(report.metrics.counter("serve_timed_out_total"), 1);
    let RequestStatus::TimedOut {
        deadline,
        elapsed,
        report: late,
    } = &report.outcomes[0].status
    else {
        panic!("expected TimedOut, got {:?}", report.outcomes[0].status)
    };
    assert_eq!(*deadline, 1e-9);
    assert!(*elapsed > *deadline);
    assert_eq!(late.elapsed.as_secs_f64(), *elapsed);
    // A timed-out run still did the work; it just missed the SLA.
    assert!(late.subkernels > 0);
}

#[test]
fn residency_cache_reuses_operands_across_requests() {
    let mut exec = ServeSession::new(pool(&small_tb(256 * MB), 1), ExecutorConfig::default());
    for req in mixed_trace() {
        exec.submit(req);
    }
    let report = exec.drain();
    assert_eq!(report.completed(), 8);
    // A and B miss once each, then 3 follow-up gemms hit both and the gemv
    // hits A; X misses once then hits twice; Y misses once.
    assert_eq!(report.metrics.counter("residency_misses_total"), 4);
    assert_eq!(report.metrics.counter("residency_hits_total"), 9);
    assert_eq!(report.metrics.counter("residency_evictions_total"), 0);
    // Each shared operand crosses the link exactly once — A, B, X, Y at
    // 8 MB apiece — instead of once per referencing request.
    assert_eq!(
        report.metrics.counter("residency_bytes_uploaded"),
        4 * 8 * MB as u64
    );
    // The cache still holds every shared operand (A, B, X, Y).
    assert_eq!(exec.residency(0).len(), 4);
}

/// Acceptance: serving the mixed shared trace beats replaying it
/// sequentially with sharing stripped, on the same single device.
#[test]
fn serving_with_reuse_beats_sequential_no_reuse() {
    let tb = small_tb(256 * MB);
    let mut seq = Cocopelia::new(
        Gpu::new(tb.clone(), ExecMode::TimingOnly, 42),
        dummy_profile(),
    );
    let mut sequential = 0.0;
    for req in mixed_trace() {
        sequential += seq
            .submit(req.without_sharing())
            .expect("baseline runs")
            .elapsed
            .as_secs_f64();
    }

    let mut exec = ServeSession::new(pool(&tb, 1), ExecutorConfig::default());
    for req in mixed_trace() {
        exec.submit(req);
    }
    let report = exec.drain();
    assert_eq!(report.completed(), 8);
    let makespan = report.makespan.as_secs_f64();
    assert!(
        makespan < sequential,
        "serving {makespan} !< sequential no-reuse {sequential}"
    );
    assert!(report.throughput_gflops() > 0.0);
    let occupancy = report.occupancy();
    assert!(occupancy > 0.0 && occupancy <= 1.0);
}

#[test]
fn transient_oom_is_retried_after_reclaim() {
    // 64 MB device, 32 MB residency budget. The first request parks A and B
    // (16 MB) in the cache; the second needs ~57 MB of inline operands, so
    // its first attempt hits OOM, the executor reclaims (evicting the
    // cache), and the retry fits.
    let mut exec = ServeSession::new(pool(&small_tb(64 * MB), 1), ExecutorConfig::default());
    exec.submit(shared_gemm());
    let n = 1472; // 3 x 17.3 MB inline + 16 MB cached > 64 MB; alone it fits
    exec.submit(
        GemmRequest::<f64>::new(ghost(n, n), ghost(n, n), ghost(n, n)).tile(TileChoice::Fixed(512)),
    );
    let report = exec.drain();
    assert_eq!(report.completed(), 2, "{}", report.render());
    assert!(report.outcomes[1].retries > 0, "second request must retry");
    assert_eq!(report.metrics.counter("serve_retries_total"), 1);
    // The reclaim emptied the cache on the way.
    assert!(report.metrics.counter("residency_evictions_total") >= 2);
    assert_eq!(exec.residency(0).len(), 0);
    // Nothing leaked: only live device memory is gone after the run.
    let dev = &exec.pool().devices()[0];
    assert_eq!(dev.gpu().live_device_buffers().len(), 0);
}

#[test]
fn affinity_holds_between_equally_loaded_devices() {
    // Two interleaved operand families: requests follow the device that
    // cached their family as long as both devices stay equally loaded
    // (re-uploading would cost more than the zero clock gap).
    let gemm_cd = || -> RoutineRequest {
        GemmRequest::<f64>::new(
            SharedMat::new("C2", 1024, 1024),
            SharedMat::new("D2", 1024, 1024),
            ghost(1024, 1024),
        )
        .tile(TileChoice::Fixed(512))
        .into()
    };
    let mut exec = ServeSession::new(pool(&small_tb(256 * MB), 2), ExecutorConfig::default());
    for req in [shared_gemm(), gemm_cd(), shared_gemm(), gemm_cd()] {
        exec.submit(req);
    }
    let report = exec.drain();
    assert_eq!(report.completed(), 4, "{}", report.render());
    let device = |i: usize| report.outcomes[i].device.expect("served");
    assert_eq!(device(0), device(2), "A/B requests must share a device");
    assert_eq!(device(1), device(3), "C2/D2 requests must share a device");
    assert_ne!(device(0), device(1), "families must split across the pool");
    // Each family uploads once and hits once.
    assert_eq!(report.metrics.counter("residency_misses_total"), 4);
    assert_eq!(report.metrics.counter("residency_hits_total"), 4);
}

#[test]
fn idle_device_steals_when_affine_device_falls_behind() {
    // Four identical A/B gemms on two devices: strict affinity would
    // serialise them all onto the first device. The bounded policy steals
    // to the idle device as soon as the affine device's clock lead exceeds
    // the cost of re-uploading A and B, so the trace spreads.
    let mut exec = ServeSession::new(pool(&small_tb(256 * MB), 2), ExecutorConfig::default());
    for _ in 0..4 {
        exec.submit(shared_gemm());
    }
    let report = exec.drain();
    assert_eq!(report.completed(), 4, "{}", report.render());
    let device = |i: usize| report.outcomes[i].device.expect("served");
    assert_ne!(
        device(0),
        device(1),
        "the second gemm must be stolen by the idle device"
    );
    let served: Vec<usize> = (0..4).map(device).collect();
    assert!(
        (0..2).all(|d| served.contains(&d)),
        "both devices must serve work: {served:?}"
    );
    // Each device uploads A/B once (2 misses each); later gemms hit.
    assert_eq!(report.metrics.counter("residency_misses_total"), 4);
    assert_eq!(report.metrics.counter("residency_hits_total"), 4);
    assert_eq!(report.metrics.counter("residency_evictions_total"), 0);
    assert!(report.per_device_busy.iter().all(|t| t.as_secs_f64() > 0.0));
    // Two devices sharing the work: makespan is the max, not the sum.
    let total: f64 = report.per_device_busy.iter().map(|t| t.as_secs_f64()).sum();
    assert!(report.makespan.as_secs_f64() < total);
}

#[test]
fn same_request_shared_operands_never_evict_each_other() {
    // 40 MB device: residency budget 20 MB, admission limit 36 MB. A gemm
    // whose three shared operands total 24 MB is admitted but cannot cache
    // them all — the third must bypass rather than evict the first out
    // from under its already-resolved handle (which would dangle).
    let mut exec = ServeSession::new(pool(&small_tb(40 * MB), 1), ExecutorConfig::default());
    let req = || -> RoutineRequest {
        GemmRequest::<f64>::new(
            SharedMat::new("A", 1024, 1024),
            SharedMat::new("B", 1024, 1024),
            SharedMat::new("C", 1024, 1024),
        )
        .tile(TileChoice::Fixed(512))
        .into()
    };
    exec.submit(req());
    exec.submit(req());
    let report = exec.drain();
    assert_eq!(report.completed(), 2, "{}", report.render());
    // A and B cache (16 MB <= 20 MB); C bypasses on both requests because
    // it cannot fit alongside its own request's pinned operands.
    assert_eq!(report.metrics.counter("residency_evictions_total"), 0);
    assert_eq!(report.metrics.counter("residency_bypass_total"), 2);
    assert_eq!(report.metrics.counter("residency_misses_total"), 4);
    assert_eq!(report.metrics.counter("residency_hits_total"), 2);
    assert_eq!(exec.residency(0).len(), 2);
    // Bypass uploads were released after each run; only A and B live on.
    let dev = &exec.pool().devices()[0];
    assert_eq!(dev.gpu().live_device_buffers().len(), 2);
}

#[test]
fn non_transient_failure_keeps_cache_warm() {
    // A mis-declared shared shape fails its own request but must not nuke
    // the residency cache: later requests still hit the warm operands.
    let mut exec = ServeSession::new(pool(&small_tb(256 * MB), 1), ExecutorConfig::default());
    exec.submit(shared_gemm());
    exec.submit(
        GemmRequest::<f64>::new(
            SharedMat::new("A", 512, 512), // cached as 1024 x 1024
            ghost(512, 512),
            ghost(512, 512),
        )
        .tile(TileChoice::Fixed(256)),
    );
    exec.submit(shared_gemm());
    let report = exec.drain();
    assert_eq!(report.completed(), 2, "{}", report.render());
    assert_eq!(report.failed(), 1);
    assert_eq!(
        report.outcomes[1].retries, 0,
        "shape mismatch is not transient; no retry"
    );
    assert_eq!(report.metrics.counter("serve_retries_total"), 0);
    // The cache survived the failure: the third request hits A and B.
    assert_eq!(report.metrics.counter("residency_hits_total"), 2);
    assert_eq!(report.metrics.counter("residency_evictions_total"), 0);
    assert_eq!(exec.residency(0).len(), 2);
    // Nothing leaked beyond the two cached operands.
    let dev = &exec.pool().devices()[0];
    assert_eq!(dev.gpu().live_device_buffers().len(), 2);
}

#[test]
fn queue_depth_and_gauges_are_recorded() {
    let mut exec = ServeSession::new(pool(&small_tb(256 * MB), 1), ExecutorConfig::default());
    for req in mixed_trace() {
        exec.submit(req);
    }
    assert_eq!(exec.queue_len(), 8);
    let report = exec.drain();
    assert_eq!(exec.queue_len(), 0);
    let gauge = |name: &str| report.metrics.gauge(name).expect("gauge set");
    assert!((gauge("serve_makespan_secs") - report.makespan.as_secs_f64()).abs() < 1e-15);
    assert!((gauge("serve_throughput_gflops") - report.throughput_gflops()).abs() < 1e-9);
    assert!((gauge("serve_occupancy") - report.occupancy()).abs() < 1e-15);
    // The render is self-contained: one line per request plus aggregates.
    let text = report.render();
    assert_eq!(text.lines().count(), 8 + 2);
    assert!(text.contains("completed 8"));
}
