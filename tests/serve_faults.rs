//! Chaos soak of the fault-tolerant serving path: seeded fault injection
//! end to end through the executor — scheduler-level retries, device
//! quarantine with re-dispatch, graceful degradation to host BLAS — plus
//! the safety net: a `FaultSpec::none()` run is indistinguishable from a
//! fault-free build, no device buffer leaks under any fault pressure, and
//! a functional-mode run under faults still matches the host-BLAS oracle.

use std::collections::BTreeSet;

use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{testbed_i, ExecMode, FaultSpec, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_hostblas::{level3, validate, Matrix};
use cocopelia_obs::invariants::check_entries;
use cocopelia_runtime::serve::{ExecutorConfig, RequestStatus, ServeReport, ServeSession};
use cocopelia_runtime::{
    Cocopelia, GemmRequest, MatOperand, MultiGpu, RetryPolicy, RoutineRequest, SharedMat,
    TileChoice,
};
use cocopelia_xp::{chaos_fault_spec, chaos_request_trace};

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> SystemProfile {
    SystemProfile::new(
        "faults-test",
        TransferModel {
            h2d: LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn faulty_pool(devices: usize, faults: &FaultSpec) -> MultiGpu {
    MultiGpu::with_faults(
        &quiet(),
        devices,
        ExecMode::TimingOnly,
        42,
        dummy_profile(),
        faults,
    )
}

/// Runs the chaos trace through an executor over a faulty pool and hands
/// back both the report and the executor for post-mortem inspection.
fn chaos_run(seed: u64, rounds: usize) -> (ServeReport, ServeSession) {
    let pool = faulty_pool(2, &chaos_fault_spec(seed));
    let mut exec = ServeSession::new(pool, ExecutorConfig::default());
    for req in chaos_request_trace(rounds) {
        exec.submit(req);
    }
    let report = exec.drain();
    (report, exec)
}

/// No device buffer outlives its reason to exist: a quarantined device
/// holds nothing, and a healthy device holds exactly its residency cache.
fn assert_no_leaks(exec: &ServeSession, quarantined: &[usize]) {
    for d in 0..exec.pool().device_count() {
        let gpu = exec.pool().devices()[d].gpu();
        let live: BTreeSet<_> = gpu.live_device_buffers().into_iter().collect();
        if quarantined.contains(&d) {
            assert!(
                live.is_empty(),
                "quarantined dev{d} still holds device buffers: {live:?}"
            );
            assert!(
                gpu.live_host_buffers().is_empty(),
                "quarantined dev{d} still holds host staging buffers"
            );
        } else {
            let cached: BTreeSet<_> = exec.residency(d).device_buffers().into_iter().collect();
            assert_eq!(
                live, cached,
                "dev{d} live device buffers must be exactly its cached operands"
            );
        }
    }
}

#[test]
fn none_spec_serving_is_fault_free_and_deterministic() {
    let run = || {
        let pool = faulty_pool(2, &FaultSpec::none());
        let mut exec = ServeSession::new(pool, ExecutorConfig::default());
        for req in chaos_request_trace(1) {
            exec.submit(req);
        }
        exec.drain()
    };
    let report = run();
    assert_eq!(report.completed(), report.outcomes.len());
    assert!(report.quarantined.is_empty());
    assert_eq!(report.host_fallbacks(), 0);
    for name in [
        "fault_transient_total",
        "fault_degraded_total",
        "fault_fatal_total",
        "fault_host_fallback_total",
        "retry_attempts_total",
        "retry_tile_ops_total",
        "serve_retries_total",
        "quarantine_devices_total",
        "quarantine_redispatch_total",
        "quarantine_invalidated_total",
    ] {
        assert_eq!(report.metrics.counter(name), 0, "{name} must stay zero");
    }
    assert!(report.outcomes.iter().all(|o| o.retries == 0));
    assert!(report.outcomes.iter().all(|o| !o.host_fallback));
    // Bit-identical replay: the none spec makes no RNG draw, so two runs
    // agree to the nanosecond.
    let again = run();
    assert_eq!(report.makespan.as_nanos(), again.makespan.as_nanos());
}

#[test]
fn device_loss_quarantines_redispatches_and_degrades_to_host() {
    // Every h2d enqueue faults and the very first fault is terminal: the
    // first request loses dev0, is re-dispatched to dev1, loses that too,
    // and completes on the host; the second request goes straight to the
    // host because the whole pool is quarantined.
    let spec = FaultSpec {
        seed: 1,
        h2d: 1.0,
        lost_after: Some(1),
        ..FaultSpec::none()
    };
    let mut exec = ServeSession::new(faulty_pool(2, &spec), ExecutorConfig::default());
    let gemm = || -> RoutineRequest {
        GemmRequest::<f64>::new(
            SharedMat::new("A", 1024, 1024),
            SharedMat::new("B", 1024, 1024),
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
        )
        .tile(TileChoice::Fixed(256))
        .into()
    };
    exec.submit(gemm());
    exec.submit(gemm());
    let report = exec.drain();
    assert_eq!(report.completed(), 2, "{}", report.render());
    assert_eq!(report.quarantined, vec![0, 1]);

    let first = &report.outcomes[0];
    assert!(matches!(first.status, RequestStatus::Completed(_)));
    assert_eq!(first.retries, 2, "lost dev0, lost dev1, then host");
    assert!(first.host_fallback);
    assert_eq!(first.device, None);
    let second = &report.outcomes[1];
    assert_eq!(second.retries, 0, "pool already drained: host immediately");
    assert!(second.host_fallback);

    assert_eq!(report.metrics.counter("quarantine_devices_total"), 2);
    assert_eq!(report.metrics.counter("quarantine_redispatch_total"), 1);
    assert_eq!(report.metrics.counter("fault_fatal_total"), 2);
    assert_eq!(report.metrics.counter("fault_host_fallback_total"), 2);
    assert_eq!(report.metrics.counter("retry_attempts_total"), 2);

    for d in 0..2 {
        let gpu = exec.pool().devices()[d].gpu();
        assert!(gpu.is_lost(), "dev{d} must have hit its loss threshold");
        assert!(gpu.live_device_buffers().is_empty(), "dev{d} leaked");
        assert!(gpu.live_host_buffers().is_empty(), "dev{d} leaked host");
    }
    let text = report.render();
    assert!(text.contains("host"), "{text}");
    assert!(text.contains("quarantined [dev0, dev1]"), "{text}");
    assert!(text.contains("host fallbacks 2"), "{text}");
}

#[test]
fn functional_gemm_under_faults_matches_host_blas_oracle() {
    // Transient faults only (no loss threshold): every fault is absorbed
    // by the scheduler's tile-level retry, so the numerical result is
    // identical to a fault-free run — retries re-enqueue the same op and
    // a failed enqueue moved no data.
    let spec = FaultSpec {
        seed: 5,
        h2d: 0.05,
        d2h: 0.05,
        kernel: 0.08,
        ecc: 0.04,
        ..FaultSpec::none()
    };
    let (m, n, k) = (64, 64, 64);
    let lcg = |seed: u64| {
        let mut state = seed;
        Matrix::from_fn(m, n, move |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    };
    let (a, b, c) = (lcg(1), lcg(2), lcg(3));
    let mut expect = c.clone();
    level3::gemm(1.0, &a.view(), &b.view(), 0.5, &mut expect.view_mut());

    let mut ctx = Cocopelia::new(
        Gpu::with_faults(quiet(), ExecMode::Functional, 7, spec),
        dummy_profile(),
    );
    // A deeper per-tile budget than the default: at these rates a run of
    // three consecutive faults on one op is plausible, six is not.
    ctx.set_retry_policy(RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::default()
    });
    let out = ctx
        .run_gemm::<f64>(
            GemmRequest::new(
                MatOperand::Host(a),
                MatOperand::Host(b),
                MatOperand::Host(c),
            )
            .alpha(1.0)
            .beta(0.5)
            .tile(TileChoice::Fixed(16)),
        )
        .expect("transient faults are retried to completion");
    assert!(
        out.report.op_retries >= 1,
        "the seed must actually exercise a retry (stats: {:?})",
        ctx.gpu().fault_stats()
    );
    assert!(ctx.gpu().fault_stats().total() >= 1);
    let got = out.c.expect("functional mode returns data");
    assert!(
        validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
        "max rel err {}",
        validate::max_rel_err(got.as_slice(), expect.as_slice())
    );
}

#[test]
fn chaos_soak_over_fixed_seeds() {
    let seeds = [11u64, 23, 47];
    let mut saw_device_retry_completion = false;
    let mut saw_host_fallback_completion = false;
    let mut quarantines = 0u64;
    let mut redispatches = 0u64;
    let mut tile_retries = 0u64;
    for &seed in &seeds {
        let (report, exec) = chaos_run(seed, 4);

        // Every submitted request reached exactly one terminal state.
        assert_eq!(report.outcomes.len(), 16, "seed {seed}");
        assert_eq!(report.rejected(), 0, "seed {seed}: nothing is oversized");
        assert_eq!(
            report.completed() + report.failed() + report.timed_out(),
            16,
            "seed {seed}: {}",
            report.render()
        );
        let ids: BTreeSet<_> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), 16, "seed {seed}: duplicate terminal records");

        assert_no_leaks(&exec, &report.quarantined);

        // The per-device traces stay structurally sound under fault
        // pressure: serial engines, monotone dispatch, no op re-executed,
        // no overlapping retry of one logical tile op.
        for d in 0..exec.pool().device_count() {
            let entries = exec.pool().devices()[d].gpu().trace().entries();
            if let Err(problems) = check_entries(entries) {
                panic!("seed {seed} dev{d} trace invariants: {problems:?}");
            }
        }

        // Determinism: the same seed replays to the same virtual schedule.
        let (again, _) = chaos_run(seed, 4);
        assert_eq!(
            report.makespan.as_nanos(),
            again.makespan.as_nanos(),
            "seed {seed} must replay bit-identically"
        );
        for (x, y) in report.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(x.status, y.status, "seed {seed}: outcome diverged");
            assert_eq!(x.retries, y.retries, "seed {seed}: retries diverged");
        }

        saw_device_retry_completion |= report
            .outcomes
            .iter()
            .any(|o| o.retries > 0 && matches!(o.status, RequestStatus::Completed(_)));
        saw_host_fallback_completion |= report
            .outcomes
            .iter()
            .any(|o| o.host_fallback && matches!(o.status, RequestStatus::Completed(_)));
        quarantines += report.metrics.counter("quarantine_devices_total");
        redispatches += report.metrics.counter("quarantine_redispatch_total");
        tile_retries += report.metrics.counter("retry_tile_ops_total");
    }
    assert!(
        saw_device_retry_completion,
        "the soak must complete at least one request after a retry"
    );
    assert!(
        saw_host_fallback_completion,
        "the soak must complete at least one request on the host"
    );
    assert!(quarantines >= 1, "the soak must quarantine a device");
    assert!(
        redispatches >= 1,
        "the soak must re-dispatch after quarantine"
    );
    assert!(
        tile_retries >= 1,
        "the soak must see scheduler-level retries"
    );
}
