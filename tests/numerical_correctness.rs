//! Property-based numerical correctness: every tiled scheduler (CoCoPeLia,
//! cuBLASXt policy, BLASX policy, serial) must produce the same numbers as
//! the reference host BLAS, for arbitrary shapes, scalars, tilings and
//! operand placements.

use cocopelia_gpusim::{testbed_i, ExecMode, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_hostblas::{level3, validate, Matrix};
use cocopelia_runtime::{Cocopelia, DeviceMatrix, GemmRequest, MatOperand, TileChoice};
use proptest::prelude::*;

fn quiet() -> TestbedSpec {
    let mut tb = testbed_i();
    tb.noise = NoiseSpec::NONE;
    tb
}

fn dummy_profile() -> cocopelia_core::profile::SystemProfile {
    cocopelia_core::profile::SystemProfile::new(
        "test",
        cocopelia_core::transfer::TransferModel {
            h2d: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    )
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn reference(
    alpha: f64,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    beta: f64,
    c: &Matrix<f64>,
) -> Matrix<f64> {
    let mut out = c.clone();
    level3::gemm(alpha, &a.view(), &b.view(), beta, &mut out.view_mut());
    out
}

/// Uploads `m` to the device manually when `on_device` is set.
fn operand(
    ctx: &mut Cocopelia,
    m: Matrix<f64>,
    on_device: bool,
) -> (MatOperand<f64>, Option<DeviceMatrix>) {
    if on_device {
        let d = ctx.upload_matrix(&m).expect("upload");
        (MatOperand::Device(d), Some(d))
    } else {
        (MatOperand::Host(m), None)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CoCoPeLia scheduler vs reference, arbitrary dims/tile/scalars/
    /// placements. Output placements are exercised separately (a
    /// device-resident C needs a download step).
    #[test]
    fn cocopelia_gemm_matches_reference(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        tile in 1usize..32,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        a_dev in any::<bool>(),
        b_dev in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed + 1);
        let c = rand_matrix(m, n, seed + 2);
        let expect = reference(alpha, &a, &b, beta, &c);

        let mut ctx = Cocopelia::new(Gpu::new(quiet(), ExecMode::Functional, seed), dummy_profile());
        let (a_op, da) = operand(&mut ctx, a, a_dev);
        let (b_op, db) = operand(&mut ctx, b, b_dev);
        let out = GemmRequest::new(a_op, b_op, MatOperand::Host(c))
            .alpha(alpha)
            .beta(beta)
            .tile(TileChoice::Fixed(tile))
            .run(&mut ctx)
            .expect("runs");
        let got = out.c.expect("functional");
        prop_assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
            "max rel err {}", validate::max_rel_err(got.as_slice(), expect.as_slice())
        );
        for d in [da, db].into_iter().flatten() {
            ctx.free_matrix(d).expect("free");
        }
        prop_assert_eq!(ctx.gpu().device_mem_used(), 0);
    }

    /// cuBLASXt policy vs reference (ring-buffer staging with C round
    /// trips is the risky path).
    #[test]
    fn cublasxt_gemm_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        tile in 1usize..24,
        beta in -1.5f64..1.5,
        seed in 0u64..1000,
    ) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed + 1);
        let c = rand_matrix(m, n, seed + 2);
        let expect = reference(1.0, &a, &b, beta, &c);

        let mut gpu = Gpu::new(quiet(), ExecMode::Functional, seed);
        let out = cocopelia_baselines::cublasxt::gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::Host(a),
            MatOperand::Host(b),
            beta,
            MatOperand::Host(c),
            tile,
        )
        .expect("runs");
        let got = out.output.expect("functional");
        prop_assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
            "max rel err {}", validate::max_rel_err(got.as_slice(), expect.as_slice())
        );
        prop_assert_eq!(gpu.device_mem_used(), 0);
    }

    /// BLASX policy vs reference.
    #[test]
    fn blasx_gemm_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed + 1);
        let c = rand_matrix(m, n, seed + 2);
        let expect = reference(1.0, &a, &b, 1.0, &c);

        let mut blasx = cocopelia_baselines::Blasx::with_tile(
            Gpu::new(quiet(), ExecMode::Functional, seed),
            16,
        );
        let out = blasx
            .gemm::<f64>(1.0, MatOperand::Host(a), MatOperand::Host(b), 1.0, MatOperand::Host(c))
            .expect("runs");
        let got = out.output.expect("functional");
        prop_assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k))
        );
    }

    /// All four policies agree with each other on the same inputs.
    #[test]
    fn policies_agree_pairwise(
        n in 4usize..32,
        tile in 2usize..16,
        seed in 0u64..500,
    ) {
        let a = rand_matrix(n, n, seed);
        let b = rand_matrix(n, n, seed + 1);
        let c = rand_matrix(n, n, seed + 2);

        let mut ctx = Cocopelia::new(Gpu::new(quiet(), ExecMode::Functional, seed), dummy_profile());
        let coco = GemmRequest::new(a.clone(), b.clone(), c.clone())
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Fixed(tile))
            .run(&mut ctx)
            .expect("runs")
            .c
            .expect("functional");

        let mut gpu = Gpu::new(quiet(), ExecMode::Functional, seed);
        let serial = cocopelia_baselines::serial::gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::Host(a),
            MatOperand::Host(b),
            1.0,
            MatOperand::Host(c),
        )
        .expect("runs")
        .output
        .expect("functional");

        prop_assert!(validate::matrices_close(&coco, &serial, validate::gemm_tolerance::<f64>(n)));
    }
}
