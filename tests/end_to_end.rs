//! End-to-end integration: deployment → profile → runtime selection →
//! functionally-verified execution, across the whole crate stack.

use cocopelia_core::models::ModelKind;
use cocopelia_core::params::{Loc, ProblemSpec};
use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{testbed_i, testbed_ii, ExecMode, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_hostblas::{level3, validate, Dtype, Matrix};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatOperand, TileChoice,
    VecOperand,
};

fn quiet(mut tb: TestbedSpec) -> TestbedSpec {
    tb.noise = NoiseSpec::NONE;
    tb
}

fn quick_cfg() -> DeployConfig {
    let mut cfg = DeployConfig::quick();
    cfg.transfer_dims = vec![512, 1024, 2048];
    cfg.gemm_tiles = vec![256, 512, 768, 1024];
    cfg.axpy_tiles = vec![1 << 19, 1 << 20, 1 << 21];
    cfg.gemv_tiles = vec![512, 1024];
    cfg
}

fn ctx(tb: TestbedSpec, functional: bool) -> Cocopelia {
    let tb = quiet(tb);
    let report = deploy(&tb, &quick_cfg()).expect("deploys");
    let mode = if functional {
        ExecMode::Functional
    } else {
        ExecMode::TimingOnly
    };
    Cocopelia::new(Gpu::new(tb, mode, 42), report.profile)
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

#[test]
fn dgemm_auto_selection_is_correct_and_fast() {
    let mut ctx = ctx(testbed_i(), true);
    let n = 640;
    let a = rand_matrix(n, n, 1);
    let b = rand_matrix(n, n, 2);
    let c = rand_matrix(n, n, 3);
    let mut expect = c.clone();
    level3::gemm(1.0, &a.view(), &b.view(), 1.0, &mut expect.view_mut());

    let out = GemmRequest::new(a, b, c)
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .run(&mut ctx)
        .expect("runs");
    // Auto selection used the DR model and picked a tile from the profile.
    let sel = out.report.selection.as_ref().expect("auto selects");
    assert_eq!(sel.prediction.model, ModelKind::DataReuse);
    assert!(out.report.tile >= 256 && out.report.tile <= 640);
    // Numerics match the reference.
    let got = out.c.expect("functional");
    assert!(
        validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(n)),
        "max rel err {}",
        validate::max_rel_err(got.as_slice(), expect.as_slice())
    );
}

#[test]
fn selection_cache_reuses_model_across_calls() {
    let mut ctx = ctx(testbed_i(), false);
    let run = |ctx: &mut Cocopelia| {
        GemmRequest::new(
            MatOperand::<f64>::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .run(ctx)
        .expect("runs")
    };
    let first = run(&mut ctx);
    assert_eq!(ctx.cached_selections(), 1);
    let second = run(&mut ctx);
    assert_eq!(
        ctx.cached_selections(),
        1,
        "same parameter set reuses the model"
    );
    assert_eq!(first.report.tile, second.report.tile);
    // A different location combination is a different model instance.
    let dev = ctx.alloc_matrix(Dtype::F64, 2048, 2048).expect("alloc");
    GemmRequest::<f64>::new(
        MatOperand::Device(dev),
        MatOperand::HostGhost {
            rows: 2048,
            cols: 2048,
        },
        MatOperand::HostGhost {
            rows: 2048,
            cols: 2048,
        },
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Auto)
    .run(&mut ctx)
    .expect("runs");
    assert_eq!(ctx.cached_selections(), 2);
}

#[test]
fn daxpy_auto_runs_and_verifies() {
    let mut ctx = ctx(testbed_ii(), true);
    let n = 1_500_000;
    let x: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
    let y: Vec<f64> = (0..n).map(|i| (i % 31) as f64).collect();
    let expect: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
    let out = AxpyRequest::new(VecOperand::Host(x), VecOperand::Host(y))
        .alpha(2.0)
        .tile(TileChoice::Auto)
        .run(&mut ctx)
        .expect("runs");
    let sel = out.report.selection.as_ref().expect("auto selects");
    assert_eq!(sel.prediction.model, ModelKind::Bts);
    assert_eq!(out.y.expect("functional"), expect);
}

#[test]
fn ddot_reduction_runs_with_auto_selection() {
    let mut ctx = ctx(testbed_i(), true);
    let n = 1_200_000;
    let x: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.1).collect();
    let y: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) * 0.2).collect();
    let expect = cocopelia_hostblas::level1::dot(&x, &y);
    let out = DotRequest::new(VecOperand::Host(x), VecOperand::Host(y))
        .tile(TileChoice::Auto)
        .run(&mut ctx)
        .expect("runs");
    // Level-1 routine: the BTS model drives the selection.
    let sel = out.report.selection.as_ref().expect("auto selects");
    assert_eq!(sel.prediction.model, ModelKind::Bts);
    let got = out.value.expect("functional");
    assert!(
        (got - expect).abs() < expect.abs().max(1.0) * 1e-12,
        "{got} vs {expect}"
    );
    assert!(out.report.subkernels >= 2, "reduction actually tiled");
}

#[test]
fn dgemv_extension_runs_with_auto_selection() {
    let mut ctx = ctx(testbed_i(), true);
    let (m, n) = (700, 600);
    let a = rand_matrix(m, n, 7);
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.1).collect();
    let y: Vec<f64> = vec![1.0; m];
    let mut expect = y.clone();
    cocopelia_hostblas::level2::gemv(0.5, &a.view(), &x, 2.0, &mut expect);

    let out = GemvRequest::new(
        MatOperand::Host(a),
        VecOperand::Host(x),
        VecOperand::Host(y),
    )
    .alpha(0.5)
    .beta(2.0)
    .tile(TileChoice::Auto)
    .run(&mut ctx)
    .expect("runs");
    let got = out.y.expect("functional");
    for (g, e) in got.iter().zip(&expect) {
        assert!((g - e).abs() < 1e-9, "{g} vs {e}");
    }
}

#[test]
fn device_resident_round_trip_through_uploads() {
    let mut ctx = ctx(testbed_ii(), true);
    let n = 320;
    let a = rand_matrix(n, n, 9);
    let b = rand_matrix(n, n, 10);
    let mut expect = Matrix::<f64>::zeros(n, n);
    level3::gemm(1.0, &a.view(), &b.view(), 0.0, &mut expect.view_mut());

    let da = ctx.upload_matrix(&a).expect("upload a");
    let db = ctx.upload_matrix(&b).expect("upload b");
    let dc = ctx.alloc_matrix(Dtype::F64, n, n).expect("alloc c");
    let out = GemmRequest::<f64>::new(
        MatOperand::Device(da),
        MatOperand::Device(db),
        MatOperand::Device(dc),
    )
    .tile(TileChoice::Fixed(256))
    .run(&mut ctx)
    .expect("runs");
    // Fully-resident output: nothing returned inline…
    assert!(out.c.is_none());
    // …but downloadable.
    let got: Matrix<f64> = ctx.download_matrix(&dc).expect("download");
    assert!(validate::matrices_close(
        &got,
        &expect,
        validate::gemm_tolerance::<f64>(n)
    ));
    ctx.free_matrix(da).expect("free");
    ctx.free_matrix(db).expect("free");
    ctx.free_matrix(dc).expect("free");
}

#[test]
fn overlap_beats_serial_schedule_end_to_end() {
    let tb = quiet(testbed_i());
    let report = deploy(&tb, &quick_cfg()).expect("deploys");
    // Overlapped run.
    let mut ctx = Cocopelia::new(
        Gpu::new(tb.clone(), ExecMode::TimingOnly, 1),
        report.profile.clone(),
    );
    let coco = GemmRequest::new(
        MatOperand::<f64>::HostGhost {
            rows: 3072,
            cols: 3072,
        },
        MatOperand::HostGhost {
            rows: 3072,
            cols: 3072,
        },
        MatOperand::HostGhost {
            rows: 3072,
            cols: 3072,
        },
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Auto)
    .run(&mut ctx)
    .expect("runs");
    // Serial offload of the same problem.
    let mut gpu = Gpu::new(tb, ExecMode::TimingOnly, 1);
    let serial = cocopelia_baselines::serial::gemm::<f64>(
        &mut gpu,
        1.0,
        MatOperand::HostGhost {
            rows: 3072,
            cols: 3072,
        },
        MatOperand::HostGhost {
            rows: 3072,
            cols: 3072,
        },
        1.0,
        MatOperand::HostGhost {
            rows: 3072,
            cols: 3072,
        },
    )
    .expect("runs");
    assert!(
        coco.report.elapsed.as_secs_f64() < serial.elapsed.as_secs_f64(),
        "overlap {} !< serial {}",
        coco.report.elapsed,
        serial.elapsed
    );
}

#[test]
fn select_tile_agrees_with_direct_model_evaluation() {
    let mut ctx = ctx(testbed_ii(), false);
    let problem = ProblemSpec::gemm(
        Dtype::F64,
        4096,
        4096,
        4096,
        Loc::Host,
        Loc::Host,
        Loc::Host,
        true,
    );
    let sel = ctx
        .select_tile(&problem, ModelKind::DataReuse)
        .expect("selects");
    // The winner must be the argmin of the evaluated curve.
    for e in &sel.evaluated {
        assert!(sel.prediction.total <= e.total + 1e-15);
    }
}
