//! Declarative service-level objectives evaluated per telemetry window.
//!
//! An [`SloSpec`] names an objective over the well-known per-window
//! metrics in [`names`] (deadline-miss rate, flow-time percentiles,
//! fault-rate ceiling, quarantined-device ceiling). The [`SloEngine`]
//! evaluates every spec against [`WindowSnapshot`]s and is
//! *edge-triggered*: only an ok→breached transition emits an
//! [`SloBreach`] event (the thing that arms a flight-recorder dump), and
//! a breached spec recovers only when a *closed* window meets the
//! objective again. Intra-window fast-path evaluation via
//! [`SloEngine::evaluate_partial`] lets a hard breach (e.g. a deadline
//! miss against a zero-miss objective) fire while the offending
//! request's spans are still in the recorder ring — without
//! double-firing when the same window later closes.

use crate::window::WindowSnapshot;
use std::fmt;

/// Well-known per-window metric names shared between the telemetry
/// producer (the serve executor) and the SLO engine.
pub mod names {
    /// Counter: requests that reached a terminal state in the window.
    pub const FINISHED: &str = "requests_finished";
    /// Counter: requests completed within their deadline.
    pub const COMPLETED: &str = "requests_completed";
    /// Counter: requests that finished past their deadline.
    pub const DEADLINE_MISSED: &str = "deadline_missed";
    /// Counter: requests that failed terminally.
    pub const FAILED: &str = "requests_failed";
    /// Counter: requests shed by admission control or backpressure.
    pub const REJECTED: &str = "requests_rejected";
    /// Counter: requests that coalesced onto an identical queued leader.
    pub const COALESCED: &str = "requests_coalesced";
    /// Counter: dispatch attempts (first tries plus retries).
    pub const ATTEMPTS: &str = "attempts";
    /// Counter: injected/observed device faults in the window.
    pub const FAULTS: &str = "faults";
    /// Counter: residency cache hits in the window.
    pub const RESIDENCY_HITS: &str = "residency_hits";
    /// Counter: residency cache misses in the window.
    pub const RESIDENCY_MISSES: &str = "residency_misses";
    /// Histogram: per-request flow time (submit→terminal), seconds.
    pub const FLOW_SECS: &str = "flow_secs";
    /// Gauge: queue depth at the window's close.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Gauge: quarantined device count at the window's close.
    pub const QUARANTINED: &str = "quarantined_devices";
    /// Gauge: mean absolute scheduling-prediction drift, seconds.
    pub const DRIFT: &str = "drift_secs";
    /// Counter: hedged (speculative duplicate) attempts launched.
    pub const HEDGES: &str = "hedge_attempts";
    /// Counter: hedges that won their race against the primary attempt.
    pub const HEDGE_WINS: &str = "hedge_wins";
    /// Counter: canary probes run against quarantined devices.
    pub const PROBES: &str = "probe_attempts";
    /// Counter: requests fast-failed by an exhausted retry budget.
    pub const BUDGET_FASTFAILS: &str = "budget_fastfails";
    /// Counter: cross-request operand prefetches issued.
    pub const PREFETCHES: &str = "prefetch_issued";
    /// Counter: prefetched operands claimed by their target request.
    pub const PREFETCH_HITS: &str = "prefetch_hits";
}

/// The objective kinds the engine understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SloKind {
    /// `deadline_missed / requests_finished ≤ limit`.
    DeadlineMissRate,
    /// 95th-percentile flow time (seconds) `≤ limit`.
    FlowP95Secs,
    /// 99th-percentile flow time (seconds) `≤ limit`.
    FlowP99Secs,
    /// `faults / attempts ≤ limit`.
    FaultRate,
    /// Quarantined device count `≤ limit`.
    QuarantinedDevices,
    /// `requests_rejected / (requests_rejected + requests_finished) ≤
    /// limit` — the backpressure shed rate of an open-arrival run.
    RejectedRate,
    /// `hedge_attempts / attempts ≤ limit` — the fraction of dispatch
    /// attempts that needed a speculative duplicate; a rising rate means
    /// predictions no longer bound the in-flight time of real attempts.
    HedgeRate,
}

impl SloKind {
    /// Stable lowercase name, also the `--slo` grammar keyword.
    pub fn name(&self) -> &'static str {
        match self {
            SloKind::DeadlineMissRate => "deadline_miss",
            SloKind::FlowP95Secs => "flow_p95",
            SloKind::FlowP99Secs => "flow_p99",
            SloKind::FaultRate => "fault_rate",
            SloKind::QuarantinedDevices => "quarantined",
            SloKind::RejectedRate => "rejected",
            SloKind::HedgeRate => "hedge_rate",
        }
    }
}

/// One declarative objective: a kind plus its ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// What is measured.
    pub kind: SloKind,
    /// Inclusive ceiling; observing strictly more breaches.
    pub limit: f64,
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<={}", self.kind.name(), self.limit)
    }
}

impl SloSpec {
    /// Parses one `kind<=limit` (or `kind=limit`) clause.
    pub fn parse_one(s: &str) -> Result<SloSpec, String> {
        let (name, value) = s
            .split_once("<=")
            .or_else(|| s.split_once('='))
            .ok_or_else(|| format!("SLO clause `{s}` is not of the form kind<=limit"))?;
        let kind = match name.trim() {
            "deadline_miss" => SloKind::DeadlineMissRate,
            "flow_p95" => SloKind::FlowP95Secs,
            "flow_p99" => SloKind::FlowP99Secs,
            "fault_rate" => SloKind::FaultRate,
            "quarantined" => SloKind::QuarantinedDevices,
            "rejected" => SloKind::RejectedRate,
            "hedge_rate" => SloKind::HedgeRate,
            other => {
                return Err(format!(
                    "unknown SLO kind `{other}` (expected deadline_miss, flow_p95, \
                     flow_p99, fault_rate, quarantined, rejected, or hedge_rate)"
                ))
            }
        };
        let limit: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("SLO limit `{}` is not a number", value.trim()))?;
        if !limit.is_finite() || limit < 0.0 {
            return Err(format!(
                "SLO limit `{limit}` must be finite and non-negative"
            ));
        }
        Ok(SloSpec { kind, limit })
    }

    /// Parses a comma-separated `--slo` list, e.g.
    /// `deadline_miss<=0.05,flow_p95<=0.02,quarantined<=0`.
    pub fn parse_list(s: &str) -> Result<Vec<SloSpec>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|c| !c.is_empty())
            .map(SloSpec::parse_one)
            .collect()
    }

    /// The spec's observed value in a window, or `None` when the window
    /// carries no verdict (e.g. a rate whose denominator is zero).
    pub fn observe(&self, w: &WindowSnapshot) -> Option<f64> {
        match self.kind {
            SloKind::DeadlineMissRate => {
                let fin = w.counter(names::FINISHED);
                (fin > 0).then(|| w.counter(names::DEADLINE_MISSED) as f64 / fin as f64)
            }
            SloKind::FaultRate => {
                let att = w.counter(names::ATTEMPTS);
                (att > 0).then(|| w.counter(names::FAULTS) as f64 / att as f64)
            }
            SloKind::FlowP95Secs => w
                .digest(names::FLOW_SECS)
                .filter(|d| d.count > 0)
                .map(|d| d.p95),
            SloKind::FlowP99Secs => w
                .digest(names::FLOW_SECS)
                .filter(|d| d.count > 0)
                .map(|d| d.p99),
            SloKind::QuarantinedDevices => w.gauge(names::QUARANTINED),
            SloKind::RejectedRate => {
                let rej = w.counter(names::REJECTED);
                let offered = rej + w.counter(names::FINISHED);
                (offered > 0).then(|| rej as f64 / offered as f64)
            }
            SloKind::HedgeRate => {
                let att = w.counter(names::ATTEMPTS);
                (att > 0).then(|| w.counter(names::HEDGES) as f64 / att as f64)
            }
        }
    }
}

/// Per-window verdict of one spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective evaluated.
    pub spec: SloSpec,
    /// Observed value, when the window carried a verdict.
    pub observed: Option<f64>,
    /// Whether the spec currently holds (breached specs stay `false`
    /// until a closed window recovers them).
    pub ok: bool,
}

/// A typed ok→breached transition event.
#[derive(Debug, Clone, PartialEq)]
pub struct SloBreach {
    /// Index of the window in which the breach fired.
    pub window: u64,
    /// End of that window (or the intra-window instant), nanoseconds.
    pub at_ns: u64,
    /// The objective that was breached.
    pub spec: SloSpec,
    /// The observed value that exceeded the limit.
    pub observed: f64,
}

impl fmt::Display for SloBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SLO breach in window {}: {} observed {:.6} > {}",
            self.window,
            self.spec.kind.name(),
            self.observed,
            self.spec.limit
        )
    }
}

/// Edge-triggered evaluator over a fixed set of specs.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    breached: Vec<bool>,
}

impl SloEngine {
    /// Creates an engine for the given objectives (all initially ok).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let n = specs.len();
        SloEngine {
            specs,
            breached: vec![false; n],
        }
    }

    /// The configured objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// True when any spec is currently in the breached state.
    pub fn any_breached(&self) -> bool {
        self.breached.iter().any(|&b| b)
    }

    fn eval(
        &mut self,
        w: &WindowSnapshot,
        allow_recovery: bool,
    ) -> (Vec<SloStatus>, Vec<SloBreach>) {
        let mut statuses = Vec::with_capacity(self.specs.len());
        let mut breaches = Vec::new();
        for (i, spec) in self.specs.iter().enumerate() {
            let observed = spec.observe(w);
            let holds = observed.map(|v| v <= spec.limit).unwrap_or(true);
            if !holds && !self.breached[i] {
                self.breached[i] = true;
                breaches.push(SloBreach {
                    window: w.index,
                    at_ns: w.end_ns,
                    spec: *spec,
                    observed: observed.unwrap_or(f64::NAN),
                });
            } else if holds && self.breached[i] && allow_recovery && observed.is_some() {
                self.breached[i] = false;
            }
            statuses.push(SloStatus {
                spec: *spec,
                observed,
                ok: !self.breached[i],
            });
        }
        (statuses, breaches)
    }

    /// Evaluates a *closed* window: breaches fire on ok→breached edges,
    /// and a breached spec recovers when the window meets the objective
    /// (with an actual observation — empty windows change nothing).
    pub fn evaluate(&mut self, w: &WindowSnapshot) -> (Vec<SloStatus>, Vec<SloBreach>) {
        self.eval(w, true)
    }

    /// Evaluates the *open* window mid-interval (a
    /// [`WindowedMetrics::peek`](crate::window::WindowedMetrics::peek)
    /// snapshot): breaches fire immediately, but nothing recovers — a
    /// partial window is evidence of failure, never of health.
    pub fn evaluate_partial(&mut self, w: &WindowSnapshot) -> Vec<SloBreach> {
        self.eval(w, false).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowedMetrics;

    fn window_with(missed: u64, finished: u64, at: u64) -> WindowSnapshot {
        let mut m = WindowedMetrics::new(1000);
        m.counter_add(names::FINISHED, finished);
        m.counter_add(names::DEADLINE_MISSED, missed);
        m.peek(at)
    }

    #[test]
    fn parse_grammar_accepts_both_separators_and_rejects_junk() {
        let specs = SloSpec::parse_list("deadline_miss<=0.1, flow_p95=0.02,quarantined<=0")
            .expect("valid list");
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].kind, SloKind::DeadlineMissRate);
        assert_eq!(specs[1].kind, SloKind::FlowP95Secs);
        assert_eq!(specs[1].limit, 0.02);
        assert_eq!(
            SloSpec::parse_one("rejected<=0.2").expect("valid").kind,
            SloKind::RejectedRate
        );
        assert!(SloSpec::parse_one("deadline_miss").is_err());
        assert!(SloSpec::parse_one("nope<=1").is_err());
        assert!(SloSpec::parse_one("fault_rate<=-1").is_err());
        assert!(SloSpec::parse_one("fault_rate<=NaN").is_err());
        assert_eq!(
            SloSpec::parse_one("flow_p99<=0.5").expect("ok").to_string(),
            "flow_p99<=0.5"
        );
    }

    #[test]
    fn breaches_are_edge_triggered_and_recover_only_on_closed_windows() {
        let spec = SloSpec {
            kind: SloKind::DeadlineMissRate,
            limit: 0.0,
        };
        let mut engine = SloEngine::new(vec![spec]);

        // Partial view with a miss: fires exactly once.
        let breaches = engine.evaluate_partial(&window_with(1, 4, 500));
        assert_eq!(breaches.len(), 1);
        assert!(engine.any_breached());
        assert!(engine.evaluate_partial(&window_with(1, 4, 600)).is_empty());

        // The same window closing does not re-fire.
        let (statuses, breaches) = engine.evaluate(&window_with(1, 10, 1000));
        assert!(breaches.is_empty(), "no double fire at window close");
        assert!(!statuses[0].ok, "still breached");

        // A clean partial window cannot recover it…
        assert!(engine.evaluate_partial(&window_with(0, 5, 1500)).is_empty());
        assert!(engine.any_breached());
        // …but a clean closed window does.
        let (statuses, _) = engine.evaluate(&window_with(0, 5, 2000));
        assert!(statuses[0].ok, "recovered on a clean closed window");

        // A second incident fires a second breach event.
        let (_, breaches) = engine.evaluate(&window_with(2, 2, 3000));
        assert_eq!(breaches.len(), 1);
    }

    #[test]
    fn empty_windows_carry_no_verdict() {
        let mut engine = SloEngine::new(vec![
            SloSpec {
                kind: SloKind::DeadlineMissRate,
                limit: 0.0,
            },
            SloSpec {
                kind: SloKind::FlowP95Secs,
                limit: 0.001,
            },
        ]);
        let empty = WindowedMetrics::new(1000).peek(100);
        let (statuses, breaches) = engine.evaluate(&empty);
        assert!(breaches.is_empty());
        assert!(statuses.iter().all(|s| s.ok && s.observed.is_none()));
    }

    #[test]
    fn rejected_rate_counts_shed_over_offered() {
        let spec = SloSpec {
            kind: SloKind::RejectedRate,
            limit: 0.1,
        };
        // No offered requests: no verdict.
        let empty = WindowedMetrics::new(1000).peek(100);
        assert!(spec.observe(&empty).is_none());
        // 3 shed out of 3 + 9 finished = 25% > 10% ceiling.
        let mut m = WindowedMetrics::new(1000);
        m.counter_add(names::REJECTED, 3);
        m.counter_add(names::FINISHED, 9);
        let w = m.peek(500);
        assert_eq!(spec.observe(&w), Some(0.25));
        let mut engine = SloEngine::new(vec![spec]);
        assert_eq!(engine.evaluate_partial(&w).len(), 1);
    }

    #[test]
    fn hedge_rate_counts_hedges_over_attempts() {
        let spec = SloSpec::parse_one("hedge_rate<=0.2").expect("parses");
        assert_eq!(spec.kind, SloKind::HedgeRate);
        // No attempts: no verdict.
        let empty = WindowedMetrics::new(1000).peek(100);
        assert!(spec.observe(&empty).is_none());
        // 3 hedges over 10 attempts = 30% > 20% ceiling.
        let mut m = WindowedMetrics::new(1000);
        m.counter_add(names::ATTEMPTS, 10);
        m.counter_add(names::HEDGES, 3);
        let w = m.peek(500);
        assert_eq!(spec.observe(&w), Some(0.3));
        let mut engine = SloEngine::new(vec![spec]);
        assert_eq!(engine.evaluate_partial(&w).len(), 1);
    }

    #[test]
    fn flow_percentile_and_quarantine_objectives() {
        let mut m = WindowedMetrics::new(1000);
        for _ in 0..100 {
            m.histogram_observe(names::FLOW_SECS, &[0.001, 0.01, 0.1], 0.05);
        }
        m.gauge_set(names::QUARANTINED, 2.0);
        let w = m.peek(900);
        let mut engine = SloEngine::new(vec![
            SloSpec {
                kind: SloKind::FlowP95Secs,
                limit: 0.001,
            },
            SloSpec {
                kind: SloKind::QuarantinedDevices,
                limit: 1.0,
            },
        ]);
        let breaches = engine.evaluate_partial(&w);
        assert_eq!(breaches.len(), 2, "both objectives breach: {breaches:?}");
        assert!(breaches[0].observed > 0.001);
        assert_eq!(breaches[1].observed, 2.0);
    }
}
