//! Trace invariant checks: structural properties every well-formed
//! simulator trace must satisfy, usable both as test assertions and as a
//! sanity gate before exporting or aggregating a trace.

use cocopelia_gpusim::{EngineKind, TraceEntry};
use std::collections::{HashMap, HashSet};

/// Spans of one logical tile op, keyed by its rendered tag plus label,
/// as `(start_ns, end_ns, op_id)` triples.
type TileOpSpans<'a> = HashMap<(String, &'a str), Vec<(u64, u64, usize)>>;

/// Checks the structural invariants of a batch of trace entries:
///
/// 1. every entry ends no earlier than it starts;
/// 2. entries are recorded in non-decreasing start order (the simulator
///    records at dispatch time);
/// 3. no two entries on the same engine overlap in time — each engine is a
///    serial resource;
/// 4. no op id appears twice — each enqueued op executes exactly once;
/// 5. re-issues of the same logical tile op (identical tag and label — a
///    fault-tolerance retry) never overlap in time: a retry must only be
///    enqueued after its failed predecessor is out of the pipeline.
///
/// # Errors
///
/// Returns every violated invariant as a human-readable message.
pub fn check_entries(entries: &[TraceEntry]) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut seen_ops = HashSet::new();
    let mut prev_start = 0u64;
    for e in entries {
        if e.end < e.start {
            problems.push(format!(
                "op {} ends before it starts: {} < {}",
                e.op, e.end, e.start
            ));
        }
        if e.start.as_nanos() < prev_start {
            problems.push(format!(
                "op {} recorded out of order: starts at {} after an entry starting at {}",
                e.op,
                e.start.as_nanos(),
                prev_start
            ));
        }
        prev_start = prev_start.max(e.start.as_nanos());
        if !seen_ops.insert(e.op) {
            problems.push(format!("op {} appears more than once in the trace", e.op));
        }
    }
    for engine in [
        EngineKind::CopyH2d,
        EngineKind::Compute,
        EngineKind::CopyD2h,
    ] {
        let mut spans: Vec<(u64, u64, usize)> = entries
            .iter()
            .filter(|e| e.engine == engine)
            .map(|e| (e.start.as_nanos(), e.end.as_nanos(), e.op))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (_, e0, op0) = w[0];
            let (s1, _, op1) = w[1];
            if s1 < e0 {
                problems.push(format!(
                    "{} engine double-booked: op {op1} starts at {s1} before op {op0} ends at {e0}",
                    engine.name()
                ));
            }
        }
    }
    let mut by_tile_op: TileOpSpans = HashMap::new();
    for e in entries {
        if let Some(tag) = &e.tag {
            by_tile_op
                .entry((format!("{tag:?}"), e.label.as_str()))
                .or_default()
                .push((e.start.as_nanos(), e.end.as_nanos(), e.op));
        }
    }
    for ((tag, label), mut spans) in by_tile_op {
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (_, e0, op0) = w[0];
            let (s1, _, op1) = w[1];
            if s1 < e0 {
                problems.push(format!(
                    "overlapping retry of `{label}` ({tag}): op {op1} starts at {s1} \
                     before op {op0} ends at {e0}"
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{SimTime, StreamId};

    fn entry(op: usize, engine: EngineKind, start: u64, end: u64) -> TraceEntry {
        TraceEntry {
            op,
            stream: StreamId::from_raw(0),
            engine,
            label: "t".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: None,
            tag: None,
        }
    }

    #[test]
    fn clean_trace_passes() {
        let e = [
            entry(0, EngineKind::CopyH2d, 0, 100),
            entry(1, EngineKind::Compute, 50, 150),
            entry(2, EngineKind::CopyH2d, 100, 200),
        ];
        assert!(check_entries(&e).is_ok());
    }

    #[test]
    fn double_booked_engine_reported() {
        let e = [
            entry(0, EngineKind::Compute, 0, 100),
            entry(1, EngineKind::Compute, 50, 150),
        ];
        let problems = check_entries(&e).expect_err("overlap");
        assert!(problems.iter().any(|p| p.contains("double-booked")));
    }

    #[test]
    fn duplicate_op_reported() {
        let e = [
            entry(7, EngineKind::CopyH2d, 0, 10),
            entry(7, EngineKind::CopyD2h, 20, 30),
        ];
        let problems = check_entries(&e).expect_err("dup");
        assert!(problems.iter().any(|p| p.contains("more than once")));
    }

    #[test]
    fn out_of_order_start_reported() {
        let e = [
            entry(0, EngineKind::CopyH2d, 100, 200),
            entry(1, EngineKind::Compute, 50, 150),
        ];
        let problems = check_entries(&e).expect_err("order");
        assert!(problems.iter().any(|p| p.contains("out of order")));
    }

    #[test]
    fn reversed_span_reported() {
        let e = [entry(0, EngineKind::CopyH2d, 100, 50)];
        assert!(check_entries(&e).is_err());
    }

    fn tagged(op: usize, engine: EngineKind, start: u64, end: u64, label: &str) -> TraceEntry {
        TraceEntry {
            label: label.to_owned(),
            tag: Some(cocopelia_gpusim::OpTag {
                routine: "gemm",
                call: 0,
                tile: (1, 2),
                operand: None,
                get: false,
                set: false,
            }),
            ..entry(op, engine, start, end)
        }
    }

    #[test]
    fn sequential_retries_of_a_tile_op_pass() {
        let e = [
            tagged(0, EngineKind::CopyH2d, 0, 100, "get a[1][0]"),
            tagged(1, EngineKind::CopyH2d, 100, 200, "get a[1][0]"),
        ];
        assert!(check_entries(&e).is_ok());
    }

    #[test]
    fn overlapping_retries_of_a_tile_op_reported() {
        // Same tag and label on different engines: engine serialisation
        // cannot catch this, only the retry invariant can.
        let e = [
            tagged(0, EngineKind::CopyH2d, 0, 100, "get a[1][0]"),
            tagged(1, EngineKind::CopyD2h, 50, 150, "get a[1][0]"),
        ];
        let problems = check_entries(&e).expect_err("overlapping retry");
        assert!(problems.iter().any(|p| p.contains("overlapping retry")));
    }

    #[test]
    fn distinct_tile_ops_may_overlap_across_engines() {
        // Different labels under the same tag: a tile's fetch and kernel
        // legitimately overlap with ops of other tiles (and untagged
        // entries never participate in the retry check).
        let e = [
            tagged(0, EngineKind::CopyH2d, 0, 100, "get a[1][0]"),
            tagged(1, EngineKind::Compute, 50, 150, "gemm tile"),
            entry(2, EngineKind::CopyD2h, 60, 160),
        ];
        assert!(check_entries(&e).is_ok());
    }
}
