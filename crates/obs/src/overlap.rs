//! Overlap accounting: how much of the engines' busy time the pipeline
//! actually ran concurrently.
//!
//! The paper's whole premise is that h2d, exec, and d2h can proceed at the
//! same time (Fig. 2). This module turns a raw trace into the numbers that
//! quantify it: per-engine busy time, the union of all busy intervals, the
//! call's makespan, and the derived *overlap efficiency*
//! `sum(busy) / union(busy)` — 1.0 when the engines never overlap, up to
//! 3.0 when all three are perfectly pipelined. All interval arithmetic is
//! exact in integer nanoseconds.

use cocopelia_gpusim::{EngineKind, TraceEntry};

/// Overlap statistics of one batch of trace entries (usually one routine
/// call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlapStats {
    /// Wall-clock extent: latest end minus earliest start, in ns.
    pub makespan_ns: u64,
    /// h2d engine busy time, in ns.
    pub h2d_busy_ns: u64,
    /// Compute engine busy time, in ns.
    pub exec_busy_ns: u64,
    /// d2h engine busy time, in ns.
    pub d2h_busy_ns: u64,
    /// Length of the union of all busy intervals across engines, in ns.
    pub union_busy_ns: u64,
}

impl OverlapStats {
    /// Computes the statistics over `entries`.
    pub fn from_entries(entries: &[TraceEntry]) -> Self {
        let mut stats = OverlapStats::default();
        if entries.is_empty() {
            return stats;
        }
        let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(entries.len());
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for e in entries {
            let (a, b) = (e.start.as_nanos(), e.end.as_nanos());
            t_min = t_min.min(a);
            t_max = t_max.max(b);
            let busy = b.saturating_sub(a);
            match e.engine {
                EngineKind::CopyH2d => stats.h2d_busy_ns += busy,
                EngineKind::Compute => stats.exec_busy_ns += busy,
                EngineKind::CopyD2h => stats.d2h_busy_ns += busy,
            }
            if b > a {
                intervals.push((a, b));
            }
        }
        stats.makespan_ns = t_max.saturating_sub(t_min);
        stats.union_busy_ns = union_len(&mut intervals);
        stats
    }

    /// Busy time of one engine.
    pub fn engine_busy_ns(&self, engine: EngineKind) -> u64 {
        match engine {
            EngineKind::CopyH2d => self.h2d_busy_ns,
            EngineKind::Compute => self.exec_busy_ns,
            EngineKind::CopyD2h => self.d2h_busy_ns,
        }
    }

    /// Total engine busy time summed over the three engines.
    pub fn sum_busy_ns(&self) -> u64 {
        self.h2d_busy_ns + self.exec_busy_ns + self.d2h_busy_ns
    }

    /// Overlap efficiency `sum(busy) / union(busy)`: 1.0 means fully
    /// serialised engines, 3.0 means all three engines always concurrent.
    /// Returns 1.0 for an empty batch (nothing ran, nothing serialised).
    pub fn efficiency(&self) -> f64 {
        if self.union_busy_ns == 0 {
            1.0
        } else {
            self.sum_busy_ns() as f64 / self.union_busy_ns as f64
        }
    }

    /// Fraction of the makespan during which at least one engine was busy.
    pub fn utilisation(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.union_busy_ns as f64 / self.makespan_ns as f64
        }
    }
}

/// Total length of the union of half-open intervals. Sorts in place.
fn union_len(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(a, b) in intervals.iter() {
        match cur {
            Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
            Some((ca, cb)) => {
                total += cb - ca;
                cur = Some((a, b));
            }
            None => cur = Some((a, b)),
        }
    }
    if let Some((ca, cb)) = cur {
        total += cb - ca;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{SimTime, StreamId};

    fn entry(engine: EngineKind, start: u64, end: u64) -> TraceEntry {
        TraceEntry {
            op: 0,
            stream: StreamId::from_raw(0),
            engine,
            label: "t".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: None,
            tag: None,
        }
    }

    #[test]
    fn empty_batch_is_neutral() {
        let s = OverlapStats::from_entries(&[]);
        assert_eq!(s.makespan_ns, 0);
        assert_eq!(s.efficiency(), 1.0);
        assert_eq!(s.utilisation(), 0.0);
    }

    #[test]
    fn serial_engines_have_efficiency_one() {
        let e = [
            entry(EngineKind::CopyH2d, 0, 100),
            entry(EngineKind::Compute, 100, 250),
            entry(EngineKind::CopyD2h, 250, 300),
        ];
        let s = OverlapStats::from_entries(&e);
        assert_eq!(s.makespan_ns, 300);
        assert_eq!(s.sum_busy_ns(), 300);
        assert_eq!(s.union_busy_ns, 300);
        assert_eq!(s.efficiency(), 1.0);
    }

    #[test]
    fn perfect_three_way_overlap_is_three() {
        let e = [
            entry(EngineKind::CopyH2d, 0, 100),
            entry(EngineKind::Compute, 0, 100),
            entry(EngineKind::CopyD2h, 0, 100),
        ];
        let s = OverlapStats::from_entries(&e);
        assert_eq!(s.efficiency(), 3.0);
        assert_eq!(s.utilisation(), 1.0);
    }

    #[test]
    fn union_merges_touching_and_overlapping() {
        let mut iv = vec![(0, 10), (10, 20), (15, 30), (40, 50)];
        assert_eq!(union_len(&mut iv), 40);
    }

    #[test]
    fn idle_gap_reduces_utilisation() {
        let e = [
            entry(EngineKind::CopyH2d, 0, 50),
            entry(EngineKind::Compute, 150, 200),
        ];
        let s = OverlapStats::from_entries(&e);
        assert_eq!(s.makespan_ns, 200);
        assert_eq!(s.union_busy_ns, 100);
        assert!((s.utilisation() - 0.5).abs() < 1e-12);
    }
}
