//! Calibration diagnostics: how trustworthy are the Eq. 1–5 model inputs?
//!
//! The paper's deployment step (§IV-A) produces three kinds of model input:
//! the zero-intercept transfer fits (`t_l`, `t_b`), the bidirectional
//! slowdowns (`sl`, the BTS fits of Eq. 3–4), and the empirical `t_GPU^T`
//! lookup tables. This module audits all three *before* anything runs:
//!
//! * [`FitRow`] — R², RMSE, and the 95 % slope confidence half-width of each
//!   least-squares fit (uni- and bidirectional, both directions);
//! * [`LatencyRow`] — whether each `t_l` micro-benchmark actually met the
//!   95 %-CI repetition criterion, and the CI it achieved;
//! * [`ExecAudit`] — a leave-one-out interpolation-error sweep over each
//!   execution table: drop one grid point, predict it from its neighbours,
//!   and report the mean/max relative error (high error means the grid is
//!   too coarse for the runtime's off-grid interpolation to be trusted).
//!
//! [`CalibReport::from_deployment`] assembles everything from a
//! [`DeploymentReport`]; `render` produces the human-readable table and
//! `to_value` the JSON form used by `cocopelia calib --json`.

use cocopelia_core::exec_table::ExecTable;
use cocopelia_deploy::{DeploymentReport, DirFit};
use serde::Value;
use std::fmt::Write as _;

/// R² below this value flags a transfer fit as untrustworthy.
pub const R2_WARN_THRESHOLD: f64 = 0.95;

/// Leave-one-out mean relative error above this flags an exec table.
pub const LOO_WARN_THRESHOLD: f64 = 0.10;

/// Achieved relative CI above this flags a latency micro-benchmark as
/// under-converged even when it nominally stopped.
pub const CI_WARN_THRESHOLD: f64 = 0.05;

/// Goodness-of-fit diagnostics of one zero-intercept least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitRow {
    /// Which fit this row describes (`"h2d"`, `"d2h-bid (BTS)"`, …).
    pub name: String,
    /// Fitted slope (seconds/byte).
    pub slope: f64,
    /// Uncentered R² of the fit.
    pub r2: f64,
    /// Root-mean-square error (seconds).
    pub rmse: f64,
    /// 95 % confidence half-width of the slope (seconds/byte).
    pub ci95: f64,
    /// `ci95` relative to the slope (dimensionless; small is good).
    pub ci95_rel: f64,
    /// Number of sweep points fitted.
    pub n: usize,
}

impl FitRow {
    fn of(name: &str, slope: f64, r2: f64, rmse: f64, ci95: f64, n: usize) -> FitRow {
        FitRow {
            name: name.to_owned(),
            slope,
            r2,
            rmse,
            ci95,
            ci95_rel: if slope != 0.0 {
                ci95 / slope.abs()
            } else {
                0.0
            },
            n,
        }
    }

    /// True when the fit quality is below the report's warning thresholds.
    pub fn flagged(&self) -> bool {
        self.r2 < R2_WARN_THRESHOLD
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("slope".to_owned(), Value::F64(self.slope)),
            ("r2".to_owned(), Value::F64(self.r2)),
            ("rmse".to_owned(), Value::F64(self.rmse)),
            ("ci95".to_owned(), Value::F64(self.ci95)),
            ("ci95_rel".to_owned(), Value::F64(self.ci95_rel)),
            ("n".to_owned(), Value::U64(self.n as u64)),
            ("flagged".to_owned(), Value::Bool(self.flagged())),
        ])
    }
}

/// Convergence diagnostics of one latency (`t_l`) micro-benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Which probe (`"h2d"` or `"d2h"`).
    pub name: String,
    /// Measured setup latency (seconds).
    pub t_l: f64,
    /// Achieved relative 95 % CI when sampling stopped.
    pub rel_ci: f64,
    /// Samples taken.
    pub samples: usize,
    /// Whether the CI criterion was met before the sample cap.
    pub converged: bool,
}

impl LatencyRow {
    /// True when the micro-benchmark is under-converged. A NaN CI (no
    /// samples, zero mean) counts as flagged.
    pub fn flagged(&self) -> bool {
        !self.converged || self.rel_ci.is_nan() || self.rel_ci > CI_WARN_THRESHOLD
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("t_l".to_owned(), Value::F64(self.t_l)),
            ("rel_ci".to_owned(), Value::F64(self.rel_ci)),
            ("samples".to_owned(), Value::U64(self.samples as u64)),
            ("converged".to_owned(), Value::Bool(self.converged)),
            ("flagged".to_owned(), Value::Bool(self.flagged())),
        ])
    }
}

/// Leave-one-out audit of one execution-time table.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecAudit {
    /// Canonical routine name (`"dgemm"`, `"daxpy"`, …).
    pub routine: String,
    /// Grid points in the table.
    pub points: usize,
    /// Smallest measured tiling size.
    pub min_tile: usize,
    /// Largest measured tiling size.
    pub max_tile: usize,
    /// Mean absolute relative leave-one-out interpolation error.
    pub loo_mean_abs_rel: f64,
    /// Worst absolute relative leave-one-out interpolation error.
    pub loo_max_abs_rel: f64,
    /// The tiling size with the worst leave-one-out error.
    pub worst_tile: usize,
}

impl ExecAudit {
    /// True when the table's interpolation error is above threshold.
    pub fn flagged(&self) -> bool {
        self.loo_mean_abs_rel > LOO_WARN_THRESHOLD
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("routine".to_owned(), Value::Str(self.routine.clone())),
            ("points".to_owned(), Value::U64(self.points as u64)),
            ("min_tile".to_owned(), Value::U64(self.min_tile as u64)),
            ("max_tile".to_owned(), Value::U64(self.max_tile as u64)),
            (
                "loo_mean_abs_rel".to_owned(),
                Value::F64(self.loo_mean_abs_rel),
            ),
            (
                "loo_max_abs_rel".to_owned(),
                Value::F64(self.loo_max_abs_rel),
            ),
            ("worst_tile".to_owned(), Value::U64(self.worst_tile as u64)),
            ("flagged".to_owned(), Value::Bool(self.flagged())),
        ])
    }
}

/// Audits one execution table with a leave-one-out interpolation sweep.
///
/// Each *interior* grid point is removed in turn, the table is asked to
/// interpolate at the removed tiling size, and the relative error against
/// the held-out measurement is recorded. Endpoints are kept: removing one
/// would measure extrapolation, a different regime from the between-points
/// interpolation the runtime relies on. Tables with fewer than 3 points
/// report zero error (there is no interior point to hold out).
pub fn audit_exec_table(routine: &str, table: &ExecTable) -> ExecAudit {
    let entries = table.entries();
    let points = entries.len();
    let (min_tile, max_tile) = match (entries.first(), entries.last()) {
        (Some(&(lo, _)), Some(&(hi, _))) => (lo, hi),
        _ => (0, 0),
    };
    let mut sum_abs = 0.0;
    let mut max_abs = 0.0f64;
    let mut worst_tile = min_tile;
    let mut scored = 0usize;
    if points >= 3 {
        for i in 1..points - 1 {
            let (tile, truth) = entries[i];
            if truth <= 0.0 {
                continue;
            }
            let held_out: Vec<(usize, f64)> = entries
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            let reduced = ExecTable::new(held_out);
            let Some(predicted) = reduced.interpolate(tile) else {
                continue;
            };
            let err = ((predicted - truth) / truth).abs();
            sum_abs += err;
            scored += 1;
            if err > max_abs {
                max_abs = err;
                worst_tile = tile;
            }
        }
    }
    ExecAudit {
        routine: routine.to_owned(),
        points,
        min_tile,
        max_tile,
        loo_mean_abs_rel: if scored == 0 {
            0.0
        } else {
            sum_abs / scored as f64
        },
        loo_max_abs_rel: max_abs,
        worst_tile,
    }
}

/// The full pre-flight calibration report: transfer-fit quality, latency
/// micro-benchmark convergence, and exec-table coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibReport {
    /// Name of the profiled testbed.
    pub testbed: String,
    /// One row per least-squares fit (h2d/d2h, uni + BTS).
    pub fits: Vec<FitRow>,
    /// One row per latency micro-benchmark.
    pub latencies: Vec<LatencyRow>,
    /// One audit per deployed execution table, name-ordered.
    pub exec: Vec<ExecAudit>,
}

fn dir_rows(name: &str, fit: &DirFit, fits: &mut Vec<FitRow>, lats: &mut Vec<LatencyRow>) {
    fits.push(FitRow::of(name, fit.t_b, fit.r2, fit.rmse, fit.ci95, fit.n));
    fits.push(FitRow::of(
        &format!("{name}-bid (BTS)"),
        fit.t_b_bid,
        fit.r2_bid,
        fit.rmse_bid,
        fit.ci95_bid,
        fit.n,
    ));
    lats.push(LatencyRow {
        name: name.to_owned(),
        t_l: fit.t_l,
        rel_ci: fit.t_l_rel_ci,
        samples: fit.t_l_samples,
        converged: fit.t_l_converged,
    });
}

impl CalibReport {
    /// Builds the report from a finished deployment.
    pub fn from_deployment(report: &DeploymentReport) -> CalibReport {
        let mut fits = Vec::with_capacity(4);
        let mut latencies = Vec::with_capacity(2);
        dir_rows("h2d", &report.fit.h2d, &mut fits, &mut latencies);
        dir_rows("d2h", &report.fit.d2h, &mut fits, &mut latencies);
        let exec = report
            .profile
            .exec
            .iter()
            .map(|(name, table)| audit_exec_table(name, table))
            .collect();
        CalibReport {
            testbed: report.profile.testbed.clone(),
            fits,
            latencies,
            exec,
        }
    }

    /// Human-readable warnings for every flagged row, empty when the
    /// calibration looks trustworthy.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.fits {
            if f.flagged() {
                out.push(format!(
                    "fit {}: R² {:.4} below {R2_WARN_THRESHOLD} — transfer model unreliable",
                    f.name, f.r2
                ));
            }
        }
        for l in &self.latencies {
            if l.flagged() {
                out.push(format!(
                    "latency {}: under-converged (rel CI {:.3} after {} samples, converged={})",
                    l.name, l.rel_ci, l.samples, l.converged
                ));
            }
        }
        for e in &self.exec {
            if e.flagged() {
                out.push(format!(
                    "exec table {}: leave-one-out error {:.1}% above {:.0}% — grid too coarse",
                    e.routine,
                    e.loo_mean_abs_rel * 100.0,
                    LOO_WARN_THRESHOLD * 100.0
                ));
            }
        }
        out
    }

    /// True when nothing in the calibration is flagged.
    pub fn trustworthy(&self) -> bool {
        self.warnings().is_empty()
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("testbed".to_owned(), Value::Str(self.testbed.clone())),
            (
                "fits".to_owned(),
                Value::Seq(self.fits.iter().map(FitRow::to_value).collect()),
            ),
            (
                "latencies".to_owned(),
                Value::Seq(self.latencies.iter().map(LatencyRow::to_value).collect()),
            ),
            (
                "exec".to_owned(),
                Value::Seq(self.exec.iter().map(ExecAudit::to_value).collect()),
            ),
            (
                "warnings".to_owned(),
                Value::Seq(self.warnings().into_iter().map(Value::Str).collect()),
            ),
            ("trustworthy".to_owned(), Value::Bool(self.trustworthy())),
        ])
    }

    /// Renders the full human-readable calibration report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "calibration report for testbed `{}`", self.testbed);
        let _ = writeln!(out, "\n== transfer fits ==");
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>9} {:>12} {:>10} {:>4}",
            "fit", "GB/s", "R2", "RMSE us", "CI95 rel", "n"
        );
        for f in &self.fits {
            let gbs = if f.slope > 0.0 {
                1.0 / f.slope / 1e9
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<16} {:>12.2} {:>9.5} {:>12.3} {:>9.2}% {:>4}{}",
                f.name,
                gbs,
                f.r2,
                f.rmse * 1e6,
                f.ci95_rel * 100.0,
                f.n,
                if f.flagged() { "  <-- FLAG" } else { "" }
            );
        }
        let _ = writeln!(out, "\n== latency micro-benchmarks ==");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>8} {:>10}",
            "probe", "t_l us", "rel CI", "samples", "converged"
        );
        for l in &self.latencies {
            let _ = writeln!(
                out,
                "{:<16} {:>10.3} {:>9.2}% {:>8} {:>10}{}",
                l.name,
                l.t_l * 1e6,
                l.rel_ci * 100.0,
                l.samples,
                l.converged,
                if l.flagged() { "  <-- FLAG" } else { "" }
            );
        }
        let _ = writeln!(out, "\n== exec tables (leave-one-out) ==");
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "routine", "points", "min T", "max T", "mean|err|", "max|err|", "worst T"
        );
        for e in &self.exec {
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>10} {:>10} {:>9.2}% {:>9.2}% {:>10}{}",
                e.routine,
                e.points,
                e.min_tile,
                e.max_tile,
                e.loo_mean_abs_rel * 100.0,
                e.loo_max_abs_rel * 100.0,
                e.worst_tile,
                if e.flagged() { "  <-- FLAG" } else { "" }
            );
        }
        let warnings = self.warnings();
        if warnings.is_empty() {
            let _ = writeln!(out, "\ncalibration OK: model inputs look trustworthy");
        } else {
            let _ = writeln!(out, "\n== warnings ==");
            for w in &warnings {
                let _ = writeln!(out, "  ! {w}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_deploy::{deploy, DeployConfig};
    use cocopelia_gpusim::{testbed_i, NoiseSpec};

    fn quiet_deployment() -> DeploymentReport {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mut cfg = DeployConfig::quick();
        cfg.transfer_dims = vec![512, 1024, 2048, 4096];
        // Dense grids: linear interpolation of a superlinear kernel time is
        // only trustworthy when neighbouring tiles are close, so the
        // "trustworthy" fixture must not use sparse power-of-two spacing.
        cfg.gemm_tiles = (8..=16).map(|i| i * 128).collect();
        cfg.axpy_tiles = vec![1 << 20, 1 << 21, 1 << 22];
        cfg.gemv_tiles = (4..=8).map(|i| i * 256).collect();
        deploy(&tb, &cfg).expect("deploys")
    }

    #[test]
    fn quiet_deployment_is_trustworthy() {
        let report = CalibReport::from_deployment(&quiet_deployment());
        assert_eq!(report.fits.len(), 4);
        assert_eq!(report.latencies.len(), 2);
        assert!(!report.exec.is_empty());
        for f in &report.fits {
            assert!(f.r2 > 0.999, "{}: r2 {}", f.name, f.r2);
        }
        for l in &report.latencies {
            assert!(l.converged, "{} under-converged", l.name);
        }
        assert!(report.trustworthy(), "warnings: {:?}", report.warnings());
    }

    #[test]
    fn leave_one_out_flags_a_jagged_table() {
        // A near-linear grid interpolates essentially exactly...
        let smooth = ExecTable::new((1..=8).map(|i| (i * 256, i as f64)).collect());
        let good = audit_exec_table("smooth", &smooth);
        assert!(good.loo_mean_abs_rel < 1e-9, "{good:?}");
        assert!(!good.flagged());
        // ...a table with an order-of-magnitude spike does not: the spike
        // itself is badly predicted and it poisons its neighbours' LOO too.
        let jagged = ExecTable::new(vec![
            (256, 1.0),
            (512, 2.0),
            (768, 40.0),
            (1024, 4.0),
            (1280, 5.0),
        ]);
        let bad = audit_exec_table("jagged", &jagged);
        assert!(bad.flagged(), "{bad:?}");
        assert!(bad.loo_max_abs_rel >= bad.loo_mean_abs_rel);
        assert!(
            [512, 768, 1024].contains(&bad.worst_tile),
            "worst tile {} should be at or beside the spike",
            bad.worst_tile
        );
    }

    #[test]
    fn tiny_tables_report_zero_error() {
        let t = ExecTable::new(vec![(256, 1.0), (512, 2.0)]);
        let audit = audit_exec_table("tiny", &t);
        assert_eq!(audit.loo_mean_abs_rel, 0.0);
        assert_eq!(audit.points, 2);
        assert!(!audit.flagged());
    }

    #[test]
    fn render_and_json_cover_all_sections() {
        let report = CalibReport::from_deployment(&quiet_deployment());
        let text = report.render();
        assert!(text.contains("transfer fits"));
        assert!(text.contains("h2d-bid (BTS)"));
        assert!(text.contains("latency micro-benchmarks"));
        assert!(text.contains("leave-one-out"));
        assert!(text.contains("calibration OK"));
        let json = serde_json::to_string(&report.to_value()).expect("serializes");
        assert!(json.contains("\"trustworthy\":true"));
        assert!(json.contains("\"r2\""));
        assert!(json.contains("\"loo_mean_abs_rel\""));
    }

    #[test]
    fn under_converged_latency_is_flagged() {
        let row = LatencyRow {
            name: "h2d".to_owned(),
            t_l: 1e-6,
            rel_ci: 0.4,
            samples: 200,
            converged: false,
        };
        assert!(row.flagged());
        let mut report = CalibReport::from_deployment(&quiet_deployment());
        report.latencies[0] = row;
        assert!(!report.trustworthy());
        assert!(report.render().contains("FLAG"));
        assert!(report.warnings()[0].contains("under-converged"));
    }
}
