//! # cocopelia-obs
//!
//! End-to-end observability for the CoCoPeLia pipeline: structured trace
//! inspection, a metrics registry, prediction-drift accounting, and trace
//! exporters — the instrumentation layer between the `cocopelia-gpusim`
//! simulator and the `cocopelia-runtime` library handle.
//!
//! * [`Observer`] — per-pipeline accumulator the runtime feeds after every
//!   routine call; renders text and JSON reports.
//! * [`OverlapStats`] — exact interval accounting of 3-way overlap; the
//!   overlap-efficiency metric `sum(busy)/union(busy)`.
//! * [`DriftAccountant`]/[`score_models`] — model-predicted offload time
//!   vs. simulated actual, per model (Eq. 1/2/3–4/5 and CSO), with signed
//!   and absolute error histograms.
//! * [`export`] — JSON-lines and Chrome trace-event (Perfetto-compatible)
//!   dumps of tagged traces.
//! * [`gantt`] — the shared ASCII Gantt renderer (paper Fig. 2 anatomy).
//! * [`invariants`] — structural trace well-formedness checks.
//! * [`calib`] — calibration diagnostics: fit quality (R², RMSE, slope CI)
//!   for the §IV-A transfer/BTS models and a leave-one-out interpolation
//!   audit of the empirical exec-time tables.
//! * [`snapshot`]/[`diff`] — versioned machine-readable performance
//!   snapshots of a standard sweep (`BENCH_<label>.json`) and the
//!   comparator that classifies entry deltas as regression / improvement /
//!   neutral for CI gating.
//! * [`window`]/[`slo`]/[`recorder`] — the streaming telemetry layer:
//!   rolling virtual-time windowed aggregation, edge-triggered SLO
//!   evaluation, and a fixed-capacity span flight recorder that dumps on
//!   breach/quarantine. Memory is O(window + ring), not O(requests).
//! * [`prom`] — Prometheus text-exposition rendering of a [`Registry`].
//!
//! ## Example: inspecting a synthetic trace
//!
//! ```
//! use cocopelia_gpusim::{EngineKind, SimTime, StreamId, TraceEntry};
//! use cocopelia_obs::OverlapStats;
//!
//! let entries = vec![TraceEntry {
//!     op: 0,
//!     stream: StreamId::from_raw(0),
//!     engine: EngineKind::CopyH2d,
//!     label: "h2d".to_owned(),
//!     start: SimTime::from_nanos(0),
//!     end: SimTime::from_nanos(100),
//!     bytes: Some(800),
//!     tag: None,
//! }];
//! let stats = OverlapStats::from_entries(&entries);
//! assert_eq!(stats.makespan_ns, 100);
//! assert_eq!(stats.efficiency(), 1.0);
//! ```

#![deny(missing_docs)]

pub mod calib;
pub mod diff;
pub mod drift;
pub mod export;
pub mod gantt;
pub mod invariants;
pub mod metrics;
pub mod observer;
pub mod overlap;
pub mod perfetto;
pub mod prom;
pub mod recorder;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod timeline;
pub mod window;

pub use calib::{audit_exec_table, CalibReport, ExecAudit, FitRow, LatencyRow};
pub use diff::{DiffConfig, DiffReport, EntryDiff, Verdict};
pub use drift::{score_models, DriftAccountant, DriftRecord, ModelErrorStats};
pub use metrics::{Histogram, Registry};
pub use observer::{CallObservation, CallSummary, Observer, EFFICIENCY_BOUNDS};
pub use overlap::OverlapStats;
pub use recorder::{FlightDump, FlightRecorder};
pub use slo::{SloBreach, SloEngine, SloKind, SloSpec, SloStatus};
pub use snapshot::{Snapshot, SnapshotEntry, SNAPSHOT_SCHEMA_VERSION};
pub use span::{check_spans, DeviceLane, ServeTrace, Span, SpanId, SpanLog, SpanPhase};
pub use window::{WindowDigest, WindowSnapshot, WindowedMetrics};
