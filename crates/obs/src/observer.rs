//! The per-pipeline observer: one object that accumulates metrics, overlap
//! statistics, and prediction drift across routine calls.
//!
//! The runtime owns one [`Observer`] per library handle and feeds it a
//! [`CallObservation`] after every routine; users read it back through
//! `Cocopelia::observer()` for text reports, JSON summaries, or raw
//! records.

use crate::drift::{DriftAccountant, DriftRecord};
use crate::metrics::Registry;
use crate::overlap::OverlapStats;
use cocopelia_core::models::ModelKind;
use cocopelia_gpusim::{EngineKind, TraceEntry};
use serde::Value;
use std::fmt::Write as _;

/// Histogram bounds for per-call overlap efficiency (1x .. 3x).
pub const EFFICIENCY_BOUNDS: [f64; 7] = [1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0];

/// Everything the runtime knows about one finished routine call.
#[derive(Debug, Clone)]
pub struct CallObservation<'a> {
    /// Routine family (`"gemm"`, `"axpy"`, …).
    pub routine: &'static str,
    /// Routine invocation counter (shared with the trace's `OpTag::call`).
    pub call: u64,
    /// Tiling size used.
    pub tile: usize,
    /// Model that chose the tile, if any (fixed tiles have none).
    pub model: Option<ModelKind>,
    /// Sub-kernels launched.
    pub subkernels: usize,
    /// Virtual wall time of the call, in seconds.
    pub elapsed_secs: f64,
    /// Trace entries the call produced.
    pub entries: &'a [TraceEntry],
    /// Tile-cache hits during the call (reused device tiles).
    pub tile_hits: u64,
    /// Tile-cache misses during the call (fresh fetches/allocations).
    pub tile_misses: u64,
    /// Per-model drift records scored for this call.
    pub drift: Vec<DriftRecord>,
}

/// Digest of one observed call, kept for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSummary {
    /// Routine family.
    pub routine: &'static str,
    /// Routine invocation counter.
    pub call: u64,
    /// Tiling size used.
    pub tile: usize,
    /// Model that chose the tile, if any.
    pub model: Option<ModelKind>,
    /// Sub-kernels launched.
    pub subkernels: usize,
    /// Virtual wall time, in seconds.
    pub elapsed_secs: f64,
    /// Overlap statistics of the call's trace slice.
    pub overlap: OverlapStats,
}

/// Accumulates observability state across the life of a pipeline.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    metrics: Registry,
    drift: DriftAccountant,
    calls: Vec<CallSummary>,
    next_call: u64,
}

impl Observer {
    /// A fresh observer.
    pub fn new() -> Self {
        Observer::default()
    }

    /// Allocates the next routine-call id (also used as `OpTag::call`).
    pub fn next_call_id(&mut self) -> u64 {
        let id = self.next_call;
        self.next_call += 1;
        id
    }

    /// Ingests one finished call: updates counters, histograms, drift
    /// aggregates, and the per-call summary list.
    pub fn observe_call(&mut self, obs: CallObservation<'_>) {
        let overlap = OverlapStats::from_entries(obs.entries);
        self.metrics.counter_add("calls_total", 1);
        self.metrics
            .counter_add(&format!("calls_{}", obs.routine), 1);
        self.metrics
            .counter_add("subkernels_total", obs.subkernels as u64);
        let h2d_bytes: u64 = engine_bytes(obs.entries, EngineKind::CopyH2d);
        let d2h_bytes: u64 = engine_bytes(obs.entries, EngineKind::CopyD2h);
        self.metrics.counter_add("h2d_bytes_total", h2d_bytes);
        self.metrics.counter_add("d2h_bytes_total", d2h_bytes);
        self.metrics
            .counter_add("h2d_busy_ns_total", overlap.h2d_busy_ns);
        self.metrics
            .counter_add("exec_busy_ns_total", overlap.exec_busy_ns);
        self.metrics
            .counter_add("d2h_busy_ns_total", overlap.d2h_busy_ns);
        self.metrics
            .counter_add("union_busy_ns_total", overlap.union_busy_ns);
        self.metrics
            .counter_add("makespan_ns_total", overlap.makespan_ns);
        self.metrics
            .counter_add("tile_cache_hits_total", obs.tile_hits);
        self.metrics
            .counter_add("tile_cache_misses_total", obs.tile_misses);
        if let Some(model) = obs.model {
            self.metrics
                .counter_add(&format!("tile_selections_{}", model.name()), 1);
        }
        self.metrics.histogram_observe(
            "overlap_efficiency",
            &EFFICIENCY_BOUNDS,
            overlap.efficiency(),
        );
        for rec in obs.drift {
            self.drift.record(rec);
        }
        self.calls.push(CallSummary {
            routine: obs.routine,
            call: obs.call,
            tile: obs.tile,
            model: obs.model,
            subkernels: obs.subkernels,
            elapsed_secs: obs.elapsed_secs,
            overlap,
        });
    }

    /// Records a selection-cache lookup (model-reuse cache of §IV-C).
    pub fn record_selection_lookup(&mut self, hit: bool) {
        let name = if hit {
            "selection_cache_hits_total"
        } else {
            "selection_cache_misses_total"
        };
        self.metrics.counter_add(name, 1);
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The drift accountant.
    pub fn drift(&self) -> &DriftAccountant {
        &self.drift
    }

    /// Per-call summaries, in call order.
    pub fn calls(&self) -> &[CallSummary] {
        &self.calls
    }

    /// The value-tree form of the whole observer state, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("metrics".to_owned(), self.metrics.to_value()),
            ("drift".to_owned(), self.drift.to_value()),
            (
                "calls".to_owned(),
                Value::Seq(
                    self.calls
                        .iter()
                        .map(|c| {
                            Value::Map(vec![
                                ("routine".to_owned(), Value::Str(c.routine.to_owned())),
                                ("call".to_owned(), Value::U64(c.call)),
                                ("tile".to_owned(), Value::U64(c.tile as u64)),
                                (
                                    "model".to_owned(),
                                    match c.model {
                                        Some(m) => Value::Str(m.name().to_owned()),
                                        None => Value::Null,
                                    },
                                ),
                                ("subkernels".to_owned(), Value::U64(c.subkernels as u64)),
                                ("elapsed_secs".to_owned(), Value::F64(c.elapsed_secs)),
                                (
                                    "overlap_efficiency".to_owned(),
                                    Value::F64(c.overlap.efficiency()),
                                ),
                                ("makespan_ns".to_owned(), Value::U64(c.overlap.makespan_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the full human-readable report: per-call table, metrics, and
    /// drift aggregates.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== calls ==");
        let _ = writeln!(
            out,
            "{:<6} {:<6} {:>6} {:>8} {:>12} {:>8} {:<16}",
            "call", "routine", "T", "subkrnl", "elapsed ms", "overlap", "model"
        );
        for c in &self.calls {
            let _ = writeln!(
                out,
                "{:<6} {:<6} {:>6} {:>8} {:>12.3} {:>7.2}x {:<16}",
                c.call,
                c.routine,
                c.tile,
                c.subkernels,
                c.elapsed_secs * 1e3,
                c.overlap.efficiency(),
                c.model.map(|m| m.name()).unwrap_or("fixed"),
            );
        }
        let _ = writeln!(out, "\n== metrics ==");
        out.push_str(&self.metrics.render());
        if !self.drift.records().is_empty() {
            let _ = writeln!(out, "\n== prediction drift ==");
            out.push_str(&self.drift.render());
        }
        out
    }
}

fn engine_bytes(entries: &[TraceEntry], engine: EngineKind) -> u64 {
    entries
        .iter()
        .filter(|e| e.engine == engine)
        .filter_map(|e| e.bytes)
        .map(|b| b as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{SimTime, StreamId};

    fn entry(engine: EngineKind, start: u64, end: u64, bytes: Option<usize>) -> TraceEntry {
        TraceEntry {
            op: 0,
            stream: StreamId::from_raw(0),
            engine,
            label: "t".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes,
            tag: None,
        }
    }

    #[test]
    fn observe_call_updates_counters_and_calls() {
        let mut obs = Observer::new();
        let id = obs.next_call_id();
        assert_eq!(id, 0);
        let entries = [
            entry(EngineKind::CopyH2d, 0, 100, Some(1024)),
            entry(EngineKind::Compute, 0, 100, None),
        ];
        obs.observe_call(CallObservation {
            routine: "gemm",
            call: id,
            tile: 256,
            model: Some(ModelKind::DataReuse),
            subkernels: 8,
            elapsed_secs: 1e-7,
            entries: &entries,
            tile_hits: 3,
            tile_misses: 5,
            drift: vec![],
        });
        assert_eq!(obs.metrics().counter("calls_total"), 1);
        assert_eq!(obs.metrics().counter("calls_gemm"), 1);
        assert_eq!(obs.metrics().counter("h2d_bytes_total"), 1024);
        assert_eq!(obs.metrics().counter("tile_cache_hits_total"), 3);
        assert_eq!(obs.metrics().counter("tile_selections_DR-Model"), 1);
        assert_eq!(obs.calls().len(), 1);
        assert_eq!(obs.calls()[0].overlap.efficiency(), 2.0);
        let h = obs
            .metrics()
            .histogram("overlap_efficiency")
            .expect("observed");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn call_ids_are_sequential() {
        let mut obs = Observer::new();
        assert_eq!(obs.next_call_id(), 0);
        assert_eq!(obs.next_call_id(), 1);
        assert_eq!(obs.next_call_id(), 2);
    }

    #[test]
    fn selection_cache_counters() {
        let mut obs = Observer::new();
        obs.record_selection_lookup(false);
        obs.record_selection_lookup(true);
        obs.record_selection_lookup(true);
        assert_eq!(obs.metrics().counter("selection_cache_hits_total"), 2);
        assert_eq!(obs.metrics().counter("selection_cache_misses_total"), 1);
    }

    #[test]
    fn render_and_to_value_cover_sections() {
        let mut obs = Observer::new();
        let id = obs.next_call_id();
        obs.observe_call(CallObservation {
            routine: "axpy",
            call: id,
            tile: 1 << 20,
            model: None,
            subkernels: 4,
            elapsed_secs: 0.001,
            entries: &[],
            tile_hits: 0,
            tile_misses: 8,
            drift: vec![],
        });
        let text = obs.render();
        assert!(text.contains("axpy"));
        assert!(text.contains("fixed"));
        let json = serde_json::to_string(&obs.to_value()).expect("serializes");
        assert!(json.contains("\"calls_total\":1"));
    }
}
