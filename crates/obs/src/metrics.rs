//! A dependency-free metrics registry: named monotonic counters,
//! last-value gauges, and fixed-bucket histograms.
//!
//! The registry is deliberately tiny — the pipeline is single-threaded per
//! device handle, so plain `&mut` access suffices and no atomics or locks
//! are involved. Everything renders to a text summary and to the [`Value`]
//! data model for JSON export.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram over fixed, caller-supplied bucket boundaries.
///
/// Values land in the first bucket whose upper bound is `>=` the value;
/// values above every bound land in an implicit overflow bucket. Sum and
/// count are tracked exactly, so the mean is always available regardless of
/// bucket resolution. Non-finite observations are rejected (counted in
/// [`skipped`](Histogram::skipped)) so one NaN can never poison the
/// aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    skipped: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
            skipped: 0,
        }
    }

    /// Records one observation. NaN and ±∞ are not recorded — they bump the
    /// [`skipped`](Histogram::skipped) counter instead, keeping `sum`,
    /// `mean`, and the quantile estimates finite.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.skipped += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite observations rejected.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `q`-quantile (`q ∈ [0, 1]`, clamped) from the bucket
    /// counts by linear interpolation inside the bracketing bucket.
    ///
    /// The estimate is always bracketed by the bucket boundaries: mass in
    /// the first bucket reports that bucket's upper bound (there is no lower
    /// edge to interpolate from) and mass in the overflow bucket reports the
    /// largest bound. Returns `None` for an empty histogram or one with no
    /// buckets. The estimate is monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if (cum as f64) < rank || c == 0 {
                continue;
            }
            // Bucket i brackets the rank.
            if i >= self.bounds.len() {
                // Overflow bucket: no upper edge, clamp to the last bound.
                return Some(self.bounds[self.bounds.len() - 1]);
            }
            if i == 0 {
                // First bucket: no lower edge, report its upper bound.
                return Some(self.bounds[0]);
            }
            let lo = self.bounds[i - 1];
            let hi = self.bounds[i];
            let into = rank - (cum - c) as f64;
            let frac = (into / c as f64).clamp(0.0, 1.0);
            return Some(lo + (hi - lo) * frac);
        }
        // rank == count landed past the loop due to trailing zero buckets.
        Some(self.bounds[self.bounds.len() - 1])
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        let quant = |q: f64| match self.quantile(q) {
            Some(v) => Value::F64(v),
            None => Value::Null,
        };
        Value::Map(vec![
            (
                "bounds".to_owned(),
                Value::Seq(self.bounds.iter().map(|&b| Value::F64(b)).collect()),
            ),
            (
                "counts".to_owned(),
                Value::Seq(self.counts.iter().map(|&c| Value::U64(c)).collect()),
            ),
            ("sum".to_owned(), Value::F64(self.sum)),
            ("count".to_owned(), Value::U64(self.count)),
            ("skipped".to_owned(), Value::U64(self.skipped)),
            ("p50".to_owned(), quant(0.50)),
            ("p95".to_owned(), quant(0.95)),
            ("p99".to_owned(), quant(0.99)),
        ])
    }
}

/// Named counters, gauges, and histograms for one pipeline.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `v` to the counter `name`, creating it at zero if absent.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to its latest value `v` (gauges are
    /// last-value-wins, unlike monotonic counters). Non-finite values are
    /// ignored, mirroring the histogram NaN policy.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if v.is_finite() {
            self.gauges.insert(name.to_owned(), v);
        }
    }

    /// Current value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Records `v` into histogram `name`, creating it with `bounds` if
    /// absent (later calls ignore `bounds`).
    pub fn histogram_observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(v);
    }

    /// The histogram `name`, if any observation created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "counters".to_owned(),
                Value::Map(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::F64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders a human-readable summary, one line per metric.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<40} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<40} {v:.4}");
        }
        for (name, h) in &self.histograms {
            let q = |p: f64| h.quantile(p).unwrap_or(0.0);
            let _ = write!(
                out,
                "{name:<40} n={} mean={:.4} sum={:.4} p50={:.4} p95={:.4} p99={:.4}",
                h.count(),
                h.mean(),
                h.sum(),
                q(0.50),
                q(0.95),
                q(0.99),
            );
            if h.skipped() > 0 {
                let _ = write!(out, " skipped={}", h.skipped());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.counter_add("bytes", 10);
        r.counter_add("bytes", 5);
        assert_eq!(r.counter("bytes"), 15);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn gauges_are_last_value_wins_and_skip_non_finite() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("occupancy"), None);
        r.gauge_set("occupancy", 0.5);
        r.gauge_set("occupancy", 0.75);
        assert_eq!(r.gauge("occupancy"), Some(0.75));
        r.gauge_set("occupancy", f64::NAN);
        r.gauge_set("bad", f64::INFINITY);
        assert_eq!(r.gauge("occupancy"), Some(0.75));
        assert_eq!(r.gauge("bad"), None);
        let s = r.render();
        assert!(s.contains("occupancy"));
        let json = serde_json::to_string(&r.to_value()).expect("serializes");
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"occupancy\":0.75"));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary lands in its bucket
        h.observe(5.0);
        h.observe(100.0); // overflow
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 106.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_are_skipped_not_propagated() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(2.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 1);
        assert_eq!(h.skipped(), 3);
        assert_eq!(h.mean(), 2.0);
        assert!(h.sum().is_finite());
        let json = serde_json::to_string(&h.to_value()).expect("serializes");
        assert!(json.contains("\"skipped\":3"));
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let mut h = Histogram::new(vec![10.0, 20.0, 30.0]);
        // 10 observations in (10, 20]: ranks spread linearly across it.
        for _ in 0..10 {
            h.observe(15.0);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((p50 - 15.0).abs() < 1e-12, "p50 {p50}");
        let p100 = h.quantile(1.0).expect("non-empty");
        assert!((p100 - 20.0).abs() < 1e-12, "p100 {p100}");
    }

    #[test]
    fn quantile_edge_buckets_clamp_to_bounds() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(0.5); // first bucket: reported as its upper bound
        h.observe(100.0); // overflow: reported as the last bound
        assert_eq!(h.quantile(0.01), Some(1.0));
        assert_eq!(h.quantile(0.99), Some(2.0));
    }

    #[test]
    fn quantile_empty_and_unbucketed() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.quantile(0.5), None);
        let mut nb = Histogram::new(Vec::new());
        nb.observe(1.0);
        assert_eq!(nb.quantile(0.5), None);
    }

    #[test]
    fn registry_histograms_keep_first_bounds() {
        let mut r = Registry::new();
        r.histogram_observe("err", &[0.1, 0.2], 0.05);
        r.histogram_observe("err", &[99.0], 0.15);
        let h = r.histogram("err").expect("created");
        assert_eq!(h.bounds(), &[0.1, 0.2]);
        assert_eq!(h.counts(), &[1, 1, 0]);
    }

    #[test]
    fn render_includes_all_metrics() {
        let mut r = Registry::new();
        r.counter_add("calls", 2);
        r.histogram_observe("lat", &[1.0], 0.5);
        let s = r.render();
        assert!(s.contains("calls"));
        assert!(s.contains("lat"));
    }

    #[test]
    fn to_value_round_trips_through_json() {
        let mut r = Registry::new();
        r.counter_add("c", 7);
        r.histogram_observe("h", &[1.0], 2.0);
        let json = serde_json::to_string(&r.to_value()).expect("serializes");
        assert!(json.contains("\"c\":7"));
        assert!(json.contains("\"h\""));
    }
}
