//! Perfetto protobuf trace exporter — a dependency-free, hand-rolled
//! writer of the `perfetto.protos.Trace` wire format, so multi-device
//! serve runs open natively in <https://ui.perfetto.dev> (no JSON
//! conversion, no size ceiling).
//!
//! Only the varint and length-delimited wire types are needed: a trace is
//! `repeated TracePacket packet = 1`, each packet carrying either a
//! `TrackDescriptor` (process/thread identity) or a timestamped
//! `TrackEvent` (slice begin/end, instant, flow ids). Field numbers below
//! follow the upstream `trace_packet.proto`/`track_event.proto` schema.
//!
//! Track layout for a [`ServeTrace`]:
//!
//! * one **process track per device** (`pid = 10 + d`) with one thread
//!   track per engine (`h2d`, `exec`, `d2h`) carrying the device's
//!   [`TraceEntry`] slices, plus a `requests` thread carrying the
//!   request-lifecycle spans that ran on that device (dispatch attempts,
//!   retries, quarantine instants);
//! * one **serve process** (`pid = 1`) with a `queue` thread (submit /
//!   queue-wait / complete spans) and a `host` thread (host-fallback
//!   runs);
//! * **flow ids** ([`Span::flow`]) attached to the queue-wait slice and
//!   the first device attempt of each request, so the viewer draws the
//!   queue-to-device hand-off arrow.
//!
//! The module also ships a minimal [`decode`] reader (the same wire
//! subset) so tests — and the `serve --trace-out` acceptance gate — can
//! round-trip the emitted bytes without a protobuf dependency.

use crate::span::{DeviceLane, ServeTrace, Span, SpanPhase};
use cocopelia_gpusim::{EngineKind, TraceEntry};

// ---- wire-format field numbers (upstream perfetto .proto schema) ----

/// `Trace.packet`.
const TRACE_PACKET: u32 = 1;
/// `TracePacket.timestamp`.
const PACKET_TIMESTAMP: u32 = 8;
/// `TracePacket.trusted_packet_sequence_id`.
const PACKET_SEQUENCE_ID: u32 = 10;
/// `TracePacket.track_event`.
const PACKET_TRACK_EVENT: u32 = 11;
/// `TracePacket.track_descriptor`.
const PACKET_TRACK_DESCRIPTOR: u32 = 60;
/// `TrackDescriptor.uuid`.
const TRACK_UUID: u32 = 1;
/// `TrackDescriptor.name`.
const TRACK_NAME: u32 = 2;
/// `TrackDescriptor.process`.
const TRACK_PROCESS: u32 = 3;
/// `TrackDescriptor.thread`.
const TRACK_THREAD: u32 = 4;
/// `ProcessDescriptor.pid`.
const PROCESS_PID: u32 = 1;
/// `ProcessDescriptor.process_name`.
const PROCESS_NAME: u32 = 6;
/// `ThreadDescriptor.pid`.
const THREAD_PID: u32 = 1;
/// `ThreadDescriptor.tid`.
const THREAD_TID: u32 = 2;
/// `ThreadDescriptor.thread_name`.
const THREAD_NAME: u32 = 5;
/// `TrackEvent.type`.
const EVENT_TYPE: u32 = 9;
/// `TrackEvent.track_uuid`.
const EVENT_TRACK_UUID: u32 = 11;
/// `TrackEvent.name` (non-interned).
const EVENT_NAME: u32 = 23;
/// `TrackEvent.flow_ids` (fixed64).
const EVENT_FLOW_IDS: u32 = 47;

/// `TrackEvent.Type.TYPE_SLICE_BEGIN`.
const TYPE_SLICE_BEGIN: u64 = 1;
/// `TrackEvent.Type.TYPE_SLICE_END`.
const TYPE_SLICE_END: u64 = 2;
/// `TrackEvent.Type.TYPE_INSTANT`.
const TYPE_INSTANT: u64 = 3;

/// The single trusted packet sequence every packet is emitted on.
const SEQUENCE_ID: u64 = 1;

/// Serve-process track uuids/pids (devices start above these).
const SERVE_PROCESS_UUID: u64 = 1;
const SERVE_QUEUE_UUID: u64 = 2;
const SERVE_HOST_UUID: u64 = 3;
const SERVE_PID: u64 = 1;

/// Track uuid of device `d`'s process.
fn device_process_uuid(d: usize) -> u64 {
    100 + (d as u64) * 10
}

/// OS-style pid of device `d`'s process track.
fn device_pid(d: usize) -> u64 {
    10 + d as u64
}

/// Track uuid of device `d`'s engine thread.
fn engine_uuid(d: usize, engine: EngineKind) -> u64 {
    device_process_uuid(d)
        + match engine {
            EngineKind::CopyH2d => 1,
            EngineKind::Compute => 2,
            EngineKind::CopyD2h => 3,
        }
}

/// Track uuid of device `d`'s request-lifecycle thread.
fn lifecycle_uuid(d: usize) -> u64 {
    device_process_uuid(d) + 4
}

// ---- low-level protobuf writing ----

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_key(out: &mut Vec<u8>, field: u32, wire: u64) {
    put_varint(out, (u64::from(field) << 3) | wire);
}

fn put_uint(out: &mut Vec<u8>, field: u32, v: u64) {
    put_key(out, field, 0);
    put_varint(out, v);
}

fn put_fixed64(out: &mut Vec<u8>, field: u32, v: u64) {
    put_key(out, field, 1);
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, field: u32, payload: &[u8]) {
    put_key(out, field, 2);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

fn put_str(out: &mut Vec<u8>, field: u32, s: &str) {
    put_bytes(out, field, s.as_bytes());
}

/// One track-descriptor packet.
fn descriptor_packet(
    out: &mut Vec<u8>,
    uuid: u64,
    name: &str,
    process: Option<(u64, &str)>,
    thread: Option<(u64, u64, &str)>,
) {
    let mut desc = Vec::new();
    put_uint(&mut desc, TRACK_UUID, uuid);
    put_str(&mut desc, TRACK_NAME, name);
    if let Some((pid, pname)) = process {
        let mut p = Vec::new();
        put_uint(&mut p, PROCESS_PID, pid);
        put_str(&mut p, PROCESS_NAME, pname);
        put_bytes(&mut desc, TRACK_PROCESS, &p);
    }
    if let Some((pid, tid, tname)) = thread {
        let mut t = Vec::new();
        put_uint(&mut t, THREAD_PID, pid);
        put_uint(&mut t, THREAD_TID, tid);
        put_str(&mut t, THREAD_NAME, tname);
        put_bytes(&mut desc, TRACK_THREAD, &t);
    }
    let mut packet = Vec::new();
    put_uint(&mut packet, PACKET_SEQUENCE_ID, SEQUENCE_ID);
    put_bytes(&mut packet, PACKET_TRACK_DESCRIPTOR, &desc);
    put_bytes(out, TRACE_PACKET, &packet);
}

/// One timestamped track-event packet.
fn event_packet(
    out: &mut Vec<u8>,
    ts_ns: u64,
    track_uuid: u64,
    event_type: u64,
    name: Option<&str>,
    flow: Option<u64>,
) {
    let mut ev = Vec::new();
    put_uint(&mut ev, EVENT_TYPE, event_type);
    put_uint(&mut ev, EVENT_TRACK_UUID, track_uuid);
    if let Some(n) = name {
        put_str(&mut ev, EVENT_NAME, n);
    }
    if let Some(f) = flow {
        put_fixed64(&mut ev, EVENT_FLOW_IDS, f);
    }
    let mut packet = Vec::new();
    put_uint(&mut packet, PACKET_TIMESTAMP, ts_ns);
    put_uint(&mut packet, PACKET_SEQUENCE_ID, SEQUENCE_ID);
    put_bytes(&mut packet, PACKET_TRACK_EVENT, &ev);
    put_bytes(out, TRACE_PACKET, &packet);
}

/// One slice or instant waiting to be emitted, sortable into the per-track
/// order Perfetto expects: at equal timestamps ends close before begins
/// open, outer slices open before (and close after) the slices they
/// contain, and record order breaks the remaining ties.
struct PendingEvent<'a> {
    ts: u64,
    /// 0 = end, 1 = begin, 2 = instant.
    rank: u8,
    /// Nesting tiebreak at equal `(ts, rank)`: begins sort by descending
    /// duration (outer first), ends by ascending (inner first).
    nest: u64,
    seq: usize,
    track: u64,
    event_type: u64,
    name: Option<&'a str>,
    flow: Option<u64>,
}

fn push_slice<'a>(
    events: &mut Vec<PendingEvent<'a>>,
    track: u64,
    start: u64,
    end: u64,
    name: &'a str,
    flow: Option<u64>,
) {
    let seq = events.len();
    let dur = end.saturating_sub(start);
    if dur == 0 {
        events.push(PendingEvent {
            ts: start,
            rank: 2,
            nest: 0,
            seq,
            track,
            event_type: TYPE_INSTANT,
            name: Some(name),
            flow,
        });
        return;
    }
    events.push(PendingEvent {
        ts: start,
        rank: 1,
        nest: u64::MAX - dur,
        seq,
        track,
        event_type: TYPE_SLICE_BEGIN,
        name: Some(name),
        flow,
    });
    events.push(PendingEvent {
        ts: end,
        rank: 0,
        nest: dur,
        seq: seq + 1,
        track,
        event_type: TYPE_SLICE_END,
        name: None,
        flow: None,
    });
}

/// Serialises a [`ServeTrace`] to Perfetto protobuf bytes.
///
/// The output is a complete standalone trace: descriptor packets first
/// (serve process, then one process + four threads per device), then every
/// event packet in global timestamp order (per-track order is therefore
/// monotone, which [`decode`]-based tests assert).
pub fn to_perfetto(trace: &ServeTrace) -> Vec<u8> {
    let mut out = Vec::new();
    let has_spans = !trace.spans.is_empty();
    if has_spans {
        descriptor_packet(
            &mut out,
            SERVE_PROCESS_UUID,
            "serve",
            Some((SERVE_PID, "serve")),
            None,
        );
        descriptor_packet(
            &mut out,
            SERVE_QUEUE_UUID,
            "queue",
            None,
            Some((SERVE_PID, 1, "queue")),
        );
        if trace
            .spans
            .iter()
            .any(|s| s.phase == SpanPhase::HostFallback)
        {
            descriptor_packet(
                &mut out,
                SERVE_HOST_UUID,
                "host",
                None,
                Some((SERVE_PID, 2, "host")),
            );
        }
    }
    for lane in &trace.lanes {
        let d = lane.device;
        descriptor_packet(
            &mut out,
            device_process_uuid(d),
            &lane.name,
            Some((device_pid(d), &lane.name)),
            None,
        );
        for engine in [
            EngineKind::CopyH2d,
            EngineKind::Compute,
            EngineKind::CopyD2h,
        ] {
            descriptor_packet(
                &mut out,
                engine_uuid(d, engine),
                engine.name(),
                None,
                Some((device_pid(d), engine_tid(engine), engine.name())),
            );
        }
        if has_spans {
            descriptor_packet(
                &mut out,
                lifecycle_uuid(d),
                "requests",
                None,
                Some((device_pid(d), 4, "requests")),
            );
        }
    }

    let mut events: Vec<PendingEvent> = Vec::new();
    for lane in &trace.lanes {
        for e in &lane.entries {
            push_slice(
                &mut events,
                engine_uuid(lane.device, e.engine),
                e.start.as_nanos(),
                e.end.as_nanos(),
                &e.label,
                None,
            );
        }
    }
    for s in &trace.spans {
        push_slice(
            &mut events,
            span_track(s),
            s.start_ns,
            s.end_ns,
            &s.label,
            s.flow,
        );
    }
    events.sort_by_key(|e| (e.ts, e.rank, e.nest, e.seq));
    for e in events {
        event_packet(&mut out, e.ts, e.track, e.event_type, e.name, e.flow);
    }
    out
}

/// Serialises one device's raw entries (no spans) — the single-run
/// `cocopelia trace --format perfetto` path.
pub fn to_perfetto_single(entries: &[TraceEntry]) -> Vec<u8> {
    to_perfetto(&ServeTrace {
        spans: Vec::new(),
        lanes: vec![DeviceLane {
            device: 0,
            name: "dev0".to_owned(),
            entries: entries.to_vec(),
        }],
    })
}

/// Incremental Perfetto writer: appends `TracePacket`s to a sink as
/// spans/entries arrive, instead of buffering the whole trace.
///
/// Track descriptors are emitted lazily, immediately before the first
/// event that needs them, so the stream is self-describing no matter
/// when it is cut off. Events are emitted in arrival order — sorted
/// within each batch, but *not* globally across batches (a queue-wait
/// span necessarily arrives after the engine slices it preceded);
/// Perfetto's importer sorts packets by timestamp at load, and the
/// [`decode`] reader accepts any order. Memory is O(one batch).
///
/// Writes go straight to the sink; call [`flush`](Self::flush) at
/// checkpoints (window close, quarantine, end of run) so a crashed or
/// aborted serve still leaves an openable trace on disk.
pub struct StreamWriter<W: std::io::Write> {
    sink: W,
    buf: Vec<u8>,
    serve_declared: bool,
    host_declared: bool,
    /// Devices whose process + engine threads are declared.
    devices_declared: std::collections::BTreeSet<usize>,
    /// Devices whose `requests` lifecycle thread is declared.
    lifecycles_declared: std::collections::BTreeSet<usize>,
    packets: u64,
    bytes: u64,
}

impl<W: std::io::Write> StreamWriter<W> {
    /// Wraps a sink; nothing is written until the first event.
    pub fn new(sink: W) -> Self {
        StreamWriter {
            sink,
            buf: Vec::new(),
            serve_declared: false,
            host_declared: false,
            devices_declared: std::collections::BTreeSet::new(),
            lifecycles_declared: std::collections::BTreeSet::new(),
            packets: 0,
            bytes: 0,
        }
    }

    /// Packets emitted so far (descriptors + events).
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Bytes handed to the sink so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn ensure_serve(&mut self) {
        if self.serve_declared {
            return;
        }
        self.serve_declared = true;
        descriptor_packet(
            &mut self.buf,
            SERVE_PROCESS_UUID,
            "serve",
            Some((SERVE_PID, "serve")),
            None,
        );
        descriptor_packet(
            &mut self.buf,
            SERVE_QUEUE_UUID,
            "queue",
            None,
            Some((SERVE_PID, 1, "queue")),
        );
        self.packets += 2;
    }

    fn ensure_host(&mut self) {
        self.ensure_serve();
        if self.host_declared {
            return;
        }
        self.host_declared = true;
        descriptor_packet(
            &mut self.buf,
            SERVE_HOST_UUID,
            "host",
            None,
            Some((SERVE_PID, 2, "host")),
        );
        self.packets += 1;
    }

    fn ensure_device(&mut self, d: usize, name: &str) {
        if self.devices_declared.contains(&d) {
            return;
        }
        self.devices_declared.insert(d);
        descriptor_packet(
            &mut self.buf,
            device_process_uuid(d),
            name,
            Some((device_pid(d), name)),
            None,
        );
        for engine in [
            EngineKind::CopyH2d,
            EngineKind::Compute,
            EngineKind::CopyD2h,
        ] {
            descriptor_packet(
                &mut self.buf,
                engine_uuid(d, engine),
                engine.name(),
                None,
                Some((device_pid(d), engine_tid(engine), engine.name())),
            );
        }
        self.packets += 4;
    }

    fn ensure_lifecycle(&mut self, d: usize) {
        self.ensure_device(d, &format!("dev{d}"));
        if self.lifecycles_declared.contains(&d) {
            return;
        }
        self.lifecycles_declared.insert(d);
        descriptor_packet(
            &mut self.buf,
            lifecycle_uuid(d),
            "requests",
            None,
            Some((device_pid(d), 4, "requests")),
        );
        self.packets += 1;
    }

    fn drain_buf(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.sink.write_all(&self.buf)?;
            self.bytes += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Appends one batch of lifecycle spans (sorted within the batch).
    pub fn write_spans(&mut self, spans: &[Span]) -> std::io::Result<()> {
        if spans.is_empty() {
            return Ok(());
        }
        for s in spans {
            match (s.phase, s.device) {
                (SpanPhase::HostFallback, _) => self.ensure_host(),
                (_, Some(d)) => self.ensure_lifecycle(d),
                (_, None) => self.ensure_serve(),
            }
        }
        let mut events: Vec<PendingEvent> = Vec::new();
        for s in spans {
            push_slice(
                &mut events,
                span_track(s),
                s.start_ns,
                s.end_ns,
                &s.label,
                s.flow,
            );
        }
        self.emit(events)
    }

    /// Appends one batch of engine-level trace entries for device `d`.
    pub fn write_entries(
        &mut self,
        d: usize,
        name: &str,
        entries: &[TraceEntry],
    ) -> std::io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        self.ensure_device(d, name);
        let mut events: Vec<PendingEvent> = Vec::new();
        for e in entries {
            push_slice(
                &mut events,
                engine_uuid(d, e.engine),
                e.start.as_nanos(),
                e.end.as_nanos(),
                &e.label,
                None,
            );
        }
        self.emit(events)
    }

    fn emit(&mut self, mut events: Vec<PendingEvent>) -> std::io::Result<()> {
        events.sort_by_key(|e| (e.ts, e.rank, e.nest, e.seq));
        self.packets += events.len() as u64;
        for e in events {
            event_packet(&mut self.buf, e.ts, e.track, e.event_type, e.name, e.flow);
        }
        self.drain_buf()
    }

    /// Flushes the sink — the durability checkpoint error paths rely on.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.drain_buf()?;
        self.sink.flush()
    }
}

/// Stable thread id per engine (matches the Chrome exporter's layout).
fn engine_tid(engine: EngineKind) -> u64 {
    match engine {
        EngineKind::CopyH2d => 1,
        EngineKind::Compute => 2,
        EngineKind::CopyD2h => 3,
    }
}

/// The track a lifecycle span is drawn on.
fn span_track(s: &Span) -> u64 {
    match (s.phase, s.device) {
        (SpanPhase::HostFallback, _) => SERVE_HOST_UUID,
        (_, Some(d)) => lifecycle_uuid(d),
        (_, None) => SERVE_QUEUE_UUID,
    }
}

pub mod decode {
    //! Minimal reader of the wire subset the exporter emits, for
    //! round-trip tests and the serve acceptance gate. Unknown fields are
    //! skipped by wire type, so traces from newer writers still decode.

    /// Identity carried by a `TrackDescriptor` packet.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    pub struct TrackDesc {
        /// Track uuid.
        pub uuid: u64,
        /// Track display name.
        pub name: String,
        /// `ProcessDescriptor.pid`, for process tracks.
        pub pid: Option<u64>,
        /// `ProcessDescriptor.process_name`.
        pub process_name: Option<String>,
        /// `ThreadDescriptor.(pid, tid)`, for thread tracks.
        pub thread: Option<(u64, u64)>,
        /// `ThreadDescriptor.thread_name`.
        pub thread_name: Option<String>,
    }

    /// One decoded `TrackEvent`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TrackEvent {
        /// Packet timestamp, nanoseconds.
        pub ts_ns: u64,
        /// `TYPE_SLICE_BEGIN` (1), `TYPE_SLICE_END` (2), `TYPE_INSTANT` (3).
        pub event_type: u64,
        /// Track the event is drawn on.
        pub track_uuid: u64,
        /// Slice name (begins and instants).
        pub name: Option<String>,
        /// Flow ids attached to the event.
        pub flows: Vec<u64>,
    }

    /// A fully decoded trace: descriptors and events in emission order.
    #[derive(Debug, Clone, Default)]
    pub struct DecodedTrace {
        /// Every `TrackDescriptor` packet.
        pub descriptors: Vec<TrackDesc>,
        /// Every `TrackEvent` packet.
        pub events: Vec<TrackEvent>,
        /// Total packets seen (descriptors + events + unknown).
        pub packets: usize,
    }

    impl DecodedTrace {
        /// Descriptors that declare a process (one per pid).
        pub fn process_tracks(&self) -> Vec<&TrackDesc> {
            self.descriptors
                .iter()
                .filter(|d| d.pid.is_some())
                .collect()
        }

        /// Thread descriptors belonging to the process with `pid`.
        pub fn thread_tracks_of(&self, pid: u64) -> Vec<&TrackDesc> {
            self.descriptors
                .iter()
                .filter(|d| d.thread.is_some_and(|(p, _)| p == pid))
                .collect()
        }

        /// Events drawn on one track, in emission order.
        pub fn events_on(&self, uuid: u64) -> Vec<&TrackEvent> {
            self.events
                .iter()
                .filter(|e| e.track_uuid == uuid)
                .collect()
        }
    }

    struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn varint(&mut self) -> Result<u64, String> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let Some(&b) = self.buf.get(self.pos) else {
                    return Err("varint runs past end of buffer".to_owned());
                };
                self.pos += 1;
                if shift >= 64 {
                    return Err("varint longer than 64 bits".to_owned());
                }
                v |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        }

        fn fixed64(&mut self) -> Result<u64, String> {
            let end = self.pos + 8;
            let Some(bytes) = self.buf.get(self.pos..end) else {
                return Err("fixed64 runs past end of buffer".to_owned());
            };
            self.pos = end;
            Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        }

        fn bytes(&mut self) -> Result<&'a [u8], String> {
            let len = self.varint()? as usize;
            let end = self.pos + len;
            let Some(b) = self.buf.get(self.pos..end) else {
                return Err(format!(
                    "length-delimited field of {len} bytes runs past end"
                ));
            };
            self.pos = end;
            Ok(b)
        }

        /// Reads one `(field, wire)` key, or `None` at end of buffer.
        fn key(&mut self) -> Result<Option<(u32, u64)>, String> {
            if self.pos >= self.buf.len() {
                return Ok(None);
            }
            let k = self.varint()?;
            Ok(Some(((k >> 3) as u32, k & 7)))
        }

        /// Skips a field of the given wire type.
        fn skip(&mut self, wire: u64) -> Result<(), String> {
            match wire {
                0 => self.varint().map(|_| ()),
                1 => self.fixed64().map(|_| ()),
                2 => self.bytes().map(|_| ()),
                5 => {
                    let end = self.pos + 4;
                    if end > self.buf.len() {
                        return Err("fixed32 runs past end".to_owned());
                    }
                    self.pos = end;
                    Ok(())
                }
                w => Err(format!("unsupported wire type {w}")),
            }
        }
    }

    fn parse_descriptor(buf: &[u8]) -> Result<TrackDesc, String> {
        let mut r = Reader { buf, pos: 0 };
        let mut d = TrackDesc::default();
        while let Some((field, wire)) = r.key()? {
            match field {
                super::TRACK_UUID if wire == 0 => d.uuid = r.varint()?,
                super::TRACK_NAME if wire == 2 => {
                    d.name = String::from_utf8_lossy(r.bytes()?).into_owned();
                }
                super::TRACK_PROCESS if wire == 2 => {
                    let mut p = Reader {
                        buf: r.bytes()?,
                        pos: 0,
                    };
                    while let Some((f, w)) = p.key()? {
                        match f {
                            super::PROCESS_PID if w == 0 => d.pid = Some(p.varint()?),
                            super::PROCESS_NAME if w == 2 => {
                                d.process_name =
                                    Some(String::from_utf8_lossy(p.bytes()?).into_owned());
                            }
                            _ => p.skip(w)?,
                        }
                    }
                }
                super::TRACK_THREAD if wire == 2 => {
                    let mut t = Reader {
                        buf: r.bytes()?,
                        pos: 0,
                    };
                    let (mut pid, mut tid) = (0, 0);
                    while let Some((f, w)) = t.key()? {
                        match f {
                            super::THREAD_PID if w == 0 => pid = t.varint()?,
                            super::THREAD_TID if w == 0 => tid = t.varint()?,
                            super::THREAD_NAME if w == 2 => {
                                d.thread_name =
                                    Some(String::from_utf8_lossy(t.bytes()?).into_owned());
                            }
                            _ => t.skip(w)?,
                        }
                    }
                    d.thread = Some((pid, tid));
                }
                _ => r.skip(wire)?,
            }
        }
        Ok(d)
    }

    fn parse_event(buf: &[u8], ts_ns: u64) -> Result<TrackEvent, String> {
        let mut r = Reader { buf, pos: 0 };
        let mut ev = TrackEvent {
            ts_ns,
            event_type: 0,
            track_uuid: 0,
            name: None,
            flows: Vec::new(),
        };
        while let Some((field, wire)) = r.key()? {
            match field {
                super::EVENT_TYPE if wire == 0 => ev.event_type = r.varint()?,
                super::EVENT_TRACK_UUID if wire == 0 => ev.track_uuid = r.varint()?,
                super::EVENT_NAME if wire == 2 => {
                    ev.name = Some(String::from_utf8_lossy(r.bytes()?).into_owned());
                }
                super::EVENT_FLOW_IDS if wire == 1 => ev.flows.push(r.fixed64()?),
                _ => r.skip(wire)?,
            }
        }
        Ok(ev)
    }

    /// Decodes a Perfetto trace produced by [`super::to_perfetto`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed wire construct.
    pub fn decode_trace(bytes: &[u8]) -> Result<DecodedTrace, String> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let mut out = DecodedTrace::default();
        while let Some((field, wire)) = r.key()? {
            if field != super::TRACE_PACKET || wire != 2 {
                r.skip(wire)?;
                continue;
            }
            out.packets += 1;
            let mut p = Reader {
                buf: r.bytes()?,
                pos: 0,
            };
            let mut ts = 0u64;
            let mut event_buf: Option<&[u8]> = None;
            while let Some((f, w)) = p.key()? {
                match f {
                    super::PACKET_TIMESTAMP if w == 0 => ts = p.varint()?,
                    super::PACKET_TRACK_DESCRIPTOR if w == 2 => {
                        out.descriptors.push(parse_descriptor(p.bytes()?)?);
                    }
                    super::PACKET_TRACK_EVENT if w == 2 => event_buf = Some(p.bytes()?),
                    _ => p.skip(w)?,
                }
            }
            if let Some(buf) = event_buf {
                out.events.push(parse_event(buf, ts)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::decode::decode_trace;
    use super::*;
    use crate::span::SpanLog;
    use cocopelia_gpusim::{SimTime, StreamId};

    fn entry(engine: EngineKind, start: u64, end: u64, label: &str) -> TraceEntry {
        TraceEntry {
            op: 0,
            stream: StreamId::from_raw(0),
            engine,
            label: label.to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: None,
            tag: None,
        }
    }

    fn two_device_trace() -> ServeTrace {
        let mut log = SpanLog::new();
        for (req, dev) in [(0u64, 0usize), (1, 1)] {
            log.record(
                None,
                req,
                None,
                SpanPhase::Queued,
                "queued",
                0,
                50,
                Some(req),
            );
            let d = log.record(
                None,
                req,
                Some(dev),
                SpanPhase::Dispatch,
                "attempt 0",
                50,
                300,
                Some(req),
            );
            log.record(
                Some(d),
                req,
                Some(dev),
                SpanPhase::H2d,
                "h2d",
                50,
                150,
                None,
            );
            log.record(
                Some(d),
                req,
                Some(dev),
                SpanPhase::Exec,
                "exec",
                150,
                280,
                None,
            );
            log.record(
                None,
                req,
                None,
                SpanPhase::Complete,
                "completed",
                300,
                300,
                None,
            );
        }
        ServeTrace {
            spans: log.into_spans(),
            lanes: (0..2)
                .map(|d| DeviceLane {
                    device: d,
                    name: format!("dev{d}"),
                    entries: vec![
                        entry(EngineKind::CopyH2d, 50, 150, "get A"),
                        entry(EngineKind::Compute, 150, 280, "gemm tile"),
                        entry(EngineKind::CopyD2h, 280, 300, "set C"),
                    ],
                })
                .collect(),
        }
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let decoded = decode_trace(&{
                // Wrap as a fake length-delimited packet field to reuse the
                // public decoder? Simpler: decode the raw varint here.
                buf.clone()
            });
            // decode_trace on a bare varint is not meaningful; check the
            // byte-level decoder through a real field instead.
            drop(decoded);
            let mut msg = Vec::new();
            put_uint(&mut msg, 7, v);
            // field 7, wire 0 → key byte 0x38.
            assert_eq!(msg[0], 0x38);
            let mut r = 0u64;
            let mut shift = 0;
            for &b in &msg[1..] {
                r |= u64::from(b & 0x7f) << shift;
                shift += 7;
            }
            assert_eq!(r, v);
        }
    }

    #[test]
    fn round_trip_counts_tracks_and_flows() {
        let trace = two_device_trace();
        let bytes = to_perfetto(&trace);
        let decoded = decode_trace(&bytes).expect("decodes");
        // serve + 2 devices.
        assert_eq!(decoded.process_tracks().len(), 3);
        // Each device: h2d, exec, d2h, requests.
        for d in 0..2 {
            assert_eq!(decoded.thread_tracks_of(device_pid(d)).len(), 4);
        }
        // 6 engine slices (begin+end) per device + spans.
        assert!(decoded.packets > decoded.descriptors.len());
        // Flows: queue span and dispatch span of each request share an id.
        for req in [0u64, 1] {
            let carriers: Vec<_> = decoded
                .events
                .iter()
                .filter(|e| e.flows.contains(&req))
                .collect();
            assert!(carriers.len() >= 2, "flow {req}: {carriers:?}");
            let tracks: std::collections::BTreeSet<u64> =
                carriers.iter().map(|e| e.track_uuid).collect();
            assert!(
                tracks.contains(&SERVE_QUEUE_UUID),
                "flow {req} must touch the queue track"
            );
            assert!(
                tracks.iter().any(|t| *t >= device_process_uuid(0)),
                "flow {req} must touch a device track"
            );
        }
    }

    #[test]
    fn per_track_timestamps_are_monotone_and_slices_balance() {
        let bytes = to_perfetto(&two_device_trace());
        let decoded = decode_trace(&bytes).expect("decodes");
        let uuids: std::collections::BTreeSet<u64> =
            decoded.events.iter().map(|e| e.track_uuid).collect();
        for uuid in uuids {
            let events = decoded.events_on(uuid);
            let mut prev = 0u64;
            let mut depth = 0i64;
            for e in &events {
                assert!(e.ts_ns >= prev, "track {uuid}: ts {} after {prev}", e.ts_ns);
                prev = e.ts_ns;
                match e.event_type {
                    TYPE_SLICE_BEGIN => depth += 1,
                    TYPE_SLICE_END => {
                        depth -= 1;
                        assert!(depth >= 0, "track {uuid}: end without begin");
                    }
                    TYPE_INSTANT => {}
                    other => panic!("unexpected event type {other}"),
                }
            }
            assert_eq!(depth, 0, "track {uuid}: unbalanced slices");
        }
    }

    #[test]
    fn track_uuids_are_unique() {
        let bytes = to_perfetto(&two_device_trace());
        let decoded = decode_trace(&bytes).expect("decodes");
        let mut uuids: Vec<u64> = decoded.descriptors.iter().map(|d| d.uuid).collect();
        let n = uuids.len();
        uuids.sort_unstable();
        uuids.dedup();
        assert_eq!(uuids.len(), n, "duplicate track descriptor uuids");
    }

    #[test]
    fn single_entry_export_has_one_process() {
        let entries = [entry(EngineKind::Compute, 10, 20, "k")];
        let decoded = decode_trace(&to_perfetto_single(&entries)).expect("decodes");
        assert_eq!(decoded.process_tracks().len(), 1);
        assert_eq!(decoded.thread_tracks_of(device_pid(0)).len(), 3);
        assert_eq!(
            decoded
                .events
                .iter()
                .filter(|e| e.event_type == TYPE_SLICE_BEGIN)
                .count(),
            1
        );
    }

    #[test]
    fn empty_trace_decodes_to_nothing() {
        let decoded = decode_trace(&to_perfetto(&ServeTrace::default())).expect("decodes");
        assert_eq!(decoded.packets, 0);
        assert!(decode_trace(&[0x0a]).is_err(), "truncated packet errors");
    }

    #[test]
    fn stream_writer_matches_batch_exporter_topology() {
        let trace = two_device_trace();
        let mut sink: Vec<u8> = Vec::new();
        {
            let mut w = StreamWriter::new(&mut sink);
            // Interleave lanes and spans in small batches, as the
            // executor's telemetry tick does.
            for lane in &trace.lanes {
                w.write_entries(lane.device, &lane.name, &lane.entries[..1])
                    .expect("write");
            }
            w.write_spans(&trace.spans[..3]).expect("write");
            for lane in &trace.lanes {
                w.write_entries(lane.device, &lane.name, &lane.entries[1..])
                    .expect("write");
            }
            w.write_spans(&trace.spans[3..]).expect("write");
            w.flush().expect("flush");
            assert!(w.packets() > 0);
            assert_eq!(w.bytes_written() as usize, sink.len());
        }
        let streamed = decode_trace(&sink).expect("streamed bytes decode");
        let batch = decode_trace(&to_perfetto(&trace)).expect("batch decodes");
        // Same descriptor set (order differs: lazily declared), and the
        // same multiset of events.
        let mut su: Vec<u64> = streamed.descriptors.iter().map(|d| d.uuid).collect();
        let mut bu: Vec<u64> = batch.descriptors.iter().map(|d| d.uuid).collect();
        su.sort_unstable();
        bu.sort_unstable();
        assert_eq!(su, bu, "streamed and batch track sets differ");
        assert_eq!(streamed.events.len(), batch.events.len());
        // Every track's begins and ends balance, so the trace is openable
        // no matter where the stream was cut.
        for d in &streamed.descriptors {
            let evs = streamed.events_on(d.uuid);
            let begins = evs
                .iter()
                .filter(|e| e.event_type == TYPE_SLICE_BEGIN)
                .count();
            let ends = evs
                .iter()
                .filter(|e| e.event_type == TYPE_SLICE_END)
                .count();
            assert_eq!(begins, ends, "unbalanced slices on track {}", d.name);
        }
    }

    #[test]
    fn stream_writer_declares_each_track_once() {
        let trace = two_device_trace();
        let mut sink: Vec<u8> = Vec::new();
        let mut w = StreamWriter::new(&mut sink);
        for _ in 0..3 {
            w.write_spans(&trace.spans).expect("write");
            for lane in &trace.lanes {
                w.write_entries(lane.device, &lane.name, &lane.entries)
                    .expect("write");
            }
        }
        w.flush().expect("flush");
        let decoded = decode_trace(&sink).expect("decodes");
        let mut uuids: Vec<u64> = decoded.descriptors.iter().map(|d| d.uuid).collect();
        let n = uuids.len();
        uuids.sort_unstable();
        uuids.dedup();
        assert_eq!(uuids.len(), n, "repeated batches re-declared tracks");
    }

    #[test]
    fn nested_lifecycle_slices_open_outer_first() {
        let trace = two_device_trace();
        let decoded = decode_trace(&to_perfetto(&trace)).expect("decodes");
        // On dev0's requests track the dispatch slice must open before its
        // h2d child (both start at 50 ns).
        let events = decoded.events_on(lifecycle_uuid(0));
        let first_begin = events
            .iter()
            .find(|e| e.event_type == TYPE_SLICE_BEGIN)
            .expect("has begins");
        assert_eq!(first_begin.name.as_deref(), Some("attempt 0"));
    }
}
