//! Text Gantt rendering of an execution trace — the pipeline anatomy of the
//! paper's Figure 2, promoted from the `pipeline_gantt` example so every
//! consumer (examples, CLI, reports) shares one renderer.

use crate::overlap::OverlapStats;
use cocopelia_gpusim::{EngineKind, TraceEntry};
use std::fmt::Write as _;

const ENGINES: [EngineKind; 3] = [
    EngineKind::CopyH2d,
    EngineKind::Compute,
    EngineKind::CopyD2h,
];

fn glyph(engine: EngineKind) -> char {
    match engine {
        EngineKind::CopyH2d => '>',
        EngineKind::Compute => '#',
        EngineKind::CopyD2h => '<',
    }
}

/// Renders an ASCII Gantt chart over `entries`: one row per engine, `width`
/// columns spanning the batch's time extent. `h2d` rows show `>`, compute
/// rows `#`, `d2h` rows `<`.
pub fn render(entries: &[TraceEntry], width: usize) -> String {
    let width = width.max(10);
    let t_start = entries
        .iter()
        .map(|e| e.start.as_nanos())
        .min()
        .unwrap_or(0);
    let t_end = entries.iter().map(|e| e.end.as_nanos()).max().unwrap_or(0);
    let span = (t_end - t_start).max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "time span: {:.3} ms .. {:.3} ms ({:.3} ms)",
        t_start as f64 / 1e6,
        t_end as f64 / 1e6,
        (t_end - t_start) as f64 / 1e6
    );
    for engine in ENGINES {
        let g = glyph(engine);
        let mut row = vec![' '; width];
        for e in entries.iter().filter(|e| e.engine == engine) {
            let a = ((e.start.as_nanos() - t_start) as f64 / span * width as f64) as usize;
            let b = ((e.end.as_nanos() - t_start) as f64 / span * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = g;
            }
        }
        let _ = writeln!(
            out,
            "{:>4} |{}|",
            engine.name(),
            row.iter().collect::<String>()
        );
    }
    out
}

/// Renders the per-engine busy/volume summary lines that accompany the
/// chart: busy time, share of the makespan, and bytes moved per engine,
/// plus the overlap-efficiency line derived from the same entries.
pub fn engine_summary(entries: &[TraceEntry]) -> String {
    let stats = OverlapStats::from_entries(entries);
    let makespan = stats.makespan_ns as f64 / 1e9;
    let mut out = String::new();
    for engine in ENGINES {
        let busy = stats.engine_busy_ns(engine) as f64 / 1e9;
        let bytes: usize = entries
            .iter()
            .filter(|e| e.engine == engine)
            .filter_map(|e| e.bytes)
            .sum();
        let _ = writeln!(
            out,
            "{:>4}: busy {:8.3} ms ({:5.1}% of makespan), {:9.1} MB moved",
            engine.name(),
            busy * 1e3,
            if makespan > 0.0 {
                100.0 * busy / makespan
            } else {
                0.0
            },
            bytes as f64 / 1e6
        );
    }
    let _ = writeln!(
        out,
        "overlap efficiency {:.2}x (busy {:.3} ms across engines, union {:.3} ms)",
        stats.efficiency(),
        stats.sum_busy_ns() as f64 / 1e6,
        stats.union_busy_ns as f64 / 1e6
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{SimTime, StreamId};

    fn entry(engine: EngineKind, start: u64, end: u64, bytes: Option<usize>) -> TraceEntry {
        TraceEntry {
            op: 0,
            stream: StreamId::from_raw(0),
            engine,
            label: "t".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes,
            tag: None,
        }
    }

    #[test]
    fn renders_all_three_rows() {
        let entries = [
            entry(EngineKind::CopyH2d, 0, 50, Some(1 << 20)),
            entry(EngineKind::Compute, 25, 100, None),
            entry(EngineKind::CopyD2h, 90, 120, Some(1 << 10)),
        ];
        let g = render(&entries, 40);
        assert!(g.contains("h2d"));
        assert!(g.contains("exec"));
        assert!(g.contains("d2h"));
        assert!(g.contains('>') && g.contains('#') && g.contains('<'));
    }

    #[test]
    fn empty_entries_do_not_panic() {
        let g = render(&[], 20);
        assert!(g.contains("time span"));
        let s = engine_summary(&[]);
        assert!(s.contains("overlap efficiency"));
    }

    #[test]
    fn summary_reports_bytes_and_efficiency() {
        let entries = [
            entry(EngineKind::CopyH2d, 0, 100, Some(2_000_000)),
            entry(EngineKind::Compute, 0, 100, None),
        ];
        let s = engine_summary(&entries);
        assert!(s.contains("2.0 MB"));
        assert!(s.contains("overlap efficiency 2.00x"));
    }
}
