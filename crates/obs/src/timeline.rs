//! Timetable-style per-device serve timeline.
//!
//! Renders a [`ServeTrace`] as device rows × virtual-time columns — the
//! serve-level sibling of the single-run Gantt (`Trace::gantt`): one row
//! per device engine (`h2d`/`exec`/`d2h`), one `events` row per device for
//! the fault-tolerance detours (retry `!`, quarantine `Q`), a `queue` row
//! showing waiting requests, and a `host` row when requests fell back to
//! host BLAS. This is the at-a-glance answer to "where did the overlap
//! go?" across a whole serve run, terminal-native where the Perfetto
//! export ([`crate::perfetto`]) is viewer-native.
//!
//! Glyphs: h2d `>`, exec `#`, d2h `<`, retry `!`, quarantine `Q`, host
//! fallback `H`, queued `.`, hedge `~`, probe `?`, cancel `x` (per
//! [`SpanPhase::glyph`]). When several events land in one column the
//! rarest wins (`Q` > `!`/`?`/`x` > `H`/`~` > engine work), so faults
//! never vanish under bulk transfer glyphs.

use crate::span::{ServeTrace, SpanPhase};
use cocopelia_gpusim::{EngineKind, SimTime};
use std::fmt::Write as _;

/// Rendering options for [`render`].
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Number of time columns.
    pub width: usize,
    /// Emit ANSI colour codes around fault glyphs.
    pub color: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 96,
            color: false,
        }
    }
}

/// Priority of a glyph when several land in one cell: higher wins.
fn glyph_rank(g: char) -> u8 {
    match g {
        'Q' => 5,
        '!' | '?' | 'x' => 4,
        'H' | '~' => 3,
        '#' => 2,
        '>' | '<' => 1,
        '.' => 1,
        _ => 0,
    }
}

/// Paints `glyph` over columns `[start_ns, end_ns)` of `row`, keeping the
/// higher-priority glyph per cell. Instants paint exactly one column.
fn paint(row: &mut [char], extent_ns: u64, start_ns: u64, end_ns: u64, glyph: char) {
    let width = row.len();
    if width == 0 || extent_ns == 0 {
        return;
    }
    let scale = width as f64 / extent_ns as f64;
    let a = ((start_ns as f64 * scale) as usize).min(width - 1);
    let b = (((end_ns as f64) * scale).ceil() as usize).clamp(a + 1, width);
    for cell in row.iter_mut().take(b).skip(a) {
        if glyph_rank(glyph) >= glyph_rank(*cell) {
            *cell = glyph;
        }
    }
}

fn engine_glyph(engine: EngineKind) -> char {
    match engine {
        EngineKind::CopyH2d => '>',
        EngineKind::CopyD2h => '<',
        EngineKind::Compute => '#',
    }
}

fn colorize(row: &[char], color: bool) -> String {
    if !color {
        return row.iter().collect();
    }
    let mut out = String::new();
    for &c in row {
        match c {
            'Q' => out.push_str("\x1b[31mQ\x1b[0m"),
            '!' => out.push_str("\x1b[33m!\x1b[0m"),
            'H' => out.push_str("\x1b[35mH\x1b[0m"),
            '~' => out.push_str("\x1b[36m~\x1b[0m"),
            '?' => out.push_str("\x1b[32m?\x1b[0m"),
            'x' => out.push_str("\x1b[34mx\x1b[0m"),
            other => out.push(other),
        }
    }
    out
}

/// Renders the timetable. Returns a multi-line string ending in a legend;
/// safe on empty traces.
pub fn render(trace: &ServeTrace, opts: &TimelineOptions) -> String {
    let width = opts.width.max(16);
    let extent = trace.extent_ns();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve timeline · {} device(s) · {} span(s) · 0 .. {}",
        trace.lanes.len(),
        trace.spans.len(),
        SimTime::from_nanos(extent)
    );
    if extent == 0 {
        let _ = writeln!(out, "(empty trace)");
        return out;
    }

    // Queue row: every queued span, drawn once for the whole run.
    let queued: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.phase == SpanPhase::Queued)
        .collect();
    if !queued.is_empty() {
        let mut row = vec![' '; width];
        for s in &queued {
            paint(&mut row, extent, s.start_ns, s.end_ns, '.');
        }
        let _ = writeln!(out, "{:>12} |{}|", "queue", colorize(&row, opts.color));
    }

    for lane in &trace.lanes {
        let _ = writeln!(
            out,
            "{:-^width$}",
            format!(" {} ", lane.name),
            width = width + 15
        );
        for engine in [
            EngineKind::CopyH2d,
            EngineKind::Compute,
            EngineKind::CopyD2h,
        ] {
            let mut row = vec![' '; width];
            for e in lane.entries.iter().filter(|e| e.engine == engine) {
                paint(
                    &mut row,
                    extent,
                    e.start.as_nanos(),
                    e.end.as_nanos(),
                    engine_glyph(engine),
                );
            }
            let _ = writeln!(
                out,
                "{:>12} |{}|",
                engine.name(),
                colorize(&row, opts.color)
            );
        }
        // Events row: fault-tolerance and straggler-defense detours
        // attributed to this device.
        let mut row = vec![' '; width];
        let mut any = false;
        for s in trace.spans.iter().filter(|s| s.device == Some(lane.device)) {
            match s.phase {
                SpanPhase::Retry
                | SpanPhase::Quarantine
                | SpanPhase::Hedge
                | SpanPhase::Probe
                | SpanPhase::Cancel
                | SpanPhase::Prefetch => {
                    paint(&mut row, extent, s.start_ns, s.end_ns, s.phase.glyph());
                    any = true;
                }
                _ => {}
            }
        }
        if any {
            let _ = writeln!(out, "{:>12} |{}|", "events", colorize(&row, opts.color));
        }
    }

    // Host row: host-fallback executions (device-less).
    let host: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.phase == SpanPhase::HostFallback)
        .collect();
    if !host.is_empty() {
        let mut row = vec![' '; width];
        for s in &host {
            paint(&mut row, extent, s.start_ns, s.end_ns, 'H');
        }
        let _ = writeln!(out, "{:>12} |{}|", "host", colorize(&row, opts.color));
    }

    let _ = writeln!(
        out,
        "legend: > h2d  # exec  < d2h  . queued  ! retry  Q quarantine  \
         H host-fallback  ~ hedge  ? probe  x cancel  + prefetch"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{DeviceLane, SpanLog};
    use cocopelia_gpusim::{StreamId, TraceEntry};

    fn entry(engine: EngineKind, start: u64, end: u64) -> TraceEntry {
        TraceEntry {
            op: 0,
            stream: StreamId::from_raw(0),
            engine,
            label: "t".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: None,
            tag: None,
        }
    }

    fn sample_trace() -> ServeTrace {
        let mut log = SpanLog::new();
        log.record(None, 0, None, SpanPhase::Queued, "queued", 0, 200, Some(0));
        log.record(
            None,
            0,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            200,
            500,
            Some(0),
        );
        log.record(
            None,
            0,
            Some(0),
            SpanPhase::Quarantine,
            "quarantined",
            500,
            500,
            None,
        );
        log.record(
            None,
            0,
            Some(1),
            SpanPhase::Retry,
            "attempt 1",
            500,
            900,
            None,
        );
        log.record(
            None,
            1,
            None,
            SpanPhase::HostFallback,
            "host",
            900,
            1000,
            None,
        );
        log.record(None, 1, None, SpanPhase::Queued, "queued", 0, 900, Some(1));
        ServeTrace {
            spans: log.into_spans(),
            lanes: vec![
                DeviceLane {
                    device: 0,
                    name: "dev0".into(),
                    entries: vec![
                        entry(EngineKind::CopyH2d, 200, 320),
                        entry(EngineKind::Compute, 320, 470),
                        entry(EngineKind::CopyD2h, 470, 500),
                    ],
                },
                DeviceLane {
                    device: 1,
                    name: "dev1".into(),
                    entries: vec![entry(EngineKind::Compute, 500, 880)],
                },
            ],
        }
    }

    #[test]
    fn timeline_shows_all_rows_and_fault_glyphs() {
        let t = render(&sample_trace(), &TimelineOptions::default());
        assert!(t.contains("dev0"), "{t}");
        assert!(t.contains("dev1"), "{t}");
        assert!(t.contains('Q'), "quarantine glyph missing:\n{t}");
        assert!(t.contains('!'), "retry glyph missing:\n{t}");
        assert!(t.contains('H'), "host glyph missing:\n{t}");
        assert!(t.contains("queue"), "{t}");
        assert!(t.contains("legend:"), "{t}");
    }

    #[test]
    fn fault_glyphs_win_over_engine_glyphs() {
        let mut row = vec![' '; 10];
        paint(&mut row, 100, 0, 100, '#');
        paint(&mut row, 100, 50, 50, 'Q');
        assert!(row.contains(&'Q'), "{row:?}");
        // And engine work cannot paint the quarantine back over.
        let q_at = row.iter().position(|&c| c == 'Q').unwrap();
        paint(&mut row, 100, 0, 100, '>');
        assert_eq!(row[q_at], 'Q');
    }

    #[test]
    fn color_mode_wraps_fault_glyphs() {
        let opts = TimelineOptions {
            width: 48,
            color: true,
        };
        let t = render(&sample_trace(), &opts);
        assert!(t.contains("\x1b[31mQ\x1b[0m"), "{t}");
        assert!(t.contains("\x1b[33m!\x1b[0m"), "{t}");
    }

    #[test]
    fn straggler_glyphs_show_in_events_rows() {
        let mut log = SpanLog::new();
        log.record(
            None,
            0,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0 (cancelled)",
            0,
            600,
            None,
        );
        log.record(
            None,
            0,
            Some(1),
            SpanPhase::Hedge,
            "hedge (won)",
            400,
            600,
            None,
        );
        log.record(
            None,
            0,
            Some(0),
            SpanPhase::Cancel,
            "cancelled",
            600,
            600,
            None,
        );
        log.record(
            None,
            u64::MAX,
            Some(0),
            SpanPhase::Probe,
            "probe ok",
            700,
            900,
            None,
        );
        let trace = ServeTrace {
            spans: log.into_spans(),
            lanes: vec![
                DeviceLane {
                    device: 0,
                    name: "dev0".into(),
                    entries: vec![entry(EngineKind::Compute, 0, 600)],
                },
                DeviceLane {
                    device: 1,
                    name: "dev1".into(),
                    entries: vec![entry(EngineKind::Compute, 400, 600)],
                },
            ],
        };
        let t = render(&trace, &TimelineOptions::default());
        assert!(t.contains('~'), "hedge glyph missing:\n{t}");
        assert!(t.contains('?'), "probe glyph missing:\n{t}");
        let cancel_in_events = t
            .lines()
            .any(|l| l.trim_start().starts_with("events") && l.contains('x'));
        assert!(cancel_in_events, "cancel glyph missing:\n{t}");
        assert!(t.contains("~ hedge"), "legend missing hedge:\n{t}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = render(&ServeTrace::default(), &TimelineOptions::default());
        assert!(t.contains("(empty trace)"));
    }

    #[test]
    fn instant_paints_single_column_at_extent_edge() {
        let mut row = vec![' '; 10];
        // An instant exactly at the extent must not panic or vanish.
        paint(&mut row, 100, 100, 100, 'Q');
        assert_eq!(row[9], 'Q');
    }
}
