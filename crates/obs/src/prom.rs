//! Prometheus text-exposition rendering of a [`Registry`].
//!
//! [`render_prom`] serializes every counter, gauge, and histogram in the
//! registry into the Prometheus exposition format (version 0.0.4): a
//! `# HELP`/`# TYPE` comment pair per metric family, plain samples for
//! counters and gauges, and cumulative `_bucket{le="…"}`/`_sum`/`_count`
//! series for histograms (the `+Inf` bucket includes the overflow
//! bucket, so `_bucket{le="+Inf"} == _count` always holds). Metric names
//! are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset.
//!
//! [`parse_prom`] is the inverse for round-trip testing: it reads an
//! exposition body back into `(name, labels, value)` samples.

use crate::metrics::{Histogram, Registry};
use std::fmt::Write as _;

/// Replaces characters outside the Prometheus name charset with `_`
/// (and prefixes `_` when the first character is invalid).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        // `{}` prints the shortest representation that round-trips
        // through `str::parse::<f64>()`, so render→parse is lossless.
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} Bounded histogram {name}.");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, bound) in h.bounds().iter().enumerate() {
        cumulative += h.counts()[i];
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            fmt_value(*bound)
        );
    }
    // The +Inf bucket folds in the overflow bucket (the trailing entry
    // of `counts()`), so it equals the total observation count.
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum()));
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Renders the registry in Prometheus text-exposition format.
pub fn render_prom(r: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in r.counters() {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# HELP {name} Monotonic counter {name}.");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in r.gauges() {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# HELP {name} Gauge {name}.");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(v));
    }
    for (name, h) in r.histograms() {
        render_histogram(&mut out, &sanitize_name(name), h);
    }
    out
}

/// One sample parsed back from an exposition body.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in source order (`le` for histogram buckets).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses a Prometheus text-exposition body into its samples. Comment
/// (`#`) and blank lines are skipped; malformed sample lines are errors.
pub fn parse_prom(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator in `{line}`", ln + 1))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse()
                .map_err(|_| format!("line {}: bad value `{v}`", ln + 1))?,
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label set", ln + 1))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label `{pair}`", ln + 1))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: unquoted label value `{v}`", ln + 1))?;
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name.to_owned(), labels)
            }
        };
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(samples: &'a [PromSample], name: &str) -> &'a PromSample {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("missing sample {name}"))
    }

    #[test]
    fn round_trip_counters_gauges_histograms() {
        let mut r = Registry::default();
        r.counter_add("serve_requests_total", 42);
        r.counter_add("fault_transient_total", 3);
        r.gauge_set("serve_occupancy", 0.8125);
        for v in [0.5, 1.5, 2.5, 9.0, 100.0] {
            r.histogram_observe("flow_secs", &[1.0, 2.0, 4.0, 8.0], v);
        }

        let text = render_prom(&r);
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("# HELP serve_occupancy "));
        assert!(text.contains("# TYPE flow_secs histogram"));

        let samples = parse_prom(&text).expect("rendered exposition parses");
        assert_eq!(sample(&samples, "serve_requests_total").value, 42.0);
        assert_eq!(sample(&samples, "fault_transient_total").value, 3.0);
        assert_eq!(sample(&samples, "serve_occupancy").value, 0.8125);
        assert_eq!(sample(&samples, "flow_secs_count").value, 5.0);
        assert_eq!(sample(&samples, "flow_secs_sum").value, 113.5);

        // Buckets are cumulative and +Inf equals _count even with
        // overflow observations (9.0 and 100.0 exceed the last bound).
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "flow_secs_bucket")
            .collect();
        assert_eq!(buckets.len(), 5, "4 bounds + +Inf");
        let les: Vec<&str> = buckets.iter().map(|b| b.labels[0].1.as_str()).collect();
        assert_eq!(les, vec!["1", "2", "4", "8", "+Inf"]);
        let counts: Vec<f64> = buckets.iter().map(|b| b.value).collect();
        assert_eq!(counts, vec![1.0, 2.0, 3.0, 3.0, 5.0]);
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "buckets are cumulative"
        );
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("ok_name:total"), "ok_name:total");
        assert_eq!(sanitize_name("bad-name.with/stuff"), "bad_name_with_stuff");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        let mut r = Registry::default();
        r.counter_add("weird-metric", 1);
        let samples = parse_prom(&render_prom(&r)).expect("parses");
        assert_eq!(samples[0].name, "weird_metric");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prom("name_only").is_err());
        assert!(parse_prom("name{le=\"1\" 3").is_err());
        assert!(parse_prom("name{le=1} 3").is_err());
        assert!(parse_prom("name nope").is_err());
        assert!(parse_prom("# comment\n\n").expect("ok").is_empty());
        let inf = parse_prom("x +Inf").expect("ok");
        assert_eq!(inf[0].value, f64::INFINITY);
    }
}
