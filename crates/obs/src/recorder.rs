//! Fixed-capacity span flight recorder.
//!
//! A [`FlightRecorder`] is a ring buffer over [`Span`]s: recording is
//! O(1), memory is bounded by the configured capacity, and the oldest
//! spans are dropped under pressure. When something goes wrong — an SLO
//! breach, a device quarantine — the recorder's full contents are
//! captured as a [`FlightDump`]: the last `capacity` spans leading up to
//! the incident, exportable to Perfetto or JSONL for post-mortems even
//! though the run itself keeps only O(ring) span memory.

use crate::span::{ServeTrace, Span};
use crate::SpanPhase;
use std::collections::VecDeque;

/// Bounded ring buffer of the most recent spans.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<Span>,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `cap` spans (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            ring: VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }

    /// Records a span, evicting the oldest if the ring is full. O(1).
    pub fn record(&mut self, span: Span) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span);
    }

    /// Spans currently held, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.ring.iter()
    }

    /// Number of spans currently held (≤ capacity, always).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total spans evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Captures the ring's full contents as an incident dump.
    pub fn dump(&self, reason: impl Into<String>, window: u64, at_ns: u64) -> FlightDump {
        FlightDump {
            reason: reason.into(),
            window,
            at_ns,
            dropped_before: self.dropped,
            spans: self.ring.iter().cloned().collect(),
        }
    }
}

/// A snapshot of the recorder ring at incident time.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Human-readable trigger, e.g. `SLO breach …` or `quarantine dev0`.
    pub reason: String,
    /// Telemetry window index in which the incident fired.
    pub window: u64,
    /// Virtual-time instant of the incident, nanoseconds.
    pub at_ns: u64,
    /// Spans that had already been evicted before the dump (the ring's
    /// blind spot; 0 means the dump is the complete history).
    pub dropped_before: u64,
    /// The ring's contents, oldest first.
    pub spans: Vec<Span>,
}

impl FlightDump {
    /// The dumped spans belonging to one request, in record order.
    pub fn request_spans(&self, request: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.request == request).collect()
    }

    /// True when the dump holds a full dispatch chain for `request`:
    /// at least one attempt (`Dispatch`/`Retry`/`HostFallback`) plus its
    /// terminal `Complete` instant.
    pub fn has_request_chain(&self, request: u64) -> bool {
        let spans = self.request_spans(request);
        let attempted = spans.iter().any(|s| {
            matches!(
                s.phase,
                SpanPhase::Dispatch | SpanPhase::Retry | SpanPhase::HostFallback
            )
        });
        let completed = spans.iter().any(|s| s.phase == SpanPhase::Complete);
        attempted && completed
    }

    /// Perfetto serialization of the dump (spans only; no engine lanes —
    /// the streaming trace file carries those).
    pub fn to_perfetto(&self) -> Vec<u8> {
        let trace = ServeTrace {
            spans: self.spans.clone(),
            lanes: Vec::new(),
        };
        crate::perfetto::to_perfetto(&trace)
    }

    /// JSONL serialization: one header line (reason, window, instant,
    /// blind-spot size) followed by one line per span.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"flight_dump\":{},\"window\":{},\"at_ns\":{},\"dropped_before\":{},\"reason\":{}}}\n",
            self.spans.len(),
            self.window,
            self.at_ns,
            self.dropped_before,
            json_escape(&self.reason),
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"request\":{},\"device\":{},\"phase\":\"{}\",\
                 \"label\":{},\"start_ns\":{},\"end_ns\":{},\"flow\":{}}}\n",
                s.id.0,
                s.parent.map(|p| p.0 as i64).unwrap_or(-1),
                s.request,
                s.device.map(|d| d as i64).unwrap_or(-1),
                s.phase.name(),
                json_escape(&s.label),
                s.start_ns,
                s.end_ns,
                s.flow.map(|f| f as i64).unwrap_or(-1),
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanLog;

    fn spans(n: u64) -> Vec<Span> {
        let mut log = SpanLog::default();
        for i in 0..n {
            log.record(
                None,
                i,
                Some(0),
                SpanPhase::Dispatch,
                format!("attempt {i}"),
                i * 10,
                i * 10 + 5,
                None,
            );
        }
        log.into_spans()
    }

    #[test]
    fn ring_drops_oldest_and_stays_bounded() {
        let mut r = FlightRecorder::new(4);
        for s in spans(10) {
            r.record(s);
            assert!(r.len() <= 4, "ring never exceeds capacity");
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let held: Vec<u64> = r.spans().map(|s| s.request).collect();
        assert_eq!(held, vec![6, 7, 8, 9], "oldest spans evicted first");
    }

    #[test]
    fn dump_captures_ring_in_order_with_blind_spot() {
        let mut r = FlightRecorder::new(3);
        for s in spans(5) {
            r.record(s);
        }
        let d = r.dump("test incident", 7, 12345);
        assert_eq!(d.spans.len(), 3);
        assert_eq!(d.dropped_before, 2);
        assert_eq!(d.window, 7);
        assert_eq!(d.reason, "test incident");
        let reqs: Vec<u64> = d.spans.iter().map(|s| s.request).collect();
        assert_eq!(reqs, vec![2, 3, 4]);
        assert_eq!(d.request_spans(3).len(), 1);
    }

    #[test]
    fn request_chain_detection() {
        let mut log = SpanLog::default();
        log.record(None, 1, Some(0), SpanPhase::Dispatch, "a", 0, 10, None);
        log.record(
            None,
            1,
            None,
            SpanPhase::Complete,
            "completed",
            10,
            10,
            None,
        );
        log.record(None, 2, None, SpanPhase::Queued, "queued", 0, 5, None);
        let mut r = FlightRecorder::new(8);
        for s in log.into_spans() {
            r.record(s);
        }
        let d = r.dump("x", 0, 10);
        assert!(d.has_request_chain(1));
        assert!(!d.has_request_chain(2), "queued-only is not a chain");
        assert!(!d.has_request_chain(99));
    }

    #[test]
    fn dump_exports_decode_and_serialize() {
        let mut r = FlightRecorder::new(8);
        for s in spans(3) {
            r.record(s);
        }
        let d = r.dump("slo breach: deadline_miss", 1, 50);
        let decoded =
            crate::perfetto::decode::decode_trace(&d.to_perfetto()).expect("dump decodes");
        assert!(decoded.packets > 0);
        let jsonl = d.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4, "header + 3 spans");
        assert!(jsonl.starts_with("{\"flight_dump\":3,"));
        assert!(jsonl.contains("\"phase\":\"dispatch\""));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        assert!(r.is_empty());
    }
}
