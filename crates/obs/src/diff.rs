//! Snapshot comparison: longitudinal regression detection between two
//! [`Snapshot`]s against relative thresholds.
//!
//! Entries are matched by their stable id. Each matched pair is classified
//! as regression / improvement / neutral from the relative makespan delta
//! (an overlap-efficiency collapse beyond threshold also regresses — a
//! slowdown hidden by a faster kernel should still fail the gate). Entries
//! present in the baseline but missing from the candidate count as
//! regressions too: lost coverage must never read as a pass. The report
//! renders as text, exports as a value tree, and answers
//! [`DiffReport::has_regressions`] for CI-friendly exit codes.

use crate::snapshot::Snapshot;
use serde::Value;
use std::fmt::Write as _;

/// Relative thresholds for classifying a metric delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Relative makespan growth beyond which an entry regresses
    /// (default 0.05 = 5 %).
    pub makespan_threshold: f64,
    /// Relative overlap-efficiency loss beyond which an entry regresses
    /// even when the makespan held (default 0.10).
    pub overlap_threshold: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            makespan_threshold: 0.05,
            overlap_threshold: 0.10,
        }
    }
}

/// Classification of one snapshot entry's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Performance got worse beyond threshold.
    Regression,
    /// Performance got better beyond threshold.
    Improvement,
    /// Within threshold either way.
    Neutral,
}

impl Verdict {
    /// Short lowercase name (`"regression"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::Neutral => "neutral",
        }
    }
}

/// One matched entry's comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryDiff {
    /// The sweep-entry id both snapshots share.
    pub id: String,
    /// Baseline makespan, nanoseconds.
    pub base_makespan_ns: u64,
    /// Candidate makespan, nanoseconds.
    pub new_makespan_ns: u64,
    /// Relative makespan delta `(new − base)/base`; positive is slower.
    pub makespan_delta_rel: f64,
    /// Baseline overlap efficiency.
    pub base_overlap: f64,
    /// Candidate overlap efficiency.
    pub new_overlap: f64,
    /// The classification.
    pub verdict: Verdict,
    /// Human-readable notes (tile changed, overlap collapsed, …).
    pub notes: Vec<String>,
}

impl EntryDiff {
    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".to_owned(), Value::Str(self.id.clone())),
            (
                "base_makespan_ns".to_owned(),
                Value::U64(self.base_makespan_ns),
            ),
            (
                "new_makespan_ns".to_owned(),
                Value::U64(self.new_makespan_ns),
            ),
            (
                "makespan_delta_rel".to_owned(),
                Value::F64(self.makespan_delta_rel),
            ),
            ("base_overlap".to_owned(), Value::F64(self.base_overlap)),
            ("new_overlap".to_owned(), Value::F64(self.new_overlap)),
            (
                "verdict".to_owned(),
                Value::Str(self.verdict.name().to_owned()),
            ),
            (
                "notes".to_owned(),
                Value::Seq(self.notes.iter().cloned().map(Value::Str).collect()),
            ),
        ])
    }
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Baseline snapshot label.
    pub base_label: String,
    /// Candidate snapshot label.
    pub new_label: String,
    /// Thresholds the classification used.
    pub config: DiffConfig,
    /// One diff per entry present in both snapshots, in baseline order.
    pub entries: Vec<EntryDiff>,
    /// Entry ids present in the baseline but missing from the candidate
    /// (counted as regressions — lost coverage is not a pass).
    pub missing: Vec<String>,
    /// Entry ids new in the candidate (informational).
    pub added: Vec<String>,
}

impl DiffReport {
    /// Compares `new` against the `base`line under `cfg` thresholds.
    ///
    /// # Errors
    ///
    /// Errors when the snapshots were taken on different testbeds —
    /// cross-machine deltas are meaningless for regression gating.
    pub fn compare(base: &Snapshot, new: &Snapshot, cfg: DiffConfig) -> Result<DiffReport, String> {
        if base.testbed != new.testbed {
            return Err(format!(
                "cannot compare snapshots from different testbeds (`{}` vs `{}`)",
                base.testbed, new.testbed
            ));
        }
        let mut entries = Vec::new();
        let mut missing = Vec::new();
        for b in &base.entries {
            let Some(n) = new.entry(&b.id) else {
                missing.push(b.id.clone());
                continue;
            };
            let delta = if b.makespan_ns == 0 {
                0.0
            } else {
                (n.makespan_ns as f64 - b.makespan_ns as f64) / b.makespan_ns as f64
            };
            let overlap_loss = if b.overlap_efficiency > 0.0 {
                (b.overlap_efficiency - n.overlap_efficiency) / b.overlap_efficiency
            } else {
                0.0
            };
            let mut notes = Vec::new();
            if b.tile != n.tile {
                notes.push(format!("selected tile changed {} -> {}", b.tile, n.tile));
            }
            if overlap_loss > cfg.overlap_threshold {
                notes.push(format!(
                    "overlap efficiency collapsed {:.2}x -> {:.2}x",
                    b.overlap_efficiency, n.overlap_efficiency
                ));
            }
            let verdict = if delta > cfg.makespan_threshold || overlap_loss > cfg.overlap_threshold
            {
                Verdict::Regression
            } else if delta < -cfg.makespan_threshold {
                Verdict::Improvement
            } else {
                Verdict::Neutral
            };
            entries.push(EntryDiff {
                id: b.id.clone(),
                base_makespan_ns: b.makespan_ns,
                new_makespan_ns: n.makespan_ns,
                makespan_delta_rel: delta,
                base_overlap: b.overlap_efficiency,
                new_overlap: n.overlap_efficiency,
                verdict,
                notes,
            });
        }
        let added = new
            .entries
            .iter()
            .filter(|n| base.entry(&n.id).is_none())
            .map(|n| n.id.clone())
            .collect();
        Ok(DiffReport {
            base_label: base.label.clone(),
            new_label: new.label.clone(),
            config: cfg,
            entries,
            missing,
            added,
        })
    }

    /// Number of entries with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.entries.iter().filter(|e| e.verdict == verdict).count()
    }

    /// True when any entry regressed or baseline coverage was lost —
    /// exactly when a CI gate should fail.
    pub fn has_regressions(&self) -> bool {
        !self.missing.is_empty() || self.count(Verdict::Regression) > 0
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("base_label".to_owned(), Value::Str(self.base_label.clone())),
            ("new_label".to_owned(), Value::Str(self.new_label.clone())),
            (
                "makespan_threshold".to_owned(),
                Value::F64(self.config.makespan_threshold),
            ),
            (
                "overlap_threshold".to_owned(),
                Value::F64(self.config.overlap_threshold),
            ),
            (
                "entries".to_owned(),
                Value::Seq(self.entries.iter().map(EntryDiff::to_value).collect()),
            ),
            (
                "missing".to_owned(),
                Value::Seq(self.missing.iter().cloned().map(Value::Str).collect()),
            ),
            (
                "added".to_owned(),
                Value::Seq(self.added.iter().cloned().map(Value::Str).collect()),
            ),
            (
                "regressions".to_owned(),
                Value::U64(self.count(Verdict::Regression) as u64),
            ),
            (
                "improvements".to_owned(),
                Value::U64(self.count(Verdict::Improvement) as u64),
            ),
            (
                "has_regressions".to_owned(),
                Value::Bool(self.has_regressions()),
            ),
        ])
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "comparing `{}` (base) vs `{}` (new), makespan threshold {:.1}%",
            self.base_label,
            self.new_label,
            self.config.makespan_threshold * 100.0
        );
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>8} {:<12} notes",
            "entry", "base ms", "new ms", "delta", "verdict"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<28} {:>12.3} {:>12.3} {:>+7.2}% {:<12} {}",
                e.id,
                e.base_makespan_ns as f64 / 1e6,
                e.new_makespan_ns as f64 / 1e6,
                e.makespan_delta_rel * 100.0,
                e.verdict.name(),
                e.notes.join("; ")
            );
        }
        for id in &self.missing {
            let _ = writeln!(out, "{id:<28} MISSING from new snapshot (regression)");
        }
        for id in &self.added {
            let _ = writeln!(out, "{id:<28} added in new snapshot");
        }
        let _ = writeln!(
            out,
            "\n{} regression(s), {} improvement(s), {} neutral, {} missing",
            self.count(Verdict::Regression),
            self.count(Verdict::Improvement),
            self.count(Verdict::Neutral),
            self.missing.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotEntry;
    use std::collections::BTreeMap;

    fn entry(id: &str, makespan: u64, overlap: f64, tile: usize) -> SnapshotEntry {
        SnapshotEntry {
            id: id.to_owned(),
            routine: "gemm".to_owned(),
            dims: vec![1024, 1024, 1024],
            tile,
            makespan_ns: makespan,
            elapsed_secs: makespan as f64 / 1e9,
            gflops: 100.0,
            overlap_efficiency: overlap,
            cache_hit_rate: 0.5,
            drift_mape: BTreeMap::new(),
        }
    }

    fn snap(label: &str, entries: Vec<SnapshotEntry>) -> Snapshot {
        let mut s = Snapshot::new(label, "tb");
        s.entries = entries;
        s
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap("b", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(!report.has_regressions());
        assert_eq!(report.count(Verdict::Neutral), 1);
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap("b", vec![entry("e1", 1_100_000, 2.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(report.has_regressions());
        assert_eq!(report.entries[0].verdict, Verdict::Regression);
        assert!((report.entries[0].makespan_delta_rel - 0.1).abs() < 1e-9);
    }

    #[test]
    fn speedup_beyond_threshold_improves() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap("b", vec![entry("e1", 900_000, 2.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(!report.has_regressions());
        assert_eq!(report.count(Verdict::Improvement), 1);
    }

    #[test]
    fn small_jitter_is_neutral() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap("b", vec![entry("e1", 1_020_000, 2.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert_eq!(report.count(Verdict::Neutral), 1);
        assert!(!report.has_regressions());
    }

    #[test]
    fn overlap_collapse_regresses_even_with_flat_makespan() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.5, 512)]);
        let new = snap("b", vec![entry("e1", 1_000_000, 1.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(report.has_regressions());
        assert!(report.entries[0].notes[0].contains("overlap"));
    }

    #[test]
    fn missing_entries_fail_the_gate() {
        let base = snap(
            "a",
            vec![
                entry("e1", 1_000_000, 2.0, 512),
                entry("e2", 2_000_000, 2.0, 512),
            ],
        );
        let new = snap("b", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(report.has_regressions());
        assert_eq!(report.missing, vec!["e2".to_owned()]);
    }

    #[test]
    fn added_entries_are_informational() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap(
            "b",
            vec![
                entry("e1", 1_000_000, 2.0, 512),
                entry("e3", 500_000, 2.0, 512),
            ],
        );
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(!report.has_regressions());
        assert_eq!(report.added, vec!["e3".to_owned()]);
    }

    #[test]
    fn tile_change_is_noted() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap("b", vec![entry("e1", 1_000_000, 2.0, 1024)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        assert!(report.entries[0].notes[0].contains("tile changed 512 -> 1024"));
    }

    #[test]
    fn cross_testbed_comparison_is_rejected() {
        let base = snap("a", vec![]);
        let mut new = snap("b", vec![]);
        new.testbed = "other".to_owned();
        assert!(DiffReport::compare(&base, &new, DiffConfig::default()).is_err());
    }

    #[test]
    fn render_and_json_cover_the_report() {
        let base = snap("a", vec![entry("e1", 1_000_000, 2.0, 512)]);
        let new = snap("b", vec![entry("e1", 1_200_000, 2.0, 512)]);
        let report = DiffReport::compare(&base, &new, DiffConfig::default()).expect("compares");
        let text = report.render();
        assert!(text.contains("regression"));
        assert!(text.contains("e1"));
        let json = serde_json::to_string(&report.to_value()).expect("serializes");
        assert!(json.contains("\"has_regressions\":true"));
        assert!(json.contains("\"regressions\":1"));
    }
}
