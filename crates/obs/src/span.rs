//! Request-lifecycle spans: the serve-native trace model.
//!
//! The simulator's [`TraceEntry`] records what each *engine* did; a span
//! records what each *request* went through — submit, queue wait,
//! dispatch, operand uploads, tile execution, downloads, and the
//! fault-tolerance detours (retry, quarantine, host fallback). Spans and
//! per-device engine entries together form a [`ServeTrace`], the input of
//! every serve-side exporter: the Chrome-trace JSON writer, the Perfetto
//! protobuf writer ([`crate::perfetto`]), and the timetable renderer
//! ([`crate::timeline`]).
//!
//! Flow linkage: a request's queue-wait span and its first device span
//! carry the same [`Span::flow`] id, so trace viewers draw an arrow from
//! "waited here" to "ran there" — the queue-to-device hand-off the
//! scheduling policies compete on.
//!
//! # Span-phase taxonomy
//!
//! | phase | glyph | kind | meaning |
//! |---|---|---|---|
//! | [`Submit`](SpanPhase::Submit) | `^` | instant | request entered the executor |
//! | [`Queued`](SpanPhase::Queued) | `.` | interval | waiting for dispatch |
//! | [`Dispatch`](SpanPhase::Dispatch) | `=` | interval | first execution attempt on a device |
//! | [`H2d`](SpanPhase::H2d) | `>` | interval | operand uploads of one attempt (child) |
//! | [`Exec`](SpanPhase::Exec) | `#` | interval | tile execution of one attempt (child) |
//! | [`D2h`](SpanPhase::D2h) | `<` | interval | result downloads of one attempt (child) |
//! | [`Retry`](SpanPhase::Retry) | `!` | interval | re-attempt after a fault |
//! | [`Quarantine`](SpanPhase::Quarantine) | `Q` | instant | a device was quarantined |
//! | [`HostFallback`](SpanPhase::HostFallback) | `H` | interval | completion on the host CPU |
//! | [`Reject`](SpanPhase::Reject) | `X` | instant | shed by admission/backpressure |
//! | [`Coalesce`](SpanPhase::Coalesce) | `&` | instant | merged onto an identical queued request |
//! | [`Hedge`](SpanPhase::Hedge) | `~` | interval | speculative duplicate attempt on a peer device |
//! | [`Probe`](SpanPhase::Probe) | `?` | interval | canary GEMM testing a quarantined device |
//! | [`Cancel`](SpanPhase::Cancel) | `x` | instant | the losing side of a hedge race was undone |
//! | [`Prefetch`](SpanPhase::Prefetch) | `+` | interval | speculative upload of a *queued* request's operands |
//! | [`Complete`](SpanPhase::Complete) | `*` | instant | terminal status reached |
//!
//! A `Hedge` span deliberately *overlaps* the `Dispatch`/`Retry` span it
//! races (both run at once — that is the point), so hedges are excluded
//! from the attempt non-overlap invariant and governed by invariant 6 of
//! [`check_spans`] instead. `Probe` spans carry the sentinel request id
//! `u64::MAX`: they belong to the executor's health machinery, not to any
//! request.

use cocopelia_gpusim::TraceEntry;
use serde::Value;
use std::collections::HashMap;

/// Unique identity of one span within a [`SpanLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Lifecycle phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanPhase {
    /// The request entered the executor (instant).
    Submit,
    /// The request sat in the queue waiting for dispatch.
    Queued,
    /// One execution attempt on a device (first attempt).
    Dispatch,
    /// Operand uploads of one attempt (aggregate over h2d entries).
    H2d,
    /// Tile execution of one attempt (aggregate over compute entries).
    Exec,
    /// Result downloads of one attempt (aggregate over d2h entries).
    D2h,
    /// A re-attempt after a fault (dispatch span of attempt > 0).
    Retry,
    /// A device was quarantined while serving the request (instant).
    Quarantine,
    /// The request completed on the host after pool-wide quarantine.
    HostFallback,
    /// The request was shed by admission control or backpressure
    /// (instant; open-arrival serving).
    Reject,
    /// The request coalesced onto an identical queued request and will
    /// share its execution (instant; open-arrival serving).
    Coalesce,
    /// A speculative duplicate of an in-flight attempt on another device,
    /// racing the straggling primary (straggler defense). Overlaps the
    /// `Dispatch`/`Retry` span it hedges by design.
    Hedge,
    /// A canary probe (tiny GEMM) testing whether a quarantined device
    /// has healed; carries the sentinel request id `u64::MAX`.
    Probe,
    /// The losing side of a hedge race was cancelled and its virtual time
    /// rewound (instant, placed at the end of the cancelled attempt).
    Cancel,
    /// A speculative h2d upload of a *queued* request's shared operands,
    /// riding the idle DMA engine under another request's compute
    /// (cross-request prefetch). Carries the *target* request's id and
    /// deliberately overlaps the running request's attempt span; it is
    /// not an attempt itself, so the attempt invariants ignore it.
    Prefetch,
    /// The request reached a terminal status (instant).
    Complete,
}

impl SpanPhase {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Submit => "submit",
            SpanPhase::Queued => "queued",
            SpanPhase::Dispatch => "dispatch",
            SpanPhase::H2d => "h2d",
            SpanPhase::Exec => "exec",
            SpanPhase::D2h => "d2h",
            SpanPhase::Retry => "retry",
            SpanPhase::Quarantine => "quarantine",
            SpanPhase::HostFallback => "host-fallback",
            SpanPhase::Reject => "reject",
            SpanPhase::Coalesce => "coalesce",
            SpanPhase::Hedge => "hedge",
            SpanPhase::Probe => "probe",
            SpanPhase::Cancel => "cancel",
            SpanPhase::Prefetch => "prefetch",
            SpanPhase::Complete => "complete",
        }
    }

    /// Timeline glyph ([`crate::timeline`]): one character per phase.
    pub fn glyph(self) -> char {
        match self {
            SpanPhase::Submit => '^',
            SpanPhase::Queued => '.',
            SpanPhase::Dispatch => '=',
            SpanPhase::H2d => '>',
            SpanPhase::Exec => '#',
            SpanPhase::D2h => '<',
            SpanPhase::Retry => '!',
            SpanPhase::Quarantine => 'Q',
            SpanPhase::HostFallback => 'H',
            SpanPhase::Reject => 'X',
            SpanPhase::Coalesce => '&',
            SpanPhase::Hedge => '~',
            SpanPhase::Probe => '?',
            SpanPhase::Cancel => 'x',
            SpanPhase::Prefetch => '+',
            SpanPhase::Complete => '*',
        }
    }
}

/// One interval (or instant, when `start_ns == end_ns`) in a request's
/// lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Identity within the log.
    pub id: SpanId,
    /// Enclosing span (an attempt's `H2d`/`Exec`/`D2h` spans point at
    /// their `Dispatch`/`Retry` span).
    pub parent: Option<SpanId>,
    /// The request this span belongs to ([`RequestId`] value).
    ///
    /// [`RequestId`]: https://docs.rs/cocopelia-runtime
    pub request: u64,
    /// Device the span ran on; `None` for queue-side and host spans.
    pub device: Option<usize>,
    /// Lifecycle phase.
    pub phase: SpanPhase,
    /// Human-readable description (attempt number, fault class, status).
    pub label: String,
    /// Start, in virtual nanoseconds.
    pub start_ns: u64,
    /// End, in virtual nanoseconds (`== start_ns` for instants).
    pub end_ns: u64,
    /// Flow id linking this span to others of the same hand-off (the
    /// queue-wait span and the first device span of a request share one).
    pub flow: Option<u64>,
}

impl Span {
    /// Duration in nanoseconds (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Append-only span collector with monotonically assigned ids.
///
/// Optionally capacity-bounded: [`enforce_cap_amortized`](Self::enforce_cap_amortized)
/// drops the *oldest* spans once the log outgrows its cap, so a
/// long-running traced serve keeps O(cap) span memory instead of
/// O(requests). Ids stay monotonic across drops, so a consumer can use
/// an id watermark to find spans it has not seen yet even after the
/// front of the log was discarded.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
    next: u64,
    dropped: u64,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Records a span, assigning the next id; returns the assigned id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        parent: Option<SpanId>,
        request: u64,
        device: Option<usize>,
        phase: SpanPhase,
        label: impl Into<String>,
        start_ns: u64,
        end_ns: u64,
        flow: Option<u64>,
    ) -> SpanId {
        let id = SpanId(self.next);
        self.next += 1;
        self.spans.push(Span {
            id,
            parent,
            request,
            device,
            phase,
            label: label.into(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            flow,
        });
        id
    }

    /// All recorded spans, in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total spans discarded by cap enforcement so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans whose id is `>= mark`, i.e. those recorded since a consumer
    /// last noted [`next_id`](Self::next_id) — correct even after older
    /// spans were dropped, because ids are monotonic in record order.
    pub fn spans_since(&self, mark: u64) -> &[Span] {
        let at = self.spans.partition_point(|s| s.id.0 < mark);
        &self.spans[at..]
    }

    /// The id the next recorded span will get (a watermark for
    /// [`spans_since`](Self::spans_since)).
    pub fn next_id(&self) -> u64 {
        self.next
    }

    /// Drops the oldest spans so at most `cap` remain. O(len) per call;
    /// hot paths should prefer [`enforce_cap_amortized`](Self::enforce_cap_amortized).
    pub fn truncate_front_to(&mut self, cap: usize) -> usize {
        if self.spans.len() <= cap {
            return 0;
        }
        let excess = self.spans.len() - cap;
        self.spans.drain(..excess);
        self.dropped += excess as u64;
        excess
    }

    /// Amortized capacity enforcement: drops down to `cap` only once the
    /// log exceeds `cap + cap/4 + 1`, so per-record cost stays O(1)
    /// amortized while in-flight memory stays below `1.25 × cap + 2`
    /// spans. Call [`truncate_front_to`](Self::truncate_front_to) once at
    /// the end for an exact bound.
    pub fn enforce_cap_amortized(&mut self, cap: usize) -> usize {
        let slack = cap / 4 + 1;
        if self.spans.len() > cap + slack {
            self.truncate_front_to(cap)
        } else {
            0
        }
    }

    /// Consumes the log, returning the spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

/// One device's engine-level trace entries, with the device identity the
/// plain `&[TraceEntry]` merge path loses.
#[derive(Debug, Clone, Default)]
pub struct DeviceLane {
    /// Device index within the pool.
    pub device: usize,
    /// Display name (`dev0 (testbed-i)`).
    pub name: String,
    /// The device's entries, in its own record order.
    pub entries: Vec<TraceEntry>,
}

/// The complete serve-side trace: request-lifecycle spans plus per-device
/// engine lanes. Input of every serve exporter and of the timetable
/// renderer.
#[derive(Debug, Clone, Default)]
pub struct ServeTrace {
    /// Request-lifecycle spans, in record order.
    pub spans: Vec<Span>,
    /// Per-device engine entries, in device order.
    pub lanes: Vec<DeviceLane>,
}

impl ServeTrace {
    /// Latest end timestamp across spans and lanes, in nanoseconds.
    pub fn extent_ns(&self) -> u64 {
        let span_end = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        let lane_end = self
            .lanes
            .iter()
            .flat_map(|l| l.entries.iter())
            .map(|e| e.end.as_nanos())
            .max()
            .unwrap_or(0);
        span_end.max(lane_end)
    }

    /// Spans of one request, in record order.
    pub fn request_spans(&self, request: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.request == request).collect()
    }

    /// JSON value of the whole trace (spans plus lane summaries), for
    /// inspection dumps.
    pub fn to_value(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Value::Map(vec![
                    ("id".to_owned(), Value::U64(s.id.0)),
                    (
                        "parent".to_owned(),
                        s.parent.map_or(Value::Null, |p| Value::U64(p.0)),
                    ),
                    ("request".to_owned(), Value::U64(s.request)),
                    (
                        "device".to_owned(),
                        s.device.map_or(Value::Null, |d| Value::U64(d as u64)),
                    ),
                    ("phase".to_owned(), Value::Str(s.phase.name().to_owned())),
                    ("label".to_owned(), Value::Str(s.label.clone())),
                    ("start_ns".to_owned(), Value::U64(s.start_ns)),
                    ("end_ns".to_owned(), Value::U64(s.end_ns)),
                    ("flow".to_owned(), s.flow.map_or(Value::Null, Value::U64)),
                ])
            })
            .collect();
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                Value::Map(vec![
                    ("device".to_owned(), Value::U64(l.device as u64)),
                    ("name".to_owned(), Value::Str(l.name.clone())),
                    ("entries".to_owned(), Value::U64(l.entries.len() as u64)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("spans".to_owned(), Value::Seq(spans)),
            ("lanes".to_owned(), Value::Seq(lanes)),
        ])
    }
}

/// Checks the structural invariants of a span log. Extends the trace
/// invariants of [`crate::invariants::check_entries`] to the request
/// lifecycle:
///
/// 1. every span ends no earlier than it starts;
/// 2. a request's queue-wait span ends no later than its first device
///    attempt starts — a request cannot run while still queued;
/// 3. re-issues of one request's execution (its `Dispatch`/`Retry`/
///    `HostFallback` spans — the serve-level twin of obs invariant 5)
///    never overlap in time: a retry must only start after its failed
///    predecessor's attempt is over;
/// 4. every parent reference resolves to a recorded span, and the child
///    lies within its parent's interval;
/// 5. a flow id is shared by at least two spans — a dangling flow links
///    nothing;
/// 6. hedge/cancel consistency: every `Cancel` span is an *instant*
///    placed exactly at the end of a same-request `Hedge`, `Dispatch`,
///    or `Retry` span (a cancellation that cancels nothing is an orphan),
///    and every `Hedge` span overlaps a same-request `Dispatch` or
///    `Retry` span in time — a hedge that races nothing is a leak.
///    `Hedge` spans are deliberately excluded from invariant 3: they
///    overlap the attempt they race by design.
///
/// # Errors
///
/// Returns every violated invariant as a human-readable message.
pub fn check_spans(spans: &[Span]) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let by_id: HashMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    if by_id.len() != spans.len() {
        problems.push("duplicate span ids in the log".to_owned());
    }
    for s in spans {
        if s.end_ns < s.start_ns {
            problems.push(format!(
                "span {} ({}) ends before it starts: {} < {}",
                s.id.0,
                s.phase.name(),
                s.end_ns,
                s.start_ns
            ));
        }
        if let Some(p) = s.parent {
            match by_id.get(&p) {
                None => problems.push(format!(
                    "span {} ({}) references missing parent {}",
                    s.id.0,
                    s.phase.name(),
                    p.0
                )),
                Some(parent) => {
                    if s.start_ns < parent.start_ns || s.end_ns > parent.end_ns {
                        problems.push(format!(
                            "span {} ({}) [{}, {}] escapes its parent {} [{}, {}]",
                            s.id.0,
                            s.phase.name(),
                            s.start_ns,
                            s.end_ns,
                            p.0,
                            parent.start_ns,
                            parent.end_ns
                        ));
                    }
                }
            }
        }
    }
    // Per request: queue precedes execution, and attempts never overlap.
    let mut attempts: HashMap<u64, Vec<(u64, u64, u64)>> = HashMap::new();
    let mut queued_end: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        match s.phase {
            SpanPhase::Dispatch | SpanPhase::Retry | SpanPhase::HostFallback => {
                attempts
                    .entry(s.request)
                    .or_default()
                    .push((s.start_ns, s.end_ns, s.id.0));
            }
            SpanPhase::Queued => {
                let e = queued_end.entry(s.request).or_insert(s.end_ns);
                *e = (*e).max(s.end_ns);
            }
            _ => {}
        }
    }
    for (req, mut spans) in attempts {
        spans.sort_unstable();
        if let (Some(&qe), Some(&(first, ..))) = (queued_end.get(&req), spans.first()) {
            if first < qe {
                problems.push(format!(
                    "request {req} starts executing at {first} while still queued until {qe}"
                ));
            }
        }
        for w in spans.windows(2) {
            let (_, e0, id0) = w[0];
            let (s1, _, id1) = w[1];
            if s1 < e0 {
                problems.push(format!(
                    "request {req}: re-issued attempt (span {id1}) starts at {s1} \
                     before the previous attempt (span {id0}) ends at {e0}"
                ));
            }
        }
    }
    // Invariant 6: hedges race a live attempt; cancels land on the end of
    // the span they cancel.
    let mut hedges: HashMap<u64, Vec<&Span>> = HashMap::new();
    let mut cancels: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in spans {
        match s.phase {
            SpanPhase::Hedge => hedges.entry(s.request).or_default().push(s),
            SpanPhase::Cancel => cancels.entry(s.request).or_default().push(s),
            _ => {}
        }
    }
    for (req, list) in &cancels {
        for c in list {
            if c.start_ns != c.end_ns {
                problems.push(format!(
                    "request {req}: cancel span {} is not an instant \
                     ([{}, {}])",
                    c.id.0, c.start_ns, c.end_ns
                ));
            }
            let anchored = spans.iter().any(|s| {
                s.request == *req
                    && matches!(
                        s.phase,
                        SpanPhase::Hedge | SpanPhase::Dispatch | SpanPhase::Retry
                    )
                    && s.end_ns == c.start_ns
            });
            if !anchored {
                problems.push(format!(
                    "request {req}: cancel span {} at {} matches the end of \
                     no hedge/dispatch/retry span of the request",
                    c.id.0, c.start_ns
                ));
            }
        }
    }
    for (req, list) in &hedges {
        for h in list {
            let races = spans.iter().any(|s| {
                s.request == *req
                    && matches!(s.phase, SpanPhase::Dispatch | SpanPhase::Retry)
                    && s.start_ns < h.end_ns
                    && h.start_ns < s.end_ns
            });
            if !races {
                problems.push(format!(
                    "request {req}: hedge span {} [{}, {}] overlaps no \
                     dispatch/retry attempt of the request",
                    h.id.0, h.start_ns, h.end_ns
                ));
            }
        }
    }
    // Flows must link at least two spans.
    let mut flow_refs: HashMap<u64, usize> = HashMap::new();
    for s in spans {
        if let Some(f) = s.flow {
            *flow_refs.entry(f).or_default() += 1;
        }
    }
    for (f, n) in flow_refs {
        if n < 2 {
            problems.push(format!("flow {f} links only {n} span(s)"));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_enforcement_drops_oldest_and_keeps_ids_monotonic() {
        let mut log = SpanLog::new();
        for i in 0..100u64 {
            log.record(None, i, None, SpanPhase::Submit, "s", i, i, None);
            log.enforce_cap_amortized(16);
            assert!(log.len() <= 16 + 16 / 4 + 1, "amortized bound holds");
        }
        log.truncate_front_to(16);
        assert_eq!(log.len(), 16);
        assert_eq!(log.dropped(), 84);
        let ids: Vec<u64> = log.spans().iter().map(|s| s.id.0).collect();
        assert_eq!(ids, (84..100).collect::<Vec<_>>(), "oldest dropped first");
        // Watermark lookup still works across the dropped front.
        assert_eq!(log.spans_since(0).len(), 16);
        assert_eq!(log.spans_since(98).len(), 2);
        assert_eq!(log.spans_since(log.next_id()).len(), 0);
        // Ids keep advancing after drops.
        let id = log.record(None, 0, None, SpanPhase::Submit, "s", 0, 0, None);
        assert_eq!(id.0, 100);
    }

    #[test]
    fn truncate_on_a_small_log_is_a_no_op() {
        let mut log = SpanLog::new();
        log.record(None, 0, None, SpanPhase::Submit, "s", 0, 0, None);
        assert_eq!(log.truncate_front_to(16), 0);
        assert_eq!(log.enforce_cap_amortized(16), 0);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.len(), 1);
    }

    fn log_request(log: &mut SpanLog, req: u64, retries: u64, quarantine: bool) {
        // submit → queued → dispatch (+ retries) → complete, in order.
        log.record(None, req, None, SpanPhase::Submit, "submit", 0, 0, None);
        log.record(
            None,
            req,
            None,
            SpanPhase::Queued,
            "queued",
            0,
            100,
            Some(req),
        );
        let d = log.record(
            None,
            req,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            100,
            200,
            Some(req),
        );
        log.record(Some(d), req, Some(0), SpanPhase::H2d, "h2d", 100, 150, None);
        log.record(
            Some(d),
            req,
            Some(0),
            SpanPhase::Exec,
            "exec",
            150,
            190,
            None,
        );
        log.record(Some(d), req, Some(0), SpanPhase::D2h, "d2h", 190, 200, None);
        let mut t = 200;
        for k in 0..retries {
            if quarantine {
                log.record(
                    None,
                    req,
                    Some(0),
                    SpanPhase::Quarantine,
                    "quarantined dev0",
                    t,
                    t,
                    None,
                );
            }
            log.record(
                None,
                req,
                Some(1),
                SpanPhase::Retry,
                format!("attempt {}", k + 1),
                t,
                t + 100,
                None,
            );
            t += 100;
        }
        log.record(
            None,
            req,
            None,
            SpanPhase::Complete,
            "completed",
            t,
            t,
            None,
        );
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut log = SpanLog::new();
        log_request(&mut log, 0, 0, false);
        log_request(&mut log, 1, 2, true);
        assert!(check_spans(log.spans()).is_ok());
        assert_eq!(log.len(), 7 + 11);
    }

    #[test]
    fn retry_spans_never_overlap_invariant() {
        let mut log = SpanLog::new();
        log.record(
            None,
            3,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            100,
            300,
            None,
        );
        // A retry that starts before the first attempt ends is the span
        // twin of obs invariant 5 — and must be reported.
        log.record(
            None,
            3,
            Some(1),
            SpanPhase::Retry,
            "attempt 1",
            250,
            400,
            None,
        );
        let problems = check_spans(log.spans()).expect_err("overlapping re-issue");
        assert!(
            problems.iter().any(|p| p.contains("re-issued attempt")),
            "{problems:?}"
        );
    }

    #[test]
    fn quarantine_path_is_instant_and_passes() {
        let mut log = SpanLog::new();
        log.record(None, 5, None, SpanPhase::Queued, "queued", 0, 50, Some(5));
        log.record(
            None,
            5,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            50,
            150,
            Some(5),
        );
        log.record(
            None,
            5,
            Some(0),
            SpanPhase::Quarantine,
            "quarantined dev0 after fatal fault",
            150,
            150,
            None,
        );
        log.record(
            None,
            5,
            None,
            SpanPhase::HostFallback,
            "host fallback",
            150,
            900,
            None,
        );
        assert!(check_spans(log.spans()).is_ok());
    }

    #[test]
    fn execution_before_queue_end_reported() {
        let mut log = SpanLog::new();
        log.record(None, 9, None, SpanPhase::Queued, "queued", 0, 500, Some(9));
        log.record(
            None,
            9,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            400,
            600,
            Some(9),
        );
        let problems = check_spans(log.spans()).expect_err("queued overlap");
        assert!(
            problems.iter().any(|p| p.contains("still queued")),
            "{problems:?}"
        );
    }

    #[test]
    fn parent_and_flow_violations_reported() {
        let mut log = SpanLog::new();
        log.record(
            Some(SpanId(77)),
            1,
            Some(0),
            SpanPhase::H2d,
            "h2d",
            0,
            10,
            Some(42),
        );
        let problems = check_spans(log.spans()).expect_err("bad refs");
        assert!(problems.iter().any(|p| p.contains("missing parent")));
        assert!(problems.iter().any(|p| p.contains("flow 42")));
    }

    #[test]
    fn child_escaping_parent_reported() {
        let mut log = SpanLog::new();
        let d = log.record(
            None,
            1,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            100,
            200,
            None,
        );
        log.record(Some(d), 1, Some(0), SpanPhase::D2h, "d2h", 150, 250, None);
        let problems = check_spans(log.spans()).expect_err("child escapes");
        assert!(
            problems.iter().any(|p| p.contains("escapes")),
            "{problems:?}"
        );
    }

    #[test]
    fn reversed_span_normalised_at_record_and_reported_when_forced() {
        let mut log = SpanLog::new();
        log.record(None, 0, None, SpanPhase::Queued, "q", 100, 40, None);
        // record() clamps end to start, so the log stays well-formed.
        assert_eq!(log.spans()[0].end_ns, 100);
        let bad = Span {
            id: SpanId(9),
            parent: None,
            request: 0,
            device: None,
            phase: SpanPhase::Exec,
            label: "x".into(),
            start_ns: 10,
            end_ns: 5,
            flow: None,
        };
        assert!(check_spans(&[bad]).is_err());
    }

    #[test]
    fn hedge_race_with_anchored_cancel_passes() {
        let mut log = SpanLog::new();
        // Primary attempt on dev0, clamped to the hedge's win time; the
        // hedge on dev1 starts mid-flight and finishes first.
        log.record(
            None,
            7,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0 (cancelled)",
            100,
            260,
            None,
        );
        log.record(
            None,
            7,
            Some(1),
            SpanPhase::Hedge,
            "hedge on dev1 (won)",
            200,
            260,
            None,
        );
        log.record(
            None,
            7,
            Some(0),
            SpanPhase::Cancel,
            "cancelled: hedge won",
            260,
            260,
            None,
        );
        assert!(check_spans(log.spans()).is_ok());
    }

    #[test]
    fn orphan_cancel_and_raceless_hedge_reported() {
        let mut log = SpanLog::new();
        log.record(
            None,
            8,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            100,
            200,
            None,
        );
        // A hedge that only starts after the attempt is over races nothing.
        log.record(None, 8, Some(1), SpanPhase::Hedge, "hedge", 200, 300, None);
        // A cancel instant matching no span end is an orphan.
        log.record(
            None,
            8,
            Some(1),
            SpanPhase::Cancel,
            "cancel",
            250,
            250,
            None,
        );
        let problems = check_spans(log.spans()).expect_err("invariant 6");
        assert!(
            problems.iter().any(|p| p.contains("overlaps no")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("matches the end of")),
            "{problems:?}"
        );
    }

    #[test]
    fn non_instant_cancel_reported() {
        let mut log = SpanLog::new();
        log.record(
            None,
            4,
            Some(0),
            SpanPhase::Dispatch,
            "attempt 0",
            0,
            100,
            None,
        );
        let mut c = Span {
            id: SpanId(99),
            parent: None,
            request: 4,
            device: Some(0),
            phase: SpanPhase::Cancel,
            label: "cancel".into(),
            start_ns: 50,
            end_ns: 100,
            flow: None,
        };
        let d = log.spans()[0].clone();
        c.id = SpanId(1);
        let problems = check_spans(&[d, c]).expect_err("stretched cancel");
        assert!(
            problems.iter().any(|p| p.contains("not an instant")),
            "{problems:?}"
        );
    }

    #[test]
    fn serve_trace_extent_and_request_lookup() {
        let mut log = SpanLog::new();
        log_request(&mut log, 0, 1, false);
        let trace = ServeTrace {
            spans: log.into_spans(),
            lanes: vec![DeviceLane {
                device: 0,
                name: "dev0".into(),
                entries: Vec::new(),
            }],
        };
        assert_eq!(trace.extent_ns(), 300);
        assert!(!trace.request_spans(0).is_empty());
        assert!(trace.request_spans(99).is_empty());
        let v = trace.to_value();
        let Value::Map(fields) = &v else {
            panic!("map")
        };
        assert!(fields.iter().any(|(k, _)| k == "spans"));
    }

    #[test]
    fn phase_names_and_glyphs_are_distinct() {
        let phases = [
            SpanPhase::Submit,
            SpanPhase::Queued,
            SpanPhase::Dispatch,
            SpanPhase::H2d,
            SpanPhase::Exec,
            SpanPhase::D2h,
            SpanPhase::Retry,
            SpanPhase::Quarantine,
            SpanPhase::HostFallback,
            SpanPhase::Reject,
            SpanPhase::Coalesce,
            SpanPhase::Hedge,
            SpanPhase::Probe,
            SpanPhase::Cancel,
            SpanPhase::Prefetch,
            SpanPhase::Complete,
        ];
        let names: std::collections::BTreeSet<&str> = phases.iter().map(|p| p.name()).collect();
        let glyphs: std::collections::BTreeSet<char> = phases.iter().map(|p| p.glyph()).collect();
        assert_eq!(names.len(), phases.len());
        assert_eq!(glyphs.len(), phases.len());
    }
}
