//! Rolling time-windowed metric aggregation over *virtual* time.
//!
//! A [`WindowedMetrics`] partitions the virtual-time axis into fixed
//! windows of `window_ns` nanoseconds and aggregates counters, gauges,
//! and histogram observations into the currently open window only.
//! Rotation is driven by the caller feeding the device clock into
//! [`advance_to`](WindowedMetrics::advance_to) — never by wall time — so
//! windowed aggregation is exactly as deterministic as the simulation
//! that drives it.
//!
//! Memory is O(one window): closing a window emits an owned
//! [`WindowSnapshot`] and resets the live aggregates in place. Counters
//! and histograms reset to zero each window (histograms keep their bucket
//! bounds); gauges are last-value-wins and *persist* across windows, so a
//! queue-depth gauge sampled once still renders in later windows.
//!
//! Percentiles come from the same bounded [`Histogram`] the run-lifetime
//! registry uses, digested into p50/p95/p99 per window.

use crate::metrics::Histogram;
use std::collections::BTreeMap;

/// Per-window digest of one histogram: count/sum plus the three
/// operational percentiles, computed at window close.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowDigest {
    /// Observations recorded in the window.
    pub count: u64,
    /// Sum of the window's observations.
    pub sum: f64,
    /// Estimated median (0 when the window recorded nothing).
    pub p50: f64,
    /// Estimated 95th percentile (0 when empty).
    pub p95: f64,
    /// Estimated 99th percentile (0 when empty).
    pub p99: f64,
}

impl WindowDigest {
    fn from_histogram(h: &Histogram) -> Self {
        let q = |p: f64| h.quantile(p).unwrap_or(0.0);
        WindowDigest {
            count: h.count(),
            sum: h.sum(),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
        }
    }

    /// Mean observation of the window, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One closed (or peeked) aggregation window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Zero-based window number since the aggregator was created.
    pub index: u64,
    /// Window start on the virtual-time axis, nanoseconds (inclusive).
    pub start_ns: u64,
    /// Window end, nanoseconds (exclusive; `== start_ns + window_ns` for
    /// closed windows, the peek instant for peeked ones).
    pub end_ns: u64,
    /// Counter values accumulated within the window.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values as of the window's close (last-value-wins, persisted
    /// across windows).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram digests of the window's observations.
    pub digests: BTreeMap<String, WindowDigest>,
}

impl WindowSnapshot {
    /// Counter value, 0 when never touched in this window.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram digest, if the metric exists.
    pub fn digest(&self, name: &str) -> Option<&WindowDigest> {
        self.digests.get(name)
    }
}

/// Rolling window aggregator over a virtual-nanosecond clock.
///
/// Windows are the half-open intervals `[i·w, (i+1)·w)`. The aggregator
/// holds exactly one open window; [`advance_to`](Self::advance_to) closes
/// every window that ends at or before the supplied clock, emitting their
/// snapshots in order (including empty windows, so a consumer sees an
/// unbroken cadence).
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    window_ns: u64,
    index: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl WindowedMetrics {
    /// Creates an aggregator with the given window length (clamped to at
    /// least 1 ns).
    pub fn new(window_ns: u64) -> Self {
        WindowedMetrics {
            window_ns: window_ns.max(1),
            index: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// The configured window length, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Index of the currently open window.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Start of the currently open window, nanoseconds.
    pub fn open_start_ns(&self) -> u64 {
        self.index * self.window_ns
    }

    /// Adds `v` to counter `name` in the open window.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Sets gauge `name` (last-value-wins; persists across windows).
    /// Non-finite values are ignored, mirroring [`crate::Registry`].
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if v.is_finite() {
            self.gauges.insert(name.to_owned(), v);
        }
    }

    /// Records `v` into the open window's histogram `name`, creating it
    /// with `bounds` if absent (later calls ignore `bounds`).
    pub fn histogram_observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.hists
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(v);
    }

    fn snapshot(&self, end_ns: u64) -> WindowSnapshot {
        WindowSnapshot {
            index: self.index,
            start_ns: self.open_start_ns(),
            end_ns: end_ns.max(self.open_start_ns()),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            digests: self
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), WindowDigest::from_histogram(h)))
                .collect(),
        }
    }

    /// A snapshot of the *open* window as of `now_ns`, without closing
    /// it — the intra-window view SLO fast-path evaluation uses.
    pub fn peek(&self, now_ns: u64) -> WindowSnapshot {
        self.snapshot(now_ns)
    }

    fn reset_window(&mut self) {
        // Keys survive (deterministic snapshot shape); values reset.
        for v in self.counters.values_mut() {
            *v = 0;
        }
        for h in self.hists.values_mut() {
            *h = Histogram::new(h.bounds().to_vec());
        }
        self.index += 1;
    }

    /// Closes every window that ends at or before `now_ns`, returning
    /// their snapshots oldest-first (empty windows included). The open
    /// window afterwards contains `now_ns`.
    pub fn advance_to(&mut self, now_ns: u64) -> Vec<WindowSnapshot> {
        let mut out = Vec::new();
        while (self.index + 1) * self.window_ns <= now_ns {
            let end = (self.index + 1) * self.window_ns;
            out.push(self.snapshot(end));
            self.reset_window();
        }
        out
    }

    /// Closes the open window *now*, even mid-interval — the final
    /// (possibly partial) window of a run. The next window starts at the
    /// following regular boundary.
    pub fn close_now(&mut self, now_ns: u64) -> WindowSnapshot {
        let snap = self.snapshot(now_ns);
        self.reset_window();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_driven_by_the_supplied_clock() {
        let mut w = WindowedMetrics::new(100);
        w.counter_add("n", 1);
        assert!(w.advance_to(99).is_empty(), "window not over yet");
        let closed = w.advance_to(250);
        assert_eq!(closed.len(), 2, "two whole windows fit before 250");
        assert_eq!(closed[0].counter("n"), 1);
        assert_eq!(closed[0].start_ns, 0);
        assert_eq!(closed[0].end_ns, 100);
        assert_eq!(closed[1].counter("n"), 0, "counters reset per window");
        assert_eq!(closed[1].index, 1);
        assert_eq!(w.index(), 2);
    }

    #[test]
    fn gauges_persist_and_counters_reset() {
        let mut w = WindowedMetrics::new(10);
        w.gauge_set("depth", 7.0);
        w.counter_add("done", 3);
        let first = w.advance_to(10).remove(0);
        assert_eq!(first.gauge("depth"), Some(7.0));
        assert_eq!(first.counter("done"), 3);
        let second = w.advance_to(20).remove(0);
        assert_eq!(second.gauge("depth"), Some(7.0), "gauges persist");
        assert_eq!(second.counter("done"), 0, "counters do not");
        w.gauge_set("depth", f64::NAN);
        assert_eq!(w.peek(25).gauge("depth"), Some(7.0), "NaN ignored");
    }

    #[test]
    fn digests_match_a_fresh_histogram_per_window() {
        let bounds = [1.0, 2.0, 4.0, 8.0];
        let mut w = WindowedMetrics::new(1000);
        let mut whole = Histogram::new(bounds.to_vec());
        // Seeded LCG spread over three windows.
        let mut x: u64 = 0x9E37;
        let mut windows: Vec<WindowSnapshot> = Vec::new();
        for i in 0..300u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as f64 / (1u64 << 31) as f64 * 8.0;
            windows.extend(w.advance_to(i * 10));
            w.histogram_observe("lat", &bounds, v);
            whole.observe(v);
        }
        windows.push(w.close_now(3000));
        let count: u64 = windows
            .iter()
            .filter_map(|s| s.digest("lat"))
            .map(|d| d.count)
            .sum();
        let sum: f64 = windows
            .iter()
            .filter_map(|s| s.digest("lat"))
            .map(|d| d.sum)
            .sum();
        assert_eq!(count, whole.count(), "no observation lost at rotation");
        assert!((sum - whole.sum()).abs() < 1e-9);
        for s in &windows {
            if let Some(d) = s.digest("lat") {
                if d.count > 0 {
                    assert!(d.p50 <= d.p95 && d.p95 <= d.p99, "{d:?}");
                    assert!(d.p99 <= 8.0, "percentiles bracketed by bounds");
                }
            }
        }
    }

    #[test]
    fn peek_does_not_close_and_close_now_does() {
        let mut w = WindowedMetrics::new(100);
        w.counter_add("n", 2);
        let peeked = w.peek(42);
        assert_eq!(peeked.end_ns, 42);
        assert_eq!(peeked.counter("n"), 2);
        assert_eq!(w.index(), 0, "peek leaves the window open");
        let closed = w.close_now(42);
        assert_eq!(closed.counter("n"), 2);
        assert_eq!(w.index(), 1);
        assert_eq!(w.peek(50).counter("n"), 0);
    }

    #[test]
    fn zero_window_is_clamped() {
        let w = WindowedMetrics::new(0);
        assert_eq!(w.window_ns(), 1);
    }
}
