//! Machine-readable performance snapshots: a versioned record of one
//! standard routine/size sweep, written as `BENCH_<label>.json`.
//!
//! A snapshot is the longitudinal counterpart of the per-run [`Observer`]
//! report: the same pipeline metrics (makespan, overlap efficiency,
//! per-model drift, selected tile, tile-cache hit rate), but keyed by a
//! stable sweep-entry id so two snapshots taken from different builds can
//! be diffed entry-by-entry (see [`crate::diff`]). The schema is versioned;
//! [`Snapshot::from_json`] rejects snapshots written by an incompatible
//! schema so the comparator never silently mixes formats.
//!
//! [`Observer`]: crate::Observer

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Version stamp written into every snapshot. Bump when the entry schema
/// changes incompatibly.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// One sweep point's recorded performance facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Stable identity of the sweep point (`"dgemm 4096x4096x4096"`);
    /// entries are matched across snapshots by this id.
    pub id: String,
    /// Routine family (`"gemm"`, `"axpy"`, …).
    pub routine: String,
    /// Problem dimensions.
    pub dims: Vec<usize>,
    /// Tiling size the runtime selected.
    pub tile: usize,
    /// Makespan of the call's trace slice, integer nanoseconds.
    pub makespan_ns: u64,
    /// Virtual wall time of the call, seconds.
    pub elapsed_secs: f64,
    /// Achieved throughput, GFLOP/s.
    pub gflops: f64,
    /// Overlap efficiency `sum(busy)/union(busy)` ∈ [1, 3].
    pub overlap_efficiency: f64,
    /// Tile-cache hit rate `hits/(hits+misses)` ∈ [0, 1].
    pub cache_hit_rate: f64,
    /// Per-model absolute relative prediction error for this call
    /// (model name → MAPE contribution).
    pub drift_mape: BTreeMap<String, f64>,
}

/// A versioned, machine-readable performance snapshot of one sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version; see [`SNAPSHOT_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Free-form label (`"seed"`, `"pr2"`, a git SHA, …).
    pub label: String,
    /// Testbed the sweep ran on.
    pub testbed: String,
    /// One entry per sweep point, in sweep order.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Creates an empty snapshot with the current schema version.
    pub fn new(label: impl Into<String>, testbed: impl Into<String>) -> Snapshot {
        Snapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            label: label.into(),
            testbed: testbed.into(),
            entries: Vec::new(),
        }
    }

    /// The entry with the given id, if present.
    pub fn entry(&self, id: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (effectively unreachable for this
    /// data shape).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a snapshot previously produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a schema-version mismatch
    /// (snapshots from a different schema must be regenerated, not diffed).
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        let snap: Snapshot =
            serde_json::from_str(s).map_err(|e| format!("malformed snapshot: {e}"))?;
        if snap.schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema version {} is not supported (expected {})",
                snap.schema_version, SNAPSHOT_SCHEMA_VERSION
            ));
        }
        Ok(snap)
    }

    /// The value-tree form, for embedding in larger JSON reports.
    pub fn value_tree(&self) -> Value {
        serde::Serialize::to_value(self)
    }

    /// Renders a one-line-per-entry human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "snapshot `{}` on `{}` (schema v{}, {} entries)",
            self.label,
            self.testbed,
            self.schema_version,
            self.entries.len()
        );
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>10} {:>9} {:>7}",
            "entry", "T", "makespan ms", "GFLOP/s", "overlap", "cache"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12.3} {:>10.1} {:>8.2}x {:>6.0}%",
                e.id,
                e.tile,
                e.makespan_ns as f64 / 1e6,
                e.gflops,
                e.overlap_efficiency,
                e.cache_hit_rate * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, makespan: u64) -> SnapshotEntry {
        SnapshotEntry {
            id: id.to_owned(),
            routine: "gemm".to_owned(),
            dims: vec![1024, 1024, 1024],
            tile: 512,
            makespan_ns: makespan,
            elapsed_secs: makespan as f64 / 1e9,
            gflops: 100.0,
            overlap_efficiency: 1.8,
            cache_hit_rate: 0.5,
            drift_mape: BTreeMap::from([("DR-Model".to_owned(), 0.03)]),
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut s = Snapshot::new("seed", "testbed-i");
        s.entries.push(entry("gemm 1024x1024x1024", 1_000_000));
        let json = s.to_json().expect("serializes");
        let back = Snapshot::from_json(&json).expect("parses");
        assert_eq!(s, back);
        assert!(back.entry("gemm 1024x1024x1024").is_some());
        assert!(back.entry("absent").is_none());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut s = Snapshot::new("seed", "tb");
        s.schema_version = SNAPSHOT_SCHEMA_VERSION + 1;
        let json = s.to_json().expect("serializes");
        let err = Snapshot::from_json(&json).expect_err("must reject");
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Snapshot::from_json("{not json").is_err());
    }

    #[test]
    fn render_lists_entries() {
        let mut s = Snapshot::new("x", "tb");
        s.entries.push(entry("gemm 1024x1024x1024", 2_000_000));
        let text = s.render();
        assert!(text.contains("gemm 1024x1024x1024"));
        assert!(text.contains("schema v1"));
    }
}
