//! Trace exporters: JSON-lines event dumps and Chrome trace-event JSON
//! (loadable in `chrome://tracing` and Perfetto).
//!
//! Both formats carry the full per-op identity: engine, stream, label,
//! timing, byte counts, and — when the scheduler tagged the op — the
//! routine/call/tile/operand attribution from
//! [`OpTag`].

use cocopelia_gpusim::{EngineKind, OpTag, TraceEntry};
use serde::Value;

/// Stable Chrome-trace thread id per engine (h2d=0, exec=1, d2h=2).
fn engine_tid(engine: EngineKind) -> u64 {
    match engine {
        EngineKind::CopyH2d => 0,
        EngineKind::Compute => 1,
        EngineKind::CopyD2h => 2,
    }
}

fn tag_value(tag: &OpTag) -> Value {
    Value::Map(vec![
        ("routine".to_owned(), Value::Str(tag.routine.to_owned())),
        ("call".to_owned(), Value::U64(tag.call)),
        (
            "tile".to_owned(),
            Value::Seq(vec![
                Value::U64(tag.tile.0 as u64),
                Value::U64(tag.tile.1 as u64),
            ]),
        ),
        (
            "operand".to_owned(),
            match tag.operand {
                Some(role) => Value::Str(role.name().to_owned()),
                None => Value::Null,
            },
        ),
        ("get".to_owned(), Value::Bool(tag.get)),
        ("set".to_owned(), Value::Bool(tag.set)),
    ])
}

fn entry_value(e: &TraceEntry) -> Value {
    let mut fields = vec![
        ("op".to_owned(), Value::U64(e.op as u64)),
        ("stream".to_owned(), Value::U64(e.stream.index() as u64)),
        ("engine".to_owned(), Value::Str(e.engine.name().to_owned())),
        ("label".to_owned(), Value::Str(e.label.clone())),
        ("start_ns".to_owned(), Value::U64(e.start.as_nanos())),
        ("end_ns".to_owned(), Value::U64(e.end.as_nanos())),
    ];
    if let Some(b) = e.bytes {
        fields.push(("bytes".to_owned(), Value::U64(b as u64)));
    }
    if let Some(tag) = &e.tag {
        fields.push(("tag".to_owned(), tag_value(tag)));
    }
    Value::Map(fields)
}

/// Renders entries as JSON-lines: one self-contained JSON object per line.
///
/// # Errors
///
/// Propagates serialization failures (none occur for well-formed entries).
pub fn to_jsonl(entries: &[TraceEntry]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for e in entries {
        out.push_str(&serde_json::to_string(&entry_value(e))?);
        out.push('\n');
    }
    Ok(out)
}

/// Renders entries as a Chrome trace-event JSON document.
///
/// Each trace entry becomes a complete (`"ph": "X"`) event with
/// microsecond-resolution timestamps; the three engines appear as named
/// threads of one process, and op tags land in the event's `args`.
///
/// # Errors
///
/// Propagates serialization failures (none occur for well-formed entries).
pub fn to_chrome_trace(entries: &[TraceEntry]) -> Result<String, serde_json::Error> {
    let mut events: Vec<Value> = Vec::with_capacity(entries.len() + 3);
    for engine in [
        EngineKind::CopyH2d,
        EngineKind::Compute,
        EngineKind::CopyD2h,
    ] {
        events.push(Value::Map(vec![
            ("name".to_owned(), Value::Str("thread_name".to_owned())),
            ("ph".to_owned(), Value::Str("M".to_owned())),
            ("pid".to_owned(), Value::U64(1)),
            ("tid".to_owned(), Value::U64(engine_tid(engine))),
            (
                "args".to_owned(),
                Value::Map(vec![(
                    "name".to_owned(),
                    Value::Str(engine.name().to_owned()),
                )]),
            ),
        ]));
    }
    for e in entries {
        let mut args = vec![
            ("op".to_owned(), Value::U64(e.op as u64)),
            ("stream".to_owned(), Value::U64(e.stream.index() as u64)),
        ];
        if let Some(b) = e.bytes {
            args.push(("bytes".to_owned(), Value::U64(b as u64)));
        }
        if let Some(tag) = &e.tag {
            args.push(("tag".to_owned(), tag_value(tag)));
        }
        events.push(Value::Map(vec![
            ("name".to_owned(), Value::Str(e.label.clone())),
            ("cat".to_owned(), Value::Str(e.engine.name().to_owned())),
            ("ph".to_owned(), Value::Str("X".to_owned())),
            ("ts".to_owned(), Value::F64(e.start.as_nanos() as f64 / 1e3)),
            (
                "dur".to_owned(),
                Value::F64(e.duration().as_nanos() as f64 / 1e3),
            ),
            ("pid".to_owned(), Value::U64(1)),
            ("tid".to_owned(), Value::U64(engine_tid(e.engine))),
            ("args".to_owned(), Value::Map(args)),
        ]));
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_owned(), Value::Seq(events)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
    ]);
    serde_json::to_string(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{OperandRole, SimTime, StreamId};

    fn entry(engine: EngineKind, start: u64, end: u64, tagged: bool) -> TraceEntry {
        TraceEntry {
            op: 3,
            stream: StreamId::from_raw(1),
            engine,
            label: "h2d 64B".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: Some(64),
            tag: tagged.then_some(OpTag {
                routine: "gemm",
                call: 2,
                tile: (1, 3),
                operand: Some(OperandRole::A),
                get: true,
                set: false,
            }),
        }
    }

    #[test]
    fn jsonl_one_line_per_entry() {
        let entries = [
            entry(EngineKind::CopyH2d, 0, 100, true),
            entry(EngineKind::Compute, 50, 80, false),
        ];
        let out = to_jsonl(&entries).expect("serializes");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"engine\":\"h2d\""));
        assert!(lines[0].contains("\"routine\":\"gemm\""));
        assert!(!lines[1].contains("tag"));
        // Every line is valid JSON.
        for l in lines {
            let _: Value = serde_json::from_str(l).expect("valid json");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_thread_names() {
        let entries = [entry(EngineKind::CopyD2h, 1000, 3000, true)];
        let out = to_chrome_trace(&entries).expect("serializes");
        let doc: Value = serde_json::from_str(&out).expect("valid json");
        let events = doc.field("traceEvents").expect("has events");
        let Value::Seq(events) = events else {
            panic!("traceEvents is a list")
        };
        // 3 metadata events + 1 slice.
        assert_eq!(events.len(), 4);
        let slice = events.last().expect("slice");
        assert_eq!(slice.field("ph").expect("ph").as_str().expect("str"), "X");
        // Integral floats write as integers; compare numerically.
        let num = |v: &Value| match *v {
            Value::U64(u) => u as f64,
            Value::F64(f) => f,
            ref other => panic!("expected number, got {other:?}"),
        };
        assert_eq!(num(slice.field("ts").expect("ts")), 1.0);
        assert_eq!(num(slice.field("dur").expect("dur")), 2.0);
    }

    #[test]
    fn chrome_trace_empty_entries_still_parses() {
        let out = to_chrome_trace(&[]).expect("serializes");
        let doc: Value = serde_json::from_str(&out).expect("valid json");
        assert!(doc.field("displayTimeUnit").is_ok());
    }
}
