//! Trace exporters: JSON-lines event dumps and Chrome trace-event JSON
//! (loadable in `chrome://tracing` and Perfetto).
//!
//! Both formats carry the full per-op identity: engine, stream, label,
//! timing, byte counts, and — when the scheduler tagged the op — the
//! routine/call/tile/operand attribution from
//! [`OpTag`].
//!
//! Multi-device serve runs export through [`to_chrome_trace_multi`] (one
//! Chrome process per [`DeviceLane`], so devices don't collapse into a
//! single lane) and [`serve_trace_to_chrome`], which adds the
//! request-lifecycle spans and the queue-to-device flow arrows of a
//! [`ServeTrace`]. The binary sibling of these is [`crate::perfetto`].

use crate::span::{DeviceLane, ServeTrace, Span, SpanPhase};
use cocopelia_gpusim::{EngineKind, OpTag, TraceEntry};
use serde::Value;

/// Stable Chrome-trace thread id per engine (h2d=0, exec=1, d2h=2).
fn engine_tid(engine: EngineKind) -> u64 {
    match engine {
        EngineKind::CopyH2d => 0,
        EngineKind::Compute => 1,
        EngineKind::CopyD2h => 2,
    }
}

/// Thread id of a device's request-lifecycle lane (after the engines).
const LIFECYCLE_TID: u64 = 3;

/// Pid of the serve process (queue + host lanes); devices get
/// [`device_pid`].
const SERVE_PID: u64 = 1;

/// One Chrome process per device, clear of the serve process's pid.
fn device_pid(device: usize) -> u64 {
    10 + device as u64
}

fn tag_value(tag: &OpTag) -> Value {
    Value::Map(vec![
        ("routine".to_owned(), Value::Str(tag.routine.to_owned())),
        ("call".to_owned(), Value::U64(tag.call)),
        (
            "tile".to_owned(),
            Value::Seq(vec![
                Value::U64(tag.tile.0 as u64),
                Value::U64(tag.tile.1 as u64),
            ]),
        ),
        (
            "operand".to_owned(),
            match tag.operand {
                Some(role) => Value::Str(role.name().to_owned()),
                None => Value::Null,
            },
        ),
        ("get".to_owned(), Value::Bool(tag.get)),
        ("set".to_owned(), Value::Bool(tag.set)),
    ])
}

fn entry_value(e: &TraceEntry) -> Value {
    let mut fields = vec![
        ("op".to_owned(), Value::U64(e.op as u64)),
        ("stream".to_owned(), Value::U64(e.stream.index() as u64)),
        ("engine".to_owned(), Value::Str(e.engine.name().to_owned())),
        ("label".to_owned(), Value::Str(e.label.clone())),
        ("start_ns".to_owned(), Value::U64(e.start.as_nanos())),
        ("end_ns".to_owned(), Value::U64(e.end.as_nanos())),
    ];
    if let Some(b) = e.bytes {
        fields.push(("bytes".to_owned(), Value::U64(b as u64)));
    }
    if let Some(tag) = &e.tag {
        fields.push(("tag".to_owned(), tag_value(tag)));
    }
    Value::Map(fields)
}

/// Renders entries as JSON-lines: one self-contained JSON object per line.
///
/// # Errors
///
/// Propagates serialization failures (none occur for well-formed entries).
pub fn to_jsonl(entries: &[TraceEntry]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for e in entries {
        out.push_str(&serde_json::to_string(&entry_value(e))?);
        out.push('\n');
    }
    Ok(out)
}

/// `process_name` metadata event.
fn process_name_event(pid: u64, name: &str) -> Value {
    Value::Map(vec![
        ("name".to_owned(), Value::Str("process_name".to_owned())),
        ("ph".to_owned(), Value::Str("M".to_owned())),
        ("pid".to_owned(), Value::U64(pid)),
        (
            "args".to_owned(),
            Value::Map(vec![("name".to_owned(), Value::Str(name.to_owned()))]),
        ),
    ])
}

/// `thread_name` metadata event.
fn thread_name_event(pid: u64, tid: u64, name: &str) -> Value {
    Value::Map(vec![
        ("name".to_owned(), Value::Str("thread_name".to_owned())),
        ("ph".to_owned(), Value::Str("M".to_owned())),
        ("pid".to_owned(), Value::U64(pid)),
        ("tid".to_owned(), Value::U64(tid)),
        (
            "args".to_owned(),
            Value::Map(vec![("name".to_owned(), Value::Str(name.to_owned()))]),
        ),
    ])
}

/// Pushes one device's metadata and entry slices under the given pid.
fn push_device_events(events: &mut Vec<Value>, pid: u64, name: &str, entries: &[TraceEntry]) {
    events.push(process_name_event(pid, name));
    for engine in [
        EngineKind::CopyH2d,
        EngineKind::Compute,
        EngineKind::CopyD2h,
    ] {
        events.push(thread_name_event(pid, engine_tid(engine), engine.name()));
    }
    for e in entries {
        let mut args = vec![
            ("op".to_owned(), Value::U64(e.op as u64)),
            ("stream".to_owned(), Value::U64(e.stream.index() as u64)),
        ];
        if let Some(b) = e.bytes {
            args.push(("bytes".to_owned(), Value::U64(b as u64)));
        }
        if let Some(tag) = &e.tag {
            args.push(("tag".to_owned(), tag_value(tag)));
        }
        events.push(Value::Map(vec![
            ("name".to_owned(), Value::Str(e.label.clone())),
            ("cat".to_owned(), Value::Str(e.engine.name().to_owned())),
            ("ph".to_owned(), Value::Str("X".to_owned())),
            ("ts".to_owned(), Value::F64(e.start.as_nanos() as f64 / 1e3)),
            (
                "dur".to_owned(),
                Value::F64(e.duration().as_nanos() as f64 / 1e3),
            ),
            ("pid".to_owned(), Value::U64(pid)),
            ("tid".to_owned(), Value::U64(engine_tid(e.engine))),
            ("args".to_owned(), Value::Map(args)),
        ]));
    }
}

fn chrome_doc(events: Vec<Value>) -> Result<String, serde_json::Error> {
    serde_json::to_string(&Value::Map(vec![
        ("traceEvents".to_owned(), Value::Seq(events)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
    ]))
}

/// Renders one device's entries as a Chrome trace-event JSON document.
///
/// Each trace entry becomes a complete (`"ph": "X"`) event with
/// microsecond-resolution timestamps; the three engines appear as named
/// threads of one named process, and op tags land in the event's `args`.
///
/// # Errors
///
/// Propagates serialization failures (none occur for well-formed entries).
pub fn to_chrome_trace(entries: &[TraceEntry]) -> Result<String, serde_json::Error> {
    to_chrome_trace_multi(&[DeviceLane {
        device: 0,
        name: "dev0".to_owned(),
        entries: entries.to_vec(),
    }])
}

/// Renders multiple device lanes as one Chrome trace-event JSON document,
/// one *process* per device (pid `10 + device`, named by the lane) so
/// multi-GPU traces keep their device attribution instead of collapsing
/// into a single process.
///
/// # Errors
///
/// Propagates serialization failures (none occur for well-formed lanes).
pub fn to_chrome_trace_multi(lanes: &[DeviceLane]) -> Result<String, serde_json::Error> {
    let mut events = Vec::new();
    for lane in lanes {
        push_device_events(
            &mut events,
            device_pid(lane.device),
            &lane.name,
            &lane.entries,
        );
    }
    chrome_doc(events)
}

/// The Chrome (pid, tid) a lifecycle span is drawn on.
fn span_lane(s: &Span) -> (u64, u64) {
    match (s.phase, s.device) {
        (SpanPhase::HostFallback, _) => (SERVE_PID, 1),
        (_, Some(d)) => (device_pid(d), LIFECYCLE_TID),
        (_, None) => (SERVE_PID, 0),
    }
}

/// Renders a full [`ServeTrace`] — device lanes plus request-lifecycle
/// spans — as Chrome trace-event JSON. Spans land on a `serve` process
/// (`queue`/`host` threads) or on their device's `requests` thread, and
/// every [`Span::flow`] id becomes a flow-start (`"ph": "s"`) /
/// flow-finish (`"ph": "f"`) pair drawing the queue-to-device hand-off
/// arrow.
///
/// # Errors
///
/// Propagates serialization failures (none occur for well-formed traces).
pub fn serve_trace_to_chrome(trace: &ServeTrace) -> Result<String, serde_json::Error> {
    let mut events = Vec::new();
    events.push(process_name_event(SERVE_PID, "serve"));
    events.push(thread_name_event(SERVE_PID, 0, "queue"));
    if trace
        .spans
        .iter()
        .any(|s| s.phase == SpanPhase::HostFallback)
    {
        events.push(thread_name_event(SERVE_PID, 1, "host"));
    }
    for lane in &trace.lanes {
        push_device_events(
            &mut events,
            device_pid(lane.device),
            &lane.name,
            &lane.entries,
        );
        events.push(thread_name_event(
            device_pid(lane.device),
            LIFECYCLE_TID,
            "requests",
        ));
    }
    for s in &trace.spans {
        let (pid, tid) = span_lane(s);
        let ts_us = s.start_ns as f64 / 1e3;
        let instant = s.duration_ns() == 0;
        let mut fields = vec![
            ("name".to_owned(), Value::Str(s.label.clone())),
            ("cat".to_owned(), Value::Str(s.phase.name().to_owned())),
            (
                "ph".to_owned(),
                Value::Str(if instant { "i" } else { "X" }.to_owned()),
            ),
            ("ts".to_owned(), Value::F64(ts_us)),
            ("pid".to_owned(), Value::U64(pid)),
            ("tid".to_owned(), Value::U64(tid)),
            (
                "args".to_owned(),
                Value::Map(vec![
                    ("request".to_owned(), Value::U64(s.request)),
                    ("span".to_owned(), Value::U64(s.id.0)),
                ]),
            ),
        ];
        if instant {
            fields.push(("s".to_owned(), Value::Str("t".to_owned())));
        } else {
            fields.push(("dur".to_owned(), Value::F64(s.duration_ns() as f64 / 1e3)));
        }
        events.push(Value::Map(fields));
        if let Some(flow) = s.flow {
            // Queue-side spans start the flow; device spans finish it.
            let ph = if s.device.is_none() { "s" } else { "f" };
            let mut f = vec![
                ("name".to_owned(), Value::Str("queue→device".to_owned())),
                ("cat".to_owned(), Value::Str("flow".to_owned())),
                ("ph".to_owned(), Value::Str(ph.to_owned())),
                ("id".to_owned(), Value::U64(flow)),
                ("ts".to_owned(), Value::F64(ts_us)),
                ("pid".to_owned(), Value::U64(pid)),
                ("tid".to_owned(), Value::U64(tid)),
            ];
            if ph == "f" {
                f.push(("bp".to_owned(), Value::Str("e".to_owned())));
            }
            events.push(Value::Map(f));
        }
    }
    chrome_doc(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanLog;
    use cocopelia_gpusim::{OperandRole, SimTime, StreamId};

    fn entry(engine: EngineKind, start: u64, end: u64, tagged: bool) -> TraceEntry {
        TraceEntry {
            op: 3,
            stream: StreamId::from_raw(1),
            engine,
            label: "h2d 64B".to_owned(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: Some(64),
            tag: tagged.then_some(OpTag {
                routine: "gemm",
                call: 2,
                tile: (1, 3),
                operand: Some(OperandRole::A),
                get: true,
                set: false,
            }),
        }
    }

    #[test]
    fn jsonl_one_line_per_entry() {
        let entries = [
            entry(EngineKind::CopyH2d, 0, 100, true),
            entry(EngineKind::Compute, 50, 80, false),
        ];
        let out = to_jsonl(&entries).expect("serializes");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"engine\":\"h2d\""));
        assert!(lines[0].contains("\"routine\":\"gemm\""));
        assert!(!lines[1].contains("tag"));
        // Every line is valid JSON.
        for l in lines {
            let _: Value = serde_json::from_str(l).expect("valid json");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_thread_names() {
        let entries = [entry(EngineKind::CopyD2h, 1000, 3000, true)];
        let out = to_chrome_trace(&entries).expect("serializes");
        let doc: Value = serde_json::from_str(&out).expect("valid json");
        let events = doc.field("traceEvents").expect("has events");
        let Value::Seq(events) = events else {
            panic!("traceEvents is a list")
        };
        // 1 process_name + 3 thread_name metadata events + 1 slice.
        assert_eq!(events.len(), 5);
        let slice = events.last().expect("slice");
        assert_eq!(slice.field("ph").expect("ph").as_str().expect("str"), "X");
        // Integral floats write as integers; compare numerically.
        let num = |v: &Value| match *v {
            Value::U64(u) => u as f64,
            Value::F64(f) => f,
            ref other => panic!("expected number, got {other:?}"),
        };
        assert_eq!(num(slice.field("ts").expect("ts")), 1.0);
        assert_eq!(num(slice.field("dur").expect("dur")), 2.0);
    }

    #[test]
    fn chrome_trace_empty_entries_still_parses() {
        let out = to_chrome_trace(&[]).expect("serializes");
        let doc: Value = serde_json::from_str(&out).expect("valid json");
        assert!(doc.field("displayTimeUnit").is_ok());
    }

    fn events_of(doc: &str) -> Vec<Value> {
        let doc: Value = serde_json::from_str(doc).expect("valid json");
        let Value::Seq(events) = doc.field("traceEvents").expect("has events").clone() else {
            panic!("traceEvents is a list")
        };
        events
    }

    fn pid_of(ev: &Value) -> u64 {
        match ev.field("pid").expect("pid") {
            Value::U64(p) => *p,
            other => panic!("pid not u64: {other:?}"),
        }
    }

    #[test]
    fn multi_device_trace_gets_one_pid_per_device() {
        let lanes = vec![
            DeviceLane {
                device: 0,
                name: "dev0 (testbed-i)".to_owned(),
                entries: vec![entry(EngineKind::Compute, 0, 100, false)],
            },
            DeviceLane {
                device: 1,
                name: "dev1 (testbed-i)".to_owned(),
                entries: vec![entry(EngineKind::Compute, 0, 80, false)],
            },
        ];
        let events = events_of(&to_chrome_trace_multi(&lanes).expect("serializes"));
        let pids: std::collections::BTreeSet<u64> = events.iter().map(pid_of).collect();
        assert_eq!(pids, [10u64, 11].into_iter().collect());
        // Each device announces its process_name.
        let names: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.field("name")
                    .is_ok_and(|n| n.as_str().is_ok_and(|s| s == "process_name"))
            })
            .collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn serve_trace_emits_flow_pair_and_span_slices() {
        let mut log = SpanLog::new();
        log.record(None, 4, None, SpanPhase::Queued, "queued", 0, 100, Some(4));
        log.record(
            None,
            4,
            Some(1),
            SpanPhase::Dispatch,
            "attempt 0",
            100,
            400,
            Some(4),
        );
        log.record(None, 4, None, SpanPhase::Complete, "done", 400, 400, None);
        let trace = ServeTrace {
            spans: log.into_spans(),
            lanes: vec![DeviceLane {
                device: 1,
                name: "dev1".to_owned(),
                entries: vec![entry(EngineKind::Compute, 100, 380, false)],
            }],
        };
        let events = events_of(&serve_trace_to_chrome(&trace).expect("serializes"));
        let ph = |e: &Value| e.field("ph").expect("ph").as_str().expect("str").to_owned();
        assert!(events.iter().any(|e| ph(e) == "s"), "flow start missing");
        assert!(events.iter().any(|e| ph(e) == "f"), "flow finish missing");
        assert!(events.iter().any(|e| ph(e) == "i"), "instant missing");
        // The flow start sits on the serve pid, the finish on the device.
        let flow_pids: Vec<u64> = events
            .iter()
            .filter(|e| ph(e) == "s" || ph(e) == "f")
            .map(pid_of)
            .collect();
        assert!(flow_pids.contains(&SERVE_PID));
        assert!(flow_pids.contains(&device_pid(1)));
    }
}
