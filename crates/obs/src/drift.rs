//! Prediction-drift accounting: model-predicted offload time versus what
//! the pipeline actually took.
//!
//! Every routine call that went through a system profile can be scored: the
//! paper's models (Eq. 1/2/3–4/5, plus the CSO comparator when a full
//! kernel time is known) each predict a total offload time for the chosen
//! tiling size, and the simulator reports the achieved one. The signed
//! relative error per model — accumulated across calls — is exactly the
//! quantity the paper's Fig. 5/6 validation plots are built from.

use crate::metrics::Histogram;
use cocopelia_core::models::{predict, ModelCtx, ModelKind};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Bucket bounds for signed relative error histograms: −100 % … +100 %.
pub const SIGNED_ERROR_BOUNDS: [f64; 9] = [-1.0, -0.5, -0.25, -0.1, 0.0, 0.1, 0.25, 0.5, 1.0];

/// Bucket bounds for absolute relative error histograms: 1 % … 100 %.
pub const ABS_ERROR_BOUNDS: [f64; 6] = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0];

/// One model's verdict on one routine call.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRecord {
    /// Routine family (`"gemm"`, `"axpy"`, …).
    pub routine: &'static str,
    /// Routine invocation counter (shared with the trace's `OpTag::call`).
    pub call: u64,
    /// The model scored.
    pub model: ModelKind,
    /// Tiling size the call actually used.
    pub tile: usize,
    /// Model-predicted total offload time, in seconds.
    pub predicted_secs: f64,
    /// Simulated actual offload time, in seconds.
    pub actual_secs: f64,
}

impl DriftRecord {
    /// Signed relative error `(predicted − actual) / actual`: positive when
    /// the model over-predicts.
    pub fn signed_rel_err(&self) -> f64 {
        if self.actual_secs == 0.0 {
            0.0
        } else {
            (self.predicted_secs - self.actual_secs) / self.actual_secs
        }
    }

    /// Absolute relative error `|predicted − actual| / actual`.
    pub fn abs_rel_err(&self) -> f64 {
        self.signed_rel_err().abs()
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("routine".to_owned(), Value::Str(self.routine.to_owned())),
            ("call".to_owned(), Value::U64(self.call)),
            ("model".to_owned(), Value::Str(self.model.name().to_owned())),
            ("tile".to_owned(), Value::U64(self.tile as u64)),
            ("predicted_secs".to_owned(), Value::F64(self.predicted_secs)),
            ("actual_secs".to_owned(), Value::F64(self.actual_secs)),
            (
                "signed_rel_err".to_owned(),
                Value::F64(self.signed_rel_err()),
            ),
        ])
    }
}

/// Scores every evaluable model against one executed call.
///
/// Models that cannot be evaluated are skipped silently: CSO needs a
/// measured full-problem kernel time, and any model fails on an empty exec
/// table. Returns one record per model that produced a prediction.
pub fn score_models(
    routine: &'static str,
    call: u64,
    ctx: &ModelCtx<'_>,
    tile: usize,
    actual_secs: f64,
) -> Vec<DriftRecord> {
    ModelKind::all()
        .into_iter()
        .filter_map(|model| {
            let p = predict(model, ctx, tile).ok()?;
            Some(DriftRecord {
                routine,
                call,
                model,
                tile,
                predicted_secs: p.total,
                actual_secs,
            })
        })
        .collect()
}

/// Running per-model error aggregate.
#[derive(Debug, Clone)]
pub struct ModelErrorStats {
    /// Number of scored calls.
    pub count: u64,
    /// Sum of signed relative errors.
    pub sum_signed: f64,
    /// Sum of absolute relative errors.
    pub sum_abs: f64,
    /// Histogram of signed relative errors.
    pub signed_hist: Histogram,
    /// Histogram of absolute relative errors.
    pub abs_hist: Histogram,
}

impl Default for ModelErrorStats {
    fn default() -> Self {
        ModelErrorStats {
            count: 0,
            sum_signed: 0.0,
            sum_abs: 0.0,
            signed_hist: Histogram::new(SIGNED_ERROR_BOUNDS.to_vec()),
            abs_hist: Histogram::new(ABS_ERROR_BOUNDS.to_vec()),
        }
    }
}

impl ModelErrorStats {
    /// Mean signed relative error (bias).
    pub fn mean_signed(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_signed / self.count as f64
        }
    }

    /// Mean absolute relative error.
    pub fn mean_abs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs / self.count as f64
        }
    }
}

/// Accumulates [`DriftRecord`]s and aggregates them per model.
#[derive(Debug, Clone, Default)]
pub struct DriftAccountant {
    records: Vec<DriftRecord>,
    per_model: BTreeMap<&'static str, ModelErrorStats>,
}

impl DriftAccountant {
    /// An empty accountant.
    pub fn new() -> Self {
        DriftAccountant::default()
    }

    /// Records one scored call.
    pub fn record(&mut self, rec: DriftRecord) {
        let stats = self.per_model.entry(rec.model.name()).or_default();
        stats.count += 1;
        stats.sum_signed += rec.signed_rel_err();
        stats.sum_abs += rec.abs_rel_err();
        stats.signed_hist.observe(rec.signed_rel_err());
        stats.abs_hist.observe(rec.abs_rel_err());
        self.records.push(rec);
    }

    /// Every record, in arrival order.
    pub fn records(&self) -> &[DriftRecord] {
        &self.records
    }

    /// Aggregated stats for one model, if it was ever scored.
    pub fn model_stats(&self, model: ModelKind) -> Option<&ModelErrorStats> {
        self.per_model.get(model.name())
    }

    /// All scored models with their aggregates, name-ordered.
    pub fn all_stats(&self) -> impl Iterator<Item = (&'static str, &ModelErrorStats)> {
        self.per_model.iter().map(|(&k, v)| (k, v))
    }

    /// The value-tree form, for JSON reports.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "records".to_owned(),
                Value::Seq(self.records.iter().map(|r| r.to_value()).collect()),
            ),
            (
                "per_model".to_owned(),
                Value::Map(
                    self.per_model
                        .iter()
                        .map(|(&name, s)| {
                            (
                                name.to_owned(),
                                Value::Map(vec![
                                    ("count".to_owned(), Value::U64(s.count)),
                                    ("mean_signed".to_owned(), Value::F64(s.mean_signed())),
                                    ("mean_abs".to_owned(), Value::F64(s.mean_abs())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders a per-model drift table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>12} {:>12}",
            "model", "calls", "bias", "mean |err|"
        );
        for (name, s) in &self.per_model {
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>11.2}% {:>11.2}%",
                name,
                s.count,
                s.mean_signed() * 100.0,
                s.mean_abs() * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(model: ModelKind, predicted: f64, actual: f64) -> DriftRecord {
        DriftRecord {
            routine: "gemm",
            call: 0,
            model,
            tile: 256,
            predicted_secs: predicted,
            actual_secs: actual,
        }
    }

    #[test]
    fn signed_error_signs() {
        assert!(rec(ModelKind::Bts, 1.2, 1.0).signed_rel_err() > 0.0);
        assert!(rec(ModelKind::Bts, 0.8, 1.0).signed_rel_err() < 0.0);
        assert_eq!(rec(ModelKind::Bts, 1.0, 0.0).signed_rel_err(), 0.0);
    }

    #[test]
    fn accountant_aggregates_per_model() {
        let mut acc = DriftAccountant::new();
        acc.record(rec(ModelKind::Bts, 1.1, 1.0)); // +10 %
        acc.record(rec(ModelKind::Bts, 0.9, 1.0)); // −10 %
        acc.record(rec(ModelKind::DataReuse, 2.0, 1.0)); // +100 %
        let bts = acc.model_stats(ModelKind::Bts).expect("scored");
        assert_eq!(bts.count, 2);
        assert!(bts.mean_signed().abs() < 1e-12, "symmetric errors cancel");
        assert!((bts.mean_abs() - 0.1).abs() < 1e-12);
        let dr = acc.model_stats(ModelKind::DataReuse).expect("scored");
        assert!((dr.mean_signed() - 1.0).abs() < 1e-12);
        assert_eq!(acc.records().len(), 3);
        assert!(acc.model_stats(ModelKind::Cso).is_none());
    }

    #[test]
    fn render_lists_models() {
        let mut acc = DriftAccountant::new();
        acc.record(rec(ModelKind::Baseline, 1.0, 1.0));
        let s = acc.render();
        assert!(s.contains("Baseline-Model"));
    }
}
