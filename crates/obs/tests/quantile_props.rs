//! Property-based invariants of the bucket-quantile estimator.

use cocopelia_obs::Histogram;
use proptest::prelude::*;

/// Ascending bucket bounds spanning the observation range used below.
fn bounds() -> Vec<f64> {
    vec![1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The estimate is monotone non-decreasing in `q`.
    #[test]
    fn quantile_is_monotone_in_q(
        values in proptest::collection::vec(0.0f64..200.0, 1..64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new(bounds());
        for v in &values {
            h.observe(*v);
        }
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let lo = h.quantile(lo_q).expect("non-empty");
        let hi = h.quantile(hi_q).expect("non-empty");
        prop_assert!(lo <= hi, "q{lo_q} -> {lo} > q{hi_q} -> {hi}");
    }

    /// The estimate always lies within the bucket boundaries: at least the
    /// smallest bound and at most the largest, regardless of where the raw
    /// observations actually fell.
    #[test]
    fn quantile_is_bracketed_by_bounds(
        values in proptest::collection::vec(0.0f64..200.0, 1..64),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new(bounds());
        for v in &values {
            h.observe(*v);
        }
        let b = bounds();
        let est = h.quantile(q).expect("non-empty");
        prop_assert!(est >= b[0], "estimate {est} below first bound");
        prop_assert!(est <= b[b.len() - 1], "estimate {est} above last bound");
    }

    /// When every observation lands inside the bucketed range (no overflow),
    /// the estimate for an interior quantile is bracketed by the bucket that
    /// holds the matching rank of the *sorted* raw observations.
    #[test]
    fn quantile_tracks_the_rank_bucket(
        values in proptest::collection::vec(1.0f64..100.0, 2..64),
        q in 0.01f64..0.99,
    ) {
        let mut h = Histogram::new(bounds());
        let mut sorted = values.clone();
        for v in &values {
            h.observe(*v);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let est = h.quantile(q).expect("non-empty");
        // The true rank-th value, using the same rank = q*n convention.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let b = bounds();
        // The bucket holding `truth`.
        let bi = b.iter().position(|&ub| truth <= ub).expect("in range");
        let bucket_lo = if bi == 0 { b[0].min(truth) } else { b[bi - 1] };
        let bucket_hi = b[bi];
        prop_assert!(
            est >= bucket_lo - 1e-9 && est <= bucket_hi + 1e-9,
            "estimate {est} outside bucket [{bucket_lo}, {bucket_hi}] holding rank value {truth}"
        );
    }

    /// Non-finite observations never change any quantile estimate.
    #[test]
    fn skipped_observations_do_not_shift_quantiles(
        values in proptest::collection::vec(0.0f64..200.0, 1..32),
        q in 0.0f64..1.0,
    ) {
        let mut clean = Histogram::new(bounds());
        let mut dirty = Histogram::new(bounds());
        for v in &values {
            clean.observe(*v);
            dirty.observe(*v);
            dirty.observe(f64::NAN);
            dirty.observe(f64::INFINITY);
        }
        prop_assert_eq!(clean.quantile(q), dirty.quantile(q));
        prop_assert_eq!(dirty.skipped(), 2 * values.len() as u64);
    }
}
