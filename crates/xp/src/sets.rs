//! The paper's validation and evaluation problem sets (§V-B, §V-E).

use cocopelia_core::params::{Loc, ProblemSpec};
use cocopelia_hostblas::Dtype;

/// One gemm problem instance of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmProblem {
    /// Element precision.
    pub dtype: Dtype,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// Initial residence of `A`.
    pub loc_a: Loc,
    /// Initial residence of `B`.
    pub loc_b: Loc,
    /// Initial residence of `C`.
    pub loc_c: Loc,
}

impl GemmProblem {
    /// The model-facing description (β is 1 throughout the paper's sets).
    pub fn spec(&self) -> ProblemSpec {
        ProblemSpec::gemm(
            self.dtype, self.m, self.n, self.k, self.loc_a, self.loc_b, self.loc_c, true,
        )
    }

    /// True if every operand starts on the host.
    pub fn full_offload(&self) -> bool {
        [self.loc_a, self.loc_b, self.loc_c]
            .iter()
            .all(|&l| l == Loc::Host)
    }

    /// Compact label like `dgemm 8192x8192x8192 HDH`.
    pub fn label(&self) -> String {
        let l = |loc: Loc| if loc == Loc::Host { 'H' } else { 'D' };
        format!(
            "{}gemm {}x{}x{} {}{}{}",
            self.dtype.blas_prefix(),
            self.m,
            self.n,
            self.k,
            l(self.loc_a),
            l(self.loc_b),
            l(self.loc_c)
        )
    }
}

/// One axpy problem instance of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxpyProblem {
    /// Vector length.
    pub n: usize,
    /// Initial residence of `x`.
    pub loc_x: Loc,
    /// Initial residence of `y`.
    pub loc_y: Loc,
}

impl AxpyProblem {
    /// The model-facing description.
    pub fn spec(&self) -> ProblemSpec {
        ProblemSpec::axpy(Dtype::F64, self.n, self.loc_x, self.loc_y)
    }

    /// True if both vectors start on the host.
    pub fn full_offload(&self) -> bool {
        self.loc_x == Loc::Host && self.loc_y == Loc::Host
    }

    /// Compact label like `daxpy 64Mi HD`.
    pub fn label(&self) -> String {
        let l = |loc: Loc| if loc == Loc::Host { 'H' } else { 'D' };
        format!(
            "daxpy {}Mi {}{}",
            self.n >> 20,
            l(self.loc_x),
            l(self.loc_y)
        )
    }
}

/// Experiment scale: the paper's full grids or a reduced grid with the same
/// structure (used by default so every bench finishes in minutes; set the
/// `COCOPELIA_FULL=1` environment variable for the full sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-exact problem grids.
    Full,
    /// Structurally identical, coarser grids.
    Reduced,
}

impl Scale {
    /// Reads `COCOPELIA_FULL` from the environment.
    pub fn from_env() -> Scale {
        if std::env::var("COCOPELIA_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale::Full
        } else {
            Scale::Reduced
        }
    }
}

/// The seven gemm location combinations (all on host … two on device;
/// all-on-device is excluded since nothing overlaps, §V-B).
pub fn gemm_loc_combos() -> Vec<(Loc, Loc, Loc)> {
    let mut v = Vec::new();
    for a in [Loc::Host, Loc::Device] {
        for b in [Loc::Host, Loc::Device] {
            for c in [Loc::Host, Loc::Device] {
                if (a, b, c) != (Loc::Device, Loc::Device, Loc::Device) {
                    v.push((a, b, c));
                }
            }
        }
    }
    v
}

/// The three axpy location combinations.
pub fn axpy_loc_combos() -> Vec<(Loc, Loc)> {
    vec![
        (Loc::Host, Loc::Host),
        (Loc::Host, Loc::Device),
        (Loc::Device, Loc::Host),
    ]
}

/// §V-B gemm validation set, square problems: sizes `{4,8,12,16}·2^10` ×
/// all 7 location combinations (28 problems at full scale).
pub fn gemm_validation_square(dtype: Dtype, scale: Scale) -> Vec<GemmProblem> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[4 << 10, 8 << 10, 12 << 10, 16 << 10],
        Scale::Reduced => &[4 << 10, 8 << 10],
    };
    let mut v = Vec::new();
    for &s in sizes {
        for (a, b, c) in gemm_loc_combos() {
            v.push(GemmProblem {
                dtype,
                m: s,
                n: s,
                k: s,
                loc_a: a,
                loc_b: b,
                loc_c: c,
            });
        }
    }
    v
}

/// §V-B gemm shape set: fat-by-thin (`M = N = K·r²`) and thin-by-fat
/// (`M = N = K/r²`) at constant volume, `r ∈ {3,4,5}`, full offload.
///
/// Dimensions are rounded to multiples of 256 so they land on the tiling
/// grid the way the paper's sweep does.
pub fn gemm_validation_shapes(dtype: Dtype, scale: Scale) -> Vec<GemmProblem> {
    let volumes: &[f64] = match scale {
        Scale::Full => &[
            (8u64 << 10) as f64 * (8u64 << 10) as f64 * (8u64 << 10) as f64,
            (12u64 << 10) as f64 * (12u64 << 10) as f64 * (12u64 << 10) as f64,
        ],
        Scale::Reduced => &[(8u64 << 10) as f64 * (8u64 << 10) as f64 * (8u64 << 10) as f64],
    };
    let round = |x: f64| ((x / 256.0).round().max(1.0) as usize) * 256;
    // Reject problems whose full-reuse device footprint exceeds Testbed I's
    // 12 GB ("all selected problem sizes can fit in the device memory").
    let fits =
        |m: usize, n: usize, k: usize| (m * k + k * n + m * n) * dtype.width() < 11 * (1 << 30);
    let mut v = Vec::new();
    for &vol in volumes {
        for r in [3usize, 4, 5] {
            let r2 = (r * r) as f64;
            // Fat-by-thin: M = N = K·r² ⇒ K = (vol / r⁴)^(1/3).
            let k = round((vol / (r2 * r2)).cbrt());
            let mn = round(k as f64 * r2);
            if fits(mn, mn, k) {
                v.push(GemmProblem {
                    dtype,
                    m: mn,
                    n: mn,
                    k,
                    loc_a: Loc::Host,
                    loc_b: Loc::Host,
                    loc_c: Loc::Host,
                });
            }
            // Thin-by-fat: M = N = K/r² ⇒ K = (vol · r⁴)^(1/3).
            let k = round((vol * r2 * r2).cbrt());
            let mn = round(k as f64 / r2);
            if fits(mn, mn, k) {
                v.push(GemmProblem {
                    dtype,
                    m: mn,
                    n: mn,
                    k,
                    loc_a: Loc::Host,
                    loc_b: Loc::Host,
                    loc_c: Loc::Host,
                });
            }
        }
    }
    v
}

/// §V-B daxpy validation set: `N ∈ {8,64,128,256}·2^20` × 3 location
/// combinations.
pub fn daxpy_validation(scale: Scale) -> Vec<AxpyProblem> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[8 << 20, 64 << 20, 128 << 20, 256 << 20],
        Scale::Reduced => &[8 << 20, 64 << 20],
    };
    let mut v = Vec::new();
    for &n in sizes {
        for (x, y) in axpy_loc_combos() {
            v.push(AxpyProblem {
                n,
                loc_x: x,
                loc_y: y,
            });
        }
    }
    v
}

/// §V-E gemm evaluation set: square sizes `4·2^10 … 16·2^10` (step 0.5·2^10
/// at full scale) × 7 locations, plus the shape set.
pub fn gemm_eval_set(dtype: Dtype, scale: Scale) -> Vec<GemmProblem> {
    let sizes: Vec<usize> = match scale {
        Scale::Full => (8..=32).map(|i| i * 512).collect(), // 25 sizes
        Scale::Reduced => (2..=8).map(|i| i * 2048).collect(), // 7 sizes
    };
    let mut v = Vec::new();
    for &s in &sizes {
        for (a, b, c) in gemm_loc_combos() {
            v.push(GemmProblem {
                dtype,
                m: s,
                n: s,
                k: s,
                loc_a: a,
                loc_b: b,
                loc_c: c,
            });
        }
    }
    v.extend(gemm_validation_shapes(dtype, scale));
    v
}

/// §V-E daxpy evaluation set: 11 sizes × 3 locations at full scale.
pub fn daxpy_eval_set(scale: Scale) -> Vec<AxpyProblem> {
    let sizes: Vec<usize> = match scale {
        Scale::Full => (0..11).map(|i| (64 + i * 96) << 20).collect(),
        Scale::Reduced => (0..4).map(|i| (64 + i * 192) << 20).collect(),
    };
    let mut v = Vec::new();
    for &n in &sizes {
        for (x, y) in axpy_loc_combos() {
            v.push(AxpyProblem {
                n,
                loc_x: x,
                loc_y: y,
            });
        }
    }
    v
}

/// The paper's measured tiling grid for gemm sweeps: `T = 256..16384` step
/// 256 (coarser at reduced scale), filtered by `T ≤ min_dim/1.5`.
pub fn gemm_tile_grid(min_dim: usize, scale: Scale) -> Vec<usize> {
    let step = match scale {
        Scale::Full => 256,
        Scale::Reduced => 512,
    };
    let cap = (min_dim as f64 / 1.5) as usize;
    (1..=64)
        .map(|i| i * step)
        .filter(|&t| t <= cap && t <= 16384)
        .collect()
}

/// Tiling grid for daxpy sweeps: multiples of `2^21` elements.
pub fn daxpy_tile_grid(n: usize, scale: Scale) -> Vec<usize> {
    let step: usize = match scale {
        Scale::Full => 1 << 21,
        Scale::Reduced => 1 << 22,
    };
    (1..=32).map(|i| i * step).filter(|&t| t <= n / 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_combos_counts_match_paper() {
        assert_eq!(gemm_loc_combos().len(), 7); // 2^3 - 1
        assert_eq!(axpy_loc_combos().len(), 3); // 2^2 - 1
    }

    #[test]
    fn full_validation_set_sizes() {
        assert_eq!(gemm_validation_square(Dtype::F64, Scale::Full).len(), 28);
        assert_eq!(daxpy_validation(Scale::Full).len(), 12);
        // 12 shape problems at full scale, minus the ones whose footprint
        // exceeds Testbed I's device memory.
        let shapes = gemm_validation_shapes(Dtype::F64, Scale::Full);
        assert!(shapes.len() >= 9 && shapes.len() <= 12, "{}", shapes.len());
    }

    #[test]
    fn shapes_preserve_volume_roughly() {
        for p in gemm_validation_shapes(Dtype::F64, Scale::Full) {
            let vol = p.m as f64 * p.n as f64 * p.k as f64;
            let target = (8u64 << 10).pow(3) as f64;
            let lo = target / 3.0;
            let hi = (12f64 / 8.0).powi(3) * target * 3.0;
            assert!(vol > lo && vol < hi, "{} volume {vol}", p.label());
            // All dims on the 256 grid.
            assert_eq!(p.m % 256, 0);
            assert_eq!(p.k % 256, 0);
        }
    }

    #[test]
    fn shape_set_contains_fat_and_thin() {
        let shapes = gemm_validation_shapes(Dtype::F64, Scale::Reduced);
        assert!(shapes.iter().any(|p| p.m > p.k * 4), "fat-by-thin present");
        assert!(shapes.iter().any(|p| p.k > p.m * 4), "thin-by-fat present");
    }

    #[test]
    fn eval_sets_nonempty_and_fit_memory() {
        // Largest problem must fit a 12 GB device with full reuse staging.
        for p in gemm_eval_set(Dtype::F64, Scale::Full) {
            let bytes = (p.m * p.k + p.k * p.n + p.m * p.n) * 8;
            assert!(bytes < 11 * (1 << 30), "{} needs {bytes}", p.label());
        }
        assert_eq!(daxpy_eval_set(Scale::Full).len(), 33);
    }

    #[test]
    fn tile_grid_respects_constraint() {
        let grid = gemm_tile_grid(4096, Scale::Full);
        assert!(grid.iter().all(|&t| t as f64 <= 4096.0 / 1.5));
        assert!(grid.contains(&256));
        assert!(!gemm_tile_grid(256, Scale::Full).contains(&256));
    }

    #[test]
    fn labels_are_informative() {
        let p = GemmProblem {
            dtype: Dtype::F32,
            m: 1024,
            n: 1024,
            k: 1024,
            loc_a: Loc::Host,
            loc_b: Loc::Device,
            loc_c: Loc::Host,
        };
        assert_eq!(p.label(), "sgemm 1024x1024x1024 HDH");
        assert!(p.spec().operands[1].loc == Loc::Device);
    }
}
