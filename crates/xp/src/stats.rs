//! Result statistics: relative errors, violin summaries (the paper reports
//! error distributions as violin plots), and geometric-mean improvements.

/// Percentage relative error `100·(predicted − measured)/measured` (§V-C).
///
/// # Panics
///
/// Panics if `measured` is not strictly positive.
pub fn rel_err_pct(predicted: f64, measured: f64) -> f64 {
    assert!(
        measured > 0.0,
        "measured time must be positive, got {measured}"
    );
    100.0 * (predicted - measured) / measured
}

/// Five-number summary plus mean of a sample, standing in for a violin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolinSummary {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

/// Linear-interpolated percentile of a sorted slice, `p ∈ [0, 100]`.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl ViolinSummary {
    /// Summarises a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn of(samples: &[f64]) -> ViolinSummary {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "samples must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ViolinSummary {
            min: sorted[0],
            q1: percentile(&sorted, 25.0),
            median: percentile(&sorted, 50.0),
            q3: percentile(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            n: sorted.len(),
        }
    }

    /// One-line rendering, `min/q1/med/q3/max` with the mean in brackets.
    pub fn render(&self) -> String {
        format!(
            "min {:+7.1}  q1 {:+7.1}  med {:+7.1}  q3 {:+7.1}  max {:+7.1}  (mean {:+6.1}, n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }
}

/// Geometric mean of strictly-positive ratios, reported as a percentage
/// improvement (`(gm − 1)·100`), the way Table IV summarises speedups.
///
/// Invalid ratios (non-finite or non-positive) are skipped by the
/// underlying [`cocopelia_deploy::geomean`]; an all-invalid sample reports
/// −100 % (geomean 0).
pub fn geomean_improvement_pct(speedups: &[f64]) -> f64 {
    (cocopelia_deploy::geomean(speedups) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_signs() {
        assert!((rel_err_pct(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((rel_err_pct(0.9, 1.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rel_err_rejects_zero_measured() {
        let _ = rel_err_pct(1.0, 0.0);
    }

    #[test]
    fn violin_of_known_sample() {
        let v = ViolinSummary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.median, 3.0);
        assert_eq!(v.q1, 2.0);
        assert_eq!(v.q3, 4.0);
        assert_eq!(v.max, 5.0);
        assert_eq!(v.mean, 3.0);
        assert_eq!(v.n, 5);
    }

    #[test]
    fn violin_single_sample() {
        let v = ViolinSummary::of(&[2.5]);
        assert_eq!(v.median, 2.5);
        assert_eq!(v.q1, 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn violin_rejects_empty() {
        let _ = ViolinSummary::of(&[]);
    }

    #[test]
    fn geomean_improvement() {
        // Speedups 1.1 and 1.21: geomean = sqrt(1.331) ≈ 1.1537.
        let pct = geomean_improvement_pct(&[1.1, 1.21]);
        assert!((pct - 15.37).abs() < 0.1, "{pct}");
        assert!((geomean_improvement_pct(&[1.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_fields() {
        let s = ViolinSummary::of(&[-5.0, 0.0, 5.0]).render();
        assert!(s.contains("med"));
        assert!(s.contains("n=3"));
    }
}
