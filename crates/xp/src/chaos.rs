//! Deterministic chaos harness: seeded fault plans and request traces for
//! soak-testing the fault-tolerant serving path (`cocopelia serve
//! --faults`, `tests/serve_faults.rs`).
//!
//! Everything here is a pure function of its seed: the same seed yields
//! the same fault plan, the same trace, and therefore — because the
//! simulator itself is deterministic — the same end-to-end run.

use cocopelia_gpusim::{DegradeWindow, FaultSpec};
use cocopelia_runtime::{
    AxpyRequest, DotRequest, GemmRequest, MatOperand, RoutineRequest, SharedMat, SharedVec,
    TileChoice, VecOperand,
};

/// The standard chaos fault plan: a little of everything. Transient h2d/
/// d2h and kernel faults at rates high enough that multi-tile requests
/// see scheduler-level retries, ECC corruption on kernel launches, a link
/// degradation window early in the run, and terminal device loss after
/// `lost_after` accumulated faults so long runs exercise quarantine,
/// re-dispatch, and (once the pool drains) host fallback.
pub fn chaos_fault_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        seed,
        h2d: 0.05,
        d2h: 0.05,
        kernel: 0.08,
        ecc: 0.04,
        lost_after: Some(24),
        degrade: vec![DegradeWindow {
            start_s: 0.005,
            end_s: 0.02,
            factor: 0.5,
        }],
    }
}

/// A mixed request trace sized for the chaos soak: `rounds` rounds of
/// four requests (two gemms sharing `A`/`B`, an axpy and a dot sharing
/// `X`), small enough that a round is quick but multi-tile enough that
/// every round enqueues dozens of faultable operations.
pub fn chaos_request_trace(rounds: usize) -> Vec<RoutineRequest> {
    let n = 1024usize;
    let v = 1usize << 20;
    let mut out = Vec::with_capacity(rounds * 4);
    for _ in 0..rounds {
        let gemm = || {
            GemmRequest::<f64>::new(
                SharedMat::new("A", n, n),
                SharedMat::new("B", n, n),
                MatOperand::HostGhost { rows: n, cols: n },
            )
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Fixed(256))
        };
        out.push(gemm().into());
        out.push(gemm().into());
        out.push(
            AxpyRequest::<f64>::new(SharedVec::new("X", v), VecOperand::HostGhost { len: v })
                .alpha(1.5)
                .tile(TileChoice::Fixed(1 << 18))
                .into(),
        );
        out.push(
            DotRequest::<f64>::new(SharedVec::new("X", v), SharedVec::new("Y", v))
                .tile(TileChoice::Fixed(1 << 18))
                .into(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_is_deterministic_per_seed() {
        assert_eq!(chaos_fault_spec(7), chaos_fault_spec(7));
        assert_ne!(chaos_fault_spec(7), chaos_fault_spec(8));
        assert!(!chaos_fault_spec(7).is_none());
    }

    #[test]
    fn chaos_trace_scales_with_rounds() {
        assert_eq!(chaos_request_trace(1).len(), 4);
        assert_eq!(chaos_request_trace(5).len(), 20);
        let routines: std::collections::BTreeSet<&str> =
            chaos_request_trace(1).iter().map(|r| r.routine()).collect();
        assert_eq!(routines.len(), 3, "mixed routines: {routines:?}");
    }
}
