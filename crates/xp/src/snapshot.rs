//! The standard perf-snapshot sweep behind `cocopelia snapshot`.
//!
//! A fixed, versioned set of routine/size points is executed on a *quiet*
//! testbed (noise forced to [`NoiseSpec::NONE`], fixed seeds, quick
//! deployment grids) so two snapshots taken from different builds of this
//! repository differ only through code changes — exactly what the
//! [`cocopelia_obs::diff`] comparator needs for regression gating. Each
//! point records the makespan, overlap efficiency, selected tile,
//! tile-cache hit rate, and per-model prediction drift of one routine call.

use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{ExecMode, Gpu, NoiseSpec, TestbedSpec};
use cocopelia_obs::{Snapshot, SnapshotEntry};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatOperand, RoutineReport,
    TileChoice, VecOperand,
};
use std::collections::BTreeMap;

/// Seed for every simulated device in the sweep. The sweep also disables
/// noise, so the seed only pins tie-breaking paths.
pub const SNAPSHOT_SEED: u64 = 0x5EED;

/// One point of the standard sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Stable id entries are matched by across snapshots.
    pub id: String,
    /// Routine to run (`"dgemm"`, `"daxpy"`, `"ddot"`, `"dgemv"`).
    pub routine: &'static str,
    /// Problem dimensions (3 for gemm, 2 for gemv, 1 for the vector ops).
    pub dims: Vec<usize>,
}

impl SweepPoint {
    fn new(routine: &'static str, dims: Vec<usize>) -> SweepPoint {
        let id = format!(
            "{routine} {}",
            dims.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x")
        );
        SweepPoint { id, routine, dims }
    }
}

/// The standard sweep: a square and a rectangular dgemm, both vector
/// routines, and the gemv extension. Append new points rather than editing
/// existing ones — ids are the cross-snapshot match keys.
pub fn standard_sweep() -> Vec<SweepPoint> {
    vec![
        SweepPoint::new("dgemm", vec![2048, 2048, 2048]),
        SweepPoint::new("dgemm", vec![4096, 1024, 1024]),
        SweepPoint::new("daxpy", vec![1 << 22]),
        SweepPoint::new("ddot", vec![1 << 22]),
        SweepPoint::new("dgemv", vec![2048, 2048]),
    ]
}

fn run_point(ctx: &mut Cocopelia, p: &SweepPoint) -> Result<RoutineReport, String> {
    let ghost = |r: usize, c: usize| MatOperand::<f64>::HostGhost { rows: r, cols: c };
    let gvec = |n: usize| VecOperand::<f64>::HostGhost { len: n };
    let report = match p.routine {
        "dgemm" => {
            let (m, n, k) = (p.dims[0], p.dims[1], p.dims[2]);
            GemmRequest::new(ghost(m, k), ghost(k, n), ghost(m, n))
                .alpha(1.0)
                .beta(1.0)
                .tile(TileChoice::Auto)
                .run(ctx)
                .map_err(|e| e.to_string())?
                .report
        }
        "daxpy" => {
            AxpyRequest::new(gvec(p.dims[0]), gvec(p.dims[0]))
                .alpha(1.5)
                .tile(TileChoice::Auto)
                .run(ctx)
                .map_err(|e| e.to_string())?
                .report
        }
        "ddot" => {
            DotRequest::new(gvec(p.dims[0]), gvec(p.dims[0]))
                .tile(TileChoice::Auto)
                .run(ctx)
                .map_err(|e| e.to_string())?
                .report
        }
        "dgemv" => {
            let (m, n) = (p.dims[0], p.dims[1]);
            GemvRequest::new(ghost(m, n), gvec(n), gvec(m))
                .alpha(1.0)
                .beta(1.0)
                .tile(TileChoice::Auto)
                .run(ctx)
                .map_err(|e| e.to_string())?
                .report
        }
        other => return Err(format!("standard sweep has no runner for `{other}`")),
    };
    Ok(report)
}

fn entry_from_report(p: &SweepPoint, report: &RoutineReport) -> SnapshotEntry {
    let drift_mape: BTreeMap<String, f64> = report
        .drift
        .iter()
        .map(|d| (d.model.name().to_owned(), d.abs_rel_err()))
        .collect();
    SnapshotEntry {
        id: p.id.clone(),
        routine: p.routine.to_owned(),
        dims: p.dims.clone(),
        tile: report.tile,
        makespan_ns: report.overlap.makespan_ns,
        elapsed_secs: report.elapsed.as_secs_f64(),
        gflops: report.gflops(),
        overlap_efficiency: report.overlap.efficiency(),
        cache_hit_rate: report.cache_hit_rate(),
        drift_mape,
    }
}

/// Deploys quietly on `testbed` and runs [`standard_sweep`], one fresh
/// timing-only device per point so entries never share simulator state.
///
/// Noise is forced to [`NoiseSpec::NONE`] regardless of what the testbed
/// specifies: snapshots exist to detect *code* changes, and a noisy virtual
/// machine would bury a real regression in jitter.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn collect_snapshot(testbed: &TestbedSpec, label: &str) -> Result<Snapshot, String> {
    let mut tb = testbed.clone();
    tb.noise = NoiseSpec::NONE;
    let report = deploy(&tb, &DeployConfig::quick()).map_err(|e| e.to_string())?;
    let mut snap = Snapshot::new(label, report.profile.testbed.clone());
    for point in &standard_sweep() {
        let gpu = Gpu::new(tb.clone(), ExecMode::TimingOnly, SNAPSHOT_SEED);
        let mut ctx = Cocopelia::new(gpu, report.profile.clone());
        let call = run_point(&mut ctx, point)
            .map_err(|e| format!("sweep point `{}` failed: {e}", point.id))?;
        snap.entries.push(entry_from_report(point, &call));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::testbed_i;

    #[test]
    fn sweep_ids_are_unique_and_descriptive() {
        let sweep = standard_sweep();
        let mut ids: Vec<&str> = sweep.iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sweep.len(), "duplicate sweep ids");
        assert!(sweep.iter().any(|p| p.id == "dgemm 2048x2048x2048"));
    }

    #[test]
    fn collection_is_deterministic() {
        let a = collect_snapshot(&testbed_i(), "a").expect("collects");
        let b = collect_snapshot(&testbed_i(), "b").expect("collects");
        assert_eq!(a.entries.len(), standard_sweep().len());
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea, eb, "sweep point `{}` is not reproducible", ea.id);
        }
        for e in &a.entries {
            assert!(e.makespan_ns > 0, "{}", e.id);
            assert!(e.gflops > 0.0, "{}", e.id);
            assert!(e.tile > 0, "{}", e.id);
            assert!(e.overlap_efficiency >= 1.0, "{}", e.id);
            assert!(!e.drift_mape.is_empty(), "{}", e.id);
        }
    }
}
