//! # cocopelia-xp
//!
//! The experiment harness for the CoCoPeLia reproduction: the paper's §V-B
//! validation and §V-E evaluation problem sets ([`sets`]), library/model
//! runners on fresh simulated devices ([`runner`]), error statistics and
//! violin summaries ([`stats`]), plain-text table/figure rendering
//! ([`table`]), the deterministic standard sweep behind
//! `cocopelia snapshot` ([`snapshot`]), and the request-serving sweep and
//! trace format behind `cocopelia serve` ([`serve`]).
//!
//! Every bench target in `cocopelia-bench` is a thin composition of this
//! crate's pieces; the cross-crate integration tests in the repository's
//! `tests/` directory are attached here.

#![deny(missing_docs)]

pub mod chaos;
pub mod runner;
pub mod serve;
pub mod sets;
pub mod snapshot;
pub mod stats;
pub mod table;

pub use chaos::{chaos_fault_spec, chaos_request_trace};
pub use runner::{AxpyLib, GemmLib, Lab, RunOut};
pub use serve::{
    deadline_request_trace, parse_request_trace, run_serve, run_serve_streaming,
    run_serve_with_faults, run_serve_with_options, run_serve_with_policy, skewed_request_trace,
    standard_request_trace, straggler_fault_plans, straggler_request_trace, ArrivalKind,
    ArrivalSpec, ServeComparison, ServeOptions,
};
pub use sets::{AxpyProblem, GemmProblem, Scale};
pub use snapshot::{collect_snapshot, standard_sweep, SweepPoint, SNAPSHOT_SEED};
pub use stats::{geomean_improvement_pct, rel_err_pct, ViolinSummary};
pub use table::{bar_chart, TextTable};
