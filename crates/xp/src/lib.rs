//! # cocopelia-xp
//!
//! The experiment harness for the CoCoPeLia reproduction: the paper's §V-B
//! validation and §V-E evaluation problem sets ([`sets`]), library/model
//! runners on fresh simulated devices ([`runner`]), error statistics and
//! violin summaries ([`stats`]), and plain-text table/figure rendering
//! ([`table`]).
//!
//! Every bench target in `cocopelia-bench` is a thin composition of this
//! crate's pieces; the cross-crate integration tests in the repository's
//! `tests/` directory are attached here.

#![deny(missing_docs)]

pub mod runner;
pub mod sets;
pub mod stats;
pub mod table;

pub use runner::{AxpyLib, GemmLib, Lab, RunOut};
pub use sets::{AxpyProblem, GemmProblem, Scale};
pub use stats::{geomean_improvement_pct, rel_err_pct, ViolinSummary};
pub use table::{bar_chart, TextTable};
