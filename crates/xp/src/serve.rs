//! Request-serving sweep: a standard heterogeneous request trace, an
//! executor-vs-sequential comparison, and a plain-text trace format for
//! the `cocopelia serve` subcommand.
//!
//! The comparison pits the [`Executor`] (cross-request residency cache,
//! affinity dispatch over a device pool) against the same trace replayed
//! sequentially on one fresh device with every shared operand stripped —
//! the no-reuse baseline a client gets by calling the library once per
//! request.

use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{ExecMode, FaultSpec, NoiseSpec, SimScalar, SimTime, TestbedSpec};
use cocopelia_runtime::serve::{
    Executor, ExecutorConfig, SchedulePolicy, ServeReport, TelemetryConfig, WatchWindow,
};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatArg, MatOperand, MultiGpu,
    RoutineRequest, SharedMat, SharedVec, TileChoice, VecArg, VecOperand,
};

use crate::snapshot::SNAPSHOT_SEED;

/// Executor run vs the sequential no-reuse replay of the same trace.
#[derive(Debug)]
pub struct ServeComparison {
    /// The executor's aggregate report.
    pub report: ServeReport,
    /// Virtual seconds of the sequential no-reuse baseline (sum of
    /// per-request elapsed on one fresh device).
    pub sequential_secs: f64,
    /// Devices in the executor's pool.
    pub devices: usize,
}

impl ServeComparison {
    /// Sequential-baseline time over executor makespan (`> 1` = win).
    pub fn speedup(&self) -> f64 {
        let makespan = self.report.makespan.as_secs_f64();
        if makespan > 0.0 {
            self.sequential_secs / makespan
        } else {
            0.0
        }
    }
}

/// The standard mixed trace: ten requests across four routines, with the
/// gemm operands `A`/`B`, the gemv matrix `A`, and the level-1 vector `X`
/// shared across requests — enough reuse for the residency cache to show.
pub fn standard_request_trace() -> Vec<RoutineRequest> {
    let n = 2048usize;
    let v = 1usize << 22;
    let a = || SharedMat::new("A", n, n);
    let b = || SharedMat::new("B", n, n);
    let x = || SharedVec::new("X", v);
    let gemm = || {
        GemmRequest::<f64>::new(a(), b(), MatOperand::HostGhost { rows: n, cols: n })
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
    };
    vec![
        gemm().into(),
        gemm().into(),
        gemm().into(),
        gemm().into(),
        GemmRequest::<f32>::new(
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .into(),
        AxpyRequest::<f64>::new(x(), VecOperand::HostGhost { len: v })
            .alpha(1.5)
            .tile(TileChoice::Auto)
            .into(),
        AxpyRequest::<f64>::new(x(), VecOperand::HostGhost { len: v })
            .alpha(-0.5)
            .tile(TileChoice::Auto)
            .into(),
        DotRequest::<f64>::new(x(), SharedVec::new("Y", v))
            .tile(TileChoice::Auto)
            .into(),
        DotRequest::<f64>::new(x(), SharedVec::new("Y", v))
            .tile(TileChoice::Auto)
            .into(),
        GemvRequest::<f64>::new(
            a(),
            VecOperand::HostGhost { len: n },
            VecOperand::HostGhost { len: n },
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .into(),
    ]
}

/// The standard *skewed* trace for scheduling-policy comparisons: six
/// equal dgemm requests and one eight-times-larger straggler submitted
/// *last*. FIFO spreads the small requests across the pool first and then
/// lands the straggler on an already-loaded device; the predictive policy
/// recognises the straggler as the longest job and dispatches it first
/// (LPT), so the small requests pack onto the other devices under it.
/// Operands are private (no sharing) so the comparison isolates
/// scheduling from residency effects.
pub fn skewed_request_trace() -> Vec<RoutineRequest> {
    let ghost = |n: usize| MatOperand::HostGhost { rows: n, cols: n };
    let gemm = |n: usize| {
        GemmRequest::<f64>::new(ghost(n), ghost(n), ghost(n))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
    };
    let mut trace: Vec<RoutineRequest> = (0..6).map(|_| gemm(1024).into()).collect();
    trace.push(gemm(2048).into());
    trace
}

/// The standard *deadline* trace: a large deadline-less dgemm submitted
/// first, then a small dgemm whose 25 ms flow-time budget is comfortable
/// on its own (~10 ms on Testbed I) but blown when it queues behind the
/// ~40 ms large request. FIFO serves in submission order and misses the
/// deadline; EDF pulls the deadline-carrying request forward and meets
/// it. Serve it on **one** device — with more, the two requests never
/// contend and both policies meet the deadline.
pub fn deadline_request_trace() -> Vec<RoutineRequest> {
    let ghost = |n: usize| MatOperand::HostGhost { rows: n, cols: n };
    vec![
        GemmRequest::<f64>::new(ghost(2048), ghost(2048), ghost(2048))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
            .into(),
        GemmRequest::<f64>::new(ghost(1024), ghost(1024), ghost(1024))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
            .deadline_secs(0.025)
            .into(),
    ]
}

/// Deploys on a quiet copy of `testbed`, serves `trace` through an
/// [`Executor`] over `devices` devices, and replays the same trace
/// sequentially without sharing for the baseline.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
) -> Result<ServeComparison, String> {
    run_serve_with_faults(testbed, devices, trace, &FaultSpec::none())
}

/// [`run_serve`] with a fault plan injected into every pool device (the
/// sequential baseline stays faultless — it is the no-reuse *and* no-fault
/// reference). [`FaultSpec::none`] reproduces [`run_serve`] bit-for-bit.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve_with_faults(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
) -> Result<ServeComparison, String> {
    run_serve_with_policy(testbed, devices, trace, faults, SchedulePolicy::Fifo)
}

/// [`run_serve_with_faults`] with an explicit queue-scheduling policy.
/// [`SchedulePolicy::Fifo`] reproduces [`run_serve_with_faults`]
/// bit-for-bit; the sequential baseline is policy-independent.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve_with_policy(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    policy: SchedulePolicy,
) -> Result<ServeComparison, String> {
    run_serve_with_options(
        testbed,
        devices,
        trace,
        faults,
        &ServeOptions {
            policy,
            ..ServeOptions::default()
        },
    )
}

/// Knobs beyond the fault plan for a serve run: scheduling policy,
/// request-lifecycle tracing, and periodic interval snapshots.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Queue-scheduling policy ([`SchedulePolicy::Fifo`] by default).
    pub policy: SchedulePolicy,
    /// Collect a [`ServeTrace`](cocopelia_obs::ServeTrace) of the run
    /// (request spans plus per-device engine lanes) into
    /// [`ServeReport::trace`](cocopelia_runtime::serve::ServeReport).
    pub trace: bool,
    /// Emit a queue-depth/clock/drift snapshot every interval of virtual
    /// time (`None` disables them).
    pub snapshot_interval: Option<SimTime>,
    /// Streaming telemetry (windowed metrics, SLOs, flight recorder,
    /// incremental Perfetto export) — the `serve --watch` machinery.
    /// `None` keeps the end-only report.
    pub watch: Option<TelemetryConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            policy: SchedulePolicy::Fifo,
            trace: false,
            snapshot_interval: None,
            watch: None,
        }
    }
}

/// [`run_serve_with_policy`] with the full option set — tracing and
/// interval snapshots on top of the policy. The default options reproduce
/// [`run_serve_with_policy`] bit-for-bit (tracing never perturbs virtual
/// timing).
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve_with_options(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    options: &ServeOptions,
) -> Result<ServeComparison, String> {
    serve_impl(testbed, devices, trace, faults, options, None)
}

/// [`run_serve_with_options`] with a live window sink: when
/// [`ServeOptions::watch`] is set, `sink` receives each closed telemetry
/// window as the drain crosses it — the `serve --watch` line printer.
///
/// # Errors
///
/// Propagates deployment, runtime, and telemetry-stream failures as
/// strings.
pub fn run_serve_streaming(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    options: &ServeOptions,
    sink: Box<dyn FnMut(&WatchWindow)>,
) -> Result<ServeComparison, String> {
    serve_impl(testbed, devices, trace, faults, options, Some(sink))
}

type WatchSink = Box<dyn FnMut(&WatchWindow)>;

fn serve_impl(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    options: &ServeOptions,
    sink: Option<WatchSink>,
) -> Result<ServeComparison, String> {
    let mut tb = testbed.clone();
    tb.noise = NoiseSpec::NONE;
    let deployed = deploy(&tb, &DeployConfig::quick()).map_err(|e| e.to_string())?;

    // Sequential no-reuse baseline: one fresh device, shared operands
    // replaced by plain host ghosts, requests back to back.
    let mut seq = Cocopelia::new(
        cocopelia_gpusim::Gpu::new(tb.clone(), ExecMode::TimingOnly, SNAPSHOT_SEED),
        deployed.profile.clone(),
    );
    let mut sequential_secs = 0.0;
    for req in &trace {
        let report = seq
            .submit(req.clone().without_sharing())
            .map_err(|e| format!("sequential baseline: {e}"))?;
        sequential_secs += report.elapsed.as_secs_f64();
    }

    let pool = MultiGpu::with_faults(
        &tb,
        devices,
        ExecMode::TimingOnly,
        SNAPSHOT_SEED,
        deployed.profile,
        faults,
    );
    let mut exec = Executor::new(pool, ExecutorConfig::default());
    exec.set_policy(options.policy);
    if options.trace {
        exec.enable_tracing();
    }
    if let Some(watch) = &options.watch {
        exec.enable_telemetry(watch.clone())
            .map_err(|e| format!("telemetry stream: {e}"))?;
        if let Some(sink) = sink {
            exec.set_watch_sink(sink);
        }
    }
    exec.set_snapshot_interval(options.snapshot_interval);
    for req in trace {
        exec.submit(req);
    }
    let report = exec.run();
    Ok(ServeComparison {
        report,
        sequential_secs,
        devices,
    })
}

/// Parses a plain-text request trace, one request per line:
///
/// ```text
/// # comment
/// dgemm 2048 2048 2048 a=A b=B c=- tile=auto deadline=0.25
/// sgemm 1024 1024 1024
/// daxpy 4194304 x=X
/// ddot  4194304 x=X y=Y tile=1048576
/// dgemv 2048 2048 a=A
/// ```
///
/// Dims follow the routine name (`M N K` for gemm, `M N` for gemv, `N`
/// for the level-1 routines). `a=`/`b=`/`c=`/`x=`/`y=` name shared
/// operands (`-` or absence means a private host ghost), `tile=` is
/// `auto` or a fixed size, and `deadline=` is a virtual-second budget.
///
/// # Errors
///
/// Returns a message naming the offending line on any parse failure.
pub fn parse_request_trace(text: &str) -> Result<Vec<RoutineRequest>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_request_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// One `key=value` option split, with `-` meaning "not set".
fn opt<'a>(tokens: &'a [&str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key))
        .filter(|v| *v != "-")
}

fn mat<T: SimScalar>(key: Option<&str>, rows: usize, cols: usize) -> MatArg<T> {
    match key {
        Some(k) => SharedMat::new(k, rows, cols).into(),
        None => MatOperand::HostGhost { rows, cols }.into(),
    }
}

fn vec_arg<T: SimScalar>(key: Option<&str>, len: usize) -> VecArg<T> {
    match key {
        Some(k) => SharedVec::new(k, len).into(),
        None => VecOperand::HostGhost { len }.into(),
    }
}

fn parse_request_line(line: &str) -> Result<RoutineRequest, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (routine, rest) = tokens.split_first().ok_or("empty request line")?;
    let dims: Vec<usize> = rest
        .iter()
        .take_while(|t| !t.contains('='))
        .map(|t| t.parse().map_err(|_| format!("bad dim `{t}`")))
        .collect::<Result<_, _>>()?;
    let opts = &rest[dims.len()..];
    if let Some(bad) = opts.iter().find(|t| !t.contains('=')) {
        return Err(format!("unexpected token `{bad}`"));
    }
    let tile = match opt(opts, "tile=") {
        None | Some("auto") => TileChoice::Auto,
        Some(t) => TileChoice::Fixed(t.parse().map_err(|_| format!("bad tile `{t}`"))?),
    };
    let deadline: Option<f64> = opt(opts, "deadline=")
        .map(|d| d.parse().map_err(|_| format!("bad deadline `{d}`")))
        .transpose()?;
    let need = |n: usize| {
        if dims.len() == n {
            Ok(())
        } else {
            Err(format!("{routine} needs {n} dims, got {}", dims.len()))
        }
    };
    let req: RoutineRequest = match *routine {
        "dgemm" | "sgemm" => {
            need(3)?;
            let (m, n, k) = (dims[0], dims[1], dims[2]);
            let (a, b, c) = (opt(opts, "a="), opt(opts, "b="), opt(opts, "c="));
            if *routine == "dgemm" {
                let mut r = GemmRequest::<f64>::new(mat(a, m, k), mat(b, k, n), mat(c, m, n))
                    .alpha(1.0)
                    .beta(1.0)
                    .tile(tile);
                if let Some(d) = deadline {
                    r = r.deadline_secs(d);
                }
                r.into()
            } else {
                let mut r = GemmRequest::<f32>::new(mat(a, m, k), mat(b, k, n), mat(c, m, n))
                    .alpha(1.0)
                    .beta(1.0)
                    .tile(tile);
                if let Some(d) = deadline {
                    r = r.deadline_secs(d);
                }
                r.into()
            }
        }
        "daxpy" => {
            need(1)?;
            let n = dims[0];
            let mut r =
                AxpyRequest::<f64>::new(vec_arg(opt(opts, "x="), n), vec_arg(opt(opts, "y="), n))
                    .alpha(1.0)
                    .tile(tile);
            if let Some(d) = deadline {
                r = r.deadline_secs(d);
            }
            r.into()
        }
        "ddot" => {
            need(1)?;
            let n = dims[0];
            let mut r =
                DotRequest::<f64>::new(vec_arg(opt(opts, "x="), n), vec_arg(opt(opts, "y="), n))
                    .tile(tile);
            if let Some(d) = deadline {
                r = r.deadline_secs(d);
            }
            r.into()
        }
        "dgemv" => {
            need(2)?;
            let (m, n) = (dims[0], dims[1]);
            let mut r = GemvRequest::<f64>::new(
                mat(opt(opts, "a="), m, n),
                vec_arg(opt(opts, "x="), n),
                vec_arg(opt(opts, "y="), m),
            )
            .alpha(1.0)
            .beta(1.0)
            .tile(tile);
            if let Some(d) = deadline {
                r = r.deadline_secs(d);
            }
            r.into()
        }
        other => return Err(format!("unknown routine `{other}`")),
    };
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trace_is_mixed_and_shares_operands() {
        let trace = standard_request_trace();
        assert!(trace.len() >= 8);
        let routines: std::collections::BTreeSet<&str> =
            trace.iter().map(|r| r.routine()).collect();
        assert!(routines.len() >= 4, "mixed routines, got {routines:?}");
        let shared: usize = trace.iter().map(|r| r.shared_keys().len()).sum();
        assert!(shared >= 8, "trace must actually share operands");
    }

    #[test]
    fn trace_text_round_trips_routines_and_sharing() {
        let text = "\
# the standard shapes
dgemm 2048 2048 2048 a=A b=B tile=auto deadline=0.25
sgemm 1024 1024 1024
daxpy 4194304 x=X
ddot 4194304 x=X y=Y tile=1048576
dgemv 2048 2048 a=A
";
        let trace = parse_request_trace(text).expect("parses");
        assert_eq!(trace.len(), 5);
        assert_eq!(
            trace.iter().map(|r| r.routine()).collect::<Vec<_>>(),
            vec!["dgemm", "sgemm", "daxpy", "ddot", "dgemv"]
        );
        assert_eq!(trace[0].shared_keys(), vec!["A", "B"]);
        assert_eq!(trace[0].deadline(), Some(0.25));
        assert!(trace[1].shared_keys().is_empty());
        assert_eq!(trace[3].shared_keys(), vec!["X", "Y"]);
        assert_eq!(trace[4].shared_keys(), vec!["A"]);
    }

    #[test]
    fn trace_parse_errors_name_the_line() {
        let err = parse_request_trace("dgemm 2048 2048\n").expect_err("too few dims");
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(parse_request_trace("frobnicate 8\n").is_err());
        assert!(parse_request_trace("dgemm 1 1 1 tile=potato\n").is_err());
        assert!(parse_request_trace("dgemm 1 1 1 stray\n").is_err());
    }
}
