//! Request-serving sweep: a standard heterogeneous request trace, seeded
//! open-arrival generators (Poisson and bursty on/off), an
//! executor-vs-sequential comparison, and a plain-text trace format for
//! the `cocopelia serve` subcommand.
//!
//! The comparison pits a [`ServeSession`] (cross-request residency cache,
//! affinity dispatch over a device pool) against the same trace replayed
//! sequentially on one fresh device with every shared operand stripped —
//! the no-reuse baseline a client gets by calling the library once per
//! request.

use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{
    DegradeWindow, ExecMode, FaultSpec, NoiseSpec, SimScalar, SimTime, TestbedSpec,
};
use cocopelia_runtime::serve::{
    ExecutorConfig, HedgeConfig, ProbationConfig, RetryBudgetConfig, SchedulePolicy,
    ServeOptions as SessionOptions, ServeReport, ServeSession, TelemetryConfig, WatchWindow,
};
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatArg, MatOperand, MultiGpu,
    RoutineRequest, SharedMat, SharedVec, TileChoice, VecArg, VecOperand,
};

use crate::snapshot::SNAPSHOT_SEED;

/// Executor run vs the sequential no-reuse replay of the same trace.
#[derive(Debug)]
pub struct ServeComparison {
    /// The executor's aggregate report.
    pub report: ServeReport,
    /// Virtual seconds of the sequential no-reuse baseline (sum of
    /// per-request elapsed on one fresh device).
    pub sequential_secs: f64,
    /// Devices in the executor's pool.
    pub devices: usize,
}

impl ServeComparison {
    /// Sequential-baseline time over executor makespan (`> 1` = win).
    pub fn speedup(&self) -> f64 {
        let makespan = self.report.makespan.as_secs_f64();
        if makespan > 0.0 {
            self.sequential_secs / makespan
        } else {
            0.0
        }
    }
}

/// The standard mixed trace: ten requests across four routines, with the
/// gemm operands `A`/`B`, the gemv matrix `A`, and the level-1 vector `X`
/// shared across requests — enough reuse for the residency cache to show.
pub fn standard_request_trace() -> Vec<RoutineRequest> {
    let n = 2048usize;
    let v = 1usize << 22;
    let a = || SharedMat::new("A", n, n);
    let b = || SharedMat::new("B", n, n);
    let x = || SharedVec::new("X", v);
    let gemm = || {
        GemmRequest::<f64>::new(a(), b(), MatOperand::HostGhost { rows: n, cols: n })
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
    };
    vec![
        gemm().into(),
        gemm().into(),
        gemm().into(),
        gemm().into(),
        GemmRequest::<f32>::new(
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
            MatOperand::HostGhost {
                rows: 1024,
                cols: 1024,
            },
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .into(),
        AxpyRequest::<f64>::new(x(), VecOperand::HostGhost { len: v })
            .alpha(1.5)
            .tile(TileChoice::Auto)
            .into(),
        AxpyRequest::<f64>::new(x(), VecOperand::HostGhost { len: v })
            .alpha(-0.5)
            .tile(TileChoice::Auto)
            .into(),
        DotRequest::<f64>::new(x(), SharedVec::new("Y", v))
            .tile(TileChoice::Auto)
            .into(),
        DotRequest::<f64>::new(x(), SharedVec::new("Y", v))
            .tile(TileChoice::Auto)
            .into(),
        GemvRequest::<f64>::new(
            a(),
            VecOperand::HostGhost { len: n },
            VecOperand::HostGhost { len: n },
        )
        .alpha(1.0)
        .beta(1.0)
        .tile(TileChoice::Auto)
        .into(),
    ]
}

/// The standard *skewed* trace for scheduling-policy comparisons: six
/// equal dgemm requests and one eight-times-larger straggler submitted
/// *last*. FIFO spreads the small requests across the pool first and then
/// lands the straggler on an already-loaded device; the predictive policy
/// recognises the straggler as the longest job and dispatches it first
/// (LPT), so the small requests pack onto the other devices under it.
/// Operands are private (no sharing) so the comparison isolates
/// scheduling from residency effects.
pub fn skewed_request_trace() -> Vec<RoutineRequest> {
    let ghost = |n: usize| MatOperand::HostGhost { rows: n, cols: n };
    let gemm = |n: usize| {
        GemmRequest::<f64>::new(ghost(n), ghost(n), ghost(n))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
    };
    let mut trace: Vec<RoutineRequest> = (0..6).map(|_| gemm(1024).into()).collect();
    trace.push(gemm(2048).into());
    trace
}

/// The standard *deadline* trace: a large deadline-less dgemm submitted
/// first, then a small dgemm whose 25 ms flow-time budget is comfortable
/// on its own (~10 ms on Testbed I) but blown when it queues behind the
/// ~40 ms large request. FIFO serves in submission order and misses the
/// deadline; EDF pulls the deadline-carrying request forward and meets
/// it. Serve it on **one** device — with more, the two requests never
/// contend and both policies meet the deadline.
pub fn deadline_request_trace() -> Vec<RoutineRequest> {
    let ghost = |n: usize| MatOperand::HostGhost { rows: n, cols: n };
    vec![
        GemmRequest::<f64>::new(ghost(2048), ghost(2048), ghost(2048))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
            .into(),
        GemmRequest::<f64>::new(ghost(1024), ghost(1024), ghost(1024))
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
            .deadline_secs(0.025)
            .into(),
    ]
}

/// The standard straggler scenario: per-device fault plans where device
/// 0's link runs at `factor` of its nominal bandwidth inside repeating
/// degrade windows while every other device stays clean. Requests landing
/// on device 0 inside a window overrun their offload prediction — the
/// trigger hedged re-dispatch exists to defend against. No probabilistic
/// faults are injected, so every request still completes and the total
/// useful flops of hedged and unhedged runs are identical.
pub fn straggler_fault_plans(devices: usize, seed: u64, factor: f64) -> Vec<FaultSpec> {
    assert!(devices >= 2, "a straggler needs a healthy peer");
    let mut plans = vec![FaultSpec::none(); devices];
    plans[0] = FaultSpec {
        seed,
        // Back-to-back half-second windows with 0.1 ms clean gaps: the
        // gaps are too short for a transfer to escape through, so device
        // 0's link genuinely runs at `factor` of nominal for the whole
        // horizon — degraded, but never *faulty* — and a request landing
        // there overruns its prediction by an order of magnitude. The
        // windows open a hair *after* each half-second mark so the idle
        // device's clock sits in a clean gap at dispatch time: the
        // degrade-aware upload estimate reads a healthy link, dispatch
        // still lands on the device, and the transfer runs into the
        // window mid-flight — degradation the scheduler could not have
        // priced, which is the straggler premise.
        degrade: (0..16)
            .map(|i| DegradeWindow {
                start_s: i as f64 * 0.5 + 1e-4,
                end_s: (i + 1) as f64 * 0.5,
                factor,
            })
            .collect(),
        ..FaultSpec::none()
    };
    plans
}

/// A homogeneous dgemm trace for straggler experiments: `count` identical
/// shared-operand requests, so scheduling spreads them across the pool
/// and a fair share lands on the degraded device.
pub fn straggler_request_trace(count: usize) -> Vec<RoutineRequest> {
    let n = 2048usize;
    (0..count)
        .map(|_| {
            GemmRequest::<f64>::new(
                SharedMat::new("A", n, n),
                SharedMat::new("B", n, n),
                MatOperand::HostGhost { rows: n, cols: n },
            )
            .alpha(1.0)
            .beta(1.0)
            .tile(TileChoice::Auto)
            .into()
        })
        .collect()
}

/// Deploys on a quiet copy of `testbed`, serves `trace` through a
/// [`ServeSession`] over `devices` devices, and replays the same trace
/// sequentially without sharing for the baseline.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
) -> Result<ServeComparison, String> {
    run_serve_with_faults(testbed, devices, trace, &FaultSpec::none())
}

/// [`run_serve`] with a fault plan injected into every pool device (the
/// sequential baseline stays faultless — it is the no-reuse *and* no-fault
/// reference). [`FaultSpec::none`] reproduces [`run_serve`] bit-for-bit.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve_with_faults(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
) -> Result<ServeComparison, String> {
    run_serve_with_policy(testbed, devices, trace, faults, SchedulePolicy::Fifo)
}

/// [`run_serve_with_faults`] with an explicit queue-scheduling policy.
/// [`SchedulePolicy::Fifo`] reproduces [`run_serve_with_faults`]
/// bit-for-bit; the sequential baseline is policy-independent.
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve_with_policy(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    policy: SchedulePolicy,
) -> Result<ServeComparison, String> {
    run_serve_with_options(
        testbed,
        devices,
        trace,
        faults,
        &ServeOptions {
            policy,
            ..ServeOptions::default()
        },
    )
}

/// The shape of a seeded open-arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_hz`.
    Poisson {
        /// Mean arrival rate, requests per virtual second.
        rate_hz: f64,
    },
    /// On/off bursts: a Poisson process at `rate_hz` that only runs
    /// during `on` windows, separated by silent `off` gaps — the classic
    /// bursty-traffic model. The *within-burst* rate is `rate_hz`, so the
    /// long-run average rate is `rate_hz * on / (on + off)`.
    Bursty {
        /// Within-burst arrival rate, requests per virtual second.
        rate_hz: f64,
        /// Length of each active window.
        on: SimTime,
        /// Silent gap between active windows.
        off: SimTime,
    },
}

/// A seeded, deterministic open-arrival generator: the same spec always
/// produces the same arrival instants, so open-arrival serve runs replay
/// bit-identically. Randomness comes from a splitmix64 stream over the
/// seed — no external RNG crate, no global state.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// The process shape.
    pub kind: ArrivalKind,
    /// PRNG seed; same seed, same arrivals.
    pub seed: u64,
}

impl ArrivalSpec {
    /// A Poisson process at `rate_hz` requests per virtual second.
    pub fn poisson(rate_hz: f64, seed: u64) -> Self {
        ArrivalSpec {
            kind: ArrivalKind::Poisson { rate_hz },
            seed,
        }
    }

    /// An on/off bursty process: Poisson at `rate_hz` during `on`
    /// windows, silent for `off` between them.
    pub fn bursty(rate_hz: f64, on: SimTime, off: SimTime, seed: u64) -> Self {
        ArrivalSpec {
            kind: ArrivalKind::Bursty { rate_hz, on, off },
            seed,
        }
    }

    /// Parses the CLI grammar: `poisson:<rate_hz>` or
    /// `bursty:<rate_hz>:<on_ms>:<off_ms>`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn parse(s: &str, seed: u64) -> Result<Self, String> {
        let fields: Vec<&str> = s.split(':').collect();
        let num = |v: &str, what: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x > 0.0)
                .ok_or_else(|| format!("bad arrival {what} `{v}` (want a positive number)"))
        };
        match fields.as_slice() {
            ["poisson", rate] => Ok(ArrivalSpec::poisson(num(rate, "rate")?, seed)),
            ["bursty", rate, on_ms, off_ms] => Ok(ArrivalSpec::bursty(
                num(rate, "rate")?,
                SimTime::from_secs_f64(num(on_ms, "on window")? * 1e-3),
                SimTime::from_secs_f64(num(off_ms, "off window")? * 1e-3),
                seed,
            )),
            _ => Err(format!(
                "bad arrivals `{s}` (want poisson:<rate_hz> or bursty:<rate_hz>:<on_ms>:<off_ms>)"
            )),
        }
    }

    /// The first `count` arrival instants (virtual time past drain
    /// start), non-decreasing.
    pub fn times(&self, count: usize) -> Vec<SimTime> {
        let mut state = self.seed;
        let (rate, on_off) = match self.kind {
            ArrivalKind::Poisson { rate_hz } => (rate_hz, None),
            ArrivalKind::Bursty { rate_hz, on, off } => {
                (rate_hz, Some((on.as_secs_f64(), off.as_secs_f64())))
            }
        };
        let rate = rate.max(1e-9);
        let mut active = 0.0f64; // cumulative "process-on" time
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // Exponential gap via inverse transform on a (0,1) uniform.
            active += -unit_open(&mut state).ln() / rate;
            let wall = match on_off {
                None => active,
                Some((on, off)) => {
                    // Map process-on time through on/off cycles: every
                    // full `on` of active time costs an extra `off` of
                    // silence on the wall clock.
                    let full_cycles = (active / on).floor();
                    full_cycles * (on + off) + (active - full_cycles * on)
                }
            };
            out.push(SimTime::from_secs_f64(wall));
        }
        out
    }
}

/// One step of the splitmix64 PRNG — tiny, seedable, and good enough to
/// drive inter-arrival sampling without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in the *open* interval (0, 1): the top 53 bits offset
/// by half an ulp, so `ln` never sees 0.
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Knobs beyond the fault plan for a serve run: scheduling policy,
/// request-lifecycle tracing, periodic interval snapshots, streaming
/// telemetry, and the open-arrival machinery (arrival process,
/// backpressure, coalescing).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Queue-scheduling policy ([`SchedulePolicy::Fifo`] by default).
    pub policy: SchedulePolicy,
    /// Collect a [`ServeTrace`](cocopelia_obs::ServeTrace) of the run
    /// (request spans plus per-device engine lanes) into
    /// [`ServeReport::trace`](cocopelia_runtime::serve::ServeReport).
    pub trace: bool,
    /// Emit a queue-depth/clock/drift snapshot every interval of virtual
    /// time (`None` disables them).
    pub snapshot_interval: Option<SimTime>,
    /// Streaming telemetry (windowed metrics, SLOs, flight recorder,
    /// incremental Perfetto export) — the `serve --watch` machinery.
    /// `None` keeps the end-only report.
    pub watch: Option<TelemetryConfig>,
    /// Open arrivals: feed the trace through this generator instead of
    /// queueing everything up front. `None` keeps the closed queue.
    pub arrivals: Option<ArrivalSpec>,
    /// Backpressure: shed arrivals that find the queue at this depth.
    pub queue_cap: Option<usize>,
    /// Load-shed watermark on predicted flow time, seconds.
    pub shed_flow_secs: Option<f64>,
    /// Coalesce identical-shape arrivals onto one execution.
    pub coalesce: bool,
    /// Prediction-guided cross-request operand prefetch on idle h2d
    /// engines (see `ServeOptions::prefetch` in the runtime crate).
    pub prefetch: bool,
    /// Hedged re-dispatch of overrunning attempts.
    pub hedge: Option<HedgeConfig>,
    /// Quarantine probation (canary probes + re-admission).
    pub probation: Option<ProbationConfig>,
    /// Per-session retry budget and circuit breaker.
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Per-device fault plans. When set, the pool gets one device per
    /// plan (asymmetric scenarios like a single straggler) and the
    /// `faults`/`devices` arguments of the `run_serve_*` entry points are
    /// ignored for pool construction.
    pub fault_plans: Option<Vec<FaultSpec>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            policy: SchedulePolicy::Fifo,
            trace: false,
            snapshot_interval: None,
            watch: None,
            arrivals: None,
            queue_cap: None,
            shed_flow_secs: None,
            coalesce: false,
            prefetch: false,
            hedge: None,
            probation: None,
            retry_budget: None,
            fault_plans: None,
        }
    }
}

/// [`run_serve_with_policy`] with the full option set — tracing and
/// interval snapshots on top of the policy. The default options reproduce
/// [`run_serve_with_policy`] bit-for-bit (tracing never perturbs virtual
/// timing).
///
/// # Errors
///
/// Propagates deployment and runtime failures as strings.
pub fn run_serve_with_options(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    options: &ServeOptions,
) -> Result<ServeComparison, String> {
    serve_impl(testbed, devices, trace, faults, options, None)
}

/// [`run_serve_with_options`] with a live window sink: when
/// [`ServeOptions::watch`] is set, `sink` receives each closed telemetry
/// window as the drain crosses it — the `serve --watch` line printer.
///
/// # Errors
///
/// Propagates deployment, runtime, and telemetry-stream failures as
/// strings.
pub fn run_serve_streaming(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    options: &ServeOptions,
    sink: Box<dyn FnMut(&WatchWindow)>,
) -> Result<ServeComparison, String> {
    serve_impl(testbed, devices, trace, faults, options, Some(sink))
}

type WatchSink = Box<dyn FnMut(&WatchWindow)>;

fn serve_impl(
    testbed: &TestbedSpec,
    devices: usize,
    trace: Vec<RoutineRequest>,
    faults: &FaultSpec,
    options: &ServeOptions,
    sink: Option<WatchSink>,
) -> Result<ServeComparison, String> {
    let mut tb = testbed.clone();
    tb.noise = NoiseSpec::NONE;
    let deployed = deploy(&tb, &DeployConfig::quick()).map_err(|e| e.to_string())?;

    // Sequential no-reuse baseline: one fresh device, shared operands
    // replaced by plain host ghosts, requests back to back.
    let mut seq = Cocopelia::new(
        cocopelia_gpusim::Gpu::new(tb.clone(), ExecMode::TimingOnly, SNAPSHOT_SEED),
        deployed.profile.clone(),
    );
    let mut sequential_secs = 0.0;
    for req in &trace {
        let report = seq
            .submit(req.clone().without_sharing())
            .map_err(|e| format!("sequential baseline: {e}"))?;
        sequential_secs += report.elapsed.as_secs_f64();
    }

    let pool = match &options.fault_plans {
        Some(plans) => MultiGpu::with_fault_plans(
            &tb,
            ExecMode::TimingOnly,
            SNAPSHOT_SEED,
            deployed.profile,
            plans,
        ),
        None => MultiGpu::with_faults(
            &tb,
            devices,
            ExecMode::TimingOnly,
            SNAPSHOT_SEED,
            deployed.profile,
            faults,
        ),
    };
    let mut opts = SessionOptions::new().policy(options.policy);
    if options.trace {
        opts = opts.tracing();
    }
    if let Some(watch) = &options.watch {
        opts = opts.telemetry(watch.clone());
        if let Some(sink) = sink {
            opts = opts.watch_sink(sink);
        }
    }
    if let Some(interval) = options.snapshot_interval {
        opts = opts.snapshot_interval(interval);
    }
    if let Some(cap) = options.queue_cap {
        opts = opts.queue_cap(cap);
    }
    if let Some(secs) = options.shed_flow_secs {
        opts = opts.shed_flow_secs(secs);
    }
    if options.coalesce {
        opts = opts.coalesce();
    }
    if options.prefetch {
        opts = opts.prefetch();
    }
    if let Some(h) = options.hedge {
        opts = opts.hedge(h);
    }
    if let Some(p) = options.probation {
        opts = opts.probation(p);
    }
    if let Some(b) = options.retry_budget {
        opts = opts.retry_budget(b);
    }
    let mut session = ServeSession::with_options(pool, ExecutorConfig::default(), opts)
        .map_err(|e| format!("telemetry stream: {e}"))?;
    match &options.arrivals {
        Some(spec) => {
            // Open arrivals: the same trace, fed at generated virtual
            // instants; admission (shed/coalesce) runs as each lands.
            let times = spec.times(trace.len());
            for (req, at) in trace.into_iter().zip(times) {
                session.submit_at(req, at);
            }
        }
        None => {
            for req in trace {
                session.submit(req);
            }
        }
    }
    let report = session.drain();
    Ok(ServeComparison {
        report,
        sequential_secs,
        devices,
    })
}

/// Parses a plain-text request trace, one request per line:
///
/// ```text
/// # comment
/// dgemm 2048 2048 2048 a=A b=B c=- tile=auto deadline=0.25
/// sgemm 1024 1024 1024
/// daxpy 4194304 x=X
/// ddot  4194304 x=X y=Y tile=1048576
/// dgemv 2048 2048 a=A
/// ```
///
/// Dims follow the routine name (`M N K` for gemm, `M N` for gemv, `N`
/// for the level-1 routines). `a=`/`b=`/`c=`/`x=`/`y=` name shared
/// operands (`-` or absence means a private host ghost), `tile=` is
/// `auto` or a fixed size, and `deadline=` is a virtual-second budget.
///
/// # Errors
///
/// Returns a message naming the offending line on any parse failure.
pub fn parse_request_trace(text: &str) -> Result<Vec<RoutineRequest>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_request_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// One `key=value` option split, with `-` meaning "not set".
fn opt<'a>(tokens: &'a [&str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key))
        .filter(|v| *v != "-")
}

fn mat<T: SimScalar>(key: Option<&str>, rows: usize, cols: usize) -> MatArg<T> {
    match key {
        Some(k) => SharedMat::new(k, rows, cols).into(),
        None => MatOperand::HostGhost { rows, cols }.into(),
    }
}

fn vec_arg<T: SimScalar>(key: Option<&str>, len: usize) -> VecArg<T> {
    match key {
        Some(k) => SharedVec::new(k, len).into(),
        None => VecOperand::HostGhost { len }.into(),
    }
}

fn parse_request_line(line: &str) -> Result<RoutineRequest, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (routine, rest) = tokens.split_first().ok_or("empty request line")?;
    let dims: Vec<usize> = rest
        .iter()
        .take_while(|t| !t.contains('='))
        .map(|t| t.parse().map_err(|_| format!("bad dim `{t}`")))
        .collect::<Result<_, _>>()?;
    let opts = &rest[dims.len()..];
    if let Some(bad) = opts.iter().find(|t| !t.contains('=')) {
        return Err(format!("unexpected token `{bad}`"));
    }
    let tile = match opt(opts, "tile=") {
        None | Some("auto") => TileChoice::Auto,
        Some(t) => TileChoice::Fixed(t.parse().map_err(|_| format!("bad tile `{t}`"))?),
    };
    let deadline: Option<f64> = opt(opts, "deadline=")
        .map(|d| d.parse().map_err(|_| format!("bad deadline `{d}`")))
        .transpose()?;
    let need = |n: usize| {
        if dims.len() == n {
            Ok(())
        } else {
            Err(format!("{routine} needs {n} dims, got {}", dims.len()))
        }
    };
    let req: RoutineRequest = match *routine {
        "dgemm" | "sgemm" => {
            need(3)?;
            let (m, n, k) = (dims[0], dims[1], dims[2]);
            let (a, b, c) = (opt(opts, "a="), opt(opts, "b="), opt(opts, "c="));
            if *routine == "dgemm" {
                let mut r = GemmRequest::<f64>::new(mat(a, m, k), mat(b, k, n), mat(c, m, n))
                    .alpha(1.0)
                    .beta(1.0)
                    .tile(tile);
                if let Some(d) = deadline {
                    r = r.deadline_secs(d);
                }
                r.into()
            } else {
                let mut r = GemmRequest::<f32>::new(mat(a, m, k), mat(b, k, n), mat(c, m, n))
                    .alpha(1.0)
                    .beta(1.0)
                    .tile(tile);
                if let Some(d) = deadline {
                    r = r.deadline_secs(d);
                }
                r.into()
            }
        }
        "daxpy" => {
            need(1)?;
            let n = dims[0];
            let mut r =
                AxpyRequest::<f64>::new(vec_arg(opt(opts, "x="), n), vec_arg(opt(opts, "y="), n))
                    .alpha(1.0)
                    .tile(tile);
            if let Some(d) = deadline {
                r = r.deadline_secs(d);
            }
            r.into()
        }
        "ddot" => {
            need(1)?;
            let n = dims[0];
            let mut r =
                DotRequest::<f64>::new(vec_arg(opt(opts, "x="), n), vec_arg(opt(opts, "y="), n))
                    .tile(tile);
            if let Some(d) = deadline {
                r = r.deadline_secs(d);
            }
            r.into()
        }
        "dgemv" => {
            need(2)?;
            let (m, n) = (dims[0], dims[1]);
            let mut r = GemvRequest::<f64>::new(
                mat(opt(opts, "a="), m, n),
                vec_arg(opt(opts, "x="), n),
                vec_arg(opt(opts, "y="), m),
            )
            .alpha(1.0)
            .beta(1.0)
            .tile(tile);
            if let Some(d) = deadline {
                r = r.deadline_secs(d);
            }
            r.into()
        }
        other => return Err(format!("unknown routine `{other}`")),
    };
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trace_is_mixed_and_shares_operands() {
        let trace = standard_request_trace();
        assert!(trace.len() >= 8);
        let routines: std::collections::BTreeSet<&str> =
            trace.iter().map(|r| r.routine()).collect();
        assert!(routines.len() >= 4, "mixed routines, got {routines:?}");
        let shared: usize = trace.iter().map(|r| r.shared_keys().len()).sum();
        assert!(shared >= 8, "trace must actually share operands");
    }

    #[test]
    fn trace_text_round_trips_routines_and_sharing() {
        let text = "\
# the standard shapes
dgemm 2048 2048 2048 a=A b=B tile=auto deadline=0.25
sgemm 1024 1024 1024
daxpy 4194304 x=X
ddot 4194304 x=X y=Y tile=1048576
dgemv 2048 2048 a=A
";
        let trace = parse_request_trace(text).expect("parses");
        assert_eq!(trace.len(), 5);
        assert_eq!(
            trace.iter().map(|r| r.routine()).collect::<Vec<_>>(),
            vec!["dgemm", "sgemm", "daxpy", "ddot", "dgemv"]
        );
        assert_eq!(trace[0].shared_keys(), vec!["A", "B"]);
        assert_eq!(trace[0].deadline(), Some(0.25));
        assert!(trace[1].shared_keys().is_empty());
        assert_eq!(trace[3].shared_keys(), vec!["X", "Y"]);
        assert_eq!(trace[4].shared_keys(), vec!["A"]);
    }

    #[test]
    fn arrival_spec_parses_the_cli_grammar() {
        assert_eq!(
            ArrivalSpec::parse("poisson:2000", 7).expect("parses"),
            ArrivalSpec::poisson(2000.0, 7)
        );
        assert_eq!(
            ArrivalSpec::parse("bursty:4000:5:20", 7).expect("parses"),
            ArrivalSpec::bursty(
                4000.0,
                SimTime::from_secs_f64(5e-3),
                SimTime::from_secs_f64(20e-3),
                7
            )
        );
        assert!(ArrivalSpec::parse("poisson:-1", 0).is_err());
        assert!(ArrivalSpec::parse("poisson", 0).is_err());
        assert!(ArrivalSpec::parse("bursty:100:5", 0).is_err());
        assert!(ArrivalSpec::parse("uniform:9", 0).is_err());
    }

    #[test]
    fn arrival_times_are_seeded_and_deterministic() {
        let a = ArrivalSpec::poisson(2000.0, 42).times(64);
        let b = ArrivalSpec::poisson(2000.0, 42).times(64);
        assert_eq!(a, b, "same seed, same arrivals");
        let c = ArrivalSpec::poisson(2000.0, 43).times(64);
        assert_ne!(a, c, "different seed, different arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // Mean gap of a Poisson(2000 Hz) process is 0.5 ms; 64 draws land
        // well within a loose 5x band.
        let span = a.last().unwrap().as_secs_f64();
        assert!(
            span > 64.0 * 5e-4 / 5.0 && span < 64.0 * 5e-4 * 5.0,
            "{span}"
        );
    }

    #[test]
    fn bursty_arrivals_land_inside_on_windows() {
        let on = 5e-3;
        let off = 20e-3;
        let spec = ArrivalSpec::bursty(
            4000.0,
            SimTime::from_secs_f64(on),
            SimTime::from_secs_f64(off),
            9,
        );
        let times = spec.times(100);
        let cycle = on + off;
        let mut seen_later_cycle = false;
        for t in &times {
            let offset = t.as_secs_f64() % cycle;
            assert!(
                offset <= on + 1e-9,
                "arrival at {offset:.6}s offset fell in an off window"
            );
            if t.as_secs_f64() > cycle {
                seen_later_cycle = true;
            }
        }
        assert!(
            seen_later_cycle,
            "100 draws at 4 kHz in 5 ms windows must spill past one cycle"
        );
    }

    #[test]
    fn trace_parse_errors_name_the_line() {
        let err = parse_request_trace("dgemm 2048 2048\n").expect_err("too few dims");
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(parse_request_trace("frobnicate 8\n").is_err());
        assert!(parse_request_trace("dgemm 1 1 1 tile=potato\n").is_err());
        assert!(parse_request_trace("dgemm 1 1 1 stray\n").is_err());
    }
}
