//! Plain-text rendering of result tables and bar series, so every bench
//! regenerates its paper table/figure as readable terminal output.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Renders a labelled horizontal bar chart (one row per label), scaled to
/// `width` characters at the maximum value.
pub fn bar_chart(items: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = items
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-30);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bars = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{:<label_w$} |{:<width$}| {:>9.2} {unit}",
            label,
            "#".repeat(bars),
            v,
            label_w = label_w,
            width = width
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "23456"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("a-much-longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bar_chart(
            &[("half".to_owned(), 50.0), ("full".to_owned(), 100.0)],
            10,
            "GF/s",
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("#####"));
        assert!(lines[1].contains("##########"));
    }

    #[test]
    fn empty_chart_is_empty() {
        assert!(bar_chart(&[], 10, "x").is_empty());
    }
}
