//! Glue that runs set problems through each library policy on a fresh
//! simulated device, and evaluates model predictions for the same problems.

use crate::sets::{AxpyProblem, GemmProblem};
use cocopelia_core::models::{predict, ModelCtx, ModelKind, Prediction};
use cocopelia_core::profile::SystemProfile;
use cocopelia_deploy::{measure_full_kernel, CiConfig, DeployConfig};
use cocopelia_gpusim::{ExecMode, Gpu, KernelShape, TestbedSpec};
use cocopelia_hostblas::Dtype;
use cocopelia_runtime::{
    Cocopelia, DeviceMatrix, DeviceVector, MatOperand, RuntimeError, TileChoice, VecOperand,
};

/// A deployed laboratory: a testbed plus its fitted profile.
#[derive(Debug, Clone)]
pub struct Lab {
    /// The simulated machine.
    pub testbed: TestbedSpec,
    /// Micro-benchmark-fitted model inputs for that machine.
    pub profile: SystemProfile,
}

impl Lab {
    /// Deploys the paper's full micro-benchmark grids on `testbed`.
    ///
    /// # Panics
    ///
    /// Panics if deployment fails (cannot happen for the shipped testbeds).
    pub fn deploy(testbed: TestbedSpec) -> Lab {
        let report = cocopelia_deploy::deploy(&testbed, &DeployConfig::paper())
            .expect("deployment on a simulated testbed cannot fail");
        Lab {
            testbed,
            profile: report.profile,
        }
    }

    /// Like [`deploy`](Self::deploy) but also returns the Table II fit.
    ///
    /// # Panics
    ///
    /// As for [`deploy`](Self::deploy).
    pub fn deploy_with_fit(testbed: TestbedSpec) -> (Lab, cocopelia_deploy::TransferFit) {
        let report = cocopelia_deploy::deploy(&testbed, &DeployConfig::paper())
            .expect("deployment on a simulated testbed cannot fail");
        (
            Lab {
                testbed,
                profile: report.profile,
            },
            report.fit,
        )
    }
}

/// Which gemm implementation to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmLib {
    /// The CoCoPeLia runtime with the given tile choice.
    Cocopelia(TileChoice),
    /// cuBLASXt policy with an explicit tiling size.
    CublasXt(usize),
    /// BLASX policy (static `T = 2048`, clamped to the problem).
    Blasx,
    /// Serial no-overlap offload.
    Serial,
}

/// Which daxpy implementation to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxpyLib {
    /// The CoCoPeLia runtime with the given tile choice.
    Cocopelia(TileChoice),
    /// Unified-memory with prefetch.
    UnifiedPrefetch,
}

/// One measured execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOut {
    /// Wall (virtual) seconds of the call.
    pub secs: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Tiling size the library used (0 when not tile-based).
    pub tile: usize,
}

impl Lab {
    /// Executes `p` through `lib` on a fresh timing-only device.
    ///
    /// The paper's sgemm results differ from dgemm only through the kernel
    /// model and element width; the harness runs ghost `f64`/`f32` data
    /// according to `p.dtype`.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures (dimension errors, device OOM).
    pub fn run_gemm(
        &self,
        p: &GemmProblem,
        lib: GemmLib,
        seed: u64,
    ) -> Result<RunOut, RuntimeError> {
        match p.dtype {
            Dtype::F64 => self.run_gemm_typed::<f64>(p, lib, seed),
            Dtype::F32 => self.run_gemm_typed::<f32>(p, lib, seed),
        }
    }

    fn run_gemm_typed<T: cocopelia_gpusim::SimScalar>(
        &self,
        p: &GemmProblem,
        lib: GemmLib,
        seed: u64,
    ) -> Result<RunOut, RuntimeError> {
        let mut gpu = Gpu::new(self.testbed.clone(), ExecMode::TimingOnly, seed);
        let mk = |gpu: &mut Gpu,
                  loc: cocopelia_core::params::Loc,
                  rows: usize,
                  cols: usize|
         -> Result<MatOperand<T>, RuntimeError> {
            match loc {
                cocopelia_core::params::Loc::Host => Ok(MatOperand::HostGhost { rows, cols }),
                cocopelia_core::params::Loc::Device => {
                    let buf = gpu.alloc_device(T::DTYPE, rows * cols)?;
                    Ok(MatOperand::Device(DeviceMatrix::from_raw(buf, rows, cols)))
                }
            }
        };
        match lib {
            GemmLib::Cocopelia(choice) => {
                let mut ctx = Cocopelia::new(gpu, self.profile.clone());
                let a = mk(ctx.gpu_mut(), p.loc_a, p.m, p.k)?;
                let b = mk(ctx.gpu_mut(), p.loc_b, p.k, p.n)?;
                let c = mk(ctx.gpu_mut(), p.loc_c, p.m, p.n)?;
                let out = cocopelia_runtime::GemmRequest::new(a, b, c)
                    .alpha(1.0)
                    .beta(1.0)
                    .tile(choice)
                    .run(&mut ctx)?;
                Ok(RunOut {
                    secs: out.report.elapsed.as_secs_f64(),
                    gflops: out.report.gflops(),
                    tile: out.report.tile,
                })
            }
            GemmLib::CublasXt(tile) => {
                let a = mk(&mut gpu, p.loc_a, p.m, p.k)?;
                let b = mk(&mut gpu, p.loc_b, p.k, p.n)?;
                let c = mk(&mut gpu, p.loc_c, p.m, p.n)?;
                let out =
                    cocopelia_baselines::cublasxt::gemm::<T>(&mut gpu, 1.0, a, b, 1.0, c, tile)?;
                Ok(RunOut {
                    secs: out.elapsed.as_secs_f64(),
                    gflops: out.gflops(),
                    tile,
                })
            }
            GemmLib::Blasx => {
                let mut blasx = cocopelia_baselines::Blasx::new(gpu);
                let a = mk(blasx.gpu_mut(), p.loc_a, p.m, p.k)?;
                let b = mk(blasx.gpu_mut(), p.loc_b, p.k, p.n)?;
                let c = mk(blasx.gpu_mut(), p.loc_c, p.m, p.n)?;
                let tile = blasx.tile();
                let out = blasx.gemm::<T>(1.0, a, b, 1.0, c)?;
                Ok(RunOut {
                    secs: out.elapsed.as_secs_f64(),
                    gflops: out.gflops(),
                    tile,
                })
            }
            GemmLib::Serial => {
                let a = mk(&mut gpu, p.loc_a, p.m, p.k)?;
                let b = mk(&mut gpu, p.loc_b, p.k, p.n)?;
                let c = mk(&mut gpu, p.loc_c, p.m, p.n)?;
                let out = cocopelia_baselines::serial::gemm::<T>(&mut gpu, 1.0, a, b, 1.0, c)?;
                Ok(RunOut {
                    secs: out.elapsed.as_secs_f64(),
                    gflops: out.gflops(),
                    tile: 0,
                })
            }
        }
    }

    /// Executes the daxpy problem `p` through `lib`.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn run_daxpy(
        &self,
        p: &AxpyProblem,
        lib: AxpyLib,
        seed: u64,
    ) -> Result<RunOut, RuntimeError> {
        let mut gpu = Gpu::new(self.testbed.clone(), ExecMode::TimingOnly, seed);
        let mk = |gpu: &mut Gpu,
                  loc: cocopelia_core::params::Loc,
                  len: usize|
         -> Result<VecOperand<f64>, RuntimeError> {
            match loc {
                cocopelia_core::params::Loc::Host => Ok(VecOperand::HostGhost { len }),
                cocopelia_core::params::Loc::Device => {
                    let buf = gpu.alloc_device(Dtype::F64, len)?;
                    Ok(VecOperand::Device(DeviceVector::from_raw(buf, len)))
                }
            }
        };
        match lib {
            AxpyLib::Cocopelia(choice) => {
                let mut ctx = Cocopelia::new(gpu, self.profile.clone());
                let x = mk(ctx.gpu_mut(), p.loc_x, p.n)?;
                let y = mk(ctx.gpu_mut(), p.loc_y, p.n)?;
                let out = cocopelia_runtime::AxpyRequest::new(x, y)
                    .alpha(1.5)
                    .tile(choice)
                    .run(&mut ctx)?;
                Ok(RunOut {
                    secs: out.report.elapsed.as_secs_f64(),
                    gflops: out.report.gflops(),
                    tile: out.report.tile,
                })
            }
            AxpyLib::UnifiedPrefetch => {
                let x = mk(&mut gpu, p.loc_x, p.n)?;
                let y = mk(&mut gpu, p.loc_y, p.n)?;
                let out = cocopelia_baselines::unified::daxpy_prefetch(
                    &mut gpu,
                    1.5,
                    x,
                    y,
                    cocopelia_baselines::unified::DEFAULT_PREFETCH_CHUNK,
                )?;
                Ok(RunOut {
                    secs: out.elapsed.as_secs_f64(),
                    gflops: out.gflops(),
                    tile: cocopelia_baselines::unified::DEFAULT_PREFETCH_CHUNK,
                })
            }
        }
    }

    /// Evaluates `model` for gemm problem `p` at tiling size `t`.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn predict_gemm(
        &self,
        p: &GemmProblem,
        model: ModelKind,
        t: usize,
        full_kernel_time: Option<f64>,
    ) -> Result<Prediction, cocopelia_core::models::ModelError> {
        let spec = p.spec();
        let exec = self
            .profile
            .exec_table(spec.routine, spec.dtype)
            .expect("profile contains gemm tables");
        let ctx = ModelCtx {
            problem: &spec,
            transfer: &self.profile.transfer,
            exec,
            full_kernel_time,
        };
        predict(model, &ctx, t)
    }

    /// Evaluates `model` for daxpy problem `p` at tiling size `t`.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn predict_daxpy(
        &self,
        p: &AxpyProblem,
        model: ModelKind,
        t: usize,
        full_kernel_time: Option<f64>,
    ) -> Result<Prediction, cocopelia_core::models::ModelError> {
        let spec = p.spec();
        let exec = self
            .profile
            .exec_table(spec.routine, spec.dtype)
            .expect("profile contains daxpy tables");
        let ctx = ModelCtx {
            problem: &spec,
            transfer: &self.profile.transfer,
            exec,
            full_kernel_time,
        };
        predict(model, &ctx, t)
    }

    /// Measures the full-problem kernel-only time for `p` — the CSO
    /// comparator's input (§V-C).
    pub fn full_kernel_gemm(&self, p: &GemmProblem, seed: u64) -> f64 {
        let shape = KernelShape::Gemm {
            dtype: p.dtype,
            m: p.m,
            n: p.n,
            k: p.k,
        };
        measure_full_kernel(&self.testbed, shape, &CiConfig::default(), seed)
            .expect("kernel micro-benchmark cannot fail")
    }

    /// Measures the full-problem kernel-only time for a daxpy problem.
    pub fn full_kernel_daxpy(&self, p: &AxpyProblem, seed: u64) -> f64 {
        let shape = KernelShape::Axpy {
            dtype: Dtype::F64,
            n: p.n,
        };
        measure_full_kernel(&self.testbed, shape, &CiConfig::default(), seed)
            .expect("kernel micro-benchmark cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::{GemmProblem, Scale};
    use cocopelia_core::params::Loc;
    use cocopelia_gpusim::{testbed_i, NoiseSpec};

    fn quiet_lab() -> Lab {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        // A reduced deployment keeps the test fast.
        let report = cocopelia_deploy::deploy(&tb, &DeployConfig::quick()).expect("deploys");
        Lab {
            testbed: tb,
            profile: report.profile,
        }
    }

    fn small_problem() -> GemmProblem {
        GemmProblem {
            dtype: Dtype::F64,
            m: 2048,
            n: 2048,
            k: 2048,
            loc_a: Loc::Host,
            loc_b: Loc::Host,
            loc_c: Loc::Host,
        }
    }

    #[test]
    fn all_gemm_libs_run() {
        let lab = quiet_lab();
        let p = small_problem();
        for lib in [
            GemmLib::Cocopelia(TileChoice::Fixed(512)),
            GemmLib::CublasXt(512),
            GemmLib::Blasx,
            GemmLib::Serial,
        ] {
            let out = lab.run_gemm(&p, lib, 1).expect("runs");
            assert!(out.secs > 0.0 && out.gflops > 0.0, "{lib:?}");
        }
    }

    #[test]
    fn overlap_beats_serial() {
        let lab = quiet_lab();
        let p = small_problem();
        let serial = lab.run_gemm(&p, GemmLib::Serial, 1).expect("serial");
        let coco = lab
            .run_gemm(&p, GemmLib::Cocopelia(TileChoice::Fixed(512)), 1)
            .expect("coco");
        assert!(
            coco.secs < serial.secs,
            "coco {} vs serial {}",
            coco.secs,
            serial.secs
        );
    }

    #[test]
    fn cocopelia_reuse_beats_cublasxt_on_full_offload() {
        let lab = quiet_lab();
        let p = small_problem();
        let xt = lab.run_gemm(&p, GemmLib::CublasXt(512), 1).expect("xt");
        let coco = lab
            .run_gemm(&p, GemmLib::Cocopelia(TileChoice::Fixed(512)), 1)
            .expect("coco");
        assert!(
            coco.secs < xt.secs,
            "coco {} vs cublasxt {}",
            coco.secs,
            xt.secs
        );
    }

    #[test]
    fn auto_selection_runs_end_to_end() {
        let lab = quiet_lab();
        let p = small_problem();
        let out = lab
            .run_gemm(&p, GemmLib::Cocopelia(TileChoice::Auto), 3)
            .expect("auto");
        assert!(out.tile >= 256);
    }

    #[test]
    fn daxpy_libs_run_and_pinned_wins() {
        let lab = quiet_lab();
        let p = crate::sets::daxpy_validation(Scale::Reduced)[0];
        let coco = lab
            .run_daxpy(&p, AxpyLib::Cocopelia(TileChoice::Fixed(1 << 22)), 1)
            .expect("coco");
        let um = lab.run_daxpy(&p, AxpyLib::UnifiedPrefetch, 1).expect("um");
        assert!(coco.secs < um.secs);
    }

    #[test]
    fn predictions_available_for_all_models() {
        let lab = quiet_lab();
        let p = small_problem();
        let full = lab.full_kernel_gemm(&p, 5);
        for model in ModelKind::all() {
            let fk = (model == ModelKind::Cso).then_some(full);
            let pred = lab.predict_gemm(&p, model, 512, fk).expect("predicts");
            assert!(pred.total > 0.0);
        }
    }
}
