//! `cocopelia` — command-line front end for the CoCoPeLia reproduction.
//!
//! ```text
//! cocopelia deploy  --testbed ii --out profile.json [--quick]
//! cocopelia predict --profile profile.json --routine dgemm --dims 8192 8192 8192 [--loc HHH] [--model dr]
//! cocopelia run     --testbed ii --profile profile.json --routine dgemm --dims 8192 8192 8192 [--tile auto|2048] [--faults seed=1,kernel=0.05]
//! cocopelia report  --testbed ii --profile profile.json --routine dgemm --dims 8192 8192 8192 [--json report.json]
//! cocopelia trace   --testbed ii --profile profile.json --routine dgemm --dims 8192 8192 8192 --out trace.json [--format chrome|jsonl]
//! cocopelia gantt   --testbed i --dims 4096 4096 4096 --tile 1024
//! cocopelia calib   --testbed i [--quick] [--json calib.json]
//! cocopelia serve   --testbed i [--devices 2] [--trace requests.txt] [--faults seed=1,h2d=0.02,lost_after=20] [--trace-out out.perfetto] [--arrivals poisson:2000] [--seed 1] [--queue-cap 8] [--shed-flow-ms 50] [--coalesce] [--prefetch] [--snapshot-ms 5] [--watch] [--window-ms 5] [--slo deadline_miss<=0.1] [--ring 2048]
//! cocopelia metrics --testbed i [--devices 2] [--trace requests.txt] [--format prom|text]
//! cocopelia timeline --testbed i [--devices 2] [--trace requests.txt] [--faults ...] [--width 96] [--color]
//! cocopelia snapshot --out BENCH_pr.json [--testbed i] [--label pr]
//! cocopelia compare BENCH_seed.json BENCH_pr.json [--threshold 0.05] [--json diff.json]
//! ```
//!
//! `compare` exits 0 when the candidate snapshot is clean and 2 when any
//! sweep entry regressed, so it can gate CI directly.

use cocopelia_core::models::{ModelCtx, ModelKind};
use cocopelia_core::params::{Loc, ProblemSpec};
use cocopelia_core::profile::SystemProfile;
use cocopelia_core::select::TileSelector;
use cocopelia_deploy::{deploy, DeployConfig};
use cocopelia_gpusim::{testbed_i, testbed_ii, ExecMode, FaultSpec, Gpu, TestbedSpec};
use cocopelia_hostblas::Dtype;
use cocopelia_runtime::{
    AxpyRequest, Cocopelia, DotRequest, GemmRequest, GemvRequest, MatOperand, RuntimeError,
    TileChoice, VecOperand,
};
use std::collections::HashMap;
use std::process::ExitCode;

use args::Args;

/// Typed failure of a CLI invocation: keeps the offending path / runtime
/// error attached instead of flattening everything to strings.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown subcommand, missing or malformed flag.
    Usage(String),
    /// A filesystem operation failed on `path`.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// The runtime refused or failed a routine call.
    Runtime(RuntimeError),
    /// JSON (de)serialisation failed.
    Json(String),
    /// Deployment, sweep, or snapshot data was unusable.
    Data(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Runtime(e) => write!(f, "runtime: {e}"),
            CliError::Json(m) => write!(f, "json: {m}"),
            CliError::Data(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for CliError {
    fn from(e: RuntimeError) -> Self {
        CliError::Runtime(e)
    }
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

fn write_file(path: &str, text: &str) -> Result<(), CliError> {
    std::fs::write(path, text).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            // Exit 2 on every typed CLI error (bad flags, unreadable
            // files, runtime refusals) — the same code `compare` uses for
            // regressions — so scripts can tell "the invocation was
            // wrong" (2) from a crash.
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  cocopelia deploy  --testbed <i|ii> --out <profile.json> [--quick]
  cocopelia predict --profile <profile.json> --routine <dgemm|sgemm|daxpy|ddot|dgemv>
                    --dims <D1> [D2] [D3] [--loc <H|D per operand>] [--model <cso|eq1|eq2|bts|dr>]
  cocopelia run     --testbed <i|ii> --profile <profile.json> --routine <...>
                    --dims <D1> [D2] [D3] [--loc ...] [--tile <auto|N>] [--faults <spec>]
  cocopelia report  --testbed <i|ii> --profile <profile.json> --routine <...>
                    --dims <D1> [D2] [D3] [--loc ...] [--tile <auto|N>] [--json <out.json>]
                    [--format <text|prom>]
  cocopelia trace   --testbed <i|ii> --profile <profile.json> --routine <...>
                    --dims <D1> [D2] [D3] [--loc ...] [--tile <auto|N>]
                    --out <trace.json> [--format <chrome|jsonl|perfetto>]
  cocopelia gantt   --testbed <i|ii> --dims <M> <N> <K> --tile <N> [--width <cols>]
  cocopelia calib   --testbed <i|ii> [--quick] [--json <calib.json>]
  cocopelia serve   --testbed <i|ii> [--devices <N>] [--trace <requests.txt>] [--faults <spec>]
                    [--policy <fifo|edf|predictive>] [--trace-out <out.json|out.perfetto>]
                    [--arrivals <poisson:rate_hz|bursty:rate_hz:on_ms:off_ms>] [--seed <N>]
                    [--queue-cap <N>] [--shed-flow-ms <N>] [--coalesce] [--prefetch]
                    [--snapshot-ms <N>] [--watch] [--window-ms <N>]
                    [--slo <kind<=limit,...>] [--ring <spans>]
                    [--hedge <mult|off>] [--probation <backoff_ms[:successes]|off>]
                    [--retry-budget <tokens[:refill_per_sec]|off>]
  cocopelia metrics --testbed <i|ii> [--devices <N>] [--trace <requests.txt>] [--faults <spec>]
                    [--policy <fifo|edf|predictive>] [--format <prom|text>]
  cocopelia timeline --testbed <i|ii> [--devices <N>] [--trace <requests.txt>] [--faults <spec>]
                    [--policy <fifo|edf|predictive>] [--width <cols>] [--color]
                    [--trace-out <out.json|out.perfetto>] [--snapshot-ms <N>]
  cocopelia snapshot --out <BENCH_label.json> [--testbed <i|ii>] [--label <label>]
  cocopelia compare <base.json> <new.json> [--threshold <frac>] [--json <diff.json>]

fault spec grammar (comma-separated, e.g. seed=1,h2d=0.02,kernel=0.05,lost_after=20):
  seed=N h2d=P d2h=P kernel=P ecc=P lost_after=N degrade=START:END:FACTOR (repeatable)

serve --watch streams one line per telemetry window (cadence = --window-ms of
virtual time, default 5 ms; --snapshot-ms is accepted as a legacy alias under
--watch); --slo objectives (deadline_miss, flow_p95, flow_p99, fault_rate,
quarantined, rejected) dump the span flight recorder on breach, and a
--trace-out ending in .perfetto/.pftrace streams packets incrementally.

serve --arrivals turns the trace into an open-arrival stream (seeded by --seed,
default 1) whose requests land mid-drain: poisson:<rate_hz> for memoryless
traffic, bursty:<rate_hz>:<on_ms>:<off_ms> for on/off bursts. --queue-cap and
--shed-flow-ms shed arrivals under overload (reported as rejected); --coalesce
folds identical queued shapes into one execution.

serve --prefetch pre-uploads the next queued request's missing shared operands
on the running device's idle h2d engine when the overlap predictor says the
copies hide under the running attempt's remaining exec time and the bytes fit
the residency budget without evicting anything; claimed prefetches land as
warm residency hits (pf=hits/issued in --watch lines).

straggler defense (serve/metrics/timeline): --hedge <mult> re-dispatches an
attempt overrunning its prediction by mult x (adaptively widened by observed
drift) to the best other healthy device, first completion wins; --probation
<backoff_ms[:successes]> probes quarantined devices with canary GEMMs and
re-admits after the given consecutive successes (default 2); --retry-budget
<tokens[:refill_per_sec]> bounds executor retries with a token bucket + circuit
breaker that fails fast to host during fault storms. All three default off.";

fn run(argv: &[String]) -> Result<ExitCode, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::Usage("missing subcommand".to_owned()));
    };
    if cmd == "compare" {
        // `compare` is the one positional-taking command (two snapshot
        // paths) and the one command with a non-binary exit code.
        let (pos, args) = Args::parse_with_positionals(rest).map_err(CliError::Usage)?;
        return cmd_compare(&pos, &args);
    }
    let args = Args::parse(rest).map_err(CliError::Usage)?;
    match cmd.as_str() {
        "deploy" => cmd_deploy(&args),
        "predict" => cmd_predict(&args),
        "run" => cmd_run(&args),
        "report" => cmd_report(&args),
        "trace" => cmd_trace(&args),
        "gantt" => cmd_gantt(&args),
        "calib" => cmd_calib(&args),
        "serve" => cmd_serve(&args),
        "metrics" => cmd_metrics(&args),
        "timeline" => cmd_timeline(&args),
        "snapshot" => cmd_snapshot(&args),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
    .map(|()| ExitCode::SUCCESS)
}

/// `--key value` lookup, with a missing key reported as a usage error.
fn get(args: &Args, key: &str) -> Result<String, CliError> {
    args.get(key).map_err(CliError::Usage)
}

fn testbed(args: &Args) -> Result<TestbedSpec, CliError> {
    match get(args, "testbed")?.as_str() {
        "i" | "I" | "1" => Ok(testbed_i()),
        "ii" | "II" | "2" => Ok(testbed_ii()),
        other => Err(CliError::Usage(format!(
            "unknown testbed `{other}` (expected i or ii)"
        ))),
    }
}

/// Parses the straggler-defense flags shared by `serve`, `metrics`, and
/// `timeline`: `--hedge <mult|off>`, `--probation
/// <backoff_ms[:successes]|off>`, `--retry-budget
/// <tokens[:refill_per_sec]|off>`. Absence (or `off`) leaves a feature
/// disarmed; the probation schedule is seeded by `seed` so replays are
/// bit-identical.
type DefenseConfigs = (
    Option<cocopelia_runtime::serve::HedgeConfig>,
    Option<cocopelia_runtime::serve::ProbationConfig>,
    Option<cocopelia_runtime::serve::RetryBudgetConfig>,
);

fn straggler_options(args: &Args, seed: u64) -> Result<DefenseConfigs, CliError> {
    let pos_num = |v: &str, flag: &str| -> Result<f64, CliError> {
        v.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| CliError::Usage(format!("bad --{flag} value `{v}`")))
    };
    let hedge = match args.get_opt("hedge").as_deref() {
        None | Some("off") => None,
        Some(v) => Some(cocopelia_runtime::serve::HedgeConfig {
            multiplier: pos_num(v, "hedge")?,
        }),
    };
    let probation = match args.get_opt("probation").as_deref() {
        None | Some("off") => None,
        Some(v) => {
            let (ms, successes) = match v.split_once(':') {
                Some((ms, n)) => (
                    ms,
                    n.parse::<u32>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::Usage(format!("bad --probation successes `{n}`"))
                    })?,
                ),
                None => (
                    v,
                    cocopelia_runtime::serve::ProbationConfig::default().successes,
                ),
            };
            Some(cocopelia_runtime::serve::ProbationConfig {
                backoff: cocopelia_gpusim::SimTime::from_secs_f64(pos_num(ms, "probation")? * 1e-3),
                successes,
                seed,
                ..Default::default()
            })
        }
    };
    let retry_budget = match args.get_opt("retry-budget").as_deref() {
        None | Some("off") => None,
        Some(v) => {
            let (tokens, refill) = match v.split_once(':') {
                Some((t, r)) => (t, pos_num(r, "retry-budget")?),
                None => (
                    v,
                    cocopelia_runtime::serve::RetryBudgetConfig::default().refill_per_sec,
                ),
            };
            Some(cocopelia_runtime::serve::RetryBudgetConfig {
                tokens: pos_num(tokens, "retry-budget")?,
                refill_per_sec: refill,
                ..Default::default()
            })
        }
    };
    Ok((hedge, probation, retry_budget))
}

/// Parses `--faults <spec>` (absent means no injected faults).
fn faults(args: &Args) -> Result<FaultSpec, CliError> {
    match args.get_opt("faults") {
        Some(spec) => {
            FaultSpec::parse(&spec).map_err(|e| CliError::Usage(format!("bad --faults value: {e}")))
        }
        None => Ok(FaultSpec::none()),
    }
}

fn load_profile(args: &Args) -> Result<SystemProfile, CliError> {
    let path = get(args, "profile")?;
    let text = read_file(&path)?;
    SystemProfile::from_json(&text).map_err(|e| CliError::Json(format!("parsing {path}: {e}")))
}

/// `(routine, dtype, dims)` from `--routine`/`--dims`.
fn problem(args: &Args) -> Result<ProblemSpec, CliError> {
    let routine = get(args, "routine")?;
    let dims = args.get_usize_list("dims").map_err(CliError::Usage)?;
    let locs: Vec<Loc> = args
        .get_opt("loc")
        .unwrap_or_default()
        .chars()
        .map(|c| match c {
            'H' | 'h' => Ok(Loc::Host),
            'D' | 'd' => Ok(Loc::Device),
            other => Err(CliError::Usage(format!("bad loc flag `{other}` (H or D)"))),
        })
        .collect::<Result<_, _>>()?;
    let loc = |i: usize| locs.get(i).copied().unwrap_or(Loc::Host);
    let need = |n: usize| {
        if dims.len() == n {
            Ok(())
        } else {
            Err(CliError::Usage(format!(
                "{routine} needs {n} dims, got {}",
                dims.len()
            )))
        }
    };
    match routine.as_str() {
        "dgemm" | "sgemm" => {
            need(3)?;
            let dt = if routine == "dgemm" {
                Dtype::F64
            } else {
                Dtype::F32
            };
            Ok(ProblemSpec::gemm(
                dt,
                dims[0],
                dims[1],
                dims[2],
                loc(0),
                loc(1),
                loc(2),
                true,
            ))
        }
        "daxpy" => {
            need(1)?;
            Ok(ProblemSpec::axpy(Dtype::F64, dims[0], loc(0), loc(1)))
        }
        "ddot" => {
            need(1)?;
            Ok(ProblemSpec::dot(Dtype::F64, dims[0], loc(0), loc(1)))
        }
        "dgemv" => {
            need(2)?;
            Ok(ProblemSpec::gemv(
                Dtype::F64,
                dims[0],
                dims[1],
                loc(0),
                loc(1),
                loc(2),
                true,
            ))
        }
        other => Err(CliError::Usage(format!("unknown routine `{other}`"))),
    }
}

fn model(args: &Args) -> Result<Option<ModelKind>, CliError> {
    Ok(match args.get_opt("model").as_deref() {
        None => None,
        Some("cso") => Some(ModelKind::Cso),
        Some("eq1") | Some("baseline") => Some(ModelKind::Baseline),
        Some("eq2") | Some("dataloc") => Some(ModelKind::DataLoc),
        Some("bts") | Some("eq4") => Some(ModelKind::Bts),
        Some("dr") | Some("eq5") => Some(ModelKind::DataReuse),
        Some(other) => return Err(CliError::Usage(format!("unknown model `{other}`"))),
    })
}

fn cmd_deploy(args: &Args) -> Result<(), CliError> {
    let tb = testbed(args)?;
    let out = get(args, "out")?;
    let cfg = if args.has_flag("quick") {
        DeployConfig::quick()
    } else {
        DeployConfig::paper()
    };
    eprintln!(
        "deploying on {} ({} transfer dims, {} gemm tiles) ...",
        tb.name,
        cfg.transfer_dims.len(),
        cfg.gemm_tiles.len()
    );
    let report = deploy(&tb, &cfg).map_err(|e| CliError::Data(e.to_string()))?;
    println!(
        "h2d: t_l {:.2}us  {:.2} GB/s  sl {:.2}",
        report.fit.h2d.t_l * 1e6,
        1.0 / report.fit.h2d.t_b / 1e9,
        report.fit.h2d.sl
    );
    println!(
        "d2h: t_l {:.2}us  {:.2} GB/s  sl {:.2}",
        report.fit.d2h.t_l * 1e6,
        1.0 / report.fit.d2h.t_b / 1e9,
        report.fit.d2h.sl
    );
    let json = report
        .profile
        .to_json()
        .map_err(|e| CliError::Json(e.to_string()))?;
    write_file(&out, &json)?;
    println!("profile written to {out}");
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), CliError> {
    let profile = load_profile(args)?;
    let spec = problem(args)?;
    let kind = model(args)?.unwrap_or_else(|| ModelKind::recommended_for(spec.routine));
    if kind == ModelKind::Cso {
        return Err(CliError::Usage(
            "the CSO comparator needs a measured full-kernel time; use the bench harness".into(),
        ));
    }
    let exec = profile
        .exec_table(spec.routine, spec.dtype)
        .ok_or_else(|| {
            CliError::Data(format!(
                "profile has no table for {}",
                spec.routine.name(spec.dtype)
            ))
        })?;
    let ctx = ModelCtx {
        problem: &spec,
        transfer: &profile.transfer,
        exec,
        full_kernel_time: None,
    };
    let sel = TileSelector::default()
        .select(kind, &ctx)
        .map_err(|e| CliError::Data(e.to_string()))?;
    println!(
        "{} predictions for {}:",
        kind.name(),
        spec.routine.name(spec.dtype)
    );
    for p in &sel.evaluated {
        let marker = if p.tile == sel.tile {
            "  <= T_best"
        } else {
            ""
        };
        println!(
            "  T={:<6} k={:<7} predicted {:>10.3} ms{marker}",
            p.tile,
            p.k,
            p.total * 1e3
        );
    }
    Ok(())
}

/// Builds a timing-only pipeline from `--testbed`/`--profile`, runs the
/// requested routine once, and returns the handle (trace + observer
/// populated) with the call's report.
fn execute(args: &Args) -> Result<(Cocopelia, cocopelia_runtime::RoutineReport), CliError> {
    let tb = testbed(args)?;
    let profile = load_profile(args)?;
    let spec = problem(args)?;
    let choice = match args.get_opt("tile").as_deref() {
        None | Some("auto") => TileChoice::Auto,
        Some(t) => TileChoice::Fixed(
            t.parse()
                .map_err(|_| CliError::Usage(format!("bad tile `{t}`")))?,
        ),
    };
    let fault_spec = faults(args)?;
    let mut ctx = Cocopelia::new(
        Gpu::with_faults(tb, ExecMode::TimingOnly, 0xC11, fault_spec),
        profile,
    );
    let dims = spec.dims();
    let ghost_mat = |r: usize, c: usize| MatOperand::<f64>::HostGhost { rows: r, cols: c };
    let report = match spec.routine {
        cocopelia_core::params::RoutineClass::Gemm => {
            let (m, n, k) = (dims[0], dims[1], dims[2]);
            GemmRequest::new(ghost_mat(m, k), ghost_mat(k, n), ghost_mat(m, n))
                .alpha(1.0)
                .beta(1.0)
                .tile(choice)
                .run(&mut ctx)?
                .report
        }
        cocopelia_core::params::RoutineClass::Axpy => {
            let n = dims[0];
            AxpyRequest::new(
                VecOperand::<f64>::HostGhost { len: n },
                VecOperand::HostGhost { len: n },
            )
            .alpha(1.0)
            .tile(choice)
            .run(&mut ctx)?
            .report
        }
        cocopelia_core::params::RoutineClass::Dot => {
            let n = dims[0];
            DotRequest::new(
                VecOperand::<f64>::HostGhost { len: n },
                VecOperand::HostGhost { len: n },
            )
            .tile(choice)
            .run(&mut ctx)?
            .report
        }
        cocopelia_core::params::RoutineClass::Gemv => {
            let (m, n) = (dims[0], dims[1]);
            GemvRequest::new(
                ghost_mat(m, n),
                VecOperand::HostGhost { len: n },
                VecOperand::HostGhost { len: m },
            )
            .alpha(1.0)
            .beta(1.0)
            .tile(choice)
            .run(&mut ctx)?
            .report
        }
    };
    Ok((ctx, report))
}

fn cmd_run(args: &Args) -> Result<(), CliError> {
    let (ctx, report) = execute(args)?;
    println!(
        "T = {}  elapsed {:.3} ms  {:.1} GFLOP/s  ({} sub-kernels)  overlap {:.2}x",
        report.tile,
        report.elapsed.as_secs_f64() * 1e3,
        report.gflops(),
        report.subkernels,
        report.overlap.efficiency()
    );
    let stats = ctx.gpu().fault_stats();
    if stats.total() > 0 || report.op_retries > 0 {
        println!(
            "faults: h2d {} d2h {} kernel {} ecc {} | op retries {}{}",
            stats.h2d_faults,
            stats.d2h_faults,
            stats.kernel_faults,
            stats.ecc_faults,
            report.op_retries,
            if stats.device_lost {
                " | device lost"
            } else {
                ""
            },
        );
    }
    drop(ctx);
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), CliError> {
    let (ctx, _report) = execute(args)?;
    match args.get_opt("format").as_deref() {
        None | Some("text") => print!("{}", ctx.observer().render()),
        Some("prom") => print!(
            "{}",
            cocopelia_obs::prom::render_prom(ctx.observer().metrics())
        ),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown report format `{other}` (text|prom)"
            )));
        }
    }
    if let Some(path) = args.get_opt("json") {
        let json = serde_json::to_string(&ctx.observer().to_value())
            .map_err(|e| CliError::Json(e.to_string()))?;
        write_file(&path, &json)?;
        println!("\nJSON report written to {path}");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), CliError> {
    let (ctx, _report) = execute(args)?;
    let out = get(args, "out")?;
    let entries = ctx.gpu().trace().entries();
    match args.get_opt("format").as_deref() {
        None | Some("chrome") => {
            let text = cocopelia_obs::export::to_chrome_trace(entries)
                .map_err(|e| CliError::Json(e.to_string()))?;
            write_file(&out, &text)?;
        }
        Some("jsonl") => {
            let text = cocopelia_obs::export::to_jsonl(entries)
                .map_err(|e| CliError::Json(e.to_string()))?;
            write_file(&out, &text)?;
        }
        Some("perfetto") => {
            write_bytes(&out, &cocopelia_obs::perfetto::to_perfetto_single(entries))?;
        }
        Some(other) => {
            return Err(CliError::Usage(format!("unknown trace format `{other}`")));
        }
    }
    println!("{} trace entries written to {out}", entries.len());
    Ok(())
}

fn cmd_gantt(args: &Args) -> Result<(), CliError> {
    let tb = testbed(args)?;
    let dims = args.get_usize_list("dims").map_err(CliError::Usage)?;
    if dims.len() != 3 {
        return Err(CliError::Usage("gantt needs --dims M N K".into()));
    }
    let tile: usize = get(args, "tile")?
        .parse()
        .map_err(|_| CliError::Usage("bad tile".to_owned()))?;
    let width: usize = args
        .get_opt("width")
        .map(|w| {
            w.parse()
                .map_err(|_| CliError::Usage("bad width".to_owned()))
        })
        .transpose()?
        .unwrap_or(100);
    let dummy = SystemProfile::new(
        "cli",
        cocopelia_core::transfer::TransferModel {
            h2d: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
            d2h: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
            sl_h2d: 1.0,
            sl_d2h: 1.0,
        },
    );
    let mut ctx = Cocopelia::new(Gpu::new(tb, ExecMode::TimingOnly, 3), dummy);
    GemmRequest::new(
        MatOperand::<f64>::HostGhost {
            rows: dims[0],
            cols: dims[2],
        },
        MatOperand::HostGhost {
            rows: dims[2],
            cols: dims[1],
        },
        MatOperand::HostGhost {
            rows: dims[0],
            cols: dims[1],
        },
    )
    .alpha(1.0)
    .beta(1.0)
    .tile(TileChoice::Fixed(tile))
    .run(&mut ctx)?;
    println!("{}", ctx.gpu().trace().gantt(width));
    print!(
        "{}",
        cocopelia_obs::gantt::engine_summary(ctx.gpu().trace().entries())
    );
    Ok(())
}

fn cmd_calib(args: &Args) -> Result<(), CliError> {
    let tb = testbed(args)?;
    let cfg = if args.has_flag("quick") {
        DeployConfig::quick()
    } else {
        DeployConfig::paper()
    };
    eprintln!("deploying on {} for the calibration audit ...", tb.name);
    let report = deploy(&tb, &cfg).map_err(|e| CliError::Data(e.to_string()))?;
    let calib = cocopelia_obs::CalibReport::from_deployment(&report);
    print!("{}", calib.render());
    if let Some(path) = args.get_opt("json") {
        let json =
            serde_json::to_string(&calib.to_value()).map_err(|e| CliError::Json(e.to_string()))?;
        write_file(&path, &json)?;
        println!("\nJSON calibration report written to {path}");
    }
    Ok(())
}

/// Shared front half of `serve` and `timeline`: parses the pool size,
/// request trace, fault plan, policy, and snapshot interval, then runs
/// the executor comparison (span tracing on when `trace_spans`).
fn serve_comparison(
    args: &Args,
    trace_spans: bool,
) -> Result<(cocopelia_xp::ServeComparison, FaultSpec), CliError> {
    let tb = testbed(args)?;
    let devices: usize = args
        .get_opt("devices")
        .map(|d| {
            d.parse()
                .map_err(|_| CliError::Usage(format!("bad --devices value `{d}`")))
        })
        .transpose()?
        .unwrap_or(2);
    if devices == 0 {
        return Err(CliError::Usage("--devices must be at least 1".into()));
    }
    let trace = match args.get_opt("trace") {
        Some(path) => {
            let text = read_file(&path)?;
            cocopelia_xp::parse_request_trace(&text)
                .map_err(|e| CliError::Data(format!("{path}: {e}")))?
        }
        None => cocopelia_xp::standard_request_trace(),
    };
    let fault_spec = faults(args)?;
    let policy = match args.get_opt("policy") {
        Some(p) => cocopelia_runtime::serve::SchedulePolicy::parse(&p).map_err(CliError::Usage)?,
        None => cocopelia_runtime::serve::SchedulePolicy::Fifo,
    };
    let parse_ms = |key: &str| -> Result<Option<cocopelia_gpusim::SimTime>, CliError> {
        args.get_opt(key)
            .map(|ms| {
                ms.parse::<f64>()
                    .ok()
                    .filter(|v| *v > 0.0)
                    .map(|v| cocopelia_gpusim::SimTime::from_secs_f64(v * 1e-3))
                    .ok_or_else(|| CliError::Usage(format!("bad --{key} value `{ms}`")))
            })
            .transpose()
    };
    let snapshot_interval = parse_ms("snapshot-ms")?;
    let window = parse_ms("window-ms")?;
    let watch = watch_options(args, window.or(snapshot_interval))?;
    let seed: u64 = args
        .get_opt("seed")
        .map(|s| {
            s.parse()
                .map_err(|_| CliError::Usage(format!("bad --seed value `{s}`")))
        })
        .transpose()?
        .unwrap_or(1);
    let arrivals = args
        .get_opt("arrivals")
        .map(|s| cocopelia_xp::ArrivalSpec::parse(&s, seed).map_err(CliError::Usage))
        .transpose()?;
    let queue_cap = args
        .get_opt("queue-cap")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| CliError::Usage(format!("bad --queue-cap value `{s}`")))
        })
        .transpose()?;
    let shed_flow_secs = args
        .get_opt("shed-flow-ms")
        .map(|s| {
            s.parse::<f64>()
                .ok()
                .filter(|v| *v > 0.0)
                .map(|v| v * 1e-3)
                .ok_or_else(|| CliError::Usage(format!("bad --shed-flow-ms value `{s}`")))
        })
        .transpose()?;
    let coalesce = args.has_flag("coalesce");
    let prefetch = args.has_flag("prefetch");
    if arrivals.is_none() {
        if queue_cap.is_some() {
            return Err(CliError::Usage("--queue-cap requires --arrivals".into()));
        }
        if shed_flow_secs.is_some() {
            return Err(CliError::Usage("--shed-flow-ms requires --arrivals".into()));
        }
        if coalesce {
            return Err(CliError::Usage("--coalesce requires --arrivals".into()));
        }
    }
    let requests = trace.len();
    eprintln!(
        "deploying and serving {requests} request(s) on {} device(s) under {policy}{}{} ...",
        devices,
        if fault_spec.is_none() {
            ""
        } else {
            " with fault injection"
        },
        if arrivals.is_none() {
            ""
        } else {
            " with open arrivals"
        },
    );
    let (hedge, probation, retry_budget) = straggler_options(args, seed)?;
    let options = cocopelia_xp::ServeOptions {
        policy,
        trace: trace_spans,
        // Under --watch the per-window lines replace the end-only
        // interval snapshots (--window-ms becomes the window length).
        snapshot_interval: if watch.is_some() {
            None
        } else {
            snapshot_interval
        },
        watch,
        arrivals,
        queue_cap,
        shed_flow_secs,
        coalesce,
        prefetch,
        hedge,
        probation,
        retry_budget,
        fault_plans: None,
    };
    let cmp = if options.watch.is_some() {
        cocopelia_xp::run_serve_streaming(
            &tb,
            devices,
            trace,
            &fault_spec,
            &options,
            Box::new(|w| println!("{}", w.render())),
        )
    } else {
        cocopelia_xp::run_serve_with_options(&tb, devices, trace, &fault_spec, &options)
    }
    .map_err(CliError::Data)?;
    Ok((cmp, fault_spec))
}

/// Builds the `--watch` telemetry config: `--window-ms` sets the window
/// length (`--snapshot-ms` is accepted as a legacy alias under `--watch`),
/// `--slo` the objectives, `--ring` the flight-recorder capacity, and a
/// `--trace-out` with a Perfetto extension switches that export to
/// incremental streaming. `--slo`/`--ring`/`--window-ms` without `--watch`
/// is a usage error.
fn watch_options(
    args: &Args,
    window: Option<cocopelia_gpusim::SimTime>,
) -> Result<Option<cocopelia_runtime::serve::TelemetryConfig>, CliError> {
    if !args.has_flag("watch") {
        for key in ["slo", "ring", "window-ms"] {
            if args.get_opt(key).is_some() {
                return Err(CliError::Usage(format!("--{key} requires --watch")));
            }
        }
        return Ok(None);
    }
    let mut cfg = cocopelia_runtime::serve::TelemetryConfig::default();
    if let Some(window) = window {
        cfg.window = window;
    }
    if let Some(slos) = args.get_opt("slo") {
        cfg.slos = cocopelia_obs::SloSpec::parse_list(&slos).map_err(CliError::Usage)?;
    }
    if let Some(ring) = args.get_opt("ring") {
        cfg.recorder_cap = ring
            .parse::<usize>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| CliError::Usage(format!("bad --ring value `{ring}`")))?;
    }
    if let Some(path) = args.get_opt("trace-out") {
        if is_perfetto_path(&path) {
            cfg.stream_path = Some(path.into());
        }
    }
    Ok(Some(cfg))
}

/// Whether a `--trace-out` path names the binary Perfetto format.
fn is_perfetto_path(path: &str) -> bool {
    path.ends_with(".perfetto") || path.ends_with(".pftrace")
}

/// Writes a serve trace in the format its extension names: `.perfetto` /
/// `.pftrace` → binary Perfetto protobuf (open in ui.perfetto.dev),
/// anything else → Chrome trace JSON (`chrome://tracing`).
fn write_serve_trace(path: &str, trace: &cocopelia_obs::ServeTrace) -> Result<(), CliError> {
    if is_perfetto_path(path) {
        write_bytes(path, &cocopelia_obs::perfetto::to_perfetto(trace))?;
        println!("perfetto trace written to {path} (open in ui.perfetto.dev)");
    } else {
        let text = cocopelia_obs::export::serve_trace_to_chrome(trace)
            .map_err(|e| CliError::Json(e.to_string()))?;
        write_file(path, &text)?;
        println!("chrome trace written to {path}");
    }
    Ok(())
}

/// Serves a request trace (the standard mixed trace unless `--trace`
/// points at a file) through the concurrent executor and prints the
/// per-request outcomes, aggregates, and the speedup over a sequential
/// no-reuse replay. `--trace-out` additionally exports the run's
/// request-lifecycle trace.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let trace_out = args.get_opt("trace-out");
    // A Perfetto --trace-out under --watch is streamed incrementally by
    // the telemetry layer; only the other combinations need the in-memory
    // trace exported after the run.
    let streamed = args.has_flag("watch") && trace_out.as_deref().is_some_and(is_perfetto_path);
    let (cmp, fault_spec) = serve_comparison(args, trace_out.is_some() && !streamed)?;
    print!("{}", cmp.report.render());
    println!(
        "sequential no-reuse baseline {:.3} ms | speedup {:.2}x on {} device(s)",
        cmp.sequential_secs * 1e3,
        cmp.speedup(),
        cmp.devices,
    );
    if !fault_spec.is_none() {
        let c = |name: &str| cmp.report.metrics.counter(name);
        println!(
            "faults: transient {} degraded {} fatal {} | retries {} (tile ops {}) | \
             quarantined {} (re-dispatched {}, invalidated {}) | host fallbacks {}",
            c("fault_transient_total"),
            c("fault_degraded_total"),
            c("fault_fatal_total"),
            c("retry_attempts_total"),
            c("retry_tile_ops_total"),
            c("quarantine_devices_total"),
            c("quarantine_redispatch_total"),
            c("quarantine_invalidated_total"),
            c("fault_host_fallback_total"),
        );
    }
    {
        let c = |name: &str| cmp.report.metrics.counter(name);
        let hedges = c("hedge_attempts_total");
        let probes = c("probe_attempts_total");
        let fastfails = c("budget_fastfail_total");
        if hedges + probes + fastfails > 0 {
            println!(
                "defense: hedges {} (won {}, lost {}, faulted {}) | probes {} \
                 (ok {}, readmitted {}) | budget fastfails {}",
                hedges,
                c("hedge_wins_total"),
                c("hedge_losses_total"),
                c("hedge_fail_total"),
                probes,
                c("probe_success_total"),
                c("probe_readmit_total"),
                fastfails,
            );
        }
    }
    {
        let c = |name: &str| cmp.report.metrics.counter(name);
        let issued = c("prefetch_issued_total");
        let skipped = c("prefetch_skipped_total");
        if issued + skipped > 0 {
            println!(
                "prefetch: issued {} (hits {}, released {}, aborted {}) | skipped {} | \
                 staged {} B | overlapped {:.3} ms",
                issued,
                c("prefetch_hits_total"),
                c("prefetch_released_total"),
                c("prefetch_aborted_total"),
                skipped,
                c("prefetch_bytes_total"),
                c("prefetch_overlap_ns") as f64 / 1e6,
            );
        }
    }
    if let Some(path) = trace_out {
        if streamed {
            println!("perfetto trace streamed to {path} (open in ui.perfetto.dev)");
        } else {
            let trace = cmp
                .report
                .trace
                .as_ref()
                .ok_or_else(|| CliError::Data("executor produced no trace".into()))?;
            write_serve_trace(&path, trace)?;
        }
    }
    Ok(())
}

/// Runs the serve comparison silently and prints the executor's metrics
/// registry: Prometheus text exposition by default (scrape-ready counters,
/// gauges, and `_bucket`/`_sum`/`_count` histograms), or the plain listing
/// under `--format text`.
fn cmd_metrics(args: &Args) -> Result<(), CliError> {
    let (cmp, _fault_spec) = serve_comparison(args, false)?;
    match args.get_opt("format").as_deref() {
        None | Some("prom") => print!("{}", cocopelia_obs::prom::render_prom(&cmp.report.metrics)),
        Some("text") => print!("{}", cmp.report.metrics.render()),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown metrics format `{other}` (prom|text)"
            )));
        }
    }
    Ok(())
}

/// Runs the same comparison as `serve` with tracing always on and renders
/// the per-device timetable instead of the report: device rows × virtual-
/// time columns with glyphs for copies, kernels, retries, and
/// quarantines. `--trace-out` exports the trace alongside.
fn cmd_timeline(args: &Args) -> Result<(), CliError> {
    let width: usize = args
        .get_opt("width")
        .map(|w| {
            w.parse()
                .map_err(|_| CliError::Usage(format!("bad --width value `{w}`")))
        })
        .transpose()?
        .unwrap_or(96);
    let opts = cocopelia_obs::timeline::TimelineOptions {
        width,
        color: args.has_flag("color"),
    };
    let (cmp, _fault_spec) = serve_comparison(args, true)?;
    let trace = cmp
        .report
        .trace
        .as_ref()
        .ok_or_else(|| CliError::Data("executor produced no trace".into()))?;
    print!("{}", cocopelia_obs::timeline::render(trace, &opts));
    if let Some(path) = args.get_opt("trace-out") {
        write_serve_trace(&path, trace)?;
    }
    Ok(())
}

/// Derives a snapshot label from the output filename: `BENCH_pr2.json`
/// labels the snapshot `pr2`.
fn label_from_out(out: &str) -> String {
    std::path::Path::new(out)
        .file_stem()
        .and_then(|s| s.to_str())
        .map(|s| s.strip_prefix("BENCH_").unwrap_or(s))
        .filter(|s| !s.is_empty())
        .unwrap_or("snapshot")
        .to_owned()
}

fn cmd_snapshot(args: &Args) -> Result<(), CliError> {
    let out = get(args, "out")?;
    let tb = if args.get_opt("testbed").is_some() {
        testbed(args)?
    } else {
        testbed_i()
    };
    let label = args
        .get_opt("label")
        .unwrap_or_else(|| label_from_out(&out));
    eprintln!("collecting the standard sweep on {} ...", tb.name);
    let snap = cocopelia_xp::collect_snapshot(&tb, &label).map_err(CliError::Data)?;
    print!("{}", snap.render());
    let json = snap.to_json().map_err(|e| CliError::Json(e.to_string()))?;
    write_file(&out, &json)?;
    println!("snapshot written to {out}");
    Ok(())
}

fn load_snapshot(path: &str) -> Result<cocopelia_obs::Snapshot, CliError> {
    let text = read_file(path)?;
    cocopelia_obs::Snapshot::from_json(&text)
        .map_err(|e| CliError::Json(format!("parsing {path}: {e}")))
}

fn cmd_compare(pos: &[String], args: &Args) -> Result<ExitCode, CliError> {
    let [base_path, new_path] = pos else {
        return Err(CliError::Usage(
            "compare needs exactly two snapshot files: <base.json> <new.json>".to_owned(),
        ));
    };
    let base = load_snapshot(base_path)?;
    let new = load_snapshot(new_path)?;
    let mut cfg = cocopelia_obs::DiffConfig::default();
    if let Some(t) = args.get_opt("threshold") {
        cfg.makespan_threshold = t
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --threshold value `{t}`")))?;
    }
    let report = cocopelia_obs::DiffReport::compare(&base, &new, cfg).map_err(CliError::Data)?;
    print!("{}", report.render());
    if let Some(path) = args.get_opt("json") {
        let json =
            serde_json::to_string(&report.to_value()).map_err(|e| CliError::Json(e.to_string()))?;
        write_file(&path, &json)?;
        println!("JSON diff written to {path}");
    }
    if report.has_regressions() {
        eprintln!("performance regression detected");
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Minimal `--key value` / `--flag` parser (kept dependency-free).
mod args_impl {
    use super::HashMap;

    #[derive(Debug, Default)]
    pub struct Args {
        values: HashMap<String, Vec<String>>,
        flags: Vec<String>,
    }

    impl Args {
        /// Like [`parse`](Self::parse), but tokens before the first `--key`
        /// are collected as positional arguments instead of rejected.
        pub fn parse_with_positionals(argv: &[String]) -> Result<(Vec<String>, Args), String> {
            let split = argv
                .iter()
                .position(|a| a.starts_with("--"))
                .unwrap_or(argv.len());
            let (pos, rest) = argv.split_at(split);
            Ok((pos.to_vec(), Args::parse(rest)?))
        }

        pub fn parse(argv: &[String]) -> Result<Args, String> {
            let mut out = Args::default();
            let mut i = 0;
            while i < argv.len() {
                let arg = &argv[i];
                let Some(key) = arg.strip_prefix("--") else {
                    return Err(format!("unexpected positional argument `{arg}`"));
                };
                let mut vals = Vec::new();
                while i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    vals.push(argv[i + 1].clone());
                    i += 1;
                }
                if vals.is_empty() {
                    out.flags.push(key.to_owned());
                } else {
                    out.values.insert(key.to_owned(), vals);
                }
                i += 1;
            }
            Ok(out)
        }

        pub fn get(&self, key: &str) -> Result<String, String> {
            self.get_opt(key).ok_or_else(|| format!("missing --{key}"))
        }

        pub fn get_opt(&self, key: &str) -> Option<String> {
            self.values.get(key).map(|v| v.join(" "))
        }

        pub fn get_usize_list(&self, key: &str) -> Result<Vec<usize>, String> {
            let vals = self
                .values
                .get(key)
                .ok_or_else(|| format!("missing --{key}"))?;
            vals.iter()
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --{key} value `{v}`"))
                })
                .collect()
        }

        pub fn has_flag(&self, key: &str) -> bool {
            self.flags.iter().any(|f| f == key)
        }
    }
}

mod args {
    //! Re-export of the dependency-free argument parser.
    pub use super::args_impl::Args;
}

#[cfg(test)]
mod tests {
    use super::args::Args;
    use super::CliError;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_keys_values_and_flags() {
        let a = Args::parse(&argv("--testbed ii --dims 1 2 3 --quick")).expect("parses");
        assert_eq!(a.get("testbed").expect("present"), "ii");
        assert_eq!(a.get_usize_list("dims").expect("present"), vec![1, 2, 3]);
        assert!(a.has_flag("quick"));
        assert!(a.get("missing").is_err());
    }

    #[test]
    fn rejects_positionals() {
        assert!(Args::parse(&argv("stray")).is_err());
    }

    #[test]
    fn parse_with_positionals_splits_at_first_flag() {
        let (pos, a) = Args::parse_with_positionals(&argv("base.json new.json --threshold 0.1"))
            .expect("parses");
        assert_eq!(pos, vec!["base.json".to_owned(), "new.json".to_owned()]);
        assert_eq!(a.get("threshold").expect("present"), "0.1");
        let (none, _) = Args::parse_with_positionals(&argv("--threshold 0.1")).expect("parses");
        assert!(none.is_empty());
    }

    #[test]
    fn snapshot_label_derivation() {
        assert_eq!(super::label_from_out("BENCH_seed.json"), "seed");
        assert_eq!(super::label_from_out("out/BENCH_pr2.json"), "pr2");
        assert_eq!(super::label_from_out("results.json"), "results");
        assert_eq!(super::label_from_out("BENCH_.json"), "snapshot");
    }

    #[test]
    fn subcommand_dispatch_rejects_unknown() {
        assert!(matches!(
            super::run(&argv("frobnicate --x 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(super::run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn errors_keep_their_context() {
        // Io carries the path and the OS error as a source.
        let err = super::read_file("/nonexistent/profile.json").expect_err("missing file");
        let CliError::Io { path, source } = &err else {
            panic!("expected Io, got {err:?}")
        };
        assert_eq!(path, "/nonexistent/profile.json");
        assert_eq!(source.kind(), std::io::ErrorKind::NotFound);
        assert!(std::error::Error::source(&err).is_some());
        // Usage errors are the only ones that re-print the usage text.
        assert!(std::error::Error::source(&CliError::Usage("x".into())).is_none());
    }

    #[test]
    fn serve_rejects_zero_devices_and_bad_traces() {
        assert!(matches!(
            super::run(&argv("serve --testbed i --devices 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            super::run(&argv("serve --testbed i --trace /nonexistent/trace.txt")),
            Err(CliError::Io { .. })
        ));
    }

    #[test]
    fn timeline_shares_serve_validation() {
        assert!(matches!(
            super::run(&argv("timeline --testbed i --devices 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            super::run(&argv("timeline --testbed i --width potato")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            super::run(&argv("serve --testbed i --snapshot-ms -3")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_validates_open_arrival_flags() {
        // Arrival grammar errors are usage errors.
        assert!(matches!(
            super::run(&argv("serve --testbed i --arrivals uniform:9")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            super::run(&argv("serve --testbed i --arrivals poisson:0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            super::run(&argv(
                "serve --testbed i --arrivals poisson:100 --seed nope"
            )),
            Err(CliError::Usage(_))
        ));
        // Backpressure/coalescing knobs act on arrivals only.
        for flags in [
            "--queue-cap 8",
            "--shed-flow-ms 50",
            "--coalesce",
            "--queue-cap 0 --arrivals poisson:100",
        ] {
            let cmd = format!("serve --testbed i {flags}");
            assert!(
                matches!(super::run(&argv(&cmd)), Err(CliError::Usage(_))),
                "`{flags}` must be a usage error"
            );
        }
        // The watch window length is a --watch flag.
        assert!(matches!(
            super::run(&argv("serve --testbed i --window-ms 5")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_rejects_malformed_fault_specs() {
        // Every malformed --faults spec must surface as a typed usage
        // error (exit 2 from main), never a panic or a silent default.
        for spec in [
            "kernel=potato",
            "h2d=2.5",
            "frobnicate=1",
            "lost_after=-3",
            "degrade=1:2",
        ] {
            let cmd = format!("serve --testbed i --faults {spec}");
            match super::run(&argv(&cmd)) {
                Err(CliError::Usage(msg)) => {
                    assert!(msg.contains("--faults"), "`{spec}`: {msg}")
                }
                other => panic!("`{spec}` must be a usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn serve_rejects_unknown_slo_kinds() {
        for slo in ["bogus<=0.1", "deadline_miss<=nope", "deadline_miss"] {
            let cmd = format!("serve --testbed i --watch --slo {slo}");
            assert!(
                matches!(super::run(&argv(&cmd)), Err(CliError::Usage(_))),
                "`{slo}` must be a usage error"
            );
        }
    }

    #[test]
    fn serve_validates_straggler_defense_flags() {
        for flags in [
            "--hedge potato",
            "--hedge -1",
            "--hedge 0",
            "--probation potato",
            "--probation 5:0",
            "--probation 5:x",
            "--retry-budget potato",
            "--retry-budget 8:0",
            "--retry-budget 8:x",
        ] {
            let cmd = format!("serve --testbed i {flags}");
            assert!(
                matches!(super::run(&argv(&cmd)), Err(CliError::Usage(_))),
                "`{flags}` must be a usage error"
            );
        }
        // `off` always parses to disarmed (reaches the run itself, which
        // succeeds on the standard trace).
        let (h, p, b) = super::straggler_options(
            &Args::parse(&argv("--hedge off --probation off --retry-budget off")).expect("parses"),
            1,
        )
        .expect("off disarms");
        assert!(h.is_none() && p.is_none() && b.is_none());
        let (h, p, b) = super::straggler_options(
            &Args::parse(&argv("--hedge 1.5 --probation 5:3 --retry-budget 8:2")).expect("parses"),
            7,
        )
        .expect("parses armed");
        assert_eq!(h.expect("hedge").multiplier, 1.5);
        let p = p.expect("probation");
        assert_eq!(p.successes, 3);
        assert_eq!(p.seed, 7);
        let b = b.expect("budget");
        assert_eq!(b.tokens, 8.0);
        assert_eq!(b.refill_per_sec, 2.0);
    }

    #[test]
    fn serve_rejects_unknown_policy() {
        let err = super::run(&argv("serve --testbed i --policy sjf")).expect_err("bad policy");
        match err {
            CliError::Usage(msg) => assert!(msg.contains("sjf"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn problem_construction() {
        let a = Args::parse(&argv("--routine dgemm --dims 64 32 16 --loc HDH")).expect("parses");
        let p = super::problem(&a).expect("builds");
        assert_eq!(p.dims(), vec![64, 32, 16]);
        assert_eq!(p.operands[1].loc, cocopelia_core::params::Loc::Device);
        let bad = Args::parse(&argv("--routine dgemm --dims 64")).expect("parses");
        assert!(super::problem(&bad).is_err());
    }
}
