//! # cocopelia-baselines
//!
//! Re-implementations of the comparator libraries' *scheduling policies*
//! (the libraries themselves are CUDA binaries; see `DESIGN.md` §2 for the
//! substitution argument):
//!
//! * [`cublasxt`] — square tiling with 3-way overlap, **no** inter-tile
//!   reuse, explicit user-tuned tiling size (the state of practice).
//! * [`Blasx`] — tile engine **with** reuse but a static compile-time
//!   tiling size (`T = 2048`).
//! * [`unified`] — the unified-memory-with-prefetch `daxpy` comparator.
//! * [`serial`] — no-overlap offload, the reference lower bound.

#![deny(missing_docs)]

pub mod cublasxt;
pub mod serial;
pub mod unified;

mod blasx;

pub use blasx::{Blasx, BLASX_DEFAULT_TILE};

use cocopelia_gpusim::SimTime;

/// What every baseline run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult<Out> {
    /// The routine's output data, when it was passed as host data in
    /// functional mode.
    pub output: Option<Out>,
    /// Virtual wall time of the call.
    pub elapsed: SimTime,
    /// Useful floating-point operations.
    pub flops: f64,
    /// Sub-kernels launched.
    pub subkernels: usize,
}

impl<Out> BaselineResult<Out> {
    /// Achieved throughput in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.elapsed.as_secs_f64() / 1e9
    }
}
