//! The unified-memory comparator for `daxpy` (§V-E): the kernel reads
//! migrated pages instead of staged pinned buffers, with `cudaMemPrefetchAsync`
//! pipelining migration ahead of compute.
//!
//! Modelled as a chunked pipeline whose transfers go through **pageable**
//! host memory (the simulator charges the configured pageable bandwidth
//! penalty — the migration-engine cost) while prefetching overlaps
//! migration of chunk `i+1` with compute on chunk `i`.

use crate::BaselineResult;
use cocopelia_gpusim::{CopyDesc, DevVecRef, Gpu, KernelArgs, KernelShape, Region2d, SimScalar};
use cocopelia_hostblas::tiling::split;
use cocopelia_runtime::{RuntimeError, VecOperand};

/// Default prefetch granularity in elements (2 Mi elements ≈ 16 MB of f64,
/// a typical prefetch window).
pub const DEFAULT_PREFETCH_CHUNK: usize = 1 << 21;

/// Runs `y ← α·x + y` through the unified-memory-with-prefetch model.
///
/// # Errors
///
/// Dimension mismatches and simulator failures.
pub fn daxpy_prefetch(
    gpu: &mut Gpu,
    alpha: f64,
    x: VecOperand<f64>,
    y: VecOperand<f64>,
    chunk: usize,
) -> Result<BaselineResult<Vec<f64>>, RuntimeError> {
    if x.len() != y.len() {
        return Err(RuntimeError::DimensionMismatch {
            what: format!("daxpy: x has {} elements but y has {}", x.len(), y.len()),
        });
    }
    if chunk == 0 {
        return Err(RuntimeError::DimensionMismatch {
            what: "prefetch chunk must be positive".to_owned(),
        });
    }
    let n = x.len();
    let flops = 2.0 * n as f64;
    // Unified memory is never pinned: register pageable host backing.
    let mut stage_vec = |op: VecOperand<f64>| match op {
        VecOperand::Host(v) => Some(gpu.register_host(v, false)),
        VecOperand::HostGhost { len } => {
            Some(gpu.register_host_ghost(cocopelia_hostblas::Dtype::F64, len, false))
        }
        VecOperand::Device(_) => None,
    };
    let hx = stage_vec(x);
    let hy = stage_vec(y);
    let (Some(hx), Some(hy)) = (hx, hy) else {
        return Err(RuntimeError::DimensionMismatch {
            what: "unified-memory daxpy models host-resident managed data".to_owned(),
        });
    };
    let migrate = gpu.create_stream();
    let exec = gpu.create_stream();
    let writeback = gpu.create_stream();
    let t0 = gpu.now();
    let dx = gpu.alloc_device(cocopelia_hostblas::Dtype::F64, n)?;
    let dy = gpu.alloc_device(cocopelia_hostblas::Dtype::F64, n)?;
    let mut subkernels = 0usize;

    for t in split(n, chunk) {
        let region = Region2d {
            offset: t.start,
            ld: t.len.max(1),
            rows: t.len,
            cols: 1,
        };
        // Prefetch both operands' pages for this chunk.
        gpu.memcpy_h2d_async(
            migrate,
            CopyDesc {
                host: hx,
                host_region: region,
                dev: dx,
                dev_region: region,
            },
        )?;
        gpu.memcpy_h2d_async(
            migrate,
            CopyDesc {
                host: hy,
                host_region: region,
                dev: dy,
                dev_region: region,
            },
        )?;
        let migrated = gpu.record_event(migrate)?;
        gpu.wait_event(exec, migrated)?;
        gpu.launch_kernel(
            exec,
            KernelShape::Axpy {
                dtype: cocopelia_hostblas::Dtype::F64,
                n: t.len,
            },
            Some(KernelArgs::Axpy {
                alpha,
                x: DevVecRef {
                    buf: dx,
                    offset: t.start,
                },
                y: DevVecRef {
                    buf: dy,
                    offset: t.start,
                },
            }),
        )?;
        subkernels += 1;
        // Dirty pages migrate back on access; model as an eager writeback.
        let done = gpu.record_event(exec)?;
        gpu.wait_event(writeback, done)?;
        gpu.memcpy_d2h_async(
            writeback,
            CopyDesc {
                host: hy,
                host_region: region,
                dev: dy,
                dev_region: region,
            },
        )?;
    }

    gpu.synchronize()?;
    let elapsed = gpu.now().saturating_since(t0);
    gpu.free_device(dx)?;
    gpu.free_device(dy)?;
    gpu.take_host(hx)?;
    let ybuf = gpu.take_host(hy)?;
    let y_out = ybuf
        .payload
        .is_functional()
        .then(|| f64::payload_into_vec(ybuf.payload));
    Ok(BaselineResult {
        output: y_out,
        elapsed,
        flops,
        subkernels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec, TestbedSpec};

    fn quiet() -> TestbedSpec {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        tb
    }

    #[test]
    fn numerically_correct() {
        let n = 5000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = vec![1.0; n];
        let expect: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let mut gpu = Gpu::new(quiet(), ExecMode::Functional, 1);
        let res = daxpy_prefetch(
            &mut gpu,
            2.0,
            VecOperand::Host(x),
            VecOperand::Host(y),
            1024,
        )
        .expect("runs");
        assert_eq!(res.output.expect("functional"), expect);
        assert_eq!(res.subkernels, 5);
    }

    #[test]
    fn slower_than_pinned_pipeline() {
        // Same problem through the CoCoPeLia daxpy (pinned) must beat the
        // unified-memory model (pageable penalty).
        let n = 1 << 24;
        let mut gpu = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        let um = daxpy_prefetch(
            &mut gpu,
            1.0,
            VecOperand::HostGhost { len: n },
            VecOperand::HostGhost { len: n },
            DEFAULT_PREFETCH_CHUNK,
        )
        .expect("runs");

        let gpu2 = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        let mut blasx_like = crate::Blasx::new(gpu2); // reuse ctx machinery
        let _ = &mut blasx_like;
        // Direct comparison via the runtime scheduler with the same chunk.
        let gpu3 = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        let dummy = cocopelia_core::profile::SystemProfile::new(
            "x",
            cocopelia_core::transfer::TransferModel {
                h2d: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
                d2h: cocopelia_core::transfer::LatBw { t_l: 0.0, t_b: 0.0 },
                sl_h2d: 1.0,
                sl_d2h: 1.0,
            },
        );
        let mut ctx = cocopelia_runtime::Cocopelia::new(gpu3, dummy);
        let pinned = cocopelia_runtime::AxpyRequest::new(
            VecOperand::<f64>::HostGhost { len: n },
            VecOperand::HostGhost { len: n },
        )
        .alpha(1.0)
        .tile(cocopelia_runtime::TileChoice::Fixed(DEFAULT_PREFETCH_CHUNK))
        .run(&mut ctx)
        .expect("runs");
        assert!(
            um.elapsed.as_secs_f64() > pinned.report.elapsed.as_secs_f64() * 1.2,
            "um {} vs pinned {}",
            um.elapsed,
            pinned.report.elapsed
        );
    }

    #[test]
    fn device_operands_rejected() {
        let mut gpu = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        let dev = gpu
            .alloc_device(cocopelia_hostblas::Dtype::F64, 8)
            .expect("alloc");
        let _ = dev;
        let err = daxpy_prefetch(
            &mut gpu,
            1.0,
            VecOperand::HostGhost { len: 8 },
            VecOperand::HostGhost { len: 9 },
            4,
        )
        .expect_err("mismatch");
        assert!(matches!(err, RuntimeError::DimensionMismatch { .. }));
    }
}
