//! Serial (no-overlap) offload: transfer everything in, run one kernel,
//! transfer results out, all on a single stream. The classic "naive
//! offload" reference point — and a safe upper bound the property tests use
//! (any overlapped schedule must beat it).

use crate::BaselineResult;
use cocopelia_gpusim::{CopyDesc, DevMatRef, Gpu, KernelArgs, KernelShape, SimScalar};
use cocopelia_hostblas::Matrix;
use cocopelia_runtime::{MatOperand, RuntimeError};

/// Runs `C ← α·A·B + β·C` with no communication/computation overlap: all
/// inputs h2d, one kernel, `C` d2h, serialised on one stream.
///
/// # Errors
///
/// Dimension mismatches and simulator failures (the whole problem must fit
/// in device memory).
pub fn gemm<T: SimScalar>(
    gpu: &mut Gpu,
    alpha: f64,
    a: MatOperand<T>,
    b: MatOperand<T>,
    beta: f64,
    c: MatOperand<T>,
) -> Result<BaselineResult<Matrix<T>>, RuntimeError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c.rows() != m || c.cols() != n {
        return Err(RuntimeError::DimensionMismatch {
            what: format!(
                "serial gemm: A {m}x{k}, B {kb}x{n}, C {}x{}",
                c.rows(),
                c.cols()
            ),
        });
    }
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let stream = gpu.create_stream();
    let t0 = gpu.now();

    // Stage a full-matrix device buffer per operand (uploading host ones).
    let mut owned = Vec::new();
    let place =
        |gpu: &mut Gpu,
         op: MatOperand<T>,
         copy_in: bool,
         owned: &mut Vec<cocopelia_gpusim::DevBufId>|
         -> Result<(DevMatRef, Option<cocopelia_gpusim::HostBufId>, usize), RuntimeError> {
            match op {
                MatOperand::Device(d) => Ok((
                    DevMatRef {
                        buf: d.raw_buf(),
                        offset: 0,
                        ld: d.rows(),
                    },
                    None,
                    d.rows(),
                )),
                host_op => {
                    let rows = host_op.rows();
                    let cols = host_op.cols();
                    let host = match host_op {
                        MatOperand::Host(mat) => {
                            gpu.register_host(T::into_payload(mat.into_vec()), true)
                        }
                        MatOperand::HostGhost { .. } => {
                            gpu.register_host_ghost(T::DTYPE, rows * cols, true)
                        }
                        MatOperand::Device(_) => unreachable!("handled above"),
                    };
                    let dev = gpu.alloc_device(T::DTYPE, rows * cols)?;
                    owned.push(dev);
                    if copy_in {
                        gpu.memcpy_h2d_async(stream, CopyDesc::contiguous(host, dev, rows * cols))?;
                    }
                    Ok((
                        DevMatRef {
                            buf: dev,
                            offset: 0,
                            ld: rows,
                        },
                        Some(host),
                        rows,
                    ))
                }
            }
        };
    let (a_ref, a_host, _) = place(gpu, a, true, &mut owned)?;
    let (b_ref, b_host, _) = place(gpu, b, true, &mut owned)?;
    let (c_ref, c_host, _) = place(gpu, c, beta != 0.0, &mut owned)?;

    gpu.launch_kernel(
        stream,
        KernelShape::Gemm {
            dtype: T::DTYPE,
            m,
            n,
            k,
        },
        Some(KernelArgs::Gemm {
            alpha,
            beta,
            a: a_ref,
            b: b_ref,
            c: c_ref,
        }),
    )?;
    if let Some(host) = c_host {
        gpu.memcpy_d2h_async(stream, CopyDesc::contiguous(host, c_ref.buf, m * n))?;
    }
    gpu.synchronize()?;
    let elapsed = gpu.now().saturating_since(t0);
    for buf in owned {
        gpu.free_device(buf)?;
    }
    let c_out = match c_host {
        Some(host) => {
            let buf = gpu.take_host(host)?;
            buf.payload
                .is_functional()
                .then(|| Matrix::from_vec(m, n, T::payload_into_vec(buf.payload)))
        }
        None => None,
    };
    for h in [a_host, b_host].into_iter().flatten() {
        gpu.take_host(h)?;
    }
    Ok(BaselineResult {
        output: c_out,
        elapsed,
        flops,
        subkernels: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec};
    use cocopelia_hostblas::{level3, validate};

    fn quiet_gpu(functional: bool) -> Gpu {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mode = if functional {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        Gpu::new(tb, mode, 1)
    }

    #[test]
    fn numerically_correct() {
        let n = 24;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| (i + j) as f64 * 0.1);
        let b = Matrix::<f64>::from_fn(n, n, |i, j| (i as f64 - j as f64) * 0.1);
        let c = Matrix::<f64>::zeros(n, n);
        let mut expect = c.clone();
        level3::gemm(1.0, &a.view(), &b.view(), 0.0, &mut expect.view_mut());

        let mut gpu = quiet_gpu(true);
        let res = gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::Host(a),
            MatOperand::Host(b),
            0.0,
            MatOperand::Host(c),
        )
        .expect("runs");
        let got = res.output.expect("functional");
        assert!(validate::matrices_close(&got, &expect, 1e-10));
    }

    #[test]
    fn no_overlap_in_trace() {
        let mut gpu = quiet_gpu(false);
        gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            1.0,
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
        )
        .expect("runs");
        // Busy times tile the makespan exactly: no two entries overlap.
        let entries = gpu.trace().entries();
        for w in entries.windows(2) {
            assert!(w[1].start >= w[0].end, "serial schedule must not overlap");
        }
    }
}
