//! The cuBLASXt scheduling policy: square tiling with 3-way overlap but
//! **no inter-sub-kernel data reuse** (§II-B2: cuBLASXt "does not account
//! for data reuse"), with the tiling size an explicit parameter the caller
//! must tune.
//!
//! Every sub-kernel re-fetches its `A`, `B` *and* `C` tiles and writes the
//! updated `C` tile back — exactly the per-sub-kernel transfer volume the
//! paper's Eq. 1/2/4 charge a reuse-less engine with. Sub-kernels are
//! dispatched reduction-step-major (`p` outer, `(i, j)` inner), so each `C`
//! tile's write-back→re-fetch dependency is separated by a full output
//! sweep and does not stall the pipeline.
//!
//! Staging uses small rings of device buffers (as the real library's
//! bounded workspace does): deep enough to pipeline, shallow enough that
//! device memory stays bounded by a few tiles regardless of problem size.

use crate::BaselineResult;
use cocopelia_gpusim::{
    CopyDesc, DevBufId, DevMatRef, EventId, Gpu, HostBufId, KernelArgs, KernelShape, Region2d,
    SimScalar, StreamId,
};
use cocopelia_hostblas::tiling::{split, TileRange};
use cocopelia_hostblas::Matrix;
use cocopelia_runtime::{MatOperand, RuntimeError};

/// Ring depth for the input (`A`/`B`) staging buffers.
const INPUT_RING: usize = 4;
/// Ring depth for the output (`C`) staging buffers.
const OUTPUT_RING: usize = 3;

struct Staging {
    host: Option<HostBufId>,
    dev: Option<(DevBufId, usize)>, // resident buffer + rows
    rows: usize,
}

fn stage<T: SimScalar>(gpu: &mut Gpu, op: MatOperand<T>) -> Staging {
    match op {
        MatOperand::Host(m) => {
            let rows = m.rows();
            let host = gpu.register_host(T::into_payload(m.into_vec()), true);
            Staging {
                host: Some(host),
                dev: None,
                rows,
            }
        }
        MatOperand::HostGhost { rows, cols } => {
            let host = gpu.register_host_ghost(T::DTYPE, rows * cols, true);
            Staging {
                host: Some(host),
                dev: None,
                rows,
            }
        }
        MatOperand::Device(d) => Staging {
            host: None,
            dev: Some((d.raw_buf(), d.rows())),
            rows: d.rows(),
        },
    }
}

/// A bounded pool of staging tiles, recycled round-robin. A slot may only
/// be overwritten after the op that last consumed it completes; the ring
/// enforces that with an event wait on the next writer's stream.
struct Ring {
    depth: usize,
    elems: usize,
    slots: Vec<(DevBufId, Option<EventId>)>,
    next: usize,
}

impl Ring {
    fn new(depth: usize, elems: usize) -> Ring {
        Ring {
            depth,
            elems,
            slots: Vec::new(),
            next: 0,
        }
    }

    /// Returns `(slot index, buffer)` ready to be written on `writer`.
    fn acquire<T: SimScalar>(
        &mut self,
        gpu: &mut Gpu,
        writer: StreamId,
    ) -> Result<(usize, DevBufId), RuntimeError> {
        if self.slots.len() < self.depth {
            let buf = gpu.alloc_device(T::DTYPE, self.elems)?;
            self.slots.push((buf, None));
            return Ok((self.slots.len() - 1, buf));
        }
        let i = self.next;
        self.next = (self.next + 1) % self.depth;
        if let Some(ev) = self.slots[i].1.take() {
            gpu.wait_event(writer, ev)?;
        }
        Ok((i, self.slots[i].0))
    }

    /// Records that `ev` is the last consumer of slot `i`.
    fn mark(&mut self, i: usize, ev: EventId) {
        self.slots[i].1 = Some(ev);
    }

    fn release(self, gpu: &mut Gpu) -> Result<(), RuntimeError> {
        for (buf, _) in self.slots {
            gpu.free_device(buf)?;
        }
        Ok(())
    }
}

/// A staged tile: device reference, readiness event, and ring slot (for
/// host-staged operands).
struct StagedTile {
    mat: DevMatRef,
    ready: Option<EventId>,
    slot: Option<usize>,
}

#[allow(clippy::too_many_arguments)]
fn fetch_tile<T: SimScalar>(
    gpu: &mut Gpu,
    h2d: StreamId,
    st: &Staging,
    ring: &mut Ring,
    rr: TileRange,
    cr: TileRange,
    copy: bool,
    // Stream that will produce the slot's first write when not copying
    // (beta == 0 output tiles are first written by the kernel).
    writer_if_no_copy: StreamId,
) -> Result<StagedTile, RuntimeError> {
    if let Some((buf, rows)) = st.dev {
        return Ok(StagedTile {
            mat: DevMatRef {
                buf,
                offset: rr.start + cr.start * rows,
                ld: rows,
            },
            ready: None,
            slot: None,
        });
    }
    let host = st.host.expect("staged on host");
    let writer = if copy { h2d } else { writer_if_no_copy };
    let (slot, buf) = ring.acquire::<T>(gpu, writer)?;
    let ready = if copy {
        gpu.memcpy_h2d_async(
            h2d,
            CopyDesc {
                host,
                host_region: Region2d {
                    offset: rr.start + cr.start * st.rows,
                    ld: st.rows,
                    rows: rr.len,
                    cols: cr.len,
                },
                dev: buf,
                dev_region: Region2d {
                    offset: 0,
                    ld: rr.len,
                    rows: rr.len,
                    cols: cr.len,
                },
            },
        )?;
        Some(gpu.record_event(h2d)?)
    } else {
        None
    };
    Ok(StagedTile {
        mat: DevMatRef {
            buf,
            offset: 0,
            ld: rr.len,
        },
        ready,
        slot: Some(slot),
    })
}

/// Runs `C ← α·A·B + β·C` under the cuBLASXt policy with tiling size
/// `tile` (the library's `cublasXtSetBlockDim` parameter).
///
/// # Errors
///
/// Dimension mismatches and simulator failures.
pub fn gemm<T: SimScalar>(
    gpu: &mut Gpu,
    alpha: f64,
    a: MatOperand<T>,
    b: MatOperand<T>,
    beta: f64,
    c: MatOperand<T>,
    tile: usize,
) -> Result<BaselineResult<Matrix<T>>, RuntimeError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c.rows() != m || c.cols() != n {
        return Err(RuntimeError::DimensionMismatch {
            what: format!(
                "cublasxt gemm: A {m}x{k}, B {kb}x{n}, C {}x{}",
                c.rows(),
                c.cols()
            ),
        });
    }
    if tile == 0 {
        return Err(RuntimeError::DimensionMismatch {
            what: "tiling size must be positive".to_owned(),
        });
    }
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let st_a = stage(gpu, a);
    let st_b = stage(gpu, b);
    let st_c = stage(gpu, c);
    let h2d = gpu.create_stream();
    let exec = gpu.create_stream();
    let d2h = gpu.create_stream();
    let t0 = gpu.now();
    let elems = tile * tile;
    let mut a_ring = Ring::new(INPUT_RING, elems);
    let mut b_ring = Ring::new(INPUT_RING, elems);
    let mut c_ring = Ring::new(OUTPUT_RING, elems);
    let mut subkernels = 0usize;
    let row_tiles = split(m, tile);
    let col_tiles = split(n, tile);
    let depth_tiles = split(k, tile);
    // Per-(i,j) write-back event: the next re-fetch of that C tile must not
    // start before the previous round trip's d2h landed.
    let mut c_written: std::collections::HashMap<(usize, usize), cocopelia_gpusim::EventId> =
        std::collections::HashMap::new();

    for (p, &kp) in depth_tiles.iter().enumerate() {
        for (i, &ri) in row_tiles.iter().enumerate() {
            for (j, &cj) in col_tiles.iter().enumerate() {
                // Re-fetch C every sub-kernel (after step 0 the partial
                // result lives on the host again). β = 0 skips only the
                // very first fetch.
                let fetch_c_now = p > 0 || beta != 0.0;
                if let Some(ev) = c_written.get(&(i, j)) {
                    if st_c.host.is_some() {
                        gpu.wait_event(h2d, *ev)?;
                    }
                }
                let c_t = fetch_tile::<T>(gpu, h2d, &st_c, &mut c_ring, ri, cj, fetch_c_now, exec)?;
                if let Some(ev) = c_t.ready {
                    gpu.wait_event(exec, ev)?;
                }
                // No reuse: A and B tiles re-fetched for every sub-kernel.
                let a_t = fetch_tile::<T>(gpu, h2d, &st_a, &mut a_ring, ri, kp, true, exec)?;
                let b_t = fetch_tile::<T>(gpu, h2d, &st_b, &mut b_ring, kp, cj, true, exec)?;
                for ev in [a_t.ready, b_t.ready].into_iter().flatten() {
                    gpu.wait_event(exec, ev)?;
                }
                gpu.launch_kernel(
                    exec,
                    KernelShape::Gemm {
                        dtype: T::DTYPE,
                        m: ri.len,
                        n: cj.len,
                        k: kp.len,
                    },
                    Some(KernelArgs::Gemm {
                        alpha,
                        beta: if p == 0 { beta } else { 1.0 },
                        a: a_t.mat,
                        b: b_t.mat,
                        c: c_t.mat,
                    }),
                )?;
                subkernels += 1;
                let after_kernel = gpu.record_event(exec)?;
                if let Some(s) = a_t.slot {
                    a_ring.mark(s, after_kernel);
                }
                if let Some(s) = b_t.slot {
                    b_ring.mark(s, after_kernel);
                }
                if let Some(host) = st_c.host {
                    gpu.wait_event(d2h, after_kernel)?;
                    gpu.memcpy_d2h_async(
                        d2h,
                        CopyDesc {
                            host,
                            host_region: Region2d {
                                offset: ri.start + cj.start * st_c.rows,
                                ld: st_c.rows,
                                rows: ri.len,
                                cols: cj.len,
                            },
                            dev: c_t.mat.buf,
                            dev_region: Region2d {
                                offset: c_t.mat.offset,
                                ld: c_t.mat.ld,
                                rows: ri.len,
                                cols: cj.len,
                            },
                        },
                    )?;
                    let wb = gpu.record_event(d2h)?;
                    c_written.insert((i, j), wb);
                    if let Some(s) = c_t.slot {
                        c_ring.mark(s, wb);
                    }
                }
            }
        }
    }

    gpu.synchronize()?;
    let elapsed = gpu.now().saturating_since(t0);
    for ring in [a_ring, b_ring, c_ring] {
        ring.release(gpu)?;
    }
    let c_out = match st_c.host {
        Some(host) => {
            let buf = gpu.take_host(host)?;
            buf.payload
                .is_functional()
                .then(|| Matrix::from_vec(m, n, T::payload_into_vec(buf.payload)))
        }
        None => None,
    };
    for st in [st_a, st_b] {
        if let Some(h) = st.host {
            gpu.take_host(h)?;
        }
    }
    Ok(BaselineResult {
        output: c_out,
        elapsed,
        flops,
        subkernels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, EngineKind, ExecMode, NoiseSpec, TestbedSpec};
    use cocopelia_hostblas::{level3, validate};

    fn quiet() -> TestbedSpec {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        tb
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn numerically_correct() {
        let (m, n, k) = (40, 30, 50);
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        let c = rand_matrix(m, n, 3);
        let mut expect = c.clone();
        level3::gemm(1.2, &a.view(), &b.view(), 0.8, &mut expect.view_mut());

        let mut gpu = Gpu::new(quiet(), ExecMode::Functional, 1);
        let res = gemm::<f64>(
            &mut gpu,
            1.2,
            MatOperand::Host(a),
            MatOperand::Host(b),
            0.8,
            MatOperand::Host(c),
            16,
        )
        .expect("runs");
        let got = res.output.expect("functional");
        assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
            "err {}",
            validate::max_rel_err(got.as_slice(), expect.as_slice())
        );
        assert_eq!(gpu.device_mem_used(), 0);
    }

    #[test]
    fn ring_reuse_is_numerically_safe_on_deep_problems() {
        // More sub-kernels than ring slots: correctness depends on the
        // ring's event discipline.
        let (m, n, k) = (24, 24, 96);
        let a = rand_matrix(m, k, 11);
        let b = rand_matrix(k, n, 12);
        let c = rand_matrix(m, n, 13);
        let mut expect = c.clone();
        level3::gemm(1.0, &a.view(), &b.view(), 1.0, &mut expect.view_mut());

        let mut gpu = Gpu::new(quiet(), ExecMode::Functional, 2);
        let res = gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::Host(a),
            MatOperand::Host(b),
            1.0,
            MatOperand::Host(c),
            8,
        )
        .expect("runs");
        let got = res.output.expect("functional");
        assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
            "err {}",
            validate::max_rel_err(got.as_slice(), expect.as_slice())
        );
    }

    #[test]
    fn refetches_tiles_every_subkernel() {
        let n = 64;
        let t = 16;
        let mut gpu = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        let res = gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::HostGhost { rows: n, cols: n },
            MatOperand::HostGhost { rows: n, cols: n },
            1.0,
            MatOperand::HostGhost { rows: n, cols: n },
            t,
        )
        .expect("runs");
        // 4x4x4 = 64 subkernels, each round-tripping A, B and C tiles:
        // 3 h2d tiles per sub-kernel, 1 d2h tile per sub-kernel.
        assert_eq!(res.subkernels, 64);
        let h2d_bytes = gpu.trace().bytes_moved(EngineKind::CopyH2d);
        assert_eq!(h2d_bytes, 64 * 3 * t * t * 8);
        let d2h_bytes = gpu.trace().bytes_moved(EngineKind::CopyD2h);
        assert_eq!(d2h_bytes, 64 * t * t * 8);
    }

    #[test]
    fn device_memory_stays_bounded_by_rings() {
        let n = 2048;
        let t = 256; // 8x8x8 = 512 subkernels
        let mut gpu = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::HostGhost { rows: n, cols: n },
            MatOperand::HostGhost { rows: n, cols: n },
            1.0,
            MatOperand::HostGhost { rows: n, cols: n },
            t,
        )
        .expect("runs");
        assert_eq!(gpu.device_mem_used(), 0);
        // Peak usage during the run was at most the ring capacity.
        let ring_bytes = (2 * INPUT_RING + OUTPUT_RING) * t * t * 8;
        assert!(
            ring_bytes < 16 * 1024 * 1024,
            "rings stay small: {ring_bytes}"
        );
    }

    #[test]
    fn transfers_more_than_reuse_volume() {
        let n = 512;
        let t = 128;
        let mut gpu = Gpu::new(quiet(), ExecMode::TimingOnly, 1);
        gemm::<f64>(
            &mut gpu,
            1.0,
            MatOperand::HostGhost { rows: n, cols: n },
            MatOperand::HostGhost { rows: n, cols: n },
            1.0,
            MatOperand::HostGhost { rows: n, cols: n },
            t,
        )
        .expect("runs");
        let xt_bytes = gpu.trace().bytes_moved(EngineKind::CopyH2d);
        // A reuse scheduler would move exactly 3 matrices' worth.
        assert!(xt_bytes > 3 * n * n * 8, "{xt_bytes}");
    }
}
