//! The BLASX scheduling policy: a runtime tile-management engine *with*
//! data reuse (§II-B2), but a **static** tiling size selected at compile
//! time — the paper's comparisons use its default `T = 2048`.
//!
//! The reuse machinery is identical to the CoCoPeLia scheduler's (that is
//! the point: the paper's gain over BLASX comes from tiling-size selection,
//! not from a different reuse engine), so this policy delegates to
//! `cocopelia-runtime` with a fixed tile and a dummy profile.

use crate::BaselineResult;
use cocopelia_core::profile::SystemProfile;
use cocopelia_core::transfer::{LatBw, TransferModel};
use cocopelia_gpusim::{Gpu, SimScalar};
use cocopelia_hostblas::Matrix;
use cocopelia_runtime::{Cocopelia, GemmRequest, MatOperand, RuntimeError, TileChoice};

/// BLASX's compile-time default tiling size.
pub const BLASX_DEFAULT_TILE: usize = 2048;

/// A BLASX-policy library instance wrapping a device.
#[derive(Debug)]
pub struct Blasx {
    ctx: Cocopelia,
    tile: usize,
}

impl Blasx {
    /// Wraps a device with the default static tiling size (2048).
    pub fn new(gpu: Gpu) -> Self {
        Self::with_tile(gpu, BLASX_DEFAULT_TILE)
    }

    /// Wraps a device with a custom static tiling size.
    pub fn with_tile(gpu: Gpu, tile: usize) -> Self {
        // BLASX never consults a performance model; the profile is inert.
        let dummy = SystemProfile::new(
            "blasx-static",
            TransferModel {
                h2d: LatBw { t_l: 0.0, t_b: 0.0 },
                d2h: LatBw { t_l: 0.0, t_b: 0.0 },
                sl_h2d: 1.0,
                sl_d2h: 1.0,
            },
        );
        Blasx {
            ctx: Cocopelia::new(gpu, dummy),
            tile,
        }
    }

    /// The static tiling size in use.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The wrapped device.
    pub fn gpu(&self) -> &Gpu {
        self.ctx.gpu()
    }

    /// Mutable access to the wrapped device.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        self.ctx.gpu_mut()
    }

    /// Consumes the instance and returns the device.
    pub fn into_gpu(self) -> Gpu {
        self.ctx.into_gpu()
    }

    /// `C ← α·A·B + β·C` under the BLASX policy.
    ///
    /// # Errors
    ///
    /// Dimension mismatches and simulator failures.
    pub fn gemm<T: SimScalar>(
        &mut self,
        alpha: f64,
        a: MatOperand<T>,
        b: MatOperand<T>,
        beta: f64,
        c: MatOperand<T>,
    ) -> Result<BaselineResult<Matrix<T>>, RuntimeError> {
        // BLASX clamps its static tile to the problem when the problem is
        // smaller than the tile (a single-tile schedule).
        let min_dim = a.rows().min(b.cols()).min(a.cols());
        let tile = self.tile.min(min_dim.max(1));
        let out = GemmRequest::new(a, b, c)
            .alpha(alpha)
            .beta(beta)
            .tile(TileChoice::Fixed(tile))
            .run(&mut self.ctx)?;
        Ok(BaselineResult {
            output: out.c,
            elapsed: out.report.elapsed,
            flops: out.report.flops,
            subkernels: out.report.subkernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, EngineKind, ExecMode, NoiseSpec};

    fn quiet_gpu() -> Gpu {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        Gpu::new(tb, ExecMode::TimingOnly, 1)
    }

    #[test]
    fn uses_static_tile() {
        let mut blasx = Blasx::new(quiet_gpu());
        assert_eq!(blasx.tile(), 2048);
        let res = blasx
            .gemm::<f64>(
                1.0,
                MatOperand::HostGhost {
                    rows: 4096,
                    cols: 4096,
                },
                MatOperand::HostGhost {
                    rows: 4096,
                    cols: 4096,
                },
                1.0,
                MatOperand::HostGhost {
                    rows: 4096,
                    cols: 4096,
                },
            )
            .expect("runs");
        assert_eq!(res.subkernels, 8);
    }

    #[test]
    fn reuse_moves_each_tile_once() {
        let mut blasx = Blasx::with_tile(quiet_gpu(), 1024);
        let n = 4096;
        blasx
            .gemm::<f64>(
                1.0,
                MatOperand::HostGhost { rows: n, cols: n },
                MatOperand::HostGhost { rows: n, cols: n },
                1.0,
                MatOperand::HostGhost { rows: n, cols: n },
            )
            .expect("runs");
        let h2d = blasx.gpu().trace().bytes_moved(EngineKind::CopyH2d);
        assert_eq!(h2d, 3 * n * n * 8);
    }

    #[test]
    fn clamps_tile_for_small_problems() {
        let mut blasx = Blasx::new(quiet_gpu());
        let res = blasx
            .gemm::<f64>(
                1.0,
                MatOperand::HostGhost {
                    rows: 512,
                    cols: 512,
                },
                MatOperand::HostGhost {
                    rows: 512,
                    cols: 512,
                },
                0.0,
                MatOperand::HostGhost {
                    rows: 512,
                    cols: 512,
                },
            )
            .expect("runs");
        assert_eq!(res.subkernels, 1);
    }
}
