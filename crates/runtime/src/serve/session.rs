//! The long-lived serving session: construction-time configuration
//! ([`ServeOptions`]) plus the open-arrival lifecycle ([`ServeSession`]).
//!
//! A session is the front door of the serving layer. Where the bare
//! [`Executor`] grew one post-construction setter per feature, a session
//! takes the whole serving configuration up front and exposes exactly the
//! request lifecycle: submit (now or at a future virtual instant), drain,
//! inspect. Closed-queue serving is the degenerate case — submit
//! everything at offset zero and drain — and is bit-identical to the
//! deprecated `Executor::run` path, which now wraps this one.

use crate::error::RequestId;
use crate::multigpu::MultiGpu;
use crate::request::RoutineRequest;
use crate::serve::executor::{
    Executor, ExecutorConfig, HedgeConfig, ProbationConfig, RetryBudgetConfig, ServeReport,
};
use crate::serve::residency::ResidencyCache;
use crate::serve::sched::SchedulePolicy;
use crate::serve::telemetry::{TelemetryConfig, WatchSink, WatchWindow};
use cocopelia_gpusim::SimTime;
use cocopelia_obs::Registry;

/// Construction-time configuration of a [`ServeSession`] (and of
/// [`Executor::with_options`]): scheduling policy, observability arms,
/// and the open-arrival knobs. Replaces the deprecated post-construction
/// setters (`set_policy`, `enable_tracing`, `enable_telemetry`, ...) with
/// a builder consumed once, so a session's behaviour is fixed for its
/// whole lifetime.
///
/// ```
/// use cocopelia_runtime::serve::{SchedulePolicy, ServeOptions};
///
/// let opts = ServeOptions::new()
///     .policy(SchedulePolicy::Predictive)
///     .tracing()
///     .queue_cap(32)
///     .coalesce();
/// ```
#[derive(Default)]
pub struct ServeOptions {
    pub(crate) policy: SchedulePolicy,
    pub(crate) tracing: bool,
    pub(crate) trace_cap: Option<usize>,
    pub(crate) telemetry: Option<TelemetryConfig>,
    pub(crate) watch_sink: Option<WatchSink>,
    pub(crate) snapshot_interval: Option<SimTime>,
    pub(crate) queue_cap: Option<usize>,
    pub(crate) shed_flow_secs: Option<f64>,
    pub(crate) coalesce: bool,
    pub(crate) prefetch: bool,
    pub(crate) hedge: Option<HedgeConfig>,
    pub(crate) probation: Option<ProbationConfig>,
    pub(crate) retry_budget: Option<RetryBudgetConfig>,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("policy", &self.policy)
            .field("tracing", &self.tracing)
            .field("trace_cap", &self.trace_cap)
            .field("telemetry", &self.telemetry)
            .field(
                "watch_sink",
                &self.watch_sink.as_ref().map(|_| "FnMut(&WatchWindow)"),
            )
            .field("snapshot_interval", &self.snapshot_interval)
            .field("queue_cap", &self.queue_cap)
            .field("shed_flow_secs", &self.shed_flow_secs)
            .field("coalesce", &self.coalesce)
            .field("prefetch", &self.prefetch)
            .field("hedge", &self.hedge)
            .field("probation", &self.probation)
            .field("retry_budget", &self.retry_budget)
            .finish()
    }
}

impl ServeOptions {
    /// Defaults: FIFO policy, no tracing, no telemetry, no snapshots, an
    /// unbounded queue, no shed watermark, no coalescing — exactly a bare
    /// `Executor::new`.
    pub fn new() -> Self {
        ServeOptions::default()
    }

    /// Queue-scheduling policy (default [`SchedulePolicy::Fifo`]).
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms request-lifecycle tracing: drains collect a
    /// [`cocopelia_obs::ServeTrace`] into [`ServeReport::trace`]. Tracing
    /// changes no scheduling decision.
    pub fn tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Span capacity cap for long drains (oldest spans dropped past it).
    /// Implies nothing by itself — combine with [`tracing`](Self::tracing)
    /// or [`telemetry`](Self::telemetry); a telemetry config's own
    /// `trace_cap` takes precedence.
    pub fn trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = Some(cap);
        self
    }

    /// Arms streaming telemetry (windowed metrics, SLOs, flight recorder,
    /// optional Perfetto stream). Implies tracing.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Live-watch sink, called once per closed telemetry window. Only
    /// meaningful together with [`telemetry`](Self::telemetry).
    pub fn watch_sink(mut self, sink: impl FnMut(&WatchWindow) + 'static) -> Self {
        self.watch_sink = Some(Box::new(sink));
        self
    }

    /// Periodic drain snapshots every `interval` of virtual time into
    /// [`ServeReport::snapshots`]. Zero disarms.
    pub fn snapshot_interval(mut self, interval: SimTime) -> Self {
        self.snapshot_interval = Some(interval);
        self
    }

    /// Backpressure: an open arrival finding the dispatch queue at this
    /// depth is shed as [`RequestStatus::Rejected`]. Bounds queue memory
    /// — [`ServeReport::peak_queue_depth`] never exceeds the cap.
    /// Closed-queue `submit` calls are not capped (the caller owns that
    /// queue; backpressure governs *arrivals*).
    ///
    /// [`RequestStatus::Rejected`]: crate::serve::RequestStatus::Rejected
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Load-shed watermark: an open arrival whose predicted flow time —
    /// the queued service backlog spread over healthy devices plus the
    /// request's own service estimate — exceeds `secs` is shed instead of
    /// queued, keeping latency bounded under sustained overload.
    pub fn shed_flow_secs(mut self, secs: f64) -> Self {
        self.shed_flow_secs = Some(secs);
        self
    }

    /// Arms request coalescing: an open arrival whose shape is identical
    /// to a *queued* request (same routine, tile choice, scalars, and
    /// shared/ghost operands position by position) rides on that
    /// request's single execution instead of uploading and running again.
    pub fn coalesce(mut self) -> Self {
        self.coalesce = true;
        self
    }

    /// Arms prediction-guided cross-request prefetch: while a request
    /// runs on a device, the next scheduled request's missing shared
    /// operands may be pre-uploaded on that device's idle h2d engine —
    /// but only when the overlap predictor says the upload hides inside
    /// the running attempt's predicted h2d idle time and the bytes fit
    /// the residency cache's free budget without evicting anything.
    /// Prefetched operands stay pinned until their target claims them at
    /// dispatch; an unclaimed prefetch (target rejected, coalesced, or
    /// hedged to another device) is released with accounting.
    pub fn prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Arms hedged re-dispatch: a device attempt whose virtual elapsed
    /// overruns its offload prediction by the adaptive threshold (see
    /// [`HedgeConfig`]) is speculatively re-run on the best other healthy
    /// device; the first completion wins and the loser is cancelled with
    /// its work rolled back. Requires a deployed profile (no prediction,
    /// no overrun). A non-positive multiplier disarms.
    pub fn hedge(mut self, cfg: HedgeConfig) -> Self {
        self.hedge = Some(cfg);
        self
    }

    /// Arms quarantine probation: a quarantined device is periodically
    /// probed with a tiny canary GEMM after a seeded exponential backoff;
    /// [`ProbationConfig::successes`] consecutive clean probes re-admit it
    /// (cold residency cache), and [`ProbationConfig::max_rounds`] failed
    /// rounds give it up for the rest of the session.
    pub fn probation(mut self, cfg: ProbationConfig) -> Self {
        self.probation = Some(cfg);
        self
    }

    /// Arms the per-session retry budget and circuit breaker: each
    /// executor-level retry spends one token from a bucket refilled in
    /// virtual time; an empty bucket opens the breaker and faulted
    /// requests fail fast to host fallback until a cooldown (doubling
    /// while faults persist) half-opens it again.
    pub fn retry_budget(mut self, cfg: RetryBudgetConfig) -> Self {
        self.retry_budget = Some(cfg);
        self
    }
}

/// A long-lived serving session over a [`MultiGpu`] pool.
///
/// The session accepts submissions *while draining*: open arrivals
/// scheduled with [`submit_at`](Self::submit_at) materialise at their
/// virtual instant, interleaved with dispatches and completions inside
/// the drain's event loop, where admission control (footprint ceiling,
/// queue cap, shed watermark, coalescing) runs against the queue state of
/// that moment. [`drain`](Self::drain) runs the loop to quiescence — the
/// session itself stays alive, so a workload can alternate submission
/// phases and drains indefinitely on warm residency caches.
///
/// ```no_run
/// # use cocopelia_runtime::serve::{ExecutorConfig, ServeOptions, ServeSession};
/// # use cocopelia_gpusim::SimTime;
/// # fn demo(pool: cocopelia_runtime::MultiGpu, reqs: Vec<cocopelia_runtime::GemmRequest<f64>>) {
/// let opts = ServeOptions::new().queue_cap(64).coalesce();
/// let mut session = ServeSession::with_options(pool, ExecutorConfig::default(), opts).unwrap();
/// for (i, req) in reqs.into_iter().enumerate() {
///     session.submit_at(req, SimTime::from_nanos(i as u64 * 500_000));
/// }
/// let report = session.drain();
/// println!("{}", report.render());
/// # }
/// ```
#[derive(Debug)]
pub struct ServeSession {
    exec: Executor,
}

impl ServeSession {
    /// A session with default options (see [`ServeOptions::new`]).
    pub fn new(pool: MultiGpu, cfg: ExecutorConfig) -> Self {
        ServeSession {
            exec: Executor::new(pool, cfg),
        }
    }

    /// A session with the full serving configuration applied up front.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when a telemetry stream file cannot be
    /// created.
    pub fn with_options(
        pool: MultiGpu,
        cfg: ExecutorConfig,
        opts: ServeOptions,
    ) -> std::io::Result<Self> {
        Ok(ServeSession {
            exec: Executor::with_options(pool, cfg, opts)?,
        })
    }

    /// Submits a request for the next drain (closed-queue: present from
    /// the drain's first instant). Footprint admission runs immediately.
    pub fn submit(&mut self, req: impl Into<RoutineRequest>) -> RequestId {
        self.exec.submit(req)
    }

    /// Schedules an open arrival `at` virtual time past the next drain's
    /// start; admission control runs at the arrival instant, against the
    /// queue state of that moment.
    pub fn submit_at(&mut self, req: impl Into<RoutineRequest>, at: SimTime) -> RequestId {
        self.exec.submit_at(req, at)
    }

    /// Submits a batch for the next drain, returning the ids in order.
    pub fn submit_all(
        &mut self,
        reqs: impl IntoIterator<Item = impl Into<RoutineRequest>>,
    ) -> Vec<RequestId> {
        reqs.into_iter().map(|r| self.exec.submit(r)).collect()
    }

    /// Runs the drain event loop to quiescence — every queued request and
    /// scheduled arrival reaches a terminal status — and reports the run.
    /// The session remains usable afterwards.
    pub fn drain(&mut self) -> ServeReport {
        self.exec.drain_queue()
    }

    /// Requests waiting for dispatch.
    pub fn queue_len(&self) -> usize {
        self.exec.queue_len()
    }

    /// Open arrivals scheduled but not yet due.
    pub fn pending_arrivals(&self) -> usize {
        self.exec.pending_arrivals()
    }

    /// The session's metrics registry.
    pub fn metrics(&self) -> &Registry {
        self.exec.metrics()
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &MultiGpu {
        self.exec.pool()
    }

    /// The residency cache of device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn residency(&self, d: usize) -> &ResidencyCache {
        self.exec.residency(d)
    }

    /// Devices currently quarantined, in index order.
    pub fn quarantined(&self) -> Vec<usize> {
        self.exec.quarantined()
    }

    /// The active queue-scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.exec.policy()
    }

    /// The underlying executor (escape hatch for advanced inspection).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The underlying executor, mutably.
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.exec
    }

    /// Consumes the session and returns the executor.
    pub fn into_executor(self) -> Executor {
        self.exec
    }
}
