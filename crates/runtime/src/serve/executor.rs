//! The queued request executor: admission, dispatch, residency, retry.

use crate::ctx::{Cocopelia, RoutineReport};
use crate::error::{FaultClass, RequestError, RequestId, RuntimeError};
use crate::multigpu::MultiGpu;
use crate::operand::{MatOperand, TileChoice, VecOperand};
use crate::request::{GemmRequest, MatArg, RoutineRequest, SharedOperandSpec, VecArg};
use crate::serve::residency::{ResidencyCache, ResidentHandle};
use crate::serve::sched::SchedulePolicy;
use crate::serve::session::ServeOptions;
use crate::serve::telemetry::{
    Telemetry, TelemetryConfig, TelemetryReport, TickState, WatchWindow,
};
use crate::serve::trace::ServeTracer;
use cocopelia_core::models::Prediction;
use cocopelia_gpusim::{
    DevBufId, EngineKind, HostBufId, OpTag, SimError, SimScalar, SimTime, TraceEntry,
};
use cocopelia_hostblas::Dtype;
use cocopelia_obs::drift::ABS_ERROR_BOUNDS;
use cocopelia_obs::{DriftAccountant, DriftRecord, OverlapStats, Registry, ServeTrace};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;

/// Bucket bounds of the `serve_queue_depth` histogram.
const QUEUE_DEPTH_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Tuning knobs of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    /// Fraction of each device's memory reserved for the cross-request
    /// residency cache.
    pub residency_frac: f64,
    /// Admission ceiling: a request whose worst-case footprint exceeds
    /// this fraction of device memory is rejected at submission.
    pub admission_frac: f64,
    /// Retry requests after transient device failures (out-of-memory,
    /// injected faults), reclaiming the device in between. When false,
    /// [`max_retries`](ExecutorConfig::max_retries) is ignored and every
    /// fault is terminal for its request.
    pub retry_transient: bool,
    /// Request-level retry budget: how many times one request may be
    /// re-attempted (on the same device after reclaim, or re-dispatched to
    /// a healthy device after a quarantine) before it fails.
    pub max_retries: u32,
    /// Consecutive faults on one device before the executor quarantines
    /// it: the device stops receiving work and its residency cache is
    /// invalidated.
    pub quarantine_after: u32,
    /// Host-BLAS throughput (GFLOP/s) assumed for graceful degradation:
    /// when every device in the pool is quarantined, requests complete on
    /// the host at this rate instead of failing.
    pub host_gflops: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            residency_frac: 0.5,
            admission_frac: 0.9,
            retry_transient: true,
            max_retries: 3,
            quarantine_after: 2,
            host_gflops: 50.0,
        }
    }
}

/// Hedged re-dispatch configuration (see
/// [`ServeOptions::hedge`](crate::serve::ServeOptions::hedge)).
///
/// When a dispatch attempt's virtual elapsed time exceeds its offload
/// prediction (missing-operand upload plus
/// [`SystemProfile::predict_offload`](cocopelia_core::SystemProfile::predict_offload))
/// by an adaptive multiplier, the executor speculatively re-dispatches
/// the same request to the best *other* healthy device, starting at the
/// virtual instant the overrun threshold was crossed. First completion
/// wins; the loser is cancelled ([`cocopelia_gpusim::Gpu::cancel_to`])
/// and its buffers freed, so device time, flops, and uploads are counted
/// exactly once. The multiplier adapts to the drift accountant's observed
/// error distribution — see [`Executor::hedge_decision_for_bench`] for
/// the exact decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Base overrun multiplier on the predicted attempt time before a
    /// hedge fires; `1.5` hedges attempts running 50% past prediction.
    /// Widened at runtime by the p95 observed prediction error (and
    /// doubled while fewer than [`HEDGE_WARMUP`] drift records exist).
    pub multiplier: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig { multiplier: 1.5 }
    }
}

/// Drift records required before the adaptive hedge threshold trusts the
/// observed error distribution; below this the base multiplier is doubled
/// (cold start: hedging on a wild early estimate wastes a device).
pub const HEDGE_WARMUP: usize = 8;

/// Quarantine probation configuration (see
/// [`ServeOptions::probation`](crate::serve::ServeOptions::probation)).
///
/// A quarantined device is not necessarily dead — a link
/// [`DegradeWindow`](cocopelia_gpusim::DegradeWindow) ends, a fault storm
/// passes. Probation schedules tiny canary GEMMs after a seeded backoff:
/// enough consecutive successes re-admit the device (with a cold
/// residency cache — quarantine invalidated it), each failure extends the
/// backoff exponentially, and [`max_rounds`](ProbationConfig::max_rounds)
/// failed rounds retire the device for good.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbationConfig {
    /// Backoff before the first canary probe of a freshly quarantined
    /// device; doubled per failed probe round.
    pub backoff: SimTime,
    /// Consecutive probe successes that re-admit the device.
    pub successes: u32,
    /// Failed probe rounds before the executor stops probing the device
    /// (it stays quarantined for good).
    pub max_rounds: u32,
    /// Seed of the deterministic backoff jitter that de-synchronises
    /// probes of devices quarantined at the same instant.
    pub seed: u64,
}

impl Default for ProbationConfig {
    fn default() -> Self {
        ProbationConfig {
            backoff: SimTime::from_secs_f64(5e-3),
            successes: 2,
            max_rounds: 6,
            seed: 0,
        }
    }
}

/// Retry-budget / circuit-breaker configuration (see
/// [`ServeOptions::retry_budget`](crate::serve::ServeOptions::retry_budget)).
///
/// Replaces unbounded per-request retry appetite with a *session-wide*
/// token bucket: every executor-level retry spends a token (refilled at a
/// rate in virtual time), and when the bucket runs dry the circuit
/// breaker opens — further faults fail fast to host fallback instead of
/// burning device time on a sustained fault storm. After the cooldown
/// (or when a probation canary re-admits a device) the breaker half-opens
/// and one trial retry decides: success closes it, another fault reopens
/// it with a doubled cooldown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Token-bucket capacity: executor-level retries the session may
    /// spend before the breaker opens.
    pub tokens: f64,
    /// Bucket refill rate in tokens per virtual second.
    pub refill_per_sec: f64,
    /// How long the breaker stays open after the bucket empties; doubles
    /// every time a half-open trial faults again.
    pub cooldown: SimTime,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            tokens: 8.0,
            refill_per_sec: 2.0,
            cooldown: SimTime::from_secs_f64(0.05),
        }
    }
}

/// Probation schedule of one quarantined device.
#[derive(Debug, Clone, Copy)]
struct DeviceProbe {
    /// Raw virtual instant (device-clock axis) the next canary runs.
    next_due_ns: u64,
    /// Probe successes since the last failure.
    consecutive_ok: u32,
    /// Failed probe rounds so far (drives the exponential backoff).
    round: u32,
}

/// Circuit-breaker state of the session retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Breaker {
    /// Retries flow normally, spending tokens.
    Closed,
    /// The bucket emptied: retries fail fast to host fallback until the
    /// cooldown expires.
    Open {
        /// Raw virtual instant the cooldown ends.
        until_ns: u64,
    },
    /// The cooldown expired (or a probe re-admitted a device): the next
    /// retry runs as a trial — success closes the breaker, another fault
    /// reopens it with a doubled cooldown.
    HalfOpen,
}

/// Live state of the session retry budget.
#[derive(Debug, Clone, Copy)]
struct BudgetState {
    cfg: RetryBudgetConfig,
    tokens: f64,
    last_refill_ns: u64,
    cooldown_ns: u64,
    breaker: Breaker,
}

impl BudgetState {
    fn new(cfg: RetryBudgetConfig) -> Self {
        BudgetState {
            cfg,
            tokens: cfg.tokens.max(0.0),
            last_refill_ns: 0,
            cooldown_ns: cfg.cooldown.as_nanos().max(1),
            breaker: Breaker::Closed,
        }
    }
}

/// SplitMix64 mix — the deterministic probe-backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The canary probe request of quarantine probation: the smallest GEMM of
/// the exec tables (256³ at a fixed 256 tile — one subkernel), on ghost
/// operands so it touches no residency state.
fn canary_request() -> RoutineRequest {
    GemmRequest::<f64>::new(
        MatOperand::HostGhost {
            rows: 256,
            cols: 256,
        },
        MatOperand::HostGhost {
            rows: 256,
            cols: 256,
        },
        MatOperand::HostGhost {
            rows: 256,
            cols: 256,
        },
    )
    .tile(TileChoice::Fixed(256))
    .into()
}

/// Result of the retroactive hedge race run after a successful primary
/// attempt (see `Executor::maybe_hedge`).
enum HedgeOutcome {
    /// No hedge fired (disarmed, no estimate, no overrun, or no healthy
    /// peer free early enough); the caller owns all span bookkeeping.
    NotLaunched,
    /// A hedge ran but lost or faulted; the primary result stands and the
    /// attempt/hedge/cancel spans are already recorded.
    PrimaryStands,
    /// The hedge won: the primary was cancelled; the request completes
    /// with this report, on this device, at this raw virtual instant.
    Won(Box<RoutineReport>, usize, u64),
}

/// Terminal state of a served request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestStatus {
    /// The routine ran to completion within its deadline (if any).
    Completed(RoutineReport),
    /// Admission control refused the request at submission.
    Rejected {
        /// Why the request was not admitted.
        reason: String,
    },
    /// The routine ran but blew its virtual-time budget.
    TimedOut {
        /// The request's budget in virtual seconds.
        deadline: f64,
        /// The request's *flow time* in virtual seconds: the serving
        /// device's clock at completion measured from the start of the
        /// drain, so queueing delay behind other requests counts.
        elapsed: f64,
        /// The report of the (late) run.
        report: Box<RoutineReport>,
    },
    /// The routine failed; transient failures have already been retried.
    Failed(RequestError),
}

/// One request's terminal record.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The id assigned at submission.
    pub id: RequestId,
    /// Canonical routine name.
    pub routine: &'static str,
    /// Device the request ran on (`None` when rejected at submission).
    pub device: Option<usize>,
    /// How the request terminated.
    pub status: RequestStatus,
    /// Times the request was re-attempted after a fault (0 on a clean
    /// first run).
    pub retries: u32,
    /// True when the request completed on the host because every device
    /// in the pool was quarantined (graceful degradation).
    pub host_fallback: bool,
    /// True when the request never executed itself: it coalesced onto an
    /// identical queued request whose single execution fed both. Its
    /// report is a copy of the leader's, and work accounting
    /// ([`ServeReport::total_flops`]) counts the execution once.
    pub coalesced: bool,
}

impl RequestOutcome {
    /// The completed report, when the request completed.
    pub fn report(&self) -> Option<&RoutineReport> {
        match &self.status {
            RequestStatus::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// The report of any run that executed, completed *or* timed out: a
    /// timed-out request still did its device work, so its report counts
    /// toward work accounting even though the result missed its budget.
    pub fn executed_report(&self) -> Option<&RoutineReport> {
        match &self.status {
            RequestStatus::Completed(r) => Some(r),
            RequestStatus::TimedOut { report, .. } => Some(report),
            _ => None,
        }
    }
}

/// One periodic interval sample of the executor's state during a drain
/// (see [`Executor::set_snapshot_interval`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Virtual time of the sample, measured from the start of the drain.
    pub at: SimTime,
    /// Requests still waiting for dispatch.
    pub queue_depth: usize,
    /// Each device's clock advance since the drain began.
    pub device_clock: Vec<SimTime>,
    /// Mean absolute relative error of the scheduler's offload
    /// predictions recorded so far; `NaN`-free `0.0` when none exist yet.
    pub mean_abs_drift: f64,
}

/// Aggregate result of draining the executor queue once.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Terminal records: submission-time rejections first (in submit
    /// order), then served requests in dispatch order.
    pub outcomes: Vec<RequestOutcome>,
    /// Virtual makespan of the run: the busiest device's elapsed time.
    pub makespan: SimTime,
    /// Per-device busy time over the run.
    pub per_device_busy: Vec<SimTime>,
    /// Useful floating-point operations executed *on devices*: completed
    /// and timed-out runs (a timed-out run still did its device work and
    /// inflated the makespan, so it must count toward throughput).
    /// Host-fallback work is excluded — see
    /// [`host_flops`](ServeReport::host_flops).
    pub total_flops: f64,
    /// Useful floating-point operations of host-fallback runs. Host work
    /// advances no device clock, so mixing it into
    /// [`total_flops`](ServeReport::total_flops) would credit the
    /// device-only makespan with work no device did.
    pub host_flops: f64,
    /// Wall time host-fallback runs took (outside the device makespan).
    pub host_time: SimTime,
    /// Devices quarantined by the end of the run, in index order.
    pub quarantined: Vec<usize>,
    /// Predicted-vs-actual drift of the scheduler's per-dispatch offload
    /// predictions, when the deployed profile could predict the requests.
    pub drift: DriftAccountant,
    /// Snapshot of the executor's metrics registry after the run.
    pub metrics: Registry,
    /// Periodic interval samples of the drain, when
    /// [`Executor::set_snapshot_interval`] armed them.
    pub snapshots: Vec<ServeSnapshot>,
    /// The request-lifecycle trace of the drain, when
    /// [`Executor::enable_tracing`] armed it.
    pub trace: Option<ServeTrace>,
    /// Spans dropped from [`trace`](ServeReport::trace) by the span
    /// capacity cap ([`Executor::enable_tracing_with_cap`]); `0` when
    /// tracing was uncapped or nothing overflowed.
    pub trace_dropped: u64,
    /// Streaming telemetry summary (windows, SLO breaches, flight-recorder
    /// dumps), when [`Executor::enable_telemetry`] armed it.
    pub telemetry: Option<TelemetryReport>,
    /// Deepest the dispatch queue got during the drain — with a
    /// [`ServeOptions::queue_cap`] this never exceeds the cap, the
    /// bounded-memory guarantee of backpressure.
    pub peak_queue_depth: usize,
}

impl ServeReport {
    /// Number of outcomes in the given terminal state.
    fn count(&self, pred: impl Fn(&RequestStatus) -> bool) -> usize {
        self.outcomes.iter().filter(|o| pred(&o.status)).count()
    }

    /// Completed requests.
    pub fn completed(&self) -> usize {
        self.count(|s| matches!(s, RequestStatus::Completed(_)))
    }

    /// Requests refused at submission.
    pub fn rejected(&self) -> usize {
        self.count(|s| matches!(s, RequestStatus::Rejected { .. }))
    }

    /// Requests that blew their deadline.
    pub fn timed_out(&self) -> usize {
        self.count(|s| matches!(s, RequestStatus::TimedOut { .. }))
    }

    /// Requests that failed after any retry.
    pub fn failed(&self) -> usize {
        self.count(|s| matches!(s, RequestStatus::Failed(_)))
    }

    /// Requests that completed on the host after pool-wide quarantine.
    pub fn host_fallbacks(&self) -> usize {
        self.outcomes.iter().filter(|o| o.host_fallback).count()
    }

    /// Requests that coalesced onto an identical queued request.
    pub fn coalesced(&self) -> usize {
        self.outcomes.iter().filter(|o| o.coalesced).count()
    }

    /// Aggregate throughput of *device* work over the device makespan, in
    /// GFLOP/s: [`total_flops`](ServeReport::total_flops) per second of
    /// [`makespan`](ServeReport::makespan). Host-fallback work is excluded
    /// from both numerator and denominator — when the whole pool
    /// quarantines this reports `0`, not a division of host flops by a
    /// near-zero device makespan.
    pub fn throughput_gflops(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs > 0.0 {
            self.total_flops / secs / 1e9
        } else {
            0.0
        }
    }

    /// Mean device utilisation over the makespan, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        let span = self.makespan.as_secs_f64();
        if span <= 0.0 || self.per_device_busy.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.per_device_busy.iter().map(|t| t.as_secs_f64()).sum();
        busy / (span * self.per_device_busy.len() as f64)
    }

    /// Human-readable summary: per-request lines plus aggregates.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            let dev = match o.device {
                Some(d) => format!("dev{d}"),
                None if o.host_fallback => "host".to_owned(),
                None => "-".to_owned(),
            };
            let retried = if o.retries > 0 {
                format!(" (retries={})", o.retries)
            } else if o.coalesced {
                " (coalesced)".to_owned()
            } else {
                String::new()
            };
            match &o.status {
                RequestStatus::Completed(r) => {
                    // Host runs never tiled, so rendering their fabricated
                    // `tile: 0` as a real tiling size would be misleading.
                    let tile = if o.host_fallback {
                        "-".to_owned()
                    } else {
                        r.tile.to_string()
                    };
                    let _ = writeln!(
                        out,
                        "{:<8} {:<6} {:<5} completed  T={tile:<5} {:>9.3} ms {:>8.1} GF/s{retried}",
                        o.id.to_string(),
                        o.routine,
                        dev,
                        r.elapsed.as_secs_f64() * 1e3,
                        r.gflops(),
                    );
                }
                RequestStatus::Rejected { reason } => {
                    let _ = writeln!(
                        out,
                        "{:<8} {:<6} {:<5} rejected   {reason}",
                        o.id.to_string(),
                        o.routine,
                        dev
                    );
                }
                RequestStatus::TimedOut {
                    deadline, elapsed, ..
                } => {
                    let _ = writeln!(
                        out,
                        "{:<8} {:<6} {:<5} timed-out  {:.3} ms > {:.3} ms budget{retried}",
                        o.id.to_string(),
                        o.routine,
                        dev,
                        elapsed * 1e3,
                        deadline * 1e3,
                    );
                }
                RequestStatus::Failed(e) => {
                    let _ = writeln!(
                        out,
                        "{:<8} {:<6} {:<5} failed     {e}{retried}",
                        o.id.to_string(),
                        o.routine,
                        dev
                    );
                }
            }
        }
        let coalesced = if self.coalesced() > 0 {
            format!(" coalesced {}", self.coalesced())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "requests {} | completed {} rejected {} timed-out {} failed {}{coalesced}",
            self.outcomes.len(),
            self.completed(),
            self.rejected(),
            self.timed_out(),
            self.failed(),
        );
        let _ = writeln!(
            out,
            "makespan {:.3} ms | throughput {:.1} GFLOP/s | occupancy {:.1}%",
            self.makespan.as_secs_f64() * 1e3,
            self.throughput_gflops(),
            self.occupancy() * 1e2,
        );
        if !self.quarantined.is_empty() || self.host_fallbacks() > 0 {
            let devs: Vec<String> = self.quarantined.iter().map(|d| format!("dev{d}")).collect();
            let host = if self.host_fallbacks() > 0 {
                format!(
                    " ({:.2} GFLOP in {:.3} ms on host)",
                    self.host_flops / 1e9,
                    self.host_time.as_secs_f64() * 1e3,
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "quarantined [{}] | host fallbacks {}{host}",
                devs.join(", "),
                self.host_fallbacks(),
            );
        }
        if !self.drift.records().is_empty() {
            out.push_str(&self.drift.render());
        }
        if !self.snapshots.is_empty() {
            let _ = writeln!(out, "interval snapshots:");
            for s in &self.snapshots {
                let clocks: Vec<String> = s
                    .device_clock
                    .iter()
                    .map(|c| format!("{:.3}", c.as_secs_f64() * 1e3))
                    .collect();
                let _ = writeln!(
                    out,
                    "  t={:>9.3} ms  queue={:<4}  clocks=[{}] ms  drift={:.3}",
                    s.at.as_secs_f64() * 1e3,
                    s.queue_depth,
                    clocks.join(", "),
                    s.mean_abs_drift,
                );
            }
        }
        if self.trace_dropped > 0 {
            let kept = self.trace.as_ref().map(|t| t.spans.len()).unwrap_or(0);
            let _ = writeln!(
                out,
                "trace capped: {} oldest spans dropped ({kept} kept)",
                self.trace_dropped,
            );
        }
        if let Some(tele) = &self.telemetry {
            out.push_str(&tele.render());
        }
        out
    }
}

/// The request-serving executor over a [`MultiGpu`] pool.
///
/// Lifecycle: [`submit`](Self::submit) requests (admission happens here),
/// then [`run`](Self::run) to drain the queue through the configured
/// [`SchedulePolicy`] (FIFO by default; see
/// [`set_policy`](Self::set_policy)). Under FIFO and EDF each request is
/// pulled by the device with the lowest estimated ready time: its virtual
/// clock plus the estimated upload time of the request's shared operands
/// it does not hold resident. Residency affinity therefore wins only
/// while the affine device's clock lead stays below the re-upload cost —
/// a device that falls further behind loses the work to an idle peer
/// instead of serialising the whole trace. The predictive policy extends
/// the same ready-time estimate with the model-predicted offload time
/// from each device's deployed profile and schedules longest-first to
/// minimise the pool makespan.
#[derive(Debug)]
pub struct Executor {
    pool: MultiGpu,
    residency: Vec<ResidencyCache>,
    cfg: ExecutorConfig,
    policy: SchedulePolicy,
    queue: VecDeque<(RequestId, RoutineRequest)>,
    outcomes: Vec<RequestOutcome>,
    metrics: Registry,
    drift: DriftAccountant,
    next_id: u64,
    /// Devices removed from dispatch after repeated faults or loss.
    quarantined: Vec<bool>,
    /// Consecutive faults per device; reset by any successful request.
    fault_streak: Vec<u32>,
    /// Hedge-informed dispatch penalty, virtual seconds: a device whose
    /// attempt overran its prediction carries the observed excess as
    /// extra ready time, so dispatch stops feeding a straggler that a
    /// winning hedge keeps rewinding to an attractive clock. Cleared by
    /// any attempt that completes within its hedge threshold and on
    /// quarantine/re-admission. Stays all-zero unless hedging is armed.
    suspicion_secs: Vec<f64>,
    /// Request-lifecycle span collector, armed by
    /// [`enable_tracing`](Self::enable_tracing).
    tracer: Option<ServeTracer>,
    /// Per-device trace length when the drain began; the run's device
    /// lanes are the entries recorded after these marks.
    trace_mark: Vec<usize>,
    /// Interval between periodic drain snapshots, armed by
    /// [`set_snapshot_interval`](Self::set_snapshot_interval).
    snapshot_every: Option<SimTime>,
    /// Span-log capacity cap for long drains, armed by
    /// [`enable_tracing_with_cap`](Self::enable_tracing_with_cap).
    trace_cap: Option<usize>,
    /// Streaming telemetry pipeline, armed by
    /// [`enable_telemetry`](Self::enable_telemetry).
    telemetry: Option<Telemetry>,
    /// Open-arrival events not yet due, sorted by arrival offset (virtual
    /// ns past the next drain's start), ties in submission order.
    arrivals: VecDeque<(RequestId, RoutineRequest, u64)>,
    /// Arrival offset (ns past drain start) per open-arrival request id;
    /// closed-queue submissions are absent (offset zero).
    arrival_offset: HashMap<u64, u64>,
    /// Bounded-queue backpressure: an arrival finding the queue at this
    /// depth is shed as [`RequestStatus::Rejected`].
    queue_cap: Option<usize>,
    /// Load-shed watermark: an arrival whose predicted flow time (queue
    /// backlog spread over healthy devices plus its own service estimate)
    /// exceeds this many seconds is shed.
    shed_flow_secs: Option<f64>,
    /// Request coalescing for identical problem shapes (open arrivals
    /// only).
    coalesce: bool,
    /// Coalesce key of each *queued* request that can lead a coalition.
    coalesce_leaders: HashMap<String, RequestId>,
    /// Leader id → requests riding on its execution.
    followers: HashMap<u64, Vec<Follower>>,
    /// Estimated service seconds queued, maintained only while the
    /// flow-time watermark is armed.
    backlog_secs: f64,
    /// Deepest queue observed during the current drain.
    peak_queue: usize,
    /// Hedged re-dispatch of straggling attempts, armed by
    /// [`ServeOptions::hedge`](crate::serve::ServeOptions::hedge).
    hedge: Option<HedgeConfig>,
    /// Quarantine probation (canary probes that re-admit healed devices),
    /// armed by
    /// [`ServeOptions::probation`](crate::serve::ServeOptions::probation).
    probation: Option<ProbationConfig>,
    /// Per-device probe schedule while quarantined under probation.
    probes: Vec<Option<DeviceProbe>>,
    /// Session retry token bucket and circuit breaker, armed by
    /// [`ServeOptions::retry_budget`](crate::serve::ServeOptions::retry_budget).
    budget: Option<BudgetState>,
    /// Cross-request operand prefetch on idle h2d engines, armed by
    /// [`ServeOptions::prefetch`](crate::serve::ServeOptions::prefetch).
    prefetch: bool,
    /// Prefetched operands pinned in residency caches until their target
    /// request claims them at dispatch (or a release path frees them).
    prefetched: Vec<PrefetchEntry>,
    /// Backlog seconds each queued request contributed at admission, so
    /// the dispatch-time decrement returns exactly what admission added
    /// even when residency (and thus the estimate) changed in between.
    backlog_contrib: HashMap<u64, f64>,
}

/// A request coalesced onto a queued leader: it never executes itself,
/// but completes (against its own arrival time and deadline) when the
/// leader does.
#[derive(Debug, Clone)]
struct Follower {
    id: RequestId,
    arrival_ns: u64,
    deadline: Option<f64>,
}

/// One prefetched operand pinned in a device's residency cache until its
/// target request claims it at dispatch (or a release path frees it).
#[derive(Debug, Clone)]
struct PrefetchEntry {
    /// Device holding the prefetched operand.
    device: usize,
    /// Request id the operand was prefetched for.
    target: u64,
    /// Residency key of the operand.
    key: String,
    /// Operand size in bytes.
    bytes: usize,
}

/// One staged prefetch upload: the copy is enqueued on the device's h2d
/// stream but the running attempt's synchronize has not run yet, so the
/// staging ghost cannot be reclaimed and the cache entry cannot be
/// created. `finish_prefetch` settles it after a successful submit.
#[derive(Debug)]
struct StagedPrefetch {
    target: u64,
    key: String,
    dtype: Dtype,
    bytes: usize,
    handle: ResidentHandle,
    host: HostBufId,
}

/// True when a trace entry is a cross-request prefetch copy (tagged with
/// the prefetcher's synthetic [`OpTag`]). Attempt flow accounting filters
/// these out: they belong to the *target* request's lifecycle, recorded
/// as its `Prefetch` span.
fn is_prefetch_entry(e: &TraceEntry) -> bool {
    e.tag.as_ref().is_some_and(|t| t.routine == "prefetch")
}

/// Rejection reason for the footprint admission ceiling — shared by the
/// closed-queue and open-arrival admission paths so the two reject
/// identically.
fn footprint_reason(footprint: usize, limit: usize, frac: f64) -> String {
    format!(
        "footprint {footprint} B exceeds admission limit {limit} B \
         ({:.0}% of device memory)",
        frac * 1e2
    )
}

impl Executor {
    /// Wraps a device pool, carving each device's residency budget out of
    /// its memory capacity per `cfg`.
    pub fn new(pool: MultiGpu, cfg: ExecutorConfig) -> Self {
        let residency = pool
            .devices()
            .iter()
            .map(|dev| {
                let cap = dev.gpu().device_mem_capacity() as f64;
                ResidencyCache::new((cap * cfg.residency_frac.clamp(0.0, 1.0)) as usize)
            })
            .collect();
        let count = pool.device_count();
        Executor {
            pool,
            residency,
            cfg,
            policy: SchedulePolicy::default(),
            queue: VecDeque::new(),
            outcomes: Vec::new(),
            metrics: Registry::new(),
            drift: DriftAccountant::new(),
            next_id: 0,
            quarantined: vec![false; count],
            fault_streak: vec![0; count],
            suspicion_secs: vec![0.0; count],
            tracer: None,
            trace_mark: vec![0; count],
            snapshot_every: None,
            trace_cap: None,
            telemetry: None,
            arrivals: VecDeque::new(),
            arrival_offset: HashMap::new(),
            queue_cap: None,
            shed_flow_secs: None,
            coalesce: false,
            coalesce_leaders: HashMap::new(),
            followers: HashMap::new(),
            backlog_secs: 0.0,
            peak_queue: 0,
            hedge: None,
            probation: None,
            probes: vec![None; count],
            budget: None,
            prefetch: false,
            prefetched: Vec::new(),
            backlog_contrib: HashMap::new(),
        }
    }

    /// Builds an executor with the whole serving configuration applied up
    /// front — scheduling policy, tracing, telemetry, snapshots, and the
    /// open-arrival knobs (queue cap, shed watermark, coalescing). This is
    /// the constructor behind [`ServeSession`](crate::serve::ServeSession)
    /// and replaces the deprecated post-construction setters.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when a telemetry stream file cannot be
    /// created.
    pub fn with_options(
        pool: MultiGpu,
        cfg: ExecutorConfig,
        opts: ServeOptions,
    ) -> std::io::Result<Self> {
        let mut exec = Executor::new(pool, cfg);
        exec.policy = opts.policy;
        if opts.tracing || opts.telemetry.is_some() {
            exec.tracer = Some(ServeTracer::default());
        }
        exec.trace_cap = opts.trace_cap;
        if let Some(tcfg) = opts.telemetry {
            exec.trace_cap = tcfg.trace_cap;
            let mut tele = Telemetry::new(tcfg)?;
            if let Some(sink) = opts.watch_sink {
                tele.set_sink(sink);
            }
            exec.telemetry = Some(tele);
        }
        exec.snapshot_every = opts.snapshot_interval.filter(|t| t.as_nanos() > 0);
        exec.queue_cap = opts.queue_cap;
        exec.shed_flow_secs = opts.shed_flow_secs.filter(|s| *s > 0.0);
        exec.coalesce = opts.coalesce;
        exec.hedge = opts.hedge.filter(|h| h.multiplier > 0.0);
        exec.probation = opts.probation;
        exec.budget = opts.retry_budget.map(BudgetState::new);
        exec.prefetch = opts.prefetch;
        Ok(exec)
    }

    /// Arms request-lifecycle tracing: subsequent [`run`](Self::run) calls
    /// collect a [`ServeTrace`] (spans plus per-device engine lanes) into
    /// [`ServeReport::trace`]. Tracing changes no scheduling decision —
    /// traced and untraced drains of the same trace are identical.
    #[deprecated(note = "configure tracing via ServeOptions::tracing at construction")]
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(ServeTracer::default());
    }

    /// Arms tracing like [`enable_tracing`](Self::enable_tracing) but with
    /// a span capacity cap: once the log exceeds `cap` (plus a 25%
    /// amortisation slack while the drain runs), the oldest spans are
    /// dropped so a long trace cannot grow without bound. The final
    /// [`ServeReport::trace`] holds at most `cap` spans and
    /// [`ServeReport::trace_dropped`] counts the casualties. `None`
    /// uncaps.
    #[deprecated(note = "configure the cap via ServeOptions::tracing + ServeOptions::trace_cap")]
    pub fn enable_tracing_with_cap(&mut self, cap: Option<usize>) {
        self.tracer = Some(ServeTracer::default());
        self.trace_cap = cap;
    }

    /// Arms streaming telemetry: windowed metrics, SLO evaluation, the
    /// span flight recorder, and (when
    /// [`TelemetryConfig::stream_path`] is set) incremental Perfetto
    /// export. Implies tracing — a tracer is armed (with
    /// [`TelemetryConfig::trace_cap`]) if none is active, so the flight
    /// recorder has spans to record. Telemetry only *reads* device
    /// clocks; traced/telemetered and plain drains of the same trace stay
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the stream file cannot be created.
    #[deprecated(note = "configure telemetry via ServeOptions::telemetry at construction")]
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) -> std::io::Result<()> {
        if self.tracer.is_none() {
            self.tracer = Some(ServeTracer::default());
        }
        self.trace_cap = cfg.trace_cap;
        self.telemetry = Some(Telemetry::new(cfg)?);
        Ok(())
    }

    /// Installs the live-watch sink: called once per closed telemetry
    /// window with the rendered [`WatchWindow`]. No-op until
    /// [`enable_telemetry`](Self::enable_telemetry) armed telemetry.
    #[deprecated(note = "configure the sink via ServeOptions::watch_sink at construction")]
    pub fn set_watch_sink(&mut self, sink: Box<dyn FnMut(&WatchWindow)>) {
        if let Some(tele) = self.telemetry.as_mut() {
            tele.set_sink(sink);
        }
    }

    /// Arms periodic drain snapshots: every `interval` of virtual time,
    /// [`run`](Self::run) samples queue depth, per-device clock advance,
    /// and prediction drift into [`ServeReport::snapshots`]. `None`
    /// disarms.
    #[deprecated(note = "configure via ServeOptions::snapshot_interval at construction")]
    pub fn set_snapshot_interval(&mut self, interval: Option<SimTime>) {
        self.snapshot_every = interval.filter(|t| t.as_nanos() > 0);
    }

    /// Policy dispatch pick, exposed for the microbenchmark harness.
    #[doc(hidden)]
    pub fn next_dispatch_for_bench(
        &mut self,
    ) -> Option<(RequestId, RoutineRequest, Option<usize>)> {
        self.next_dispatch()
    }

    /// One open-arrival event step (due-arrival admission plus dispatch
    /// pick), exposed for the microbenchmark harness.
    #[doc(hidden)]
    pub fn next_event_for_bench(&mut self) -> Option<(RequestId, RoutineRequest, Option<usize>)> {
        let start: Vec<SimTime> = self.pool.devices().iter().map(|d| d.gpu().now()).collect();
        self.next_event(&start)
            .map(|(id, req, pref, _)| (id, req, pref))
    }

    /// Sets the queue-scheduling policy for subsequent [`run`](Self::run)
    /// calls (the default is [`SchedulePolicy::Fifo`]).
    #[deprecated(note = "configure the policy via ServeOptions::policy at construction")]
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// The active queue-scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// The wrapped pool.
    pub fn pool(&self) -> &MultiGpu {
        &self.pool
    }

    /// Consumes the executor and returns the pool.
    pub fn into_pool(self) -> MultiGpu {
        self.pool
    }

    /// The executor's metrics registry (counters, gauges, queue depth).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The residency cache of device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn residency(&self, d: usize) -> &ResidencyCache {
        &self.residency[d]
    }

    /// Requests waiting for dispatch.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Devices currently quarantined, in index order.
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(i, &q)| q.then_some(i))
            .collect()
    }

    /// Operationally drains device `d`: quarantines it exactly as a fault
    /// storm would (residency invalidated, allocations released, no new
    /// work), without any fault having occurred. When probation is armed
    /// ([`ProbationConfig`]) the device re-enters service automatically
    /// once its canary probes pass — the maintenance-window workflow: pull
    /// a device, let the prober re-admit it. Without probation the device
    /// stays out until the session ends. Idempotent.
    pub fn force_quarantine(&mut self, d: usize) {
        assert!(d < self.quarantined.len(), "no such device: {d}");
        self.quarantine(d);
    }

    /// Submits a request, returning its id. Admission control runs here: a
    /// request whose worst-case footprint exceeds the configured fraction
    /// of device memory terminates immediately as
    /// [`RequestStatus::Rejected`].
    ///
    /// The limit is computed from the *smallest* device in the pool, so an
    /// admitted request fits whichever device dispatch later picks
    /// ([`MultiGpu`] pools are homogeneous today, making this the only
    /// capacity; a heterogeneous pool stays safe but under-admits).
    pub fn submit(&mut self, req: impl Into<RoutineRequest>) -> RequestId {
        let req = req.into();
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.metrics.counter_add("serve_requests_total", 1);
        let limit = self.admission_limit();
        let footprint = req.footprint_bytes();
        if footprint > limit {
            self.metrics.counter_add("serve_rejected_total", 1);
            self.outcomes.push(RequestOutcome {
                id,
                routine: req.routine(),
                device: None,
                status: RequestStatus::Rejected {
                    reason: footprint_reason(footprint, limit, self.cfg.admission_frac),
                },
                retries: 0,
                host_fallback: false,
                coalesced: false,
            });
            return id;
        }
        self.queue.push_back((id, req));
        self.peak_queue = self.peak_queue.max(self.queue.len());
        // Depth is sampled on admission (and again at each dispatch), so
        // burst arrivals are visible even if the queue drains quickly.
        self.metrics.histogram_observe(
            "serve_queue_depth",
            &QUEUE_DEPTH_BOUNDS,
            self.queue.len() as f64,
        );
        id
    }

    /// Schedules an open arrival: the request materialises `at` virtual
    /// time past the next drain's start, interleaved with dispatches and
    /// completions in the event loop. Admission control — the footprint
    /// ceiling plus, when configured, the bounded-queue cap, the
    /// flow-time shed watermark, and coalescing — runs at the arrival
    /// instant, not here, because it depends on queue state at that
    /// moment. Flow time and deadlines for the request are measured from
    /// its arrival, not from drain start.
    pub fn submit_at(&mut self, req: impl Into<RoutineRequest>, at: SimTime) -> RequestId {
        let req = req.into();
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.metrics.counter_add("serve_requests_total", 1);
        let at_ns = at.as_nanos();
        let pos = self.arrivals.partition_point(|a| a.2 <= at_ns);
        self.arrivals.insert(pos, (id, req, at_ns));
        id
    }

    /// Open arrivals scheduled but not yet due in a drain.
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// The footprint admission ceiling, from the *smallest* device in the
    /// pool so an admitted request fits whichever device dispatch picks.
    fn admission_limit(&self) -> usize {
        let cap = self
            .pool
            .devices()
            .iter()
            .map(|d| d.gpu().device_mem_capacity())
            .min()
            .expect("at least one device");
        (cap as f64 * self.cfg.admission_frac.clamp(0.0, 1.0)) as usize
    }

    /// Estimated h2d time device `d` would spend uploading the shared
    /// operands of `req` it does not hold resident, at the link bandwidth
    /// in effect at the device's current clock — a fault-plan
    /// [`DegradeWindow`](cocopelia_gpusim::DegradeWindow) covering the
    /// instant slows the estimate the same way it slows the copy, so
    /// dispatch stops treating a degraded link as full-rate.
    fn upload_estimate(&self, d: usize, req: &RoutineRequest) -> f64 {
        req.shared_footprints()
            .iter()
            .filter(|(k, _)| !self.residency[d].contains(k))
            .map(|&(_, bytes)| self.effective_h2d_secs(d, bytes))
            .sum()
    }

    /// Estimated h2d transfer time of `bytes` on device `d` at the
    /// *effective* link bandwidth of the device's current clock: the
    /// first fault-plan degrade window covering the instant scales the
    /// bandwidth by its factor, exactly like the engine. With no degrade
    /// windows this returns
    /// [`DirLinkSpec::ideal_time`](cocopelia_gpusim::DirLinkSpec::ideal_time)
    /// bit for bit, so fault-free schedules are unchanged.
    fn effective_h2d_secs(&self, d: usize, bytes: usize) -> f64 {
        let gpu = self.pool.devices()[d].gpu();
        let h2d = gpu.spec().link.h2d;
        let degrade = &gpu.fault_spec().degrade;
        if degrade.is_empty() {
            return h2d.ideal_time(bytes);
        }
        let at = gpu.now().as_secs_f64();
        let factor = degrade
            .iter()
            .find(|w| at >= w.start_s && at < w.end_s)
            .map_or(1.0, |w| w.factor)
            .max(1e-9);
        h2d.latency_s + bytes as f64 / (h2d.bandwidth_bps * factor)
    }

    /// Model-predicted offload time of `req` on device `d`, through the
    /// device's deployed profile
    /// ([`SystemProfile::predict_offload`](cocopelia_core::SystemProfile::predict_offload)).
    /// `None` when the profile cannot predict this routine/precision — the
    /// scheduler then degrades to the upload-plus-clock heuristic.
    fn offload_estimate(&self, d: usize, req: &RoutineRequest) -> Option<Prediction> {
        let (model, tile) = match req.tile_choice() {
            TileChoice::Fixed(t) => (None, Some(t)),
            TileChoice::Model(m) => (Some(m), None),
            TileChoice::Auto => (None, None),
        };
        self.pool.devices()[d]
            .profile()
            .predict_offload(&req.problem_spec(), model, tile)
    }

    /// The healthy device that pulls `req`: lowest estimated ready time —
    /// virtual clock plus the ideal h2d time of the shared operands the
    /// device is missing, plus the hedge-informed straggler penalty —
    /// then lowest index. Residency affinity is thus *bounded*: a device
    /// holding the operands is preferred only while its clock lead over
    /// an idle peer stays below the re-upload cost, so high-reuse traces
    /// still spread across the pool. The straggler penalty matters when
    /// hedging is armed: a winning hedge rewinds the cancelled primary's
    /// clock, which would otherwise keep the degraded device looking
    /// *idle* and attractive; carrying its observed overrun as extra
    /// ready time steers work to healthy peers until the device
    /// demonstrates an on-prediction attempt again. Quarantined devices
    /// never pull work; `None` means the whole pool is quarantined.
    fn choose_device(&self, req: &RoutineRequest) -> Option<usize> {
        self.choose_device_excluding(req, usize::MAX)
    }

    /// [`choose_device`](Self::choose_device) with one device barred —
    /// the hedge-target pick, which must race a *different* device than
    /// the straggling primary attempt.
    fn choose_device_excluding(&self, req: &RoutineRequest, skip: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_cost = f64::INFINITY;
        for i in 0..self.pool.device_count() {
            if i == skip || self.quarantined[i] {
                continue;
            }
            let cost = self.pool.devices()[i].gpu().now().as_secs_f64()
                + self.upload_estimate(i, req)
                + self.suspicion_secs[i];
            if cost < best_cost {
                best = Some(i);
                best_cost = cost;
            }
        }
        best
    }

    /// The queue position the active [`SchedulePolicy`] would dispatch
    /// next, plus the predictive policy's preferred device. Pure: this is
    /// both the dispatch pick ([`next_dispatch`](Self::next_dispatch))
    /// and the prefetcher's peek at the request that will run *after* the
    /// one about to execute. `None` on an empty queue.
    fn select_index(&self) -> Option<(usize, Option<usize>)> {
        if self.queue.is_empty() {
            return None;
        }
        Some(match self.policy {
            SchedulePolicy::Fifo => (0, None),
            SchedulePolicy::Edf => {
                // Earliest deadline wins; deadline-less requests sort to
                // +inf, i.e. after every deadline-carrying one. Strict `<`
                // keeps submission order within equal deadlines.
                let mut best = 0;
                let mut best_dl = f64::INFINITY;
                for (i, (_, r)) in self.queue.iter().enumerate() {
                    let dl = r.deadline().unwrap_or(f64::INFINITY);
                    if dl < best_dl {
                        best = i;
                        best_dl = dl;
                    }
                }
                (best, None)
            }
            SchedulePolicy::Predictive => {
                let healthy: Vec<usize> = (0..self.pool.device_count())
                    .filter(|&i| !self.quarantined[i])
                    .collect();
                if healthy.is_empty() {
                    // Whole pool quarantined: order is irrelevant, every
                    // request degrades to the host.
                    (0, None)
                } else {
                    // Cost each request at its best device (clock + missing
                    // uploads + predicted offload time), then dispatch the
                    // request with the *largest* best-completion first —
                    // longest-processing-time list scheduling, so a
                    // straggler never lands on an already-loaded device at
                    // the tail of the trace. Strict comparisons keep
                    // submission order and lowest device index on ties.
                    let mut pick = 0;
                    let mut pick_completion = f64::NEG_INFINITY;
                    let mut pick_dev = None;
                    for (i, (_, r)) in self.queue.iter().enumerate() {
                        let mut best_dev = healthy[0];
                        let mut best_c = f64::INFINITY;
                        for &d in &healthy {
                            let c = self.pool.devices()[d].gpu().now().as_secs_f64()
                                + self.upload_estimate(d, r)
                                + self.offload_estimate(d, r).map_or(0.0, |p| p.total);
                            if c < best_c {
                                best_dev = d;
                                best_c = c;
                            }
                        }
                        if best_c > pick_completion {
                            pick = i;
                            pick_completion = best_c;
                            pick_dev = Some(best_dev);
                        }
                    }
                    (pick, pick_dev)
                }
            }
        })
    }

    /// Pulls the next request per the active [`SchedulePolicy`], sampling
    /// queue depth (the pulled request included) at dispatch time. The
    /// third element is the predictive policy's preferred device, which
    /// [`dispatch`](Self::dispatch) tries first.
    fn next_dispatch(&mut self) -> Option<(RequestId, RoutineRequest, Option<usize>)> {
        let (idx, preferred) = self.select_index()?;
        self.metrics.histogram_observe(
            "serve_queue_depth",
            &QUEUE_DEPTH_BOUNDS,
            self.queue.len() as f64,
        );
        self.queue.remove(idx).map(|(id, r)| (id, r, preferred))
    }

    /// The drain's event step: admit every arrival due by the current
    /// virtual elapsed, then pull the next dispatch. When the queue is
    /// empty but arrivals remain, virtual admission time jumps forward to
    /// the next arrival instant (the pool is idle; nothing else can
    /// happen first). Returns the dispatch pick plus the request's
    /// arrival offset (ns past drain start; zero for closed-queue
    /// submissions), or `None` when both queue and arrivals are
    /// exhausted.
    fn next_event(
        &mut self,
        start: &[SimTime],
    ) -> Option<(RequestId, RoutineRequest, Option<usize>, u64)> {
        loop {
            let now_ns = self.elapsed_since(start).as_nanos();
            self.admit_due(now_ns, start);
            self.run_due_probes();
            if let Some((id, req, preferred)) = self.next_dispatch() {
                let arrival_ns = self.arrival_offset.get(&id.0).copied().unwrap_or(0);
                if self.coalesce {
                    if let Some(key) = req.coalesce_key() {
                        // Once dispatched the request can no longer absorb
                        // followers — a later identical arrival starts a
                        // fresh coalition.
                        if self.coalesce_leaders.get(&key) == Some(&id) {
                            self.coalesce_leaders.remove(&key);
                        }
                    }
                }
                if self.shed_flow_secs.is_some() {
                    // Return exactly the contribution admission recorded:
                    // re-estimating here would leak residue into the
                    // backlog whenever residency warmed (or cooled) while
                    // the request waited.
                    let est = self.backlog_contrib.remove(&id.0).unwrap_or(0.0);
                    self.backlog_secs = (self.backlog_secs - est).max(0.0);
                }
                return Some((id, req, preferred, arrival_ns));
            }
            let next_at = self.arrivals.front().map(|a| a.2)?;
            self.admit_due(next_at, start);
        }
    }

    /// Admits every scheduled arrival with offset `<= now_ns`, in arrival
    /// order.
    fn admit_due(&mut self, now_ns: u64, start: &[SimTime]) {
        while self.arrivals.front().is_some_and(|a| a.2 <= now_ns) {
            let (id, req, at_ns) = self.arrivals.pop_front().expect("front checked");
            self.admit_arrival(id, req, at_ns, start);
        }
    }

    /// Open-arrival admission at the arrival instant: footprint ceiling,
    /// bounded-queue shed, flow-time watermark shed, coalescing onto a
    /// queued identical request, or enqueue.
    fn admit_arrival(&mut self, id: RequestId, req: RoutineRequest, at_ns: u64, start: &[SimTime]) {
        let t0 = start.iter().map(|t| t.as_nanos()).min().unwrap_or(0);
        let abs_ns = t0 + at_ns;
        self.arrival_offset.insert(id.0, at_ns);
        if let Some(t) = self.tracer.as_mut() {
            t.arrive(id.0, abs_ns);
        }
        let limit = self.admission_limit();
        let footprint = req.footprint_bytes();
        if footprint > limit {
            let reason = footprint_reason(footprint, limit, self.cfg.admission_frac);
            self.shed_arrival(id, &req, abs_ns, reason, false, start);
            return;
        }
        if let Some(cap) = self.queue_cap {
            if self.queue.len() >= cap {
                let reason = format!("queue full: depth {} at cap {cap}", self.queue.len());
                self.shed_arrival(id, &req, abs_ns, reason, true, start);
                return;
            }
        }
        if let Some(watermark) = self.shed_flow_secs {
            let est = self.service_estimate(&req);
            let healthy = self.quarantined.iter().filter(|&&q| !q).count().max(1);
            let predicted = self.backlog_secs / healthy as f64 + est;
            if predicted > watermark {
                let reason = format!(
                    "predicted flow {:.3} ms exceeds shed watermark {:.3} ms",
                    predicted * 1e3,
                    watermark * 1e3
                );
                self.shed_arrival(id, &req, abs_ns, reason, true, start);
                return;
            }
        }
        if self.coalesce {
            if let Some(key) = req.coalesce_key() {
                if let Some(&leader) = self.coalesce_leaders.get(&key) {
                    // Identical shape already queued: ride on its single
                    // execution instead of uploading and running again.
                    self.metrics.counter_add("serve_coalesced_total", 1);
                    if let Some(t) = self.tracer.as_mut() {
                        t.coalesce(id.0, leader.0, abs_ns);
                    }
                    self.followers.entry(leader.0).or_default().push(Follower {
                        id,
                        arrival_ns: at_ns,
                        deadline: req.deadline(),
                    });
                    return;
                }
                self.coalesce_leaders.insert(key, id);
            }
        }
        if self.shed_flow_secs.is_some() {
            let est = self.service_estimate(&req);
            self.backlog_secs += est;
            self.backlog_contrib.insert(id.0, est);
        }
        self.queue.push_back((id, req));
        self.peak_queue = self.peak_queue.max(self.queue.len());
        self.metrics.histogram_observe(
            "serve_queue_depth",
            &QUEUE_DEPTH_BOUNDS,
            self.queue.len() as f64,
        );
    }

    /// Terminates an arrival as [`RequestStatus::Rejected`] at admission.
    /// `backpressure` distinguishes load shedding (queue cap, flow
    /// watermark — counted in `serve_shed_total`) from the static
    /// footprint ceiling.
    fn shed_arrival(
        &mut self,
        id: RequestId,
        req: &RoutineRequest,
        abs_ns: u64,
        reason: String,
        backpressure: bool,
        start: &[SimTime],
    ) {
        self.metrics.counter_add("serve_rejected_total", 1);
        if backpressure {
            self.metrics.counter_add("serve_shed_total", 1);
        }
        if let Some(t) = self.tracer.as_mut() {
            t.reject(id.0, abs_ns, &reason);
        }
        self.outcomes.push(RequestOutcome {
            id,
            routine: req.routine(),
            device: None,
            status: RequestStatus::Rejected { reason },
            retries: 0,
            host_fallback: false,
            coalesced: false,
        });
        let quar_before = if self.telemetry.is_some() {
            self.quarantined.clone()
        } else {
            Vec::new()
        };
        self.telemetry_tick(start, &quar_before);
    }

    /// Service-time estimate of a request for the flow-time shed
    /// watermark: the *best* healthy device's cost — the h2d time of the
    /// shared operands that device is actually missing (residency-aware,
    /// at effective link bandwidth) plus its model offload estimate. A
    /// warm repeat request therefore prices near its compute time instead
    /// of being charged cold uploads it will never perform — the old
    /// residency-blind device-0 pricing spuriously shed exactly the
    /// cheap, cache-friendly traffic the residency layer exists to serve.
    /// When the whole pool is quarantined the estimate falls back to cold
    /// device-0 pricing (the arrival would run on the host; the figure
    /// only feeds the watermark). Residency changes between admission and
    /// dispatch are reconciled through `backlog_contrib`: the backlog
    /// decrement returns exactly what admission added.
    fn service_estimate(&self, req: &RoutineRequest) -> f64 {
        let mut best = f64::INFINITY;
        for d in 0..self.pool.device_count() {
            if self.quarantined[d] {
                continue;
            }
            let cost = self.upload_estimate(d, req)
                + self.offload_estimate(d, req).map_or(0.0, |p| p.total);
            if cost < best {
                best = cost;
            }
        }
        if best.is_finite() {
            return best;
        }
        let h2d = self.pool.devices()[0].gpu().spec().link.h2d;
        let upload: f64 = req
            .shared_footprints()
            .iter()
            .map(|&(_, bytes)| h2d.ideal_time(bytes))
            .sum();
        upload + self.offload_estimate(0, req).map_or(0.0, |p| p.total)
    }

    /// Bumps the terminal-status counter for one outcome.
    fn count_status(&mut self, status: &RequestStatus) {
        match status {
            RequestStatus::Completed(_) => {
                self.metrics.counter_add("serve_completed_total", 1);
            }
            RequestStatus::TimedOut { .. } => {
                self.metrics.counter_add("serve_timed_out_total", 1);
            }
            RequestStatus::Failed(_) => {
                self.metrics.counter_add("serve_failed_total", 1);
            }
            RequestStatus::Rejected { .. } => {}
        }
    }

    /// Completes every follower coalesced onto `leader` at the leader's
    /// completion instant. Each follower gets a copy of the leader's
    /// report judged against the follower's *own* arrival time and
    /// deadline: a follower that arrived later has a shorter flow and may
    /// meet a deadline the leader missed — and vice versa. A failed
    /// leader fails its followers with the same error.
    fn fan_out_followers(&mut self, leader: &RequestOutcome, start: &[SimTime]) {
        let Some(followers) = self.followers.remove(&leader.id.0) else {
            return;
        };
        let end_ns = match leader.device {
            Some(d) if !leader.host_fallback => self.pool.devices()[d].gpu().now().as_nanos(),
            _ => self.tracer.as_ref().map(|t| t.host_now_ns()).unwrap_or(0),
        };
        for f in followers {
            let status = match &leader.status {
                RequestStatus::Completed(r) => self.follower_status(leader, r, &f, start),
                RequestStatus::TimedOut { report, .. } => {
                    self.follower_status(leader, report, &f, start)
                }
                RequestStatus::Failed(e) => RequestStatus::Failed(e.clone()),
                RequestStatus::Rejected { reason } => RequestStatus::Rejected {
                    reason: reason.clone(),
                },
            };
            self.count_status(&status);
            if let Some(t) = self.tracer.as_mut() {
                let label = match &status {
                    RequestStatus::Completed(_) => "completed",
                    RequestStatus::TimedOut { .. } => "timed-out",
                    RequestStatus::Failed(_) => "failed",
                    RequestStatus::Rejected { .. } => "rejected",
                };
                t.complete(f.id.0, end_ns, label);
            }
            self.outcomes.push(RequestOutcome {
                id: f.id,
                routine: leader.routine,
                device: leader.device,
                status,
                retries: 0,
                host_fallback: leader.host_fallback,
                coalesced: true,
            });
            let quar_before = if self.telemetry.is_some() {
                self.quarantined.clone()
            } else {
                Vec::new()
            };
            self.telemetry_tick(start, &quar_before);
        }
    }

    /// Terminal status of one follower given its leader's report: the
    /// follower's flow time (leader completion minus the follower's own
    /// arrival) judged against the follower's own deadline.
    fn follower_status(
        &self,
        leader: &RequestOutcome,
        report: &RoutineReport,
        f: &Follower,
        start: &[SimTime],
    ) -> RequestStatus {
        let flow = match leader.device {
            Some(d) if !leader.host_fallback => {
                let raw = self.pool.devices()[d]
                    .gpu()
                    .now()
                    .saturating_since(start[d]);
                SimTime::from_nanos(raw.as_nanos().saturating_sub(f.arrival_ns)).as_secs_f64()
            }
            _ => report.elapsed.as_secs_f64(),
        };
        match f.deadline {
            Some(dl) if flow > dl => RequestStatus::TimedOut {
                deadline: dl,
                elapsed: flow,
                report: Box::new(report.clone()),
            },
            _ => RequestStatus::Completed(report.clone()),
        }
    }

    /// Drains the queue, dispatching every request to a terminal status,
    /// and reports the run.
    #[deprecated(note = "construct a ServeSession and call drain(); run() is a thin wrapper")]
    pub fn run(&mut self) -> ServeReport {
        self.drain_queue()
    }

    /// Drains queued requests *and* scheduled open arrivals, dispatching
    /// every request to a terminal status, and reports the run. Arrivals
    /// interleave with dispatches in virtual time: before each dispatch
    /// pick, every arrival whose offset the device clocks have passed is
    /// admitted (and possibly shed or coalesced); when the queue is empty
    /// but arrivals remain, admission jumps to the next arrival instant.
    /// With no scheduled arrivals this is exactly the closed-queue drain.
    pub(crate) fn drain_queue(&mut self) -> ServeReport {
        let start: Vec<SimTime> = self.pool.devices().iter().map(|d| d.gpu().now()).collect();
        self.peak_queue = self.queue.len();
        if self.tracer.is_some() {
            self.trace_mark = self
                .pool
                .devices()
                .iter()
                .map(|d| d.gpu().trace().len())
                .collect();
            let t0 = start.iter().map(|t| t.as_nanos()).min().unwrap_or(0);
            let queued: Vec<u64> = self.queue.iter().map(|(id, _)| id.0).collect();
            if let Some(t) = self.tracer.as_mut() {
                t.begin_drain(t0, &queued);
            }
        }
        if let Some(mut tele) = self.telemetry.take() {
            tele.begin(self.trace_mark.clone(), &self.metrics);
            self.telemetry = Some(tele);
        }
        let mut snapshots: Vec<ServeSnapshot> = Vec::new();
        let mut next_snap = self.snapshot_every;
        while let Some((id, req, preferred, arrival_ns)) = self.next_event(&start) {
            let quar_before = if self.telemetry.is_some() {
                self.quarantined.clone()
            } else {
                Vec::new()
            };
            let outcome = self.dispatch(id, req, preferred, &start, arrival_ns);
            self.count_status(&outcome.status);
            self.outcomes.push(outcome);
            self.telemetry_tick(&start, &quar_before);
            if self.followers.contains_key(&id.0) {
                let leader = self.outcomes.last().expect("just pushed").clone();
                self.fan_out_followers(&leader, &start);
            }
            if let (Some(cap), Some(t)) = (self.trace_cap, self.tracer.as_mut()) {
                t.enforce_cap(cap);
            }
            if let (Some(interval), Some(due)) = (self.snapshot_every, next_snap) {
                let elapsed = self.elapsed_since(&start);
                let mut due = due;
                while elapsed >= due {
                    snapshots.push(self.snapshot_at(due, &start));
                    due += interval;
                }
                next_snap = Some(due);
            }
        }
        // Defensive: a prefetched entry whose target never claimed it by
        // drain end loses its pin and becomes an ordinary LRU entry (the
        // data is valid — only the reservation lapses).
        let leftovers = std::mem::take(&mut self.prefetched);
        for e in &leftovers {
            self.residency[e.device].unpin(&e.key);
        }
        if !leftovers.is_empty() {
            self.metrics
                .counter_add("prefetch_released_total", leftovers.len() as u64);
        }
        let per_device_busy: Vec<SimTime> = self
            .pool
            .devices()
            .iter()
            .zip(&start)
            .map(|(d, &s)| d.gpu().now().saturating_since(s))
            .collect();
        let makespan = per_device_busy
            .iter()
            .copied()
            .max()
            .expect("at least one device");
        let telemetry = self.telemetry_finish(makespan);
        let mut total_flops = 0.0;
        let mut host_flops_sum = 0.0;
        let mut host_time = SimTime::ZERO;
        for o in &self.outcomes {
            // A coalesced outcome carries a copy of its leader's report;
            // the execution is counted once, at the leader.
            if o.coalesced {
                continue;
            }
            let Some(r) = o.executed_report() else {
                continue;
            };
            if o.host_fallback {
                host_flops_sum += r.flops;
                host_time += r.elapsed;
            } else {
                total_flops += r.flops;
            }
        }
        let mut tracer = self.tracer.take();
        if let (Some(cap), Some(t)) = (self.trace_cap, tracer.as_mut()) {
            t.trim_to(cap);
        }
        // `finish` resets the drop counter, so read it first.
        let trace_dropped = tracer.as_ref().map(|t| t.dropped()).unwrap_or(0);
        let trace = tracer.as_mut().map(|t| {
            let lanes = self
                .pool
                .devices()
                .iter()
                .enumerate()
                .map(|(i, d)| cocopelia_obs::DeviceLane {
                    device: i,
                    name: format!("dev{i}"),
                    entries: d
                        .gpu()
                        .trace()
                        .entries_since(self.trace_mark.get(i).copied().unwrap_or(0))
                        .to_vec(),
                })
                .collect();
            t.finish(lanes)
        });
        self.tracer = tracer;
        let report = ServeReport {
            outcomes: std::mem::take(&mut self.outcomes),
            makespan,
            per_device_busy,
            total_flops,
            host_flops: host_flops_sum,
            host_time,
            quarantined: self.quarantined(),
            drift: std::mem::take(&mut self.drift),
            metrics: Registry::new(),
            snapshots,
            trace,
            trace_dropped,
            telemetry,
            peak_queue_depth: self.peak_queue,
        };
        // Arrival bookkeeping is per-drain: every scheduled arrival has
        // reached a terminal outcome by now, so reset for the next drain.
        self.arrival_offset.clear();
        self.coalesce_leaders.clear();
        self.followers.clear();
        self.backlog_secs = 0.0;
        self.backlog_contrib.clear();
        self.metrics
            .gauge_set("serve_makespan_secs", report.makespan.as_secs_f64());
        self.metrics
            .gauge_set("serve_throughput_gflops", report.throughput_gflops());
        self.metrics
            .gauge_set("serve_occupancy", report.occupancy());
        ServeReport {
            metrics: self.metrics.clone(),
            ..report
        }
    }

    /// Runs one admitted request through to a terminal status: dispatch to
    /// `preferred` (the scheduling policy's device pick) or the best
    /// healthy device, retry with device reclaim on retryable faults
    /// ([`RuntimeError::fault_class`]), quarantine devices that fault
    /// repeatedly or are lost (re-dispatching the request to a healthy
    /// peer), and degrade gracefully to host BLAS when no healthy device
    /// remains. `start` holds each device's clock when the drain began:
    /// deadlines are judged on *flow time* — the serving device's clock at
    /// completion measured from that start — so time spent queued behind
    /// other requests counts against the budget. For an open arrival,
    /// `arrival_ns` (its offset past drain start) floors the serving
    /// device's clock — work cannot begin before the request exists — and
    /// is subtracted from the flow so the deadline budget starts at
    /// arrival, not at drain start.
    fn dispatch(
        &mut self,
        id: RequestId,
        req: RoutineRequest,
        mut preferred: Option<usize>,
        start: &[SimTime],
        arrival_ns: u64,
    ) -> RequestOutcome {
        let routine = req.routine();
        let deadline = req.deadline();
        let budget = if self.cfg.retry_transient {
            self.cfg.max_retries
        } else {
            0
        };
        let mut retries: u32 = 0;
        let mut host_fallback = false;
        let mut device: Option<usize> = None;
        // End of the previous attempt, in virtual ns: a re-issued attempt
        // must never start earlier (span invariant 3), and the queue span
        // is recorded once, at the first attempt's start.
        let mut not_before_ns: u64 = 0;
        let mut queued_recorded = false;
        // Armed when the retry budget's circuit breaker denies a retry:
        // the request skips further device picks and fails fast to host.
        let mut budget_fastfail = false;
        let result = loop {
            // The policy's pick applies to the first attempt only; a retry
            // after a fault re-chooses among the devices still healthy.
            let pick = if budget_fastfail {
                None
            } else {
                preferred
                    .take()
                    .filter(|&p| !self.quarantined[p])
                    .or_else(|| self.choose_device(&req))
            };
            let Some(d) = pick else {
                // Probation may heal the pool before we give up on
                // devices entirely: jump virtual time to the probe
                // schedule and re-pick if a canary re-admits a device.
                if !budget_fastfail && self.try_heal_pool() {
                    continue;
                }
                // Graceful degradation: the whole pool is quarantined, so
                // the request completes on the host instead of failing.
                // Operands prefetched for this request sit on devices it
                // will never touch: release them with accounting.
                self.release_prefetch_for(id.0);
                host_fallback = true;
                device = None;
                self.metrics.counter_add("fault_host_fallback_total", 1);
                let report = self.execute_host(&req);
                if let Some(t) = self.tracer.as_mut() {
                    if !queued_recorded {
                        t.queue_wait(id.0, not_before_ns);
                    }
                    t.host_fallback(id.0, not_before_ns, report.elapsed.as_nanos());
                }
                break Ok(report);
            };
            if device.is_some_and(|prev| self.quarantined[prev]) {
                // The previous attempt's device was quarantined under the
                // request; it is now re-dispatched to a healthy peer.
                self.metrics.counter_add("quarantine_redispatch_total", 1);
            }
            device = Some(d);
            // Claim (on `d`) or release (elsewhere) whatever the
            // prefetcher staged for this request before resolution runs,
            // so a claimed entry serves the resolve as a warm hit.
            self.settle_prefetch(id.0, d);
            // A request cannot restart before the fault that re-issued it
            // occurred: a re-dispatch target whose virtual clock lags the
            // previous attempt's end is lifted to it. (Per-device clocks
            // advance independently, so a healthy peer may well be
            // "earlier" than the fault; the request still arrives after.)
            // An open arrival additionally floors the clock at its arrival
            // instant: the device may be idle earlier, but the request
            // does not exist yet. Closed-queue submissions have offset 0,
            // making the floor a no-op (clocks never run backwards from
            // `start`).
            let floor_ns = start[d].as_nanos() + arrival_ns;
            let behind = not_before_ns
                .max(floor_ns)
                .saturating_sub(self.pool.devices()[d].gpu().now().as_nanos());
            if behind > 0 {
                self.pool
                    .device_mut(d)
                    .gpu_mut()
                    .advance_clock(SimTime::from_nanos(behind));
            }
            let pre_dev: BTreeSet<DevBufId> = self.pool.devices()[d]
                .gpu()
                .live_device_buffers()
                .into_iter()
                .collect();
            let pre_host: BTreeSet<HostBufId> = self.pool.devices()[d]
                .gpu()
                .live_host_buffers()
                .into_iter()
                .collect();
            // Predicted completion of this attempt: missing-operand upload
            // plus the model's offload estimate. Recorded against the
            // actual clock advance under every policy, so FIFO/EDF runs
            // expose the same misprediction accounting the predictive
            // policy schedules by.
            let estimate = self
                .offload_estimate(d, &req)
                .map(|p| (p, self.upload_estimate(d, &req)));
            let clock_before = self.pool.devices()[d].gpu().now();
            let len_before = self.pool.devices()[d].gpu().trace().len();
            if !queued_recorded {
                queued_recorded = true;
                if let Some(t) = self.tracer.as_mut() {
                    t.queue_wait(id.0, clock_before.as_nanos());
                }
            }
            let attempt_no = retries;
            // Predicted h2d idle time within this attempt — the window a
            // cross-request prefetch must hide in: the attempt's total
            // predicted span minus the h2d occupancy of its own input
            // operands. Computed from operand bytes at the effective link
            // rate rather than the prediction's `t_in_tile` (whose meaning
            // is model-specific: the data-reuse model stores the pipeline
            // fill there, so `k * t_in_tile` would overcount by ~`k`).
            let spec = req.problem_spec();
            let own_h2d: f64 = spec
                .operands
                .iter()
                .filter(|o| o.get())
                .map(|o| self.effective_h2d_secs(d, o.bytes(spec.dtype)))
                .sum();
            let window = estimate.as_ref().map(|(p, _)| (p.total - own_h2d).max(0.0));
            match self.execute_once(d, req.clone(), window) {
                Ok(report) => {
                    self.fault_streak[d] = 0;
                    self.budget_note_success();
                    let clock_after = self.pool.devices()[d].gpu().now();
                    // Straggler defense: a successful attempt that overran
                    // its prediction far enough races a speculative hedge
                    // on the best other healthy device. The race resolves
                    // retroactively in virtual time, so replay is
                    // bit-identical; a winning hedge cancels this attempt
                    // and completes the request itself.
                    let hedged = self.maybe_hedge(
                        id,
                        &req,
                        d,
                        attempt_no,
                        clock_before,
                        clock_after,
                        len_before,
                        &pre_dev,
                        &pre_host,
                        estimate.as_ref(),
                    );
                    if let HedgeOutcome::Won(hreport, hdev, hend_ns) = hedged {
                        device = Some(hdev);
                        not_before_ns = hend_ns;
                        break Ok(*hreport);
                    }
                    if matches!(hedged, HedgeOutcome::NotLaunched) && self.tracer.is_some() {
                        let entries = self.attempt_entries(d, len_before);
                        if let Some(t) = self.tracer.as_mut() {
                            t.attempt(
                                id.0,
                                d,
                                attempt_no,
                                clock_before.as_nanos(),
                                clock_after.as_nanos(),
                                &entries,
                                None,
                            );
                        }
                    }
                    not_before_ns = clock_after.as_nanos();
                    if let Some((pred, upload)) = estimate {
                        let actual = self.pool.devices()[d]
                            .gpu()
                            .now()
                            .saturating_since(clock_before)
                            .as_secs_f64();
                        let rec = DriftRecord {
                            routine,
                            call: id.0,
                            model: pred.model,
                            tile: pred.tile,
                            predicted_secs: upload + pred.total,
                            actual_secs: actual,
                        };
                        let err = rec.abs_rel_err();
                        self.metrics.histogram_observe(
                            "sched_predict_abs_err",
                            &ABS_ERROR_BOUNDS,
                            err,
                        );
                        self.metrics.histogram_observe(
                            &format!("sched_predict_abs_err_{}", self.policy.name()),
                            &ABS_ERROR_BOUNDS,
                            err,
                        );
                        self.drift.record(rec);
                    }
                    break Ok(report);
                }
                Err(e) => {
                    let class = e.fault_class();
                    let name = match class {
                        FaultClass::Transient => "fault_transient_total",
                        FaultClass::Degraded => "fault_degraded_total",
                        FaultClass::Fatal => "fault_fatal_total",
                    };
                    self.metrics.counter_add(name, 1);
                    let clock_after = self.pool.devices()[d].gpu().now();
                    if self.tracer.is_some() {
                        let entries = self.attempt_entries(d, len_before);
                        if let Some(t) = self.tracer.as_mut() {
                            t.attempt(
                                id.0,
                                d,
                                attempt_no,
                                clock_before.as_nanos(),
                                clock_after.as_nanos(),
                                &entries,
                                Some(&e.to_string()),
                            );
                        }
                    }
                    not_before_ns = clock_after.as_nanos();
                    if matches!(e, RuntimeError::Sim(SimError::DeviceLost)) {
                        // The device is gone but the request is innocent:
                        // quarantine the device and re-dispatch.
                        self.quarantine(d);
                        if let Some(t) = self.tracer.as_mut() {
                            t.quarantine(id.0, d, clock_after.as_nanos());
                        }
                        if retries >= budget {
                            break Err(e);
                        }
                    } else if class.retryable() {
                        self.fault_streak[d] += 1;
                        if self.fault_streak[d] >= self.cfg.quarantine_after {
                            self.quarantine(d);
                            if let Some(t) = self.tracer.as_mut() {
                                t.quarantine(id.0, d, clock_after.as_nanos());
                            }
                        } else if retries < budget {
                            // Only a retry justifies the scorched-earth
                            // reclaim that evicts the whole residency
                            // cache to make room.
                            self.reclaim(d, &pre_dev, &pre_host);
                        } else {
                            // No retry will run: free only what the failed
                            // attempt leaked and keep warm operands for
                            // later requests.
                            self.release_leaked(d, &pre_dev, &pre_host);
                        }
                        if retries >= budget {
                            break Err(e);
                        }
                    } else {
                        // Programming errors never improve on retry.
                        self.release_leaked(d, &pre_dev, &pre_host);
                        break Err(e);
                    }
                    if !self.budget_allow_retry(clock_after.as_nanos()) {
                        // The session retry budget ran dry (or its
                        // breaker is open): fail fast to host fallback
                        // instead of burning more device time on a
                        // sustained fault storm.
                        budget_fastfail = true;
                        continue;
                    }
                    retries += 1;
                    self.metrics.counter_add("retry_attempts_total", 1);
                    self.metrics.counter_add("serve_retries_total", 1);
                }
            }
        };
        let status = match result {
            Ok(report) => {
                self.metrics
                    .counter_add("retry_tile_ops_total", report.op_retries);
                // Flow time: the serving device's clock advance since the
                // drain began, so queueing delay counts against the
                // deadline; an open arrival's offset is subtracted so its
                // budget starts at arrival. Host runs advance no device
                // clock; their own elapsed time is the closest flow
                // measure available.
                let flow = match device {
                    Some(d) if !host_fallback => {
                        let raw = self.pool.devices()[d]
                            .gpu()
                            .now()
                            .saturating_since(start[d]);
                        if arrival_ns > 0 {
                            SimTime::from_nanos(raw.as_nanos().saturating_sub(arrival_ns))
                                .as_secs_f64()
                        } else {
                            raw.as_secs_f64()
                        }
                    }
                    _ => report.elapsed.as_secs_f64(),
                };
                match deadline {
                    Some(dl) if flow > dl => RequestStatus::TimedOut {
                        deadline: dl,
                        elapsed: flow,
                        report: Box::new(report),
                    },
                    _ => RequestStatus::Completed(report),
                }
            }
            Err(e) => RequestStatus::Failed(RequestError::new(id, routine, e)),
        };
        if let Some(t) = self.tracer.as_mut() {
            let end_ns = if host_fallback {
                t.host_now_ns()
            } else {
                not_before_ns
            };
            let label = match &status {
                RequestStatus::Completed(_) => "completed",
                RequestStatus::TimedOut { .. } => "timed-out",
                RequestStatus::Failed(_) => "failed",
                RequestStatus::Rejected { .. } => "rejected",
            };
            t.complete(id.0, end_ns, label);
        }
        RequestOutcome {
            id,
            routine,
            device,
            status,
            retries,
            host_fallback,
            coalesced: false,
        }
    }

    /// Samples the drain state for one [`ServeSnapshot`] at virtual time
    /// `at` past the drain start.
    fn snapshot_at(&self, at: SimTime, start: &[SimTime]) -> ServeSnapshot {
        let device_clock = self
            .pool
            .devices()
            .iter()
            .zip(start)
            .map(|(d, &s)| d.gpu().now().saturating_since(s))
            .collect();
        ServeSnapshot {
            at,
            queue_depth: self.queue.len(),
            device_clock,
            mean_abs_drift: self.mean_abs_drift(),
        }
    }

    /// Max device-clock advance since the drain began — the virtual
    /// "elapsed" that drives snapshots and telemetry windows.
    fn elapsed_since(&self, start: &[SimTime]) -> SimTime {
        self.pool
            .devices()
            .iter()
            .zip(start)
            .map(|(d, &s)| d.gpu().now().saturating_since(s))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Mean absolute relative error of the scheduler's offload
    /// predictions so far; `0.0` before the first prediction.
    fn mean_abs_drift(&self) -> f64 {
        let recs = self.drift.records();
        if recs.is_empty() {
            0.0
        } else {
            recs.iter().map(DriftRecord::abs_rel_err).sum::<f64>() / recs.len() as f64
        }
    }

    /// Feeds freshly produced engine-trace entries and spans into the
    /// telemetry stream/ring, advancing the per-device and span
    /// watermarks.
    fn telemetry_drain(&self, tele: &mut Telemetry) {
        for d in 0..self.pool.device_count() {
            let mark = tele.lane_mark(d);
            let trace = self.pool.devices()[d].gpu().trace();
            let new_len = trace.len();
            if new_len > mark {
                tele.stream_lane(d, &format!("dev{d}"), trace.entries_since(mark), new_len);
            }
        }
        if let Some(t) = self.tracer.as_ref() {
            let mark = tele.span_mark();
            tele.drain_spans(t.spans_since(mark), t.next_span_id());
        }
    }

    /// One telemetry step after a dispatch: drain lanes/spans, account the
    /// just-finished outcome (flow time from the serving device's clock,
    /// so telemetry never *moves* a clock), dump on fresh quarantines, and
    /// rotate windows. No-op when telemetry is off.
    fn telemetry_tick(&mut self, start: &[SimTime], quar_before: &[bool]) {
        let Some(mut tele) = self.telemetry.take() else {
            return;
        };
        self.telemetry_drain(&mut tele);
        let elapsed = self.elapsed_since(start);
        if let Some(o) = self.outcomes.last() {
            for (d, &was) in quar_before.iter().enumerate() {
                if !was && self.quarantined.get(d).copied().unwrap_or(false) {
                    tele.on_quarantine(d, o.id.0, elapsed.as_nanos());
                }
            }
            // Mirrors the flow computation in `dispatch` (including the
            // open-arrival offset subtraction) so telemetry reports the
            // same flow the deadline was judged on.
            let flow_secs = match &o.status {
                RequestStatus::TimedOut { elapsed, .. } => *elapsed,
                RequestStatus::Completed(r) => match o.device {
                    Some(d) if !o.host_fallback => {
                        let raw = self.pool.devices()[d]
                            .gpu()
                            .now()
                            .saturating_since(start[d]);
                        match self.arrival_offset.get(&o.id.0) {
                            Some(&a) if a > 0 => {
                                SimTime::from_nanos(raw.as_nanos().saturating_sub(a)).as_secs_f64()
                            }
                            _ => raw.as_secs_f64(),
                        }
                    }
                    _ => r.elapsed.as_secs_f64(),
                },
                _ => f64::NAN,
            };
            tele.on_outcome(o, flow_secs);
            if o.host_fallback {
                // Quarantine-to-empty-pool path: checkpoint the stream so
                // a drain that never returns still leaves a valid trace.
                tele.flush_stream();
            }
        }
        tele.tick(&TickState {
            elapsed_ns: elapsed.as_nanos(),
            queue_depth: self.queue.len(),
            quarantined: self.quarantined.iter().filter(|&&q| q).count(),
            mean_abs_drift: self.mean_abs_drift(),
            metrics: &self.metrics,
        });
        self.telemetry = Some(tele);
    }

    /// Final telemetry rotation at drain end; returns the run summary and
    /// re-arms telemetry for a subsequent drain. `None` when telemetry is
    /// off.
    fn telemetry_finish(&mut self, makespan: SimTime) -> Option<TelemetryReport> {
        let mut tele = self.telemetry.take()?;
        self.telemetry_drain(&mut tele);
        let report = tele.finish(&TickState {
            elapsed_ns: makespan.as_nanos(),
            queue_depth: self.queue.len(),
            quarantined: self.quarantined.iter().filter(|&&q| q).count(),
            mean_abs_drift: self.mean_abs_drift(),
            metrics: &self.metrics,
        });
        self.telemetry = Some(tele);
        Some(report)
    }

    /// Quarantines device `d`: it stops pulling work, its residency cache
    /// is invalidated, and every live allocation is released (a lost
    /// device aborts in-flight work first). Idempotent.
    fn quarantine(&mut self, d: usize) {
        if self.quarantined[d] {
            return;
        }
        self.quarantined[d] = true;
        self.suspicion_secs[d] = 0.0;
        self.metrics.counter_add("quarantine_devices_total", 1);
        let evicted = self.residency[d].clear();
        self.forget_prefetch_on_device(d);
        self.metrics
            .counter_add("quarantine_invalidated_total", evicted.len() as u64);
        let dev = self.pool.device_mut(d);
        let _ = dev.gpu_mut().synchronize();
        for e in evicted {
            free_resident(dev, e.handle);
        }
        for b in dev.gpu().live_device_buffers() {
            let _ = dev.gpu_mut().free_device(b);
        }
        for h in dev.gpu().live_host_buffers() {
            let _ = dev.gpu_mut().take_host(h);
        }
        self.schedule_probe(d);
    }

    /// The adaptive hedge threshold multiplier: the configured base
    /// widened by the 95th percentile of the drift accountant's observed
    /// absolute relative error, so a model that routinely misses by 40%
    /// does not trigger hedges on ordinary 40% overruns. With fewer than
    /// [`HEDGE_WARMUP`] drift records the base is doubled instead (cold
    /// start: trust nothing, hedge only on gross overruns).
    fn hedge_multiplier(&self, cfg: HedgeConfig) -> f64 {
        let recs = self.drift.records();
        if recs.len() < HEDGE_WARMUP {
            return cfg.multiplier * 2.0;
        }
        let mut errs: Vec<f64> = recs.iter().map(DriftRecord::abs_rel_err).collect();
        errs.sort_by(f64::total_cmp);
        let p95 = errs[(errs.len() - 1) * 95 / 100];
        cfg.multiplier * (1.0 + p95)
    }

    /// The retroactive hedge race after a successful primary attempt on
    /// device `d`. When the attempt's elapsed exceeded the adaptive
    /// overrun threshold, the same request is speculatively re-executed
    /// on the best other healthy device, starting at the virtual instant
    /// the overrun was detected (or the peer's own clock if later).
    /// Whichever attempt finishes first in virtual time wins; the loser
    /// is cancelled ([`cocopelia_gpusim::Gpu::cancel_to`]) and rolled
    /// back, so device time, flops, and residency effects are charged
    /// exactly once. A hedge that *faults* gets the ordinary fault
    /// bookkeeping on its device (streak, quarantine, leak release) while
    /// the primary's result stands.
    #[allow(clippy::too_many_arguments)]
    fn maybe_hedge(
        &mut self,
        id: RequestId,
        req: &RoutineRequest,
        d: usize,
        attempt_no: u32,
        clock_before: SimTime,
        clock_after: SimTime,
        len_before: usize,
        pre_dev: &BTreeSet<DevBufId>,
        pre_host: &BTreeSet<HostBufId>,
        estimate: Option<&(Prediction, f64)>,
    ) -> HedgeOutcome {
        let Some(cfg) = self.hedge else {
            return HedgeOutcome::NotLaunched;
        };
        let Some((pred, upload)) = estimate else {
            // No offload estimate (e.g. an undeployed profile): there is
            // no prediction to overrun, so hedging never fires.
            return HedgeOutcome::NotLaunched;
        };
        let predicted = upload + pred.total;
        let threshold_ns = (predicted * self.hedge_multiplier(cfg) * 1e9) as u64;
        let elapsed_ns = clock_after
            .as_nanos()
            .saturating_sub(clock_before.as_nanos());
        if threshold_ns == 0 || elapsed_ns <= threshold_ns {
            // On-prediction attempt: the device is demonstrably healthy,
            // so any straggler penalty it carried is lifted.
            self.suspicion_secs[d] = 0.0;
            return HedgeOutcome::NotLaunched;
        }
        // Overrun detected — whether or not a hedge can launch, the
        // device's observed excess becomes its dispatch penalty
        // (`choose_device_excluding`), so later requests prefer peers
        // even after a winning hedge rewinds this device's clock.
        self.suspicion_secs[d] = SimTime::from_nanos(elapsed_ns).as_secs_f64() - predicted;
        let Some(b) = self.choose_device_excluding(req, d) else {
            return HedgeOutcome::NotLaunched;
        };
        // The hedge starts when the overrun was detected — the primary's
        // clock crossing the threshold — or at the hedge device's own
        // clock if that is later (it may be busy with earlier work).
        let trigger_ns = clock_before.as_nanos() + threshold_ns;
        let b_now_ns = self.pool.devices()[b].gpu().now().as_nanos();
        let b_start_ns = b_now_ns.max(trigger_ns);
        if b_start_ns >= clock_after.as_nanos() {
            // The hedge could not have started before the primary
            // finished; there is nothing to race.
            return HedgeOutcome::NotLaunched;
        }
        // Snapshot the hedge device so a losing hedge rolls back
        // precisely: newly-cached operands evicted and freed, leaked
        // buffers released, everything predating the hedge untouched.
        let pre_dev_b: BTreeSet<DevBufId> = self.pool.devices()[b]
            .gpu()
            .live_device_buffers()
            .into_iter()
            .collect();
        let pre_host_b: BTreeSet<HostBufId> = self.pool.devices()[b]
            .gpu()
            .live_host_buffers()
            .into_iter()
            .collect();
        let behind = b_start_ns.saturating_sub(b_now_ns);
        if behind > 0 {
            self.pool
                .device_mut(b)
                .gpu_mut()
                .advance_clock(SimTime::from_nanos(behind));
        }
        let len_b_before = self.pool.devices()[b].gpu().trace().len();
        let estimate_b = self
            .offload_estimate(b, req)
            .map(|p| (p, self.upload_estimate(b, req)));
        self.metrics.counter_add("hedge_attempts_total", 1);
        match self.execute_once(b, req.clone(), None) {
            Ok(hreport) => {
                let b_after_ns = self.pool.devices()[b].gpu().now().as_nanos();
                if b_after_ns < clock_after.as_nanos() {
                    // The hedge won: cancel the primary at the instant
                    // the hedge completed and roll its work back.
                    self.pool
                        .device_mut(d)
                        .gpu_mut()
                        .cancel_to(SimTime::from_nanos(b_after_ns));
                    self.rollback_cancelled(d, req, pre_dev, pre_host);
                    // The rewind erased the primary's prefetch copies too:
                    // their data never arrived, so the cache entries must
                    // not survive to serve phantom hits.
                    self.abort_prefetch_on_device(d);
                    self.fault_streak[b] = 0;
                    self.suspicion_secs[b] = 0.0;
                    self.metrics.counter_add("hedge_wins_total", 1);
                    self.metrics.counter_add("hedge_cancel_total", 1);
                    if self.tracer.is_some() {
                        let entries_d = self.attempt_entries(d, len_before);
                        let entries_b = self.pool.devices()[b]
                            .gpu()
                            .trace()
                            .entries_since(len_b_before)
                            .to_vec();
                        if let Some(t) = self.tracer.as_mut() {
                            t.attempt(
                                id.0,
                                d,
                                attempt_no,
                                clock_before.as_nanos(),
                                b_after_ns,
                                &entries_d,
                                Some("cancelled: hedge won"),
                            );
                            t.cancel(
                                id.0,
                                d,
                                b_after_ns,
                                &format!("cancelled by hedge on dev{b}"),
                            );
                            t.hedge(
                                id.0,
                                b,
                                b_start_ns,
                                b_after_ns,
                                &entries_b,
                                &format!("hedge on dev{b} (won)"),
                            );
                        }
                    }
                    // The surviving attempt carries the drift record: the
                    // hedge device's own prediction against what its run
                    // actually took (the cancelled primary's timing was
                    // erased, so recording it would poison the model).
                    if let Some((hpred, hupload)) = estimate_b {
                        let actual = SimTime::from_nanos(b_after_ns.saturating_sub(b_start_ns))
                            .as_secs_f64();
                        let rec = DriftRecord {
                            routine: req.routine(),
                            call: id.0,
                            model: hpred.model,
                            tile: hpred.tile,
                            predicted_secs: hupload + hpred.total,
                            actual_secs: actual,
                        };
                        let err = rec.abs_rel_err();
                        self.metrics.histogram_observe(
                            "sched_predict_abs_err",
                            &ABS_ERROR_BOUNDS,
                            err,
                        );
                        self.metrics.histogram_observe(
                            &format!("sched_predict_abs_err_{}", self.policy.name()),
                            &ABS_ERROR_BOUNDS,
                            err,
                        );
                        self.drift.record(rec);
                    }
                    HedgeOutcome::Won(Box::new(hreport), b, b_after_ns)
                } else {
                    // The hedge lost: cancel it at the instant the
                    // primary finished. Its partial work is erased and
                    // rolled back; the time it burned until the
                    // cancellation stays charged to the hedge device.
                    self.pool.device_mut(b).gpu_mut().cancel_to(clock_after);
                    self.rollback_cancelled(b, req, &pre_dev_b, &pre_host_b);
                    self.metrics.counter_add("hedge_losses_total", 1);
                    self.metrics.counter_add("hedge_cancel_total", 1);
                    if self.tracer.is_some() {
                        let entries_d = self.attempt_entries(d, len_before);
                        let entries_b = self.pool.devices()[b]
                            .gpu()
                            .trace()
                            .entries_since(len_b_before)
                            .to_vec();
                        if let Some(t) = self.tracer.as_mut() {
                            t.attempt(
                                id.0,
                                d,
                                attempt_no,
                                clock_before.as_nanos(),
                                clock_after.as_nanos(),
                                &entries_d,
                                None,
                            );
                            t.hedge(
                                id.0,
                                b,
                                b_start_ns,
                                clock_after.as_nanos(),
                                &entries_b,
                                &format!("hedge on dev{b} (lost)"),
                            );
                            t.cancel(id.0, b, clock_after.as_nanos(), "hedge lost");
                        }
                    }
                    HedgeOutcome::PrimaryStands
                }
            }
            Err(e) => {
                // The hedge faulted: the primary's result stands; the
                // hedge device gets ordinary fault bookkeeping — under a
                // compound failure (device lost mid-hedge) it is
                // quarantined and scrubbed, so nothing leaks.
                let b_after_ns = self.pool.devices()[b].gpu().now().as_nanos();
                let name = match e.fault_class() {
                    FaultClass::Transient => "fault_transient_total",
                    FaultClass::Degraded => "fault_degraded_total",
                    FaultClass::Fatal => "fault_fatal_total",
                };
                self.metrics.counter_add(name, 1);
                self.metrics.counter_add("hedge_fail_total", 1);
                if self.tracer.is_some() {
                    let entries_d = self.attempt_entries(d, len_before);
                    let entries_b = self.pool.devices()[b]
                        .gpu()
                        .trace()
                        .entries_since(len_b_before)
                        .to_vec();
                    if let Some(t) = self.tracer.as_mut() {
                        t.attempt(
                            id.0,
                            d,
                            attempt_no,
                            clock_before.as_nanos(),
                            clock_after.as_nanos(),
                            &entries_d,
                            None,
                        );
                        t.hedge(
                            id.0,
                            b,
                            b_start_ns,
                            b_after_ns,
                            &entries_b,
                            &format!("hedge on dev{b}: {e}"),
                        );
                    }
                }
                if matches!(e, RuntimeError::Sim(SimError::DeviceLost)) {
                    self.quarantine(b);
                    if let Some(t) = self.tracer.as_mut() {
                        t.quarantine(id.0, b, b_after_ns);
                    }
                } else if e.fault_class().retryable() {
                    self.fault_streak[b] += 1;
                    if self.fault_streak[b] >= self.cfg.quarantine_after {
                        self.quarantine(b);
                        if let Some(t) = self.tracer.as_mut() {
                            t.quarantine(id.0, b, b_after_ns);
                        }
                    } else {
                        self.release_leaked(b, &pre_dev_b, &pre_host_b);
                    }
                } else {
                    self.release_leaked(b, &pre_dev_b, &pre_host_b);
                }
                HedgeOutcome::PrimaryStands
            }
        }
    }

    /// Rolls back the cancelled side of a hedge race on device `dev`:
    /// shared operands the attempt *newly* inserted into the residency
    /// cache (their buffers were not alive before the attempt) are
    /// removed and freed, then every remaining buffer the attempt
    /// allocated is released. Entries resident before the attempt — and
    /// the cache hits they served — survive untouched.
    fn rollback_cancelled(
        &mut self,
        dev: usize,
        req: &RoutineRequest,
        pre_dev: &BTreeSet<DevBufId>,
        pre_host: &BTreeSet<HostBufId>,
    ) {
        let mut rolled_back_bytes = 0u64;
        for key in req.shared_keys() {
            let fresh = self.residency[dev]
                .buffer_of(key)
                .is_some_and(|b| !pre_dev.contains(&b));
            if fresh {
                if let Some(e) = self.residency[dev].remove(key) {
                    rolled_back_bytes += e.bytes as u64;
                    free_resident(self.pool.device_mut(dev), e.handle);
                }
            }
        }
        // `residency_bytes_uploaded` already counted the cancelled
        // attempt's uploads; this correction term keeps "bytes usefully
        // uploaded" computable without a decrementable counter.
        if rolled_back_bytes > 0 {
            self.metrics
                .counter_add("hedge_cancelled_bytes", rolled_back_bytes);
        }
        self.release_leaked(dev, pre_dev, pre_host);
    }

    /// Schedules the first canary probe of a freshly quarantined device,
    /// one backoff (plus deterministic jitter) past its current clock.
    /// No-op unless probation is armed.
    fn schedule_probe(&mut self, d: usize) {
        let Some(cfg) = self.probation else {
            return;
        };
        if self.probes[d].is_some() {
            return;
        }
        let now_ns = self.pool.devices()[d].gpu().now().as_nanos();
        let jitter =
            splitmix64(cfg.seed ^ ((d as u64) << 32)) % (cfg.backoff.as_nanos() / 4).max(1);
        self.probes[d] = Some(DeviceProbe {
            next_due_ns: now_ns + cfg.backoff.as_nanos().max(1) + jitter,
            consecutive_ok: 0,
            round: 0,
        });
    }

    /// Runs every canary probe that has come due on the pool's virtual
    /// clock (the furthest-ahead device). Probes advance only the
    /// quarantined device's own clock, so a healthy pool never waits on
    /// them. No-op unless probation is armed.
    fn run_due_probes(&mut self) {
        if self.probation.is_none() {
            return;
        }
        let pool_now = self
            .pool
            .devices()
            .iter()
            .map(|d| d.gpu().now().as_nanos())
            .max()
            .unwrap_or(0);
        for d in 0..self.pool.device_count() {
            if self.probes[d].is_some_and(|p| p.next_due_ns <= pool_now) {
                self.run_probe(d);
            }
        }
    }

    /// Jumps virtual time to the probation schedule when no healthy
    /// device remains: runs probes in due order until one re-admits a
    /// device (`true`) or every probationary device gives up (`false`).
    /// Bounded: each failed round extends the backoff and
    /// [`ProbationConfig::max_rounds`] retires the probe entirely.
    fn try_heal_pool(&mut self) -> bool {
        if self.probation.is_none() {
            return false;
        }
        loop {
            let next = (0..self.pool.device_count())
                .filter_map(|i| self.probes[i].map(|p| (p.next_due_ns, i)))
                .min();
            let Some((_, d)) = next else {
                return false;
            };
            self.run_probe(d);
            if !self.quarantined[d] {
                return true;
            }
        }
    }

    /// One canary probe of quarantined device `d`: a tiny ghost GEMM from
    /// the exec tables, run at the scheduled instant (the device clock is
    /// lifted to it). Enough consecutive successes re-admit the device
    /// with a cold residency cache; a failure resets the streak and
    /// extends the backoff exponentially (with deterministic jitter)
    /// until [`ProbationConfig::max_rounds`] gives the device up.
    fn run_probe(&mut self, d: usize) {
        let Some(cfg) = self.probation else {
            return;
        };
        let Some(mut p) = self.probes[d].take() else {
            return;
        };
        if !self.quarantined[d] {
            return;
        }
        let now_ns = self.pool.devices()[d].gpu().now().as_nanos();
        let behind = p.next_due_ns.saturating_sub(now_ns);
        if behind > 0 {
            self.pool
                .device_mut(d)
                .gpu_mut()
                .advance_clock(SimTime::from_nanos(behind));
        }
        let pre_dev: BTreeSet<DevBufId> = self.pool.devices()[d]
            .gpu()
            .live_device_buffers()
            .into_iter()
            .collect();
        let pre_host: BTreeSet<HostBufId> = self.pool.devices()[d]
            .gpu()
            .live_host_buffers()
            .into_iter()
            .collect();
        let before_ns = self.pool.devices()[d].gpu().now().as_nanos();
        self.metrics.counter_add("probe_attempts_total", 1);
        let goal = cfg.successes.max(1);
        match self.execute_once(d, canary_request(), None) {
            Ok(_) => {
                let after_ns = self.pool.devices()[d].gpu().now().as_nanos();
                self.metrics.counter_add("probe_success_total", 1);
                p.consecutive_ok += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.probe(
                        d,
                        before_ns,
                        after_ns,
                        &format!("probe ok ({}/{goal})", p.consecutive_ok),
                    );
                }
                if p.consecutive_ok >= goal {
                    self.readmit(d);
                } else {
                    // The device looks healthy — confirm soon, after a
                    // plain (un-doubled) backoff.
                    p.next_due_ns = after_ns + cfg.backoff.as_nanos().max(1);
                    self.probes[d] = Some(p);
                }
            }
            Err(e) => {
                let after_ns = self.pool.devices()[d].gpu().now().as_nanos();
                self.metrics.counter_add("probe_fail_total", 1);
                if let Some(t) = self.tracer.as_mut() {
                    t.probe(d, before_ns, after_ns, &format!("probe fault: {e}"));
                }
                self.release_leaked(d, &pre_dev, &pre_host);
                p.consecutive_ok = 0;
                p.round += 1;
                if p.round >= cfg.max_rounds.max(1) {
                    self.metrics.counter_add("probe_giveup_total", 1);
                } else {
                    let backoff = cfg.backoff.as_nanos().max(1) << p.round.min(20);
                    let jitter = splitmix64(cfg.seed ^ ((d as u64) << 32) ^ u64::from(p.round))
                        % (cfg.backoff.as_nanos() / 4).max(1);
                    p.next_due_ns = after_ns + backoff + jitter;
                    self.probes[d] = Some(p);
                }
            }
        }
    }

    /// Re-admits a healed device: it pulls work again, with a cold
    /// residency cache (quarantine cleared it) and a clean fault streak.
    /// An open retry-budget breaker moves to half-open — the canary that
    /// healed the pool is evidence the fault storm passed.
    fn readmit(&mut self, d: usize) {
        self.quarantined[d] = false;
        self.fault_streak[d] = 0;
        self.suspicion_secs[d] = 0.0;
        self.metrics.counter_add("probe_readmit_total", 1);
        if let Some(bs) = self.budget.as_mut() {
            if matches!(bs.breaker, Breaker::Open { .. }) {
                bs.breaker = Breaker::HalfOpen;
                self.metrics.counter_add("budget_halfopen_total", 1);
            }
        }
    }

    /// Whether the session retry budget allows another executor-level
    /// retry at raw virtual instant `now_ns`. Closed: refill (in virtual
    /// time) then spend one token, or open the breaker when the bucket is
    /// dry. Open: fail fast until the cooldown expires, then half-open
    /// and allow one trial. Half-open reached *here* means the previous
    /// trial faulted again (only faults ask for retries), so the breaker
    /// reopens with a doubled cooldown. Always true with no budget armed.
    fn budget_allow_retry(&mut self, now_ns: u64) -> bool {
        let Some(bs) = self.budget.as_mut() else {
            return true;
        };
        match bs.breaker {
            Breaker::Closed => {
                let dt = now_ns.saturating_sub(bs.last_refill_ns) as f64 / 1e9;
                bs.tokens = (bs.tokens + dt * bs.cfg.refill_per_sec).min(bs.cfg.tokens.max(0.0));
                bs.last_refill_ns = now_ns;
                if bs.tokens >= 1.0 {
                    bs.tokens -= 1.0;
                    self.metrics.counter_add("budget_spent_total", 1);
                    true
                } else {
                    bs.breaker = Breaker::Open {
                        until_ns: now_ns + bs.cooldown_ns,
                    };
                    self.metrics.counter_add("budget_exhausted_total", 1);
                    self.metrics.counter_add("budget_fastfail_total", 1);
                    false
                }
            }
            Breaker::Open { until_ns } if now_ns < until_ns => {
                self.metrics.counter_add("budget_fastfail_total", 1);
                false
            }
            Breaker::Open { .. } => {
                bs.breaker = Breaker::HalfOpen;
                self.metrics.counter_add("budget_halfopen_total", 1);
                true
            }
            Breaker::HalfOpen => {
                bs.cooldown_ns = bs.cooldown_ns.saturating_mul(2);
                bs.breaker = Breaker::Open {
                    until_ns: now_ns + bs.cooldown_ns,
                };
                self.metrics.counter_add("budget_fastfail_total", 1);
                false
            }
        }
    }

    /// Notes a successful device attempt for the circuit breaker: a
    /// success while half-open closes the breaker, refills the bucket,
    /// and resets the cooldown to its configured base.
    fn budget_note_success(&mut self) {
        if let Some(bs) = self.budget.as_mut() {
            if bs.breaker == Breaker::HalfOpen {
                bs.breaker = Breaker::Closed;
                bs.tokens = bs.cfg.tokens.max(0.0);
                bs.cooldown_ns = bs.cfg.cooldown.as_nanos().max(1);
                self.metrics.counter_add("budget_close_total", 1);
            }
        }
    }

    /// Devices currently on probation (a canary probe is scheduled), in
    /// index order.
    pub fn probation_pending(&self) -> Vec<usize> {
        (0..self.pool.device_count())
            .filter(|&i| self.probes[i].is_some())
            .collect()
    }

    /// The hedge-overrun decision for one attempt, exposed for the
    /// microbenchmark harness: would an attempt predicted at
    /// `predicted_secs` that actually advanced the clock by `elapsed_ns`
    /// trigger a hedge? This is the per-dispatch hot-path check (always
    /// false with hedging disarmed).
    #[doc(hidden)]
    pub fn hedge_decision_for_bench(&self, predicted_secs: f64, elapsed_ns: u64) -> bool {
        let Some(cfg) = self.hedge else {
            return false;
        };
        let threshold_ns = (predicted_secs * self.hedge_multiplier(cfg) * 1e9) as u64;
        threshold_ns > 0 && elapsed_ns > threshold_ns
    }

    /// The prefetch admission decision for one candidate operand set,
    /// exposed for the microbenchmark harness: would `bytes` of missing
    /// shared operands be staged on device `d` given `window_secs` of
    /// predicted h2d idle time? This is the per-dispatch hot-path check
    /// (always false with prefetch disarmed).
    #[doc(hidden)]
    pub fn prefetch_decision_for_bench(&self, d: usize, bytes: usize, window_secs: f64) -> bool {
        self.prefetch
            && self.effective_h2d_secs(d, bytes) <= window_secs
            && self.residency[d].fits_now(bytes)
    }

    /// The probe-scheduling scan (earliest due probe, as `(due_ns,
    /// device)`), exposed for the microbenchmark harness.
    #[doc(hidden)]
    pub fn next_probe_for_bench(&self) -> Option<(u64, usize)> {
        (0..self.pool.device_count())
            .filter_map(|i| self.probes[i].map(|p| (p.next_due_ns, i)))
            .min()
    }

    /// Seeds a probe schedule directly, for the microbenchmark harness.
    #[doc(hidden)]
    pub fn seed_probe_for_bench(&mut self, d: usize, due_ns: u64) {
        self.quarantined[d] = true;
        self.probes[d] = Some(DeviceProbe {
            next_due_ns: due_ns,
            consecutive_ok: 0,
            round: 0,
        });
    }

    /// Completes a request on the host at the configured
    /// [`host_gflops`](ExecutorConfig::host_gflops) rate — the graceful
    /// degradation path when every device is quarantined. Host time is
    /// reported in the request's outcome but advances no device clock, so
    /// it does not count toward the pool makespan.
    fn execute_host(&mut self, req: &RoutineRequest) -> RoutineReport {
        let flops = host_flops(req);
        let elapsed = SimTime::from_secs_f64(flops / (self.cfg.host_gflops.max(1e-9) * 1e9));
        RoutineReport {
            elapsed,
            tile: 0,
            subkernels: 1,
            flops,
            selection: None,
            overlap: OverlapStats::default(),
            drift: Vec::new(),
            tile_hits: 0,
            tile_misses: 0,
            op_retries: 0,
        }
    }

    /// One attempt: resolve shared operands against device `d`'s residency
    /// cache, optionally stage a cross-request prefetch on the idle h2d
    /// engine, run the routine, release bypass uploads.
    ///
    /// `prefetch_window` is the running attempt's predicted h2d idle time
    /// (`total − k·t_in_tile`); `Some` only on primary dispatches with a
    /// usable prediction — hedges and probes pass `None` and never
    /// prefetch.
    fn execute_once(
        &mut self,
        d: usize,
        req: RoutineRequest,
        prefetch_window: Option<f64>,
    ) -> Result<RoutineReport, RuntimeError> {
        let mut bypass = Vec::new();
        // Pin every shared key of this request for the whole resolution:
        // resolving a later operand must never evict (and free) an earlier
        // operand of the same request out from under its resolved handle.
        let pinned: Vec<String> = req.shared_keys().iter().map(|k| (*k).to_owned()).collect();
        let resolved = {
            let Executor {
                pool,
                residency,
                metrics,
                ..
            } = &mut *self;
            let dev = pool.device_mut(d);
            let cache = &mut residency[d];
            resolve_request(dev, cache, metrics, &mut bypass, &pinned, req)?
        };
        // The trace mark must precede the staging enqueues so
        // finish_prefetch sees its own copy entries.
        let mark = self.pool.devices()[d].gpu().trace().len();
        let staged = match prefetch_window {
            Some(window) if self.prefetch => self.begin_prefetch(d, window),
            _ => Vec::new(),
        };
        match self.pool.device_mut(d).submit(resolved) {
            Ok(report) => {
                self.finish_prefetch(d, staged, mark);
                let dev = self.pool.device_mut(d);
                for h in bypass {
                    free_resident(dev, h);
                }
                Ok(report)
            }
            Err(e) => {
                // The staged buffers were never adopted by the cache, so
                // the caller's ordinary fault cleanup frees them exactly
                // like the attempt's own leaked buffers.
                if !staged.is_empty() {
                    self.metrics
                        .counter_add("prefetch_aborted_total", staged.len() as u64);
                }
                Err(e)
            }
        }
    }

    /// Stages the next scheduled request's missing shared operands on
    /// device `d`'s h2d engine, without synchronizing — the copies drain
    /// during the running routine's own synchronize, overlapping its
    /// compute. Stages nothing unless the overlap predictor says the
    /// upload hides inside `window_secs` and the bytes fit in the
    /// residency cache's free budget (a prefetch must never evict
    /// demand-fetched state).
    fn begin_prefetch(&mut self, d: usize, window_secs: f64) -> Vec<StagedPrefetch> {
        if window_secs <= 0.0 || self.quarantined[d] {
            return Vec::new();
        }
        let Some((idx, _)) = self.select_index() else {
            return Vec::new();
        };
        let (target, specs) = {
            let (tid, treq) = &self.queue[idx];
            (tid.0, treq.shared_operand_specs())
        };
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let plan: Vec<SharedOperandSpec> = specs
            .into_iter()
            .filter(|s| !self.residency[d].contains(s.key()) && seen.insert(s.key().to_owned()))
            .collect();
        if plan.is_empty() {
            return Vec::new();
        }
        let upload: f64 = plan
            .iter()
            .map(|s| self.effective_h2d_secs(d, s.bytes()))
            .sum();
        let total_bytes: usize = plan.iter().map(SharedOperandSpec::bytes).sum();
        if upload > window_secs || !self.residency[d].fits_now(total_bytes) {
            self.metrics.counter_add("prefetch_skipped_total", 1);
            return Vec::new();
        }
        let mut staged = Vec::with_capacity(plan.len());
        for (i, spec) in plan.into_iter().enumerate() {
            let tag = OpTag {
                routine: "prefetch",
                call: target,
                tile: (i, 0),
                operand: None,
                get: true,
                set: false,
            };
            let dtype = match &spec {
                SharedOperandSpec::Mat { dtype, .. } | SharedOperandSpec::Vec { dtype, .. } => {
                    *dtype
                }
            };
            let bytes = spec.bytes();
            let enqueued = match &spec {
                SharedOperandSpec::Mat { rows, cols, .. } => self
                    .pool
                    .device_mut(d)
                    .enqueue_ghost_matrix(dtype, *rows, *cols, tag)
                    .map(|(m, h)| (ResidentHandle::Mat(m), h)),
                SharedOperandSpec::Vec { len, .. } => self
                    .pool
                    .device_mut(d)
                    .enqueue_ghost_vector(dtype, *len, tag)
                    .map(|(v, h)| (ResidentHandle::Vec(v), h)),
            };
            match enqueued {
                Ok((handle, host)) => staged.push(StagedPrefetch {
                    target,
                    key: spec.key().to_owned(),
                    dtype,
                    bytes,
                    handle,
                    host,
                }),
                Err(_) => {
                    self.metrics.counter_add("prefetch_aborted_total", 1);
                    break;
                }
            }
        }
        staged
    }

    /// Lands the copies staged by [`begin_prefetch`](Self::begin_prefetch)
    /// after the running routine's synchronize drained them: releases the
    /// staging ghosts, measures how much of each copy actually hid under
    /// the routine's compute, records `Prefetch` trace spans, and adopts
    /// the operands into the residency cache as pinned-until-claimed
    /// entries.
    fn finish_prefetch(&mut self, d: usize, staged: Vec<StagedPrefetch>, mark: usize) {
        if staged.is_empty() {
            return;
        }
        for s in &staged {
            let _ = self.pool.device_mut(d).gpu_mut().take_host(s.host);
        }
        let entries: Vec<TraceEntry> = self.pool.devices()[d]
            .gpu()
            .trace()
            .entries_since(mark)
            .to_vec();
        let computes: Vec<(u64, u64)> = entries
            .iter()
            .filter(|e| e.engine == EngineKind::Compute)
            .map(|e| (e.start.as_nanos(), e.end.as_nanos()))
            .collect();
        let mut overlap_ns = 0u64;
        for e in entries.iter().filter(|e| is_prefetch_entry(e)) {
            let (s_ns, e_ns) = (e.start.as_nanos(), e.end.as_nanos());
            overlap_ns += computes
                .iter()
                .map(|&(cs, ce)| e_ns.min(ce).saturating_sub(s_ns.max(cs)))
                .sum::<u64>();
            if self.tracer.is_some() {
                let label = e
                    .tag
                    .as_ref()
                    .and_then(|t| staged.get(t.tile.0))
                    .map_or_else(
                        || "prefetch".to_owned(),
                        |s| format!("prefetch {} ({} B)", s.key, s.bytes),
                    );
                let target = e.tag.as_ref().map_or(0, |t| t.call);
                if let Some(t) = self.tracer.as_mut() {
                    t.prefetch(target, d, s_ns, e_ns, &label);
                }
            }
        }
        self.metrics
            .counter_add("prefetch_issued_total", staged.len() as u64);
        self.metrics.counter_add("prefetch_overlap_ns", overlap_ns);
        self.metrics.counter_add(
            "prefetch_bytes_total",
            staged.iter().map(|s| s.bytes as u64).sum(),
        );
        for s in staged {
            let inserted = match s.handle {
                ResidentHandle::Mat(m) => self.residency[d].insert_mat(&s.key, s.dtype, m, s.bytes),
                ResidentHandle::Vec(v) => self.residency[d].insert_vec(&s.key, s.dtype, v, s.bytes),
            };
            if inserted {
                self.residency[d].pin(&s.key);
                self.prefetched.push(PrefetchEntry {
                    device: d,
                    target: s.target,
                    key: s.key,
                    bytes: s.bytes,
                });
            } else {
                // A concurrent demand fetch won the key: drop the duplicate.
                free_resident(self.pool.device_mut(d), s.handle);
            }
        }
    }

    /// Claims or releases the prefetched operands staged for request `id`
    /// now that it is dispatching on device `d`: entries on `d` become
    /// ordinary warm cache state (unpinned, counted as hits); entries
    /// staged on any other device — the request was hedged elsewhere, or
    /// its chosen device changed — are evicted and freed with accounting.
    fn settle_prefetch(&mut self, id: u64, d: usize) {
        if self.prefetched.is_empty() {
            return;
        }
        let mut kept = Vec::with_capacity(self.prefetched.len());
        for e in std::mem::take(&mut self.prefetched) {
            if e.target != id {
                kept.push(e);
                continue;
            }
            self.residency[e.device].unpin(&e.key);
            if e.device == d {
                self.metrics.counter_add("prefetch_hits_total", 1);
                self.metrics
                    .counter_add("prefetch_hit_bytes_total", e.bytes as u64);
            } else {
                if let Some(r) = self.residency[e.device].remove(&e.key) {
                    free_resident(self.pool.device_mut(e.device), r.handle);
                }
                self.metrics.counter_add("prefetch_released_total", 1);
            }
        }
        self.prefetched = kept;
    }

    /// Releases every prefetched operand staged for request `id` without
    /// claiming any — the request was rejected, coalesced, or fell back to
    /// the host, so its staged bytes must not stay pinned.
    fn release_prefetch_for(&mut self, id: u64) {
        self.settle_prefetch(id, usize::MAX);
    }

    /// Evicts and frees every unclaimed prefetched operand on device `d`
    /// after its timeline was rewound ([`cocopelia_gpusim::Gpu::cancel_to`]):
    /// the copies never happened, so the cache entries must not survive to
    /// serve phantom hits. The buffers are still allocated (the rewind is
    /// timeline-only) and cache-tracked, so they are freed here, not by
    /// the leak sweep.
    fn abort_prefetch_on_device(&mut self, d: usize) {
        if self.prefetched.is_empty() {
            return;
        }
        let mut kept = Vec::with_capacity(self.prefetched.len());
        let mut aborted = 0u64;
        for e in std::mem::take(&mut self.prefetched) {
            if e.device != d {
                kept.push(e);
                continue;
            }
            self.residency[d].unpin(&e.key);
            if let Some(r) = self.residency[d].remove(&e.key) {
                free_resident(self.pool.device_mut(d), r.handle);
            }
            aborted += 1;
        }
        self.prefetched = kept;
        if aborted > 0 {
            self.metrics.counter_add("prefetch_aborted_total", aborted);
        }
    }

    /// Drops the tracking entries for device `d`'s unclaimed prefetches
    /// after its residency cache was cleared wholesale (quarantine,
    /// reclaim) — the buffers were already freed with the cache, so this
    /// only forgets them.
    fn forget_prefetch_on_device(&mut self, d: usize) {
        let before = self.prefetched.len();
        self.prefetched.retain(|e| e.device != d);
        let dropped = (before - self.prefetched.len()) as u64;
        if dropped > 0 {
            self.metrics.counter_add("prefetch_aborted_total", dropped);
        }
    }

    /// Device `d`'s trace entries since `len_before`, with prefetch copies
    /// filtered out: they belong to the *next* request's `Prefetch` spans,
    /// not this attempt's per-engine children.
    fn attempt_entries(&self, d: usize, len_before: usize) -> Vec<TraceEntry> {
        self.pool.devices()[d]
            .gpu()
            .trace()
            .entries_since(len_before)
            .iter()
            .filter(|e| !is_prefetch_entry(e))
            .cloned()
            .collect()
    }

    /// Returns device `d` to a clean state after a failed attempt: waits
    /// for in-flight work, evicts its residency cache, and frees any
    /// buffer the failed attempt leaked (allocations alive now that were
    /// not alive before the attempt).
    fn reclaim(&mut self, d: usize, pre_dev: &BTreeSet<DevBufId>, pre_host: &BTreeSet<HostBufId>) {
        let dev = self.pool.device_mut(d);
        let _ = dev.gpu_mut().synchronize();
        let evicted = self.residency[d].clear();
        self.metrics
            .counter_add("residency_evictions_total", evicted.len() as u64);
        for e in evicted {
            free_resident(dev, e.handle);
        }
        for b in dev.gpu().live_device_buffers() {
            if !pre_dev.contains(&b) {
                let _ = dev.gpu_mut().free_device(b);
            }
        }
        for h in dev.gpu().live_host_buffers() {
            if !pre_host.contains(&h) {
                let _ = dev.gpu_mut().take_host(h);
            }
        }
        // The cache wipe above already freed any prefetched buffers; drop
        // their tracking entries too so a later dispatch of the target
        // request cannot claim a phantom hit.
        self.forget_prefetch_on_device(d);
    }

    /// Frees buffers a failed attempt leaked on device `d` without
    /// touching the residency cache: allocations alive now that were
    /// neither alive before the attempt nor adopted by the cache (operands
    /// the attempt successfully resolved stay warm for later requests).
    fn release_leaked(
        &mut self,
        d: usize,
        pre_dev: &BTreeSet<DevBufId>,
        pre_host: &BTreeSet<HostBufId>,
    ) {
        let cached: BTreeSet<DevBufId> = self.residency[d].device_buffers().into_iter().collect();
        let dev = self.pool.device_mut(d);
        let _ = dev.gpu_mut().synchronize();
        for b in dev.gpu().live_device_buffers() {
            if !pre_dev.contains(&b) && !cached.contains(&b) {
                let _ = dev.gpu_mut().free_device(b);
            }
        }
        for h in dev.gpu().live_host_buffers() {
            if !pre_host.contains(&h) {
                let _ = dev.gpu_mut().take_host(h);
            }
        }
    }
}

/// Useful floating-point operations of a request, for host-fallback time
/// accounting (mirrors `ProblemSpec::flops` without needing a profile).
fn host_flops(req: &RoutineRequest) -> f64 {
    match req {
        RoutineRequest::GemmF64(r) => {
            2.0 * r.a.rows() as f64 * r.b.cols() as f64 * r.a.cols() as f64
        }
        RoutineRequest::GemmF32(r) => {
            2.0 * r.a.rows() as f64 * r.b.cols() as f64 * r.a.cols() as f64
        }
        RoutineRequest::AxpyF64(r) => 2.0 * r.x.len() as f64,
        RoutineRequest::DotF64(r) => 2.0 * r.x.len() as f64,
        RoutineRequest::GemvF64(r) => 2.0 * r.a.rows() as f64 * r.a.cols() as f64,
    }
}

/// Frees a cached or bypass device allocation, ignoring stale handles
/// (reclaim may already have freed them).
fn free_resident(dev: &mut Cocopelia, h: ResidentHandle) {
    let _ = match h {
        ResidentHandle::Mat(m) => dev.free_matrix(m),
        ResidentHandle::Vec(v) => dev.free_vector(v),
    };
}

/// Resolves one matrix argument: shared keys become device-resident
/// operands via the residency cache (hit) or a ghost upload (miss).
/// `pinned` names the whole request's shared keys, which eviction must
/// not touch; an operand that cannot fit alongside them bypasses the
/// cache instead.
fn resolve_mat<T: SimScalar>(
    dev: &mut Cocopelia,
    cache: &mut ResidencyCache,
    metrics: &mut Registry,
    bypass: &mut Vec<ResidentHandle>,
    pinned: &[String],
    arg: MatArg<T>,
) -> Result<MatArg<T>, RuntimeError> {
    let MatArg::Shared(s) = arg else {
        return Ok(arg);
    };
    if let Some(m) = cache.lookup_mat(&s.key, T::DTYPE, s.rows, s.cols)? {
        metrics.counter_add("residency_hits_total", 1);
        return Ok(MatArg::Inline(MatOperand::Device(m)));
    }
    metrics.counter_add("residency_misses_total", 1);
    let bytes = s.rows * s.cols * T::DTYPE.width();
    let cacheable = cache.fits_pinned(bytes, pinned);
    if cacheable {
        for e in cache.evict_for(bytes, pinned) {
            metrics.counter_add("residency_evictions_total", 1);
            free_resident(dev, e.handle);
        }
    } else {
        metrics.counter_add("residency_bypass_total", 1);
    }
    let m = dev.upload_ghost_matrix(T::DTYPE, s.rows, s.cols)?;
    metrics.counter_add("residency_bytes_uploaded", bytes as u64);
    if cacheable {
        cache.insert_mat(&s.key, T::DTYPE, m, bytes);
    } else {
        bypass.push(ResidentHandle::Mat(m));
    }
    Ok(MatArg::Inline(MatOperand::Device(m)))
}

/// Resolves one vector argument; see [`resolve_mat`].
fn resolve_vec<T: SimScalar>(
    dev: &mut Cocopelia,
    cache: &mut ResidencyCache,
    metrics: &mut Registry,
    bypass: &mut Vec<ResidentHandle>,
    pinned: &[String],
    arg: VecArg<T>,
) -> Result<VecArg<T>, RuntimeError> {
    let VecArg::Shared(s) = arg else {
        return Ok(arg);
    };
    if let Some(v) = cache.lookup_vec(&s.key, T::DTYPE, s.len)? {
        metrics.counter_add("residency_hits_total", 1);
        return Ok(VecArg::Inline(VecOperand::Device(v)));
    }
    metrics.counter_add("residency_misses_total", 1);
    let bytes = s.len * T::DTYPE.width();
    let cacheable = cache.fits_pinned(bytes, pinned);
    if cacheable {
        for e in cache.evict_for(bytes, pinned) {
            metrics.counter_add("residency_evictions_total", 1);
            free_resident(dev, e.handle);
        }
    } else {
        metrics.counter_add("residency_bypass_total", 1);
    }
    let v = dev.upload_ghost_vector(T::DTYPE, s.len)?;
    metrics.counter_add("residency_bytes_uploaded", bytes as u64);
    if cacheable {
        cache.insert_vec(&s.key, T::DTYPE, v, bytes);
    } else {
        bypass.push(ResidentHandle::Vec(v));
    }
    Ok(VecArg::Inline(VecOperand::Device(v)))
}

/// Resolves every shared operand of a request against one device, with
/// the request's own keys pinned against eviction.
fn resolve_request(
    dev: &mut Cocopelia,
    cache: &mut ResidencyCache,
    metrics: &mut Registry,
    bypass: &mut Vec<ResidentHandle>,
    pinned: &[String],
    req: RoutineRequest,
) -> Result<RoutineRequest, RuntimeError> {
    Ok(match req {
        RoutineRequest::GemmF64(mut r) => {
            r.a = resolve_mat(dev, cache, metrics, bypass, pinned, r.a)?;
            r.b = resolve_mat(dev, cache, metrics, bypass, pinned, r.b)?;
            r.c = resolve_mat(dev, cache, metrics, bypass, pinned, r.c)?;
            RoutineRequest::GemmF64(r)
        }
        RoutineRequest::GemmF32(mut r) => {
            r.a = resolve_mat(dev, cache, metrics, bypass, pinned, r.a)?;
            r.b = resolve_mat(dev, cache, metrics, bypass, pinned, r.b)?;
            r.c = resolve_mat(dev, cache, metrics, bypass, pinned, r.c)?;
            RoutineRequest::GemmF32(r)
        }
        RoutineRequest::AxpyF64(mut r) => {
            r.x = resolve_vec(dev, cache, metrics, bypass, pinned, r.x)?;
            r.y = resolve_vec(dev, cache, metrics, bypass, pinned, r.y)?;
            RoutineRequest::AxpyF64(r)
        }
        RoutineRequest::DotF64(mut r) => {
            r.x = resolve_vec(dev, cache, metrics, bypass, pinned, r.x)?;
            r.y = resolve_vec(dev, cache, metrics, bypass, pinned, r.y)?;
            RoutineRequest::DotF64(r)
        }
        RoutineRequest::GemvF64(mut r) => {
            r.a = resolve_mat(dev, cache, metrics, bypass, pinned, r.a)?;
            r.x = resolve_vec(dev, cache, metrics, bypass, pinned, r.x)?;
            r.y = resolve_vec(dev, cache, metrics, bypass, pinned, r.y)?;
            RoutineRequest::GemvF64(r)
        }
    })
}
