//! Per-device LRU cache of shared, device-resident operands.

use crate::error::RuntimeError;
use crate::operand::{DeviceMatrix, DeviceVector};
use cocopelia_gpusim::DevBufId;
use cocopelia_hostblas::Dtype;
use std::collections::{BTreeSet, HashMap};

/// A cached device allocation: either a matrix or a vector.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResidentHandle {
    /// A resident matrix.
    Mat(DeviceMatrix),
    /// A resident vector.
    Vec(DeviceVector),
}

/// One cache entry.
#[derive(Debug, Clone)]
pub(crate) struct Resident {
    pub(crate) key: String,
    pub(crate) dtype: Dtype,
    pub(crate) handle: ResidentHandle,
    pub(crate) bytes: usize,
    last_use: u64,
}

/// An LRU cache of shared operands resident on one device, bounded by a
/// byte budget carved out of device memory.
///
/// The cache tracks *handles*; the executor owns the device and performs
/// the actual allocation/free calls with the handles this cache evicts.
///
/// Entries are indexed by key in a `HashMap`, so `lookup_*`/`contains` —
/// which dispatch calls per shared key × device × queued request — are
/// O(1) instead of a `Vec` scan. LRU order lives in each entry's
/// `last_use` stamp (strictly increasing, hence unique), and every path
/// that surfaces multiple entries (`evict_for`, `clear`,
/// `device_buffers`) orders by it, so nothing about the map's iteration
/// order can leak into the executor's free/upload sequence and break
/// bit-identical replays.
#[derive(Debug)]
pub struct ResidencyCache {
    budget_bytes: usize,
    used_bytes: usize,
    clock: u64,
    entries: HashMap<String, Resident>,
    /// Keys pinned *across* resolutions: speculatively prefetched entries
    /// that must survive until their target request claims (or releases)
    /// them. Unlike the per-resolution `pinned` slices threaded through
    /// `fits_pinned`/`evict_for`, these pins persist between requests.
    pinned_keys: BTreeSet<String>,
}

impl ResidencyCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        ResidencyCache {
            budget_bytes,
            used_bytes: 0,
            clock: 0,
            entries: HashMap::new(),
            pinned_keys: BTreeSet::new(),
        }
    }

    /// Pins `key` until [`unpin`](Self::unpin): the entry is treated as
    /// pinned by every eviction decision, on top of any per-resolution
    /// pinned slice. The prefetcher pins staged entries so the running
    /// request's own uploads cannot evict them before their target claims
    /// them.
    pub(crate) fn pin(&mut self, key: &str) {
        self.pinned_keys.insert(key.to_owned());
    }

    /// Releases a persistent pin. The entry stays cached (ordinary LRU).
    pub(crate) fn unpin(&mut self, key: &str) {
        self.pinned_keys.remove(key);
    }

    /// True when an operand of `bytes` fits in the *free* budget right
    /// now, with no eviction at all. Speculative prefetch uses this — a
    /// prefetch must never evict demand-fetched state.
    pub(crate) fn fits_now(&self, bytes: usize) -> bool {
        self.used_bytes + bytes <= self.budget_bytes
    }

    /// The byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached operands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when an operand of `bytes` could ever be cached.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.budget_bytes
    }

    /// True when an operand of `bytes` can be cached without evicting any
    /// `pinned` entry: the bytes plus every resident pinned entry must fit
    /// in the budget. The executor pins the keys of the request being
    /// resolved so a later operand never evicts an earlier one.
    pub(crate) fn fits_pinned(&self, bytes: usize, pinned: &[String]) -> bool {
        // Iterate entries, not `pinned`: a self-referencing request (W·W)
        // pins the same key twice, which must not double-count.
        let pinned_bytes: usize = self
            .entries
            .values()
            .filter(|e| pinned.contains(&e.key) || self.pinned_keys.contains(&e.key))
            .map(|e| e.bytes)
            .sum();
        bytes + pinned_bytes <= self.budget_bytes
    }

    /// Looks up a shared matrix, refreshing its LRU position on a hit.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DimensionMismatch`] when `key` is cached with a
    /// different dtype or shape than the request declares.
    pub(crate) fn lookup_mat(
        &mut self,
        key: &str,
        dtype: Dtype,
        rows: usize,
        cols: usize,
    ) -> Result<Option<DeviceMatrix>, RuntimeError> {
        let Some(e) = self.entries.get_mut(key) else {
            return Ok(None);
        };
        match e.handle {
            ResidentHandle::Mat(m) if e.dtype == dtype && m.rows() == rows && m.cols() == cols => {
                self.clock += 1;
                e.last_use = self.clock;
                Ok(Some(m))
            }
            _ => Err(RuntimeError::DimensionMismatch {
                what: format!(
                    "shared operand '{key}' is cached with a different dtype or shape \
                     than the request declares"
                ),
            }),
        }
    }

    /// Looks up a shared vector, refreshing its LRU position on a hit.
    ///
    /// # Errors
    ///
    /// As for [`lookup_mat`](Self::lookup_mat).
    pub(crate) fn lookup_vec(
        &mut self,
        key: &str,
        dtype: Dtype,
        len: usize,
    ) -> Result<Option<DeviceVector>, RuntimeError> {
        let Some(e) = self.entries.get_mut(key) else {
            return Ok(None);
        };
        match e.handle {
            ResidentHandle::Vec(v) if e.dtype == dtype && v.len() == len => {
                self.clock += 1;
                e.last_use = self.clock;
                Ok(Some(v))
            }
            _ => Err(RuntimeError::DimensionMismatch {
                what: format!(
                    "shared operand '{key}' is cached with a different dtype or shape \
                     than the request declares"
                ),
            }),
        }
    }

    /// Evicts least-recently-used entries until `bytes` more would fit in
    /// the budget, returning the evicted handles for the executor to free.
    /// `pinned` keys are never evicted (the current request's operands);
    /// call only after a miss, and only when
    /// [`fits_pinned`](Self::fits_pinned) said the bytes can be made to fit.
    pub(crate) fn evict_for(&mut self, bytes: usize, pinned: &[String]) -> Vec<Resident> {
        let mut evicted = Vec::new();
        while self.used_bytes + bytes > self.budget_bytes {
            // `last_use` stamps are unique, so the minimum is a single
            // deterministic victim regardless of map iteration order.
            let Some(key) = self
                .entries
                .values()
                .filter(|e| !pinned.contains(&e.key) && !self.pinned_keys.contains(&e.key))
                .min_by_key(|e| e.last_use)
                .map(|e| e.key.clone())
            else {
                break;
            };
            let e = self.entries.remove(&key).expect("victim is resident");
            self.used_bytes -= e.bytes;
            evicted.push(e);
        }
        evicted
    }

    /// Caches a matrix under `key`, returning whether the entry was
    /// inserted. A duplicate key is *rejected* (`false`) rather than
    /// shadowing or double-counting the resident entry — the caller still
    /// owns the handle it tried to insert.
    pub(crate) fn insert_mat(
        &mut self,
        key: &str,
        dtype: Dtype,
        m: DeviceMatrix,
        bytes: usize,
    ) -> bool {
        if self.entries.contains_key(key) {
            return false;
        }
        self.clock += 1;
        self.used_bytes += bytes;
        self.entries.insert(
            key.to_owned(),
            Resident {
                key: key.to_owned(),
                dtype,
                handle: ResidentHandle::Mat(m),
                bytes,
                last_use: self.clock,
            },
        );
        true
    }

    /// Caches a vector under `key`; as [`insert_mat`](Self::insert_mat).
    pub(crate) fn insert_vec(
        &mut self,
        key: &str,
        dtype: Dtype,
        v: DeviceVector,
        bytes: usize,
    ) -> bool {
        if self.entries.contains_key(key) {
            return false;
        }
        self.clock += 1;
        self.used_bytes += bytes;
        self.entries.insert(
            key.to_owned(),
            Resident {
                key: key.to_owned(),
                dtype,
                handle: ResidentHandle::Vec(v),
                bytes,
                last_use: self.clock,
            },
        );
        true
    }

    /// Empties the cache, returning every handle for the executor to free
    /// in LRU order (deterministic: `last_use` stamps are unique).
    pub(crate) fn clear(&mut self) -> Vec<Resident> {
        self.used_bytes = 0;
        self.pinned_keys.clear();
        let mut all: Vec<Resident> = self.entries.drain().map(|(_, e)| e).collect();
        all.sort_by_key(|e| e.last_use);
        all
    }

    /// True when `key` is resident (does not refresh its LRU position).
    /// Dispatch uses this to cost the shared operands a device is missing.
    pub(crate) fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Removes one entry by key, returning its handle for the executor to
    /// free. Hedged re-dispatch uses this for precise rollback: only the
    /// keys the cancelled attempt *newly* inserted are removed, so
    /// operands that were resident before the attempt survive it.
    pub(crate) fn remove(&mut self, key: &str) -> Option<Resident> {
        let e = self.entries.remove(key)?;
        self.used_bytes -= e.bytes;
        self.pinned_keys.remove(key);
        Some(e)
    }

    /// The device buffer backing the entry cached under `key`, when
    /// resident (does not refresh its LRU position). Hedged re-dispatch
    /// uses this to tell which of a cancelled attempt's resolved operands
    /// were *newly* uploaded — their buffers were not alive before the
    /// attempt — and must be rolled back via [`remove`](Self::remove).
    pub(crate) fn buffer_of(&self, key: &str) -> Option<DevBufId> {
        self.entries.get(key).map(|e| match e.handle {
            ResidentHandle::Mat(m) => m.raw_buf(),
            ResidentHandle::Vec(v) => v.raw_buf(),
        })
    }

    /// Device buffers currently tracked by the cache, in LRU order. The
    /// executor uses this to tell leaked allocations apart from live
    /// cached operands when cleaning up after a failed attempt; tests use
    /// it to prove a device holds no allocation beyond its cached
    /// operands.
    pub fn device_buffers(&self) -> Vec<DevBufId> {
        let mut entries: Vec<&Resident> = self.entries.values().collect();
        entries.sort_by_key(|e| e.last_use);
        entries
            .into_iter()
            .map(|e| match e.handle {
                ResidentHandle::Mat(m) => m.raw_buf(),
                ResidentHandle::Vec(v) => v.raw_buf(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, Gpu};

    fn mat(gpu: &mut Gpu, rows: usize, cols: usize) -> DeviceMatrix {
        let buf = gpu.alloc_device(Dtype::F64, rows * cols).expect("alloc");
        DeviceMatrix::from_raw(buf, rows, cols)
    }

    fn gpu() -> Gpu {
        Gpu::new(testbed_i(), ExecMode::TimingOnly, 0)
    }

    #[test]
    fn lru_eviction_order_and_budget() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(2000);
        assert!(cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800));
        assert!(cache.insert_mat("B", Dtype::F64, mat(&mut g, 10, 10), 800));
        assert_eq!(cache.used_bytes(), 1600);
        // Touch A so B becomes the LRU entry.
        cache
            .lookup_mat("A", Dtype::F64, 10, 10)
            .expect("shape ok")
            .expect("hit");
        let evicted = cache.evict_for(800, &[]);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, "B");
        assert_eq!(cache.used_bytes(), 800);
        assert!(cache
            .lookup_mat("B", Dtype::F64, 10, 10)
            .expect("shape ok")
            .is_none());
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(2000);
        cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.insert_mat("B", Dtype::F64, mat(&mut g, 10, 10), 800);
        let pinned = vec!["A".to_owned(), "B".to_owned(), "C".to_owned()];
        // C (800 B) cannot join A+B (1600 B pinned) under a 2000 B budget.
        assert!(!cache.fits_pinned(800, &pinned));
        assert!(cache.fits_pinned(400, &pinned));
        // Even when asked to make room, pinned entries stay resident.
        let evicted = cache.evict_for(800, &pinned);
        assert!(evicted.is_empty());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.used_bytes(), 1600);
        // An unpinned entry is still fair game.
        cache.insert_mat("D", Dtype::F64, mat(&mut g, 5, 5), 200);
        let evicted = cache.evict_for(400, &pinned);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, "D");
    }

    #[test]
    fn persistent_pins_block_eviction_until_unpinned() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(2000);
        cache.insert_mat("P", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.insert_mat("B", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.pin("P");
        // P was inserted first (LRU victim by stamp), but the pin holds:
        // eviction must take B instead.
        let evicted = cache.evict_for(800, &[]);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, "B");
        assert!(cache.contains("P"));
        // fits_pinned counts the persistent pin with no per-resolution
        // slice; fits_now never evicts.
        assert!(!cache.fits_pinned(1600, &[]));
        assert!(cache.fits_pinned(1200, &[]));
        assert!(cache.fits_now(1200));
        assert!(!cache.fits_now(1201));
        // Unpinning restores ordinary LRU behaviour; remove() drops a
        // pin with its entry.
        cache.unpin("P");
        let evicted = cache.evict_for(2000, &[]);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, "P");
        cache.insert_mat("Q", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.pin("Q");
        cache.remove("Q").expect("resident");
        cache.insert_mat("Q", Dtype::F64, mat(&mut g, 10, 10), 800);
        let evicted = cache.evict_for(2000, &[]);
        assert_eq!(evicted.len(), 1, "pin must not survive remove()");
    }

    #[test]
    fn duplicate_key_inserts_are_rejected() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(10_000);
        assert!(cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800));
        // Same key again — even with a different shape, dtype, or kind —
        // is refused and changes nothing.
        assert!(!cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800));
        assert!(!cache.insert_mat("A", Dtype::F32, mat(&mut g, 3, 3), 36));
        assert!(!cache.insert_vec(
            "A",
            Dtype::F64,
            DeviceVector::from_raw(g.alloc_device(Dtype::F64, 5).expect("alloc"), 5),
            40,
        ));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 800);
        // The original entry is intact.
        assert!(cache
            .lookup_mat("A", Dtype::F64, 10, 10)
            .expect("shape ok")
            .is_some());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(10_000);
        cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800);
        assert!(cache.lookup_mat("A", Dtype::F64, 10, 11).is_err());
        assert!(cache.lookup_mat("A", Dtype::F32, 10, 10).is_err());
        // A vector lookup against a matrix entry is also a mismatch.
        assert!(cache.lookup_vec("A", Dtype::F64, 100).is_err());
    }

    #[test]
    fn contains_sees_resident_keys() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(10_000);
        cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.insert_vec(
            "x",
            Dtype::F64,
            DeviceVector::from_raw(g.alloc_device(Dtype::F64, 5).expect("alloc"), 5),
            40,
        );
        assert!(cache.contains("A"));
        assert!(cache.contains("x"));
        assert!(!cache.contains("missing"));
        assert_eq!(cache.device_buffers().len(), 2);
    }

    #[test]
    fn remove_releases_budget_and_spares_other_entries() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(10_000);
        cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.insert_mat("B", Dtype::F64, mat(&mut g, 10, 10), 800);
        let removed = cache.remove("A").expect("resident");
        assert_eq!(removed.key, "A");
        assert_eq!(cache.used_bytes(), 800);
        assert!(!cache.contains("A"));
        assert!(cache.contains("B"));
        assert!(cache.remove("A").is_none());
        assert!(cache.remove("missing").is_none());
    }

    #[test]
    fn clear_returns_everything_in_lru_order() {
        let mut g = gpu();
        let mut cache = ResidencyCache::new(10_000);
        cache.insert_mat("A", Dtype::F64, mat(&mut g, 10, 10), 800);
        cache.insert_mat("B", Dtype::F64, mat(&mut g, 10, 10), 800);
        // Touch A so the LRU order is B, then A.
        cache
            .lookup_mat("A", Dtype::F64, 10, 10)
            .expect("shape ok")
            .expect("hit");
        let all = cache.clear();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key, "B");
        assert_eq!(all[1].key, "A");
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }
}
