//! The request-serving layer: a queued, admission-controlled executor that
//! dispatches heterogeneous routine requests across a [`MultiGpu`] pool.
//!
//! The single-call library of §IV-C schedules one BLAS call at a time; a
//! production deployment instead sees *traffic* — many requests, some
//! naming the same operands. This module adds the three ingredients
//! multi-request throughput comes from (following BLASX's shared tile
//! cache and dynamic device dispatch):
//!
//! 1. **Admission control.** A request whose worst-case device footprint
//!    cannot fit on the pool's smallest device is rejected at submission
//!    instead of failing mid-flight.
//! 2. **Policy-driven dispatch.** The queue drains through a pluggable
//!    [`SchedulePolicy`]: FIFO (the default baseline), earliest-deadline-
//!    first, or the prediction-guided policy that costs every request ×
//!    device pair with the paper's models
//!    ([`SystemProfile::predict_offload`](cocopelia_core::SystemProfile::predict_offload))
//!    and schedules to minimise pool makespan. Whatever the policy, the
//!    device for a request is never worse than the bounded-affinity
//!    ready-time heuristic: virtual clock plus the estimated upload time
//!    of the request's shared operands the device is missing, so an idle
//!    device steals work once the affine device falls far enough behind.
//! 3. **Cross-request residency.** Operands named by key
//!    ([`MatArg::shared`](crate::MatArg::shared)) live in a per-device LRU
//!    cache, so a matrix uploaded for request *N* is not re-transferred
//!    for request *N+1*.
//!
//! Each request terminates in exactly one [`RequestStatus`]. The executor
//! is fault-tolerant: retryable faults
//! ([`RuntimeError::fault_class`](crate::RuntimeError::fault_class)) are
//! retried up to [`ExecutorConfig::max_retries`] times after reclaiming
//! the device; a device that faults
//! [`ExecutorConfig::quarantine_after`] times in a row — or is lost
//! outright — is quarantined (its residency cache invalidated, its
//! allocations released) and the request re-dispatches to a healthy peer;
//! when every device is quarantined, requests degrade gracefully to host
//! BLAS at [`ExecutorConfig::host_gflops`]. Aggregate throughput,
//! queue-depth, occupancy, and `fault_*`/`retry_*`/`quarantine_*` metrics
//! flow through a [`cocopelia_obs::Registry`].
//!
//! On top of that baseline sits the straggler-defense and self-healing
//! tier, armed per session: hedged re-dispatch races a slow attempt
//! against a healthy peer and cancels the loser ([`HedgeConfig`]),
//! quarantine probation re-admits devices that pass canary probes
//! ([`ProbationConfig`]), and a retry token bucket with a circuit breaker
//! fails fast to host during fault storms ([`RetryBudgetConfig`]).
//!
//! Shared operands carry no host data (they are ghost uploads), so the
//! serving layer is a *timing* harness: drive it with pools built in
//! [`ExecMode::TimingOnly`](cocopelia_gpusim::ExecMode).
//!
//! [`MultiGpu`]: crate::MultiGpu

mod executor;
mod residency;
mod sched;
mod session;
mod telemetry;
mod trace;

pub use executor::{
    Executor, ExecutorConfig, HedgeConfig, ProbationConfig, RequestOutcome, RequestStatus,
    RetryBudgetConfig, ServeReport, ServeSnapshot, HEDGE_WARMUP,
};
pub use residency::ResidencyCache;
pub use sched::SchedulePolicy;
pub use session::{ServeOptions, ServeSession};
pub use telemetry::{TelemetryConfig, TelemetryReport, WatchWindow, FLOW_SECS_BOUNDS};
