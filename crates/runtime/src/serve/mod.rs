//! The request-serving layer: a queued, admission-controlled executor that
//! dispatches heterogeneous routine requests across a [`MultiGpu`] pool.
//!
//! The single-call library of §IV-C schedules one BLAS call at a time; a
//! production deployment instead sees *traffic* — many requests, some
//! naming the same operands. This module adds the three ingredients
//! multi-request throughput comes from (following BLASX's shared tile
//! cache and dynamic device dispatch):
//!
//! 1. **Admission control.** A request whose worst-case device footprint
//!    cannot fit is rejected at submission instead of failing mid-flight.
//! 2. **Virtual-time work dispatch.** Each queued request is pulled by the
//!    device that (a) already holds the most of its shared operands and
//!    (b) among those, has the earliest virtual clock — an idle device
//!    steals work unless affinity says otherwise.
//! 3. **Cross-request residency.** Operands named by key
//!    ([`MatArg::shared`](crate::MatArg::shared)) live in a per-device LRU
//!    cache, so a matrix uploaded for request *N* is not re-transferred
//!    for request *N+1*.
//!
//! Each request terminates in exactly one [`RequestStatus`]; transient
//! device failures (out-of-memory) are retried once after reclaiming the
//! device. Aggregate throughput, queue-depth, and occupancy metrics flow
//! through a [`cocopelia_obs::Registry`].
//!
//! Shared operands carry no host data (they are ghost uploads), so the
//! serving layer is a *timing* harness: drive it with pools built in
//! [`ExecMode::TimingOnly`](cocopelia_gpusim::ExecMode).
//!
//! [`MultiGpu`]: crate::MultiGpu

mod executor;
mod residency;

pub use executor::{Executor, ExecutorConfig, RequestOutcome, RequestStatus, ServeReport};
pub use residency::ResidencyCache;
