//! Request-lifecycle tracing for the serve executor.
//!
//! [`ServeTracer`] turns the executor's dispatch loop into a
//! [`ServeTrace`]: one queue-wait span per request, one span per dispatch
//! attempt (with `h2d`/`exec`/`d2h` child spans aggregated from the trace
//! entries the attempt produced), instants for quarantine and completion,
//! and host-fallback spans on a serial host clock. The queue span and the
//! first device attempt of a request share a flow id (the request id), so
//! viewers draw the queue-to-device hand-off arrow.
//!
//! All timestamps are virtual nanoseconds on the same axis as the
//! simulator's [`TraceEntry`] timestamps, so spans overlay the per-device
//! engine lanes exactly.

use cocopelia_gpusim::{EngineKind, TraceEntry};
use cocopelia_obs::{ServeTrace, SpanId, SpanLog, SpanPhase};
use std::collections::HashMap;

/// Span collector driven by the executor's dispatch loop.
#[derive(Debug, Default)]
pub(crate) struct ServeTracer {
    log: SpanLog,
    /// Virtual time the drain started (the queue spans' origin).
    t0_ns: u64,
    /// Requests whose first device attempt has been recorded (their flow
    /// is already linked; later attempts carry no flow id).
    flow_linked: HashMap<u64, ()>,
    /// Per-request queue origin for open arrivals: a request admitted at
    /// virtual time `t` has its queue span start there, not at `t0_ns`.
    queue_from: HashMap<u64, u64>,
    /// Serial virtual clock of host-fallback execution.
    host_ns: u64,
}

impl ServeTracer {
    /// Starts a trace at drain time `t0_ns`, recording a submit instant
    /// and the queue origin for the queued requests.
    pub(crate) fn begin_drain(&mut self, t0_ns: u64, queued: &[u64]) {
        self.t0_ns = t0_ns;
        self.host_ns = t0_ns;
        for &req in queued {
            self.log.record(
                None,
                req,
                None,
                SpanPhase::Submit,
                "submitted",
                t0_ns,
                t0_ns,
                None,
            );
        }
    }

    /// Records an open-arrival instant: the request entered the executor
    /// at virtual time `at_ns` (absolute, same axis as the device lanes),
    /// which also becomes its queue span's origin.
    pub(crate) fn arrive(&mut self, req: u64, at_ns: u64) {
        let at = at_ns.max(self.t0_ns);
        self.queue_from.insert(req, at);
        self.log
            .record(None, req, None, SpanPhase::Submit, "arrived", at, at, None);
    }

    /// Records a shed instant: admission control or backpressure refused
    /// the request at arrival.
    pub(crate) fn reject(&mut self, req: u64, at_ns: u64, reason: &str) {
        let at = at_ns.max(self.t0_ns);
        self.log.record(
            None,
            req,
            None,
            SpanPhase::Reject,
            reason.to_owned(),
            at,
            at,
            None,
        );
    }

    /// Records a coalesce instant: the request attached to the identical
    /// queued request `leader` and will share its execution.
    pub(crate) fn coalesce(&mut self, req: u64, leader: u64, at_ns: u64) {
        let at = at_ns.max(self.t0_ns);
        self.log.record(
            None,
            req,
            None,
            SpanPhase::Coalesce,
            format!("coalesced into r{leader}"),
            at,
            at,
            None,
        );
    }

    /// Records the queue-wait span of a request, ending where its first
    /// attempt starts. The span begins at the request's arrival instant
    /// (drain start for closed-queue submissions) and carries the flow id
    /// that the first device attempt will close.
    pub(crate) fn queue_wait(&mut self, req: u64, dispatch_ns: u64) {
        let from = self.queue_from.get(&req).copied().unwrap_or(self.t0_ns);
        self.log.record(
            None,
            req,
            None,
            SpanPhase::Queued,
            "queued",
            from,
            dispatch_ns.max(from),
            Some(req),
        );
    }

    /// Records one dispatch attempt on a device: the attempt span
    /// (`Dispatch` for attempt 0, `Retry` after) plus per-engine child
    /// spans aggregated from the trace entries the attempt produced,
    /// clamped into the attempt interval. The first attempt closes the
    /// request's queue flow.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn attempt(
        &mut self,
        req: u64,
        device: usize,
        attempt: u32,
        start_ns: u64,
        end_ns: u64,
        entries: &[TraceEntry],
        faulted: Option<&str>,
    ) {
        let phase = if attempt == 0 {
            SpanPhase::Dispatch
        } else {
            SpanPhase::Retry
        };
        let flow = (!self.flow_linked.contains_key(&req)).then_some(req);
        self.flow_linked.insert(req, ());
        let label = match faulted {
            Some(fault) => format!("attempt {attempt}: {fault}"),
            None => format!("attempt {attempt}"),
        };
        let parent = self.log.record(
            None,
            req,
            Some(device),
            phase,
            label,
            start_ns,
            end_ns,
            flow,
        );
        for (engine, phase) in [
            (EngineKind::CopyH2d, SpanPhase::H2d),
            (EngineKind::Compute, SpanPhase::Exec),
            (EngineKind::CopyD2h, SpanPhase::D2h),
        ] {
            self.engine_child(
                parent, req, device, phase, engine, start_ns, end_ns, entries,
            );
        }
    }

    /// Aggregates one engine's entries into a child span of the attempt.
    #[allow(clippy::too_many_arguments)]
    fn engine_child(
        &mut self,
        parent: SpanId,
        req: u64,
        device: usize,
        phase: SpanPhase,
        engine: EngineKind,
        start_ns: u64,
        end_ns: u64,
        entries: &[TraceEntry],
    ) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut n = 0usize;
        for e in entries.iter().filter(|e| e.engine == engine) {
            lo = lo.min(e.start.as_nanos());
            hi = hi.max(e.end.as_nanos());
            n += 1;
        }
        if n == 0 {
            return;
        }
        // Clamp into the attempt interval so the child never escapes its
        // parent (span invariant 4) even if an engine slot predates the
        // dispatch clock sample.
        let lo = lo.clamp(start_ns, end_ns);
        let hi = hi.clamp(lo, end_ns);
        self.log.record(
            Some(parent),
            req,
            Some(device),
            phase,
            format!("{} ({n} ops)", engine.name()),
            lo,
            hi,
            None,
        );
    }

    /// Records a speculative hedge attempt on device `device`, racing the
    /// request's primary attempt. The span carries no flow id (the
    /// primary attempt owns the queue hand-off) but gets the same
    /// per-engine child spans as a regular attempt.
    pub(crate) fn hedge(
        &mut self,
        req: u64,
        device: usize,
        start_ns: u64,
        end_ns: u64,
        entries: &[TraceEntry],
        label: &str,
    ) {
        let parent = self.log.record(
            None,
            req,
            Some(device),
            SpanPhase::Hedge,
            label.to_owned(),
            start_ns,
            end_ns,
            None,
        );
        for (engine, phase) in [
            (EngineKind::CopyH2d, SpanPhase::H2d),
            (EngineKind::Compute, SpanPhase::Exec),
            (EngineKind::CopyD2h, SpanPhase::D2h),
        ] {
            self.engine_child(
                parent, req, device, phase, engine, start_ns, end_ns, entries,
            );
        }
    }

    /// Records a cross-request prefetch: a speculative h2d upload of the
    /// *queued* request `target`'s shared operands on device `device`,
    /// riding under another request's compute. The span carries the
    /// target's request id but no flow (the target's queue flow closes at
    /// its own first attempt) and deliberately overlaps the running
    /// request's attempt span.
    pub(crate) fn prefetch(
        &mut self,
        target: u64,
        device: usize,
        start_ns: u64,
        end_ns: u64,
        label: &str,
    ) {
        self.log.record(
            None,
            target,
            Some(device),
            SpanPhase::Prefetch,
            label.to_owned(),
            start_ns,
            end_ns.max(start_ns),
            None,
        );
    }

    /// Records the cancellation instant of a hedge race's losing side on
    /// device `device` — the moment the loser's clock was rewound to.
    pub(crate) fn cancel(&mut self, req: u64, device: usize, at_ns: u64, label: &str) {
        self.log.record(
            None,
            req,
            Some(device),
            SpanPhase::Cancel,
            label.to_owned(),
            at_ns,
            at_ns,
            None,
        );
    }

    /// Records a probation canary probe on quarantined device `device`.
    /// Probes belong to no request; they use the reserved request id
    /// `u64::MAX` so viewers group them on their own track.
    pub(crate) fn probe(&mut self, device: usize, start_ns: u64, end_ns: u64, label: &str) {
        self.log.record(
            None,
            u64::MAX,
            Some(device),
            SpanPhase::Probe,
            label.to_owned(),
            start_ns,
            end_ns,
            None,
        );
    }

    /// Records a quarantine instant on the device that faulted out.
    pub(crate) fn quarantine(&mut self, req: u64, device: usize, at_ns: u64) {
        self.log.record(
            None,
            req,
            Some(device),
            SpanPhase::Quarantine,
            format!("quarantined dev{device}"),
            at_ns,
            at_ns,
            None,
        );
    }

    /// Records a host-fallback run on the serial host clock, which never
    /// runs backwards and never starts before `not_before_ns` (the end of
    /// the request's last device attempt).
    pub(crate) fn host_fallback(&mut self, req: u64, not_before_ns: u64, elapsed_ns: u64) {
        let start = self.host_ns.max(not_before_ns);
        let end = start + elapsed_ns;
        self.host_ns = end;
        // A request that never reached a device closes its queue flow
        // here, so the hand-off arrow points at the host lane instead of
        // dangling.
        let flow = (!self.flow_linked.contains_key(&req)).then_some(req);
        self.flow_linked.insert(req, ());
        self.log.record(
            None,
            req,
            None,
            SpanPhase::HostFallback,
            "host fallback",
            start,
            end,
            flow,
        );
    }

    /// Records the terminal instant of a request (`completed`,
    /// `timed-out`, `failed`).
    pub(crate) fn complete(&mut self, req: u64, at_ns: u64, status: &str) {
        self.log.record(
            None,
            req,
            None,
            SpanPhase::Complete,
            status.to_owned(),
            at_ns,
            at_ns,
            None,
        );
    }

    /// End of the host clock so far (where the next fallback would start).
    pub(crate) fn host_now_ns(&self) -> u64 {
        self.host_ns
    }

    /// Id the next span will get — the telemetry watermark for
    /// [`SpanLog::spans_since`].
    pub(crate) fn next_span_id(&self) -> u64 {
        self.log.next_id()
    }

    /// Spans recorded at or after the id watermark `mark`.
    pub(crate) fn spans_since(&self, mark: u64) -> &[cocopelia_obs::Span] {
        self.log.spans_since(mark)
    }

    /// Amortized capacity enforcement (oldest spans dropped); call once
    /// per dispatch, not per span.
    pub(crate) fn enforce_cap(&mut self, cap: usize) {
        self.log.enforce_cap_amortized(cap);
    }

    /// Exact cap enforcement for report time.
    pub(crate) fn trim_to(&mut self, cap: usize) {
        self.log.truncate_front_to(cap);
    }

    /// Spans dropped by cap enforcement so far.
    pub(crate) fn dropped(&self) -> u64 {
        self.log.dropped()
    }

    /// Drains the collected spans into a [`ServeTrace`] over the given
    /// device lanes.
    pub(crate) fn finish(&mut self, lanes: Vec<cocopelia_obs::DeviceLane>) -> ServeTrace {
        let log = std::mem::take(&mut self.log);
        self.flow_linked.clear();
        self.queue_from.clear();
        ServeTrace {
            spans: log.into_spans(),
            lanes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_obs::check_spans;

    #[test]
    fn tracer_produces_invariant_clean_spans() {
        let mut t = ServeTracer::default();
        t.begin_drain(1000, &[0, 1]);
        t.queue_wait(0, 2000);
        t.attempt(0, 0, 0, 2000, 5000, &[], None);
        t.complete(0, 5000, "completed");
        t.queue_wait(1, 5000);
        t.attempt(1, 0, 0, 5000, 6000, &[], Some("kernel fault"));
        t.quarantine(1, 0, 6000);
        t.attempt(1, 1, 1, 6000, 9000, &[], None);
        t.complete(1, 9000, "completed");
        let trace = t.finish(Vec::new());
        check_spans(&trace.spans).expect("tracer spans satisfy invariants");
        assert_eq!(trace.request_spans(1).len(), 6);
    }

    #[test]
    fn arrival_queue_spans_start_at_arrival_instant() {
        let mut t = ServeTracer::default();
        t.begin_drain(1000, &[]);
        t.arrive(1, 3000);
        t.queue_wait(1, 5000);
        t.attempt(1, 0, 0, 5000, 7000, &[], None);
        t.complete(1, 7000, "completed");
        t.arrive(2, 3500);
        t.reject(2, 3500, "queue full: depth 1 at cap 1");
        t.arrive(3, 4000);
        t.coalesce(3, 1, 4000);
        t.complete(3, 7000, "completed");
        let trace = t.finish(Vec::new());
        check_spans(&trace.spans).expect("clean");
        let q = trace
            .spans
            .iter()
            .find(|s| s.phase == SpanPhase::Queued && s.request == 1)
            .expect("queue span");
        assert_eq!(q.start_ns, 3000, "queue wait begins at arrival, not t0");
        assert!(trace.spans.iter().any(|s| s.phase == SpanPhase::Reject));
        assert!(trace.spans.iter().any(|s| s.phase == SpanPhase::Coalesce));
    }

    #[test]
    fn hedge_cancel_probe_spans_satisfy_invariants() {
        let mut t = ServeTracer::default();
        t.begin_drain(0, &[4]);
        t.queue_wait(4, 100);
        // A hedge won the race: the primary attempt ends at the hedge's
        // completion instant with a cancel instant on its device, and the
        // hedge span strictly overlaps the primary.
        t.attempt(4, 0, 0, 100, 700, &[], Some("cancelled: hedge won"));
        t.cancel(4, 0, 700, "cancelled by hedge on dev1");
        t.hedge(4, 1, 400, 700, &[], "hedge on dev1 (won)");
        t.complete(4, 700, "completed");
        // Probation canaries on the quarantined device.
        t.probe(0, 900, 1000, "probe fault: kernel fault");
        t.probe(0, 1500, 1600, "probe ok (1/1)");
        let trace = t.finish(Vec::new());
        check_spans(&trace.spans).expect("hedge/cancel/probe spans are invariant-clean");
        assert!(trace.spans.iter().any(|s| s.phase == SpanPhase::Hedge));
        assert!(trace.spans.iter().any(|s| s.phase == SpanPhase::Cancel));
        let probes: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.phase == SpanPhase::Probe)
            .collect();
        assert_eq!(probes.len(), 2);
        assert!(probes.iter().all(|s| s.request == u64::MAX));
    }

    #[test]
    fn prefetch_spans_overlap_the_running_attempt_cleanly() {
        let mut t = ServeTracer::default();
        t.begin_drain(0, &[0, 1]);
        t.queue_wait(0, 100);
        t.attempt(0, 0, 0, 100, 900, &[], None);
        // Request 1's operands prefetched under request 0's compute: the
        // span belongs to request 1 and overlaps both request 0's attempt
        // and request 1's own (still-open) queue wait.
        t.prefetch(1, 0, 300, 600, "prefetch 2 operand(s) for r1");
        t.complete(0, 900, "completed");
        t.queue_wait(1, 900);
        t.attempt(1, 0, 0, 900, 1400, &[], None);
        t.complete(1, 1400, "completed");
        let trace = t.finish(Vec::new());
        check_spans(&trace.spans).expect("prefetch spans are invariant-clean");
        let p = trace
            .spans
            .iter()
            .find(|s| s.phase == SpanPhase::Prefetch)
            .expect("prefetch span");
        assert_eq!(p.request, 1);
        assert_eq!(p.device, Some(0));
        assert!(p.flow.is_none(), "prefetch never closes the queue flow");
    }

    #[test]
    fn host_clock_is_serial_and_flows_link_once() {
        let mut t = ServeTracer::default();
        t.begin_drain(0, &[7, 8]);
        t.queue_wait(7, 100);
        t.attempt(7, 0, 0, 100, 200, &[], Some("lost"));
        t.host_fallback(7, 200, 500);
        t.complete(7, t.host_now_ns(), "completed");
        t.queue_wait(8, 100);
        // Request 8 never reached a device; its fallback must start after
        // request 7's host run ends.
        t.host_fallback(8, 100, 300);
        t.complete(8, t.host_now_ns(), "completed");
        let trace = t.finish(Vec::new());
        check_spans(&trace.spans).expect("clean");
        let host: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.phase == SpanPhase::HostFallback)
            .collect();
        assert_eq!(host.len(), 2);
        assert!(host[1].start_ns >= host[0].end_ns, "host runs serialize");
        // Only the queue span and first attempt carry the flow id.
        let flows_7: Vec<_> = trace.spans.iter().filter(|s| s.flow == Some(7)).collect();
        assert_eq!(flows_7.len(), 2);
    }
}
