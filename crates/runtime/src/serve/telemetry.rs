//! Streaming telemetry for the serve executor: windowed metrics, SLO
//! evaluation, the span flight recorder, and incremental Perfetto
//! export — the `serve --watch` machinery.
//!
//! The executor drives a [`Telemetry`] instance from its dispatch loop:
//! each finished request lands counters and a flow-time observation in
//! the open [`WindowedMetrics`] window, freshly recorded spans are fed
//! to the [`FlightRecorder`] ring and appended to the incremental
//! Perfetto stream, and window rotation (driven by the *device clock*,
//! never wall time) closes windows into [`WatchWindow`] lines and
//! evaluates the SLO engine. SLO evaluation is edge-triggered and also
//! runs intra-window, so a hard breach dumps the flight recorder while
//! the offending request's spans are still in the ring.
//!
//! Memory is O(window + ring + #closed windows): the open window holds a
//! handful of counters and one bounded histogram, the ring holds at most
//! its capacity in spans, and the streamed Perfetto file lives on disk,
//! not in memory. Telemetry only *reads* device clocks, so telemetry-on
//! and telemetry-off runs stay bit-identical in virtual time.

use cocopelia_gpusim::SimTime;
use cocopelia_obs::perfetto::StreamWriter;
use cocopelia_obs::slo::names;
use cocopelia_obs::{
    FlightDump, FlightRecorder, Registry, SloBreach, SloEngine, SloSpec, SloStatus, Span,
    WindowSnapshot, WindowedMetrics,
};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use super::{RequestOutcome, RequestStatus};

/// Flow-time histogram bounds (seconds) for per-window percentiles.
pub const FLOW_SECS_BOUNDS: [f64; 14] = [
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Ceiling on stored flight-recorder dumps (each is O(ring) spans).
const MAX_DUMPS: usize = 32;

/// Configuration of the executor's streaming telemetry hook.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Window length on the virtual-time axis.
    pub window: SimTime,
    /// Objectives evaluated per window (empty = no SLO engine output).
    pub slos: Vec<SloSpec>,
    /// Flight-recorder ring capacity, in spans.
    pub recorder_cap: usize,
    /// Span-log capacity cap applied to the tracer while telemetry is
    /// on (`None` = unbounded, the pre-watch behaviour).
    pub trace_cap: Option<usize>,
    /// Stream Perfetto packets incrementally to this file.
    pub stream_path: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window: SimTime::from_secs_f64(5e-3),
            slos: Vec::new(),
            recorder_cap: 2048,
            trace_cap: Some(8192),
            stream_path: None,
        }
    }
}

/// One closed telemetry window, rendered as a `serve --watch` line.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchWindow {
    /// Zero-based window index.
    pub index: u64,
    /// Window start (virtual time since drain start).
    pub start: SimTime,
    /// Window end (exclusive; truncated for the final partial window).
    pub end: SimTime,
    /// Queue depth when the window closed.
    pub queue_depth: usize,
    /// Requests that reached a terminal state in the window.
    pub finished: u64,
    /// …of which completed within deadline.
    pub completed: u64,
    /// …of which finished past their deadline.
    pub deadline_missed: u64,
    /// …of which failed terminally.
    pub failed: u64,
    /// Requests shed by admission control or backpressure in the window
    /// (not counted in `finished`; they never ran).
    pub rejected: u64,
    /// Requests that coalesced onto an identical queued request and
    /// completed with it in the window.
    pub coalesced: u64,
    /// p95 flow time of the window's finished requests, seconds.
    pub flow_p95_secs: Option<f64>,
    /// Residency-cache hit rate in the window, when it saw lookups.
    pub residency_hit_rate: Option<f64>,
    /// Device faults observed in the window.
    pub faults: u64,
    /// Quarantined devices when the window closed.
    pub quarantined: usize,
    /// Mean absolute scheduling-prediction drift, seconds.
    pub mean_abs_drift: f64,
    /// Hedge attempts launched in the window.
    pub hedges: u64,
    /// …of which beat their primary attempt.
    pub hedge_wins: u64,
    /// Probation canary probes run in the window.
    pub probes: u64,
    /// Retries refused fast (budget exhausted or breaker open).
    pub fastfails: u64,
    /// Cross-request operand prefetches issued in the window.
    pub prefetches: u64,
    /// …of which were claimed by their target request at dispatch.
    pub prefetch_hits: u64,
    /// Per-objective verdicts (empty when no SLOs are configured).
    pub slo: Vec<SloStatus>,
}

impl WatchWindow {
    /// The deterministic one-line rendering `serve --watch` prints.
    pub fn render(&self) -> String {
        let ms = |t: SimTime| t.as_secs_f64() * 1e3;
        let p95 = match self.flow_p95_secs {
            Some(v) => format!("{:.3}ms", v * 1e3),
            None => "-".to_owned(),
        };
        let hit = match self.residency_hit_rate {
            Some(v) => format!("{:.0}%", v * 100.0),
            None => "-".to_owned(),
        };
        let slo = if self.slo.is_empty() {
            "-".to_owned()
        } else if self.slo.iter().all(|s| s.ok) {
            "ok".to_owned()
        } else {
            let breached: Vec<String> = self
                .slo
                .iter()
                .filter(|s| !s.ok)
                .map(|s| match s.observed {
                    // A latched breach with no observations this window
                    // stays BREACH but has no number to compare.
                    Some(v) if v.is_finite() => {
                        format!("{} {:.4}>{}", s.spec.kind.name(), v, s.spec.limit)
                    }
                    _ => s.spec.kind.name().to_owned(),
                })
                .collect();
            format!("BREACH({})", breached.join(","))
        };
        // The straggler-defense columns appear only when the window saw
        // such activity, so runs with hedging/probation/budgets disarmed
        // render byte-identically to earlier versions.
        let mut defense = String::new();
        if self.hedges > 0 || self.hedge_wins > 0 {
            let _ = write!(defense, " hedge={}/{}", self.hedges, self.hedge_wins);
        }
        if self.probes > 0 {
            let _ = write!(defense, " probe={}", self.probes);
        }
        if self.fastfails > 0 {
            let _ = write!(defense, " ff={}", self.fastfails);
        }
        // The prefetch hit-rate column follows the same only-when-active
        // rule: `pf=hits/issued` is the window's prefetch hit rate.
        if self.prefetches > 0 || self.prefetch_hits > 0 {
            let _ = write!(defense, " pf={}/{}", self.prefetch_hits, self.prefetches);
        }
        format!(
            "[w{:03} {:9.3}-{:9.3}ms] q={} done={} miss={} fail={} rej={} coal={} p95={} hit={} faults={} quar={} drift={:.3}us{} slo={}",
            self.index,
            ms(self.start),
            ms(self.end),
            self.queue_depth,
            self.completed,
            self.deadline_missed,
            self.failed,
            self.rejected,
            self.coalesced,
            p95,
            hit,
            self.faults,
            self.quarantined,
            self.mean_abs_drift * 1e6,
            defense,
            slo,
        )
    }
}

/// End-of-run summary of what the telemetry layer saw and kept.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Window length used.
    pub window: SimTime,
    /// Every closed window, in order (the `--watch` lines).
    pub windows: Vec<WatchWindow>,
    /// Every ok→breached SLO transition, in firing order.
    pub breaches: Vec<SloBreach>,
    /// Flight-recorder dumps captured at breach/quarantine instants.
    pub dumps: Vec<FlightDump>,
    /// Spans left in the ring at end of run (≤ `recorder_cap`).
    pub recorder_len: usize,
    /// The ring's configured capacity.
    pub recorder_cap: usize,
    /// Spans the ring evicted over the run.
    pub recorder_dropped: u64,
    /// Perfetto packets streamed to disk (0 when streaming was off).
    pub stream_packets: u64,
    /// Bytes streamed to disk.
    pub stream_bytes: u64,
    /// First streaming I/O error, if any (streaming then stopped; the
    /// run itself is never failed by telemetry I/O).
    pub stream_error: Option<String>,
}

impl TelemetryReport {
    /// Compact multi-line summary appended to the serve report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry: {} windows of {:.3} ms, ring {}/{} spans ({} evicted), {} breach(es), {} dump(s)\n",
            self.windows.len(),
            self.window.as_secs_f64() * 1e3,
            self.recorder_len,
            self.recorder_cap,
            self.recorder_dropped,
            self.breaches.len(),
            self.dumps.len(),
        ));
        if self.stream_packets > 0 {
            out.push_str(&format!(
                "  stream: {} packets, {} bytes\n",
                self.stream_packets, self.stream_bytes
            ));
        }
        if let Some(err) = &self.stream_error {
            out.push_str(&format!("  stream error: {err}\n"));
        }
        for b in &self.breaches {
            out.push_str(&format!("  {b}\n"));
        }
        for d in &self.dumps {
            out.push_str(&format!(
                "  dump @ {:.3} ms: {} ({} spans, {} evicted before)\n",
                d.at_ns as f64 / 1e6,
                d.reason,
                d.spans.len(),
                d.dropped_before,
            ));
        }
        out
    }
}

/// Executor-side snapshot of the loop state a telemetry tick needs.
pub(crate) struct TickState<'a> {
    /// Max device-clock advance since drain start, nanoseconds (the
    /// virtual "now" that rotates windows).
    pub elapsed_ns: u64,
    /// Requests still queued.
    pub queue_depth: usize,
    /// Quarantined device count.
    pub quarantined: usize,
    /// Mean absolute prediction drift so far, seconds.
    pub mean_abs_drift: f64,
    /// The run-lifetime registry (read-only; per-window deltas are
    /// derived against an internal baseline).
    pub metrics: &'a Registry,
}

/// Callback receiving each closed window as it closes.
pub(crate) type WatchSink = Box<dyn FnMut(&WatchWindow)>;

/// The executor's streaming telemetry state.
pub(crate) struct Telemetry {
    cfg: TelemetryConfig,
    win: WindowedMetrics,
    slo: SloEngine,
    recorder: FlightRecorder,
    stream: Option<StreamWriter<BufWriter<File>>>,
    stream_error: Option<String>,
    sink: Option<WatchSink>,
    windows: Vec<WatchWindow>,
    breaches: Vec<SloBreach>,
    dumps: Vec<FlightDump>,
    /// Span-id watermark into the tracer's log.
    span_mark: u64,
    /// Per-device engine-trace watermark for lane streaming.
    lane_mark: Vec<usize>,
    /// Registry-counter baseline for per-window deltas.
    base: BTreeMap<String, u64>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("cfg", &self.cfg)
            .field("windows", &self.windows.len())
            .field("breaches", &self.breaches.len())
            .field("dumps", &self.dumps.len())
            .field("recorder_len", &self.recorder.len())
            .field("streaming", &self.stream.is_some())
            .finish()
    }
}

impl Telemetry {
    /// Creates telemetry state, opening the stream file if configured.
    pub(crate) fn new(cfg: TelemetryConfig) -> std::io::Result<Self> {
        let stream = match &cfg.stream_path {
            Some(path) => Some(StreamWriter::new(BufWriter::new(File::create(path)?))),
            None => None,
        };
        Ok(Telemetry {
            win: WindowedMetrics::new(cfg.window.as_nanos().max(1)),
            slo: SloEngine::new(cfg.slos.clone()),
            recorder: FlightRecorder::new(cfg.recorder_cap),
            stream,
            stream_error: None,
            sink: None,
            windows: Vec::new(),
            breaches: Vec::new(),
            dumps: Vec::new(),
            span_mark: 0,
            lane_mark: Vec::new(),
            base: BTreeMap::new(),
            cfg,
        })
    }

    pub(crate) fn set_sink(&mut self, sink: WatchSink) {
        self.sink = Some(sink);
    }

    /// Resets per-run state at drain start. `lane_marks` are the current
    /// per-device trace lengths (entries before the drain are not ours).
    pub(crate) fn begin(&mut self, lane_marks: Vec<usize>, metrics: &Registry) {
        self.win = WindowedMetrics::new(self.cfg.window.as_nanos().max(1));
        self.slo = SloEngine::new(self.cfg.slos.clone());
        self.recorder = FlightRecorder::new(self.cfg.recorder_cap);
        self.windows.clear();
        self.breaches.clear();
        self.dumps.clear();
        self.span_mark = 0;
        self.lane_mark = lane_marks;
        self.base.clear();
        // Baseline every delta-tracked counter so pre-run counts (e.g.
        // from an earlier drain on the same executor) don't leak in.
        for name in DELTA_COUNTERS {
            self.base.insert((*name).to_owned(), metrics.counter(name));
        }
    }

    /// Feeds spans recorded since the last call into the ring and the
    /// Perfetto stream; returns the new watermark.
    pub(crate) fn drain_spans(&mut self, spans: &[Span], next_id: u64) {
        if !spans.is_empty() {
            if self.stream.is_some() {
                self.stream_op(|w| w.write_spans(spans));
            }
            for s in spans {
                self.recorder.record(s.clone());
            }
        }
        self.span_mark = next_id;
    }

    /// The span-id watermark (spans with ids ≥ this are unseen).
    pub(crate) fn span_mark(&self) -> u64 {
        self.span_mark
    }

    /// Per-device engine-trace watermark.
    pub(crate) fn lane_mark(&self, d: usize) -> usize {
        self.lane_mark.get(d).copied().unwrap_or(0)
    }

    /// Streams freshly produced engine entries of device `d`.
    pub(crate) fn stream_lane(
        &mut self,
        d: usize,
        name: &str,
        entries: &[cocopelia_gpusim::TraceEntry],
        new_len: usize,
    ) {
        if self.lane_mark.len() <= d {
            self.lane_mark.resize(d + 1, 0);
        }
        self.lane_mark[d] = new_len;
        if !entries.is_empty() && self.stream.is_some() {
            self.stream_op(|w| w.write_entries(d, name, entries));
        }
    }

    /// Records one finished request into the open window. A rejected
    /// request never ran, so it counts only toward the window's
    /// `rejected` (feeding the `rejected` SLO kind), not `finished`.
    pub(crate) fn on_outcome(&mut self, outcome: &RequestOutcome, flow_secs: f64) {
        let (completed, missed, failed) = match &outcome.status {
            RequestStatus::Completed(_) => (1, 0, 0),
            RequestStatus::TimedOut { .. } => (0, 1, 0),
            RequestStatus::Failed(_) => (0, 0, 1),
            RequestStatus::Rejected { .. } => {
                self.win.counter_add(names::REJECTED, 1);
                return;
            }
        };
        if outcome.coalesced {
            self.win.counter_add(names::COALESCED, 1);
        }
        self.win.counter_add(names::FINISHED, 1);
        self.win.counter_add(names::COMPLETED, completed);
        self.win.counter_add(names::DEADLINE_MISSED, missed);
        self.win.counter_add(names::FAILED, failed);
        self.win
            .counter_add(names::ATTEMPTS, u64::from(outcome.retries) + 1);
        if flow_secs.is_finite() {
            self.win
                .histogram_observe(names::FLOW_SECS, &FLOW_SECS_BOUNDS, flow_secs);
        }
    }

    /// A device was quarantined: dump the ring (the incident's spans are
    /// already in it) and flush the stream so the trace survives even a
    /// quarantine-to-empty-pool drain or terminal DeviceLost.
    pub(crate) fn on_quarantine(&mut self, device: usize, request: u64, at_ns: u64) {
        let reason = format!("quarantine dev{device} (request {request})");
        self.capture_dump(reason, at_ns);
        self.flush_stream();
    }

    /// Flushes the Perfetto stream (checkpoint on error paths and at
    /// window boundaries).
    pub(crate) fn flush_stream(&mut self) {
        if self.stream.is_some() {
            self.stream_op(|w| w.flush());
        }
    }

    /// Window rotation + SLO evaluation; call once per dispatch with the
    /// current loop state. Closes every window the device clock has
    /// passed, emits their `WatchWindow`s (sink + report), fires
    /// edge-triggered breach dumps, and then fast-path-evaluates the
    /// open window so a hard breach dumps immediately.
    pub(crate) fn tick(&mut self, st: &TickState<'_>) {
        self.inject(st);
        let closed = self.win.advance_to(st.elapsed_ns);
        let rotated = !closed.is_empty();
        for snap in closed {
            self.close_window(snap);
        }
        if rotated {
            self.flush_stream();
        }
        // Intra-window fast path: a breach observable mid-window fires
        // now, while the breaching request's spans are still ringed.
        let peek = self.win.peek(st.elapsed_ns);
        let partial = self.slo.evaluate_partial(&peek);
        for b in partial {
            self.capture_dump(format!("{b}"), b.at_ns);
            self.breaches.push(b);
        }
    }

    /// Final rotation at drain end: closes the partial window (if it has
    /// any content or time), evaluates it, flushes the stream, and
    /// returns the end-of-run summary.
    pub(crate) fn finish(&mut self, st: &TickState<'_>) -> TelemetryReport {
        self.inject(st);
        for snap in self.win.advance_to(st.elapsed_ns) {
            self.close_window(snap);
        }
        if st.elapsed_ns > self.win.open_start_ns() {
            let snap = self.win.close_now(st.elapsed_ns);
            self.close_window(snap);
        }
        self.flush_stream();
        TelemetryReport {
            window: self.cfg.window,
            windows: std::mem::take(&mut self.windows),
            breaches: std::mem::take(&mut self.breaches),
            dumps: std::mem::take(&mut self.dumps),
            recorder_len: self.recorder.len(),
            recorder_cap: self.recorder.capacity(),
            recorder_dropped: self.recorder.dropped(),
            stream_packets: self.stream.as_ref().map(|w| w.packets()).unwrap_or(0),
            stream_bytes: self.stream.as_ref().map(|w| w.bytes_written()).unwrap_or(0),
            stream_error: self.stream_error.clone(),
        }
    }

    // ---- internals ----

    /// Samples gauges and registry-counter deltas into the open window.
    fn inject(&mut self, st: &TickState<'_>) {
        self.win
            .gauge_set(names::QUEUE_DEPTH, st.queue_depth as f64);
        self.win
            .gauge_set(names::QUARANTINED, st.quarantined as f64);
        self.win.gauge_set(names::DRIFT, st.mean_abs_drift);
        let faults = self.delta(st.metrics, "fault_transient_total")
            + self.delta(st.metrics, "fault_degraded_total")
            + self.delta(st.metrics, "fault_fatal_total");
        self.win.counter_add(names::FAULTS, faults);
        let hits = self.delta(st.metrics, "residency_hits_total");
        let misses = self.delta(st.metrics, "residency_misses_total");
        self.win.counter_add(names::RESIDENCY_HITS, hits);
        self.win.counter_add(names::RESIDENCY_MISSES, misses);
        let hedges = self.delta(st.metrics, "hedge_attempts_total");
        let hedge_wins = self.delta(st.metrics, "hedge_wins_total");
        let probes = self.delta(st.metrics, "probe_attempts_total");
        let fastfails = self.delta(st.metrics, "budget_fastfail_total");
        self.win.counter_add(names::HEDGES, hedges);
        self.win.counter_add(names::HEDGE_WINS, hedge_wins);
        self.win.counter_add(names::PROBES, probes);
        self.win.counter_add(names::BUDGET_FASTFAILS, fastfails);
        let prefetches = self.delta(st.metrics, "prefetch_issued_total");
        let prefetch_hits = self.delta(st.metrics, "prefetch_hits_total");
        self.win.counter_add(names::PREFETCHES, prefetches);
        self.win.counter_add(names::PREFETCH_HITS, prefetch_hits);
    }

    fn delta(&mut self, metrics: &Registry, name: &str) -> u64 {
        let cur = metrics.counter(name);
        let base = self.base.entry(name.to_owned()).or_insert(0);
        let d = cur.saturating_sub(*base);
        *base = cur;
        d
    }

    fn close_window(&mut self, snap: WindowSnapshot) {
        let (statuses, breaches) = self.slo.evaluate(&snap);
        let ww = watch_window(&snap, statuses);
        if let Some(sink) = self.sink.as_mut() {
            sink(&ww);
        }
        self.windows.push(ww);
        for b in breaches {
            self.capture_dump(format!("{b}"), b.at_ns);
            self.breaches.push(b);
        }
    }

    fn capture_dump(&mut self, reason: String, at_ns: u64) {
        if self.dumps.len() >= MAX_DUMPS {
            return;
        }
        self.dumps
            .push(self.recorder.dump(reason, self.win.index(), at_ns));
        self.flush_stream();
    }

    fn stream_op(
        &mut self,
        op: impl FnOnce(&mut StreamWriter<BufWriter<File>>) -> std::io::Result<()>,
    ) {
        if let Some(w) = self.stream.as_mut() {
            if let Err(e) = op(w) {
                // First error wins; streaming stops, the run continues.
                self.stream_error.get_or_insert_with(|| e.to_string());
                self.stream = None;
            }
        }
    }
}

/// Registry counters whose per-window deltas telemetry tracks.
const DELTA_COUNTERS: &[&str] = &[
    "fault_transient_total",
    "fault_degraded_total",
    "fault_fatal_total",
    "residency_hits_total",
    "residency_misses_total",
    "hedge_attempts_total",
    "hedge_wins_total",
    "probe_attempts_total",
    "budget_fastfail_total",
    "prefetch_issued_total",
    "prefetch_hits_total",
];

fn watch_window(s: &WindowSnapshot, slo: Vec<SloStatus>) -> WatchWindow {
    let hits = s.counter(names::RESIDENCY_HITS);
    let misses = s.counter(names::RESIDENCY_MISSES);
    WatchWindow {
        index: s.index,
        start: SimTime::from_nanos(s.start_ns),
        end: SimTime::from_nanos(s.end_ns),
        queue_depth: s.gauge(names::QUEUE_DEPTH).unwrap_or(0.0) as usize,
        finished: s.counter(names::FINISHED),
        completed: s.counter(names::COMPLETED),
        deadline_missed: s.counter(names::DEADLINE_MISSED),
        failed: s.counter(names::FAILED),
        rejected: s.counter(names::REJECTED),
        coalesced: s.counter(names::COALESCED),
        flow_p95_secs: s
            .digest(names::FLOW_SECS)
            .filter(|d| d.count > 0)
            .map(|d| d.p95),
        residency_hit_rate: (hits + misses > 0).then(|| hits as f64 / (hits + misses) as f64),
        faults: s.counter(names::FAULTS),
        quarantined: s.gauge(names::QUARANTINED).unwrap_or(0.0) as usize,
        mean_abs_drift: s.gauge(names::DRIFT).unwrap_or(0.0),
        hedges: s.counter(names::HEDGES),
        hedge_wins: s.counter(names::HEDGE_WINS),
        probes: s.counter(names::PROBES),
        fastfails: s.counter(names::BUDGET_FASTFAILS),
        prefetches: s.counter(names::PREFETCHES),
        prefetch_hits: s.counter(names::PREFETCH_HITS),
        slo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_window_render_is_stable() {
        let ww = WatchWindow {
            index: 3,
            start: SimTime::from_nanos(15_000_000),
            end: SimTime::from_nanos(20_000_000),
            queue_depth: 4,
            finished: 10,
            completed: 9,
            deadline_missed: 1,
            failed: 0,
            rejected: 2,
            coalesced: 1,
            flow_p95_secs: Some(0.00231),
            residency_hit_rate: Some(0.875),
            faults: 2,
            quarantined: 0,
            mean_abs_drift: 1.25e-6,
            hedges: 0,
            hedge_wins: 0,
            probes: 0,
            fastfails: 0,
            prefetches: 0,
            prefetch_hits: 0,
            slo: Vec::new(),
        };
        assert_eq!(
            ww.render(),
            "[w003    15.000-   20.000ms] q=4 done=9 miss=1 fail=0 rej=2 coal=1 p95=2.310ms hit=88% faults=2 quar=0 drift=1.250us slo=-"
        );
        let empty = WatchWindow {
            flow_p95_secs: None,
            residency_hit_rate: None,
            ..ww.clone()
        };
        assert!(empty.render().contains("p95=- hit=-"));
        // Straggler-defense columns appear only when the window saw that
        // activity — and then between drift and slo.
        let busy = WatchWindow {
            hedges: 3,
            hedge_wins: 1,
            probes: 2,
            fastfails: 4,
            ..ww
        };
        assert!(
            busy.render()
                .contains("drift=1.250us hedge=3/1 probe=2 ff=4 slo=-"),
            "{}",
            busy.render()
        );
        // The prefetch hit-rate column rides with the defense columns,
        // after fast-fails.
        let prefetching = WatchWindow {
            prefetches: 5,
            prefetch_hits: 4,
            ..busy
        };
        assert!(
            prefetching
                .render()
                .contains("hedge=3/1 probe=2 ff=4 pf=4/5 slo=-"),
            "{}",
            prefetching.render()
        );
    }

    #[test]
    fn telemetry_without_stream_needs_no_fs() {
        let mut t = Telemetry::new(TelemetryConfig::default()).expect("no file needed");
        let reg = Registry::default();
        t.begin(vec![0, 0], &reg);
        let st = TickState {
            elapsed_ns: 12_000_000,
            queue_depth: 0,
            quarantined: 0,
            mean_abs_drift: 0.0,
            metrics: &reg,
        };
        t.tick(&st);
        let report = t.finish(&st);
        // 5 ms windows over 12 ms: two full + one partial.
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.windows[2].end, SimTime::from_nanos(12_000_000));
        assert!(report.breaches.is_empty());
        assert_eq!(report.stream_packets, 0);
        assert!(report.stream_error.is_none());
    }
}
