//! Pluggable queue-scheduling policies for the serving [`Executor`].
//!
//! The executor drains its queue through a [`SchedulePolicy`], which
//! decides *which* queued request is dispatched next and (for the
//! prediction-guided policy) *where*:
//!
//! * [`Fifo`](SchedulePolicy::Fifo) — strict submission order, the
//!   baseline behaviour. The device is chosen by the bounded-affinity
//!   ready-time heuristic alone (clock + re-upload cost of missing shared
//!   operands).
//! * [`Edf`](SchedulePolicy::Edf) — earliest-deadline-first: the queued
//!   request with the smallest deadline runs next; deadline-less requests
//!   run after every deadline-carrying one, in submission order. Device
//!   choice is as for FIFO. Because deadlines are judged on *flow time*
//!   (device clock at completion, queue wait included), reordering the
//!   queue is exactly what saves a tight deadline stuck behind bulk work.
//! * [`Predictive`](SchedulePolicy::Predictive) — the paper's models close
//!   the loop: for every queued request × healthy device the executor
//!   estimates completion = device clock + h2d time of non-resident shared
//!   operands + model-predicted offload time
//!   ([`SystemProfile::predict_offload`](cocopelia_core::SystemProfile::predict_offload)
//!   on the device's deployed profile). Each request is costed at its best
//!   device, and the request with the *largest* best-completion is
//!   dispatched there first — longest-processing-time list scheduling,
//!   which keeps one straggler from landing on an already-loaded device at
//!   the end and stretching the pool makespan. Residency-affine requests
//!   still batch naturally: a device holding the operands wins the
//!   request's best-device slot until its backlog outweighs the re-upload
//!   saving.
//!
//! Every policy records predicted-vs-actual per dispatch (the
//! `sched_predict_abs_err` histogram and the report's drift table)
//! whenever the device profile can predict the request, so the three
//! policies are comparable on the same misprediction accounting.
//!
//! [`Executor`]: crate::serve::Executor

use std::fmt;

/// Queue-scheduling policy of the serving executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Strict submission order (the default baseline).
    #[default]
    Fifo,
    /// Earliest-deadline-first; deadline-less requests after, in
    /// submission order.
    Edf,
    /// Model-predicted completion time over request × device pairs,
    /// dispatched longest-first to minimise pool makespan.
    Predictive,
}

impl SchedulePolicy {
    /// Canonical lowercase name, as accepted by [`parse`](Self::parse)
    /// and used as the metrics suffix (`sched_predict_abs_err_fifo`, …).
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::Edf => "edf",
            SchedulePolicy::Predictive => "predictive",
        }
    }

    /// Parses a policy name (`fifo`, `edf`, `predictive`;
    /// case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown policy and the accepted set.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Ok(SchedulePolicy::Fifo),
            "edf" => Ok(SchedulePolicy::Edf),
            "predictive" => Ok(SchedulePolicy::Predictive),
            other => Err(format!(
                "unknown policy `{other}` (expected fifo, edf, or predictive)"
            )),
        }
    }
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for p in [
            SchedulePolicy::Fifo,
            SchedulePolicy::Edf,
            SchedulePolicy::Predictive,
        ] {
            assert_eq!(SchedulePolicy::parse(p.name()), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(
            SchedulePolicy::parse("EDF"),
            Ok(SchedulePolicy::Edf),
            "parsing is case-insensitive"
        );
    }

    #[test]
    fn default_is_fifo_and_unknown_names_error() {
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::Fifo);
        let err = SchedulePolicy::parse("sjf").expect_err("unknown policy");
        assert!(err.contains("sjf"), "{err}");
        assert!(err.contains("predictive"), "{err}");
    }
}
