//! User-facing operand descriptions: where each matrix/vector lives and
//! whether it carries data.

use cocopelia_core::params::Loc;
use cocopelia_gpusim::DevBufId;
use cocopelia_hostblas::Matrix;

/// A matrix already resident in device memory (packed column-major,
/// `ld == rows`), as produced by
/// [`Cocopelia::upload_matrix`](crate::Cocopelia::upload_matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMatrix {
    pub(crate) buf: DevBufId,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

impl DeviceMatrix {
    /// Wraps a raw device buffer (packed column-major, `ld == rows`) as a
    /// resident matrix. For alternative schedulers and harnesses that
    /// allocate through [`Gpu`](cocopelia_gpusim::Gpu) directly.
    pub fn from_raw(buf: DevBufId, rows: usize, cols: usize) -> Self {
        DeviceMatrix { buf, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying device buffer, for alternative schedulers (the
    /// baseline policy re-implementations) that operate on the raw device.
    pub fn raw_buf(&self) -> DevBufId {
        self.buf
    }
}

/// A vector already resident in device memory, as produced by
/// [`Cocopelia::upload_vector`](crate::Cocopelia::upload_vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceVector {
    pub(crate) buf: DevBufId,
    pub(crate) len: usize,
}

impl DeviceVector {
    /// Wraps a raw device buffer as a resident vector.
    pub fn from_raw(buf: DevBufId, len: usize) -> Self {
        DeviceVector { buf, len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying device buffer, for alternative schedulers.
    pub fn raw_buf(&self) -> DevBufId {
        self.buf
    }
}

/// A matrix operand of a routine call.
#[derive(Debug, Clone, PartialEq)]
pub enum MatOperand<T> {
    /// Host data carried by value (functional execution; `C` results are
    /// returned in the routine's result).
    Host(Matrix<T>),
    /// A host matrix of the given shape with no data (timing-only sweeps).
    HostGhost {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// Data already resident on the device.
    Device(DeviceMatrix),
}

impl<T: cocopelia_hostblas::Scalar> MatOperand<T> {
    /// Row count of the operand.
    pub fn rows(&self) -> usize {
        match self {
            MatOperand::Host(m) => m.rows(),
            MatOperand::HostGhost { rows, .. } => *rows,
            MatOperand::Device(d) => d.rows,
        }
    }

    /// Column count of the operand.
    pub fn cols(&self) -> usize {
        match self {
            MatOperand::Host(m) => m.cols(),
            MatOperand::HostGhost { cols, .. } => *cols,
            MatOperand::Device(d) => d.cols,
        }
    }

    /// Initial residence, as the models see it.
    pub fn loc(&self) -> Loc {
        match self {
            MatOperand::Host(_) | MatOperand::HostGhost { .. } => Loc::Host,
            MatOperand::Device(_) => Loc::Device,
        }
    }
}

/// A vector operand of a routine call.
#[derive(Debug, Clone, PartialEq)]
pub enum VecOperand<T> {
    /// Host data carried by value.
    Host(Vec<T>),
    /// A host vector of the given length with no data.
    HostGhost {
        /// Element count.
        len: usize,
    },
    /// Data already resident on the device.
    Device(DeviceVector),
}

impl<T: cocopelia_hostblas::Scalar> VecOperand<T> {
    /// Element count of the operand.
    pub fn len(&self) -> usize {
        match self {
            VecOperand::Host(v) => v.len(),
            VecOperand::HostGhost { len } => *len,
            VecOperand::Device(d) => d.len,
        }
    }

    /// True if the operand has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Initial residence, as the models see it.
    pub fn loc(&self) -> Loc {
        match self {
            VecOperand::Host(_) | VecOperand::HostGhost { .. } => Loc::Host,
            VecOperand::Device(_) => Loc::Device,
        }
    }
}

/// How the tiling size is chosen for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileChoice {
    /// Run `CoCoPeLia_select` with the model §III-C recommends for the
    /// routine's BLAS level.
    Auto,
    /// Run `CoCoPeLia_select` with a specific model (used by the Fig. 6
    /// experiments that compare Eq. 1/2/4/5 selections).
    Model(cocopelia_core::models::ModelKind),
    /// Use an explicit tiling size, like cuBLASXt's extra parameter.
    Fixed(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_core::models::ModelKind;

    #[test]
    fn operand_shapes() {
        let m: MatOperand<f64> = MatOperand::HostGhost { rows: 3, cols: 4 };
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.loc(), Loc::Host);
        let h = MatOperand::Host(Matrix::<f64>::zeros(2, 5));
        assert_eq!((h.rows(), h.cols()), (2, 5));
    }

    #[test]
    fn vector_shapes() {
        let v: VecOperand<f32> = VecOperand::Host(vec![1.0, 2.0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        let g: VecOperand<f32> = VecOperand::HostGhost { len: 0 };
        assert!(g.is_empty());
    }

    #[test]
    fn tile_choice_variants() {
        assert_ne!(TileChoice::Auto, TileChoice::Fixed(256));
        assert_eq!(
            TileChoice::Model(ModelKind::Bts),
            TileChoice::Model(ModelKind::Bts)
        );
    }
}
