//! The tiled reduction schedule: `result ← xᵀy` split into 1-D chunks.
//!
//! Each chunk's partial dot lands in its own slot of a device-side partials
//! buffer; the partials drain to the host in one d2h transfer at the end
//! and are summed there. This exercises the "extension skeleton" of §IV-B
//! on a routine with a *reduction* dependency structure instead of the
//! element-wise pipelines of axpy/gemm.

use super::{OperandStore, Streams, TileFetcher};
use crate::error::RuntimeError;
use crate::fault::RetryPolicy;
use crate::operand::VecOperand;
use cocopelia_gpusim::{
    CopyDesc, DevVecRef, Gpu, KernelArgs, KernelShape, OpTag, OperandRole, SimScalar,
};
use cocopelia_hostblas::tiling::{split, TileRange};

/// Output of a scheduled dot.
#[derive(Debug)]
pub(crate) struct DotRun {
    /// The reduction value (functional mode only).
    pub value: Option<f64>,
    pub subkernels: usize,
    pub tile_hits: u64,
    pub tile_misses: u64,
    /// Transient-fault retries performed by the tile fetcher.
    pub retries: u64,
}

pub(crate) fn run<T: SimScalar>(
    gpu: &mut Gpu,
    streams: Streams,
    call: u64,
    policy: RetryPolicy,
    x: VecOperand<T>,
    y: VecOperand<T>,
    tile: usize,
) -> Result<DotRun, RuntimeError> {
    if x.len() != y.len() {
        return Err(RuntimeError::DimensionMismatch {
            what: format!("dot: x has {} elements but y has {}", x.len(), y.len()),
        });
    }
    let n = x.len();
    let tag = |chunk: usize, operand: Option<OperandRole>, get: bool, set: bool| OpTag {
        routine: "dot",
        call,
        tile: (chunk, 0),
        operand,
        get,
        set,
    };
    let tiles = split(n, tile);
    let num_tiles = tiles.len().max(1);
    let store_x = OperandStore::from_vec(gpu, x);
    let store_y = OperandStore::from_vec(gpu, y);
    let one = TileRange { start: 0, len: 1 };
    let mut fetcher = TileFetcher::with_policy(policy);

    // One partial-result slot per chunk, drained in a single transfer.
    let partials_dev = gpu.alloc_device(T::DTYPE, num_tiles)?;
    let partials_host = gpu.register_host(T::into_payload(vec![T::ZERO; num_tiles]), true);

    let mut subkernels = 0usize;
    for (i, &t) in tiles.iter().enumerate() {
        gpu.set_op_tag(tag(i, Some(OperandRole::X), true, false));
        let x_tile = fetcher.tile::<T>(gpu, streams.h2d, 0, store_x, (i, t), (0, one), true)?;
        gpu.set_op_tag(tag(i, Some(OperandRole::Y), true, false));
        let y_tile = fetcher.tile::<T>(gpu, streams.h2d, 1, store_y, (i, t), (0, one), true)?;
        for ev in [x_tile.ready, y_tile.ready].into_iter().flatten() {
            gpu.wait_event(streams.exec, ev)?;
        }
        gpu.set_op_tag(tag(i, None, false, false));
        fetcher.launch(
            gpu,
            streams.exec,
            KernelShape::Dot {
                dtype: T::DTYPE,
                n: t.len,
            },
            Some(KernelArgs::Dot {
                x: DevVecRef {
                    buf: x_tile.mat.buf,
                    offset: x_tile.mat.offset,
                },
                y: DevVecRef {
                    buf: y_tile.mat.buf,
                    offset: y_tile.mat.offset,
                },
                out: DevVecRef {
                    buf: partials_dev,
                    offset: i,
                },
            }),
        )?;
        subkernels += 1;
    }
    let done = gpu.record_event(streams.exec)?;
    gpu.wait_event(streams.d2h, done)?;
    gpu.set_op_tag(tag(0, Some(OperandRole::Partials), false, true));
    fetcher.copy_d2h(
        gpu,
        streams.d2h,
        CopyDesc::contiguous(partials_host, partials_dev, num_tiles),
    )?;
    gpu.clear_op_tag();

    gpu.synchronize()?;
    let (tile_hits, tile_misses) = fetcher.hit_miss();
    let retries = fetcher.retries();
    fetcher.release(gpu)?;
    gpu.free_device(partials_dev)?;
    let partials = gpu.take_host(partials_host)?;
    let value = partials.payload.is_functional().then(|| {
        T::payload_slice(&partials.payload)
            .iter()
            .map(|v| v.to_f64())
            .sum::<f64>()
    });
    for s in [store_x, store_y] {
        if let Some(h) = s.host_id() {
            gpu.take_host(h)?;
        }
    }
    Ok(DotRun {
        value,
        subkernels,
        tile_hits,
        tile_misses,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec};

    fn quiet_gpu(functional: bool) -> Gpu {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mode = if functional {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        Gpu::new(tb, mode, 1)
    }

    #[test]
    fn tiled_dot_matches_reference() {
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.5).collect();
        let expect = cocopelia_hostblas::level1::dot(&x, &y);

        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            VecOperand::Host(x),
            VecOperand::Host(y),
            256,
        )
        .expect("runs");
        assert_eq!(run.subkernels, 4);
        let got = run.value.expect("functional");
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
        assert_eq!(gpu.device_mem_used(), 0);
    }

    #[test]
    fn partials_drain_in_one_transfer() {
        let n = 1 << 22;
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            VecOperand::HostGhost { len: n },
            VecOperand::HostGhost { len: n },
            1 << 20,
        )
        .expect("runs");
        // d2h traffic: exactly the 4 partial slots.
        assert_eq!(
            gpu.trace()
                .bytes_moved(cocopelia_gpusim::EngineKind::CopyD2h),
            4 * 8
        );
        assert_eq!(
            gpu.trace()
                .bytes_moved(cocopelia_gpusim::EngineKind::CopyH2d),
            2 * n * 8
        );
    }

    #[test]
    fn self_dot_gives_squared_norm() {
        let n = 64;
        let x: Vec<f64> = vec![2.0; n];
        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            VecOperand::Host(x.clone()),
            VecOperand::Host(x),
            16,
        )
        .expect("runs");
        assert_eq!(run.value.expect("functional"), 4.0 * n as f64);
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        assert!(matches!(
            run::<f64>(
                &mut gpu,
                streams,
                0,
                RetryPolicy::default(),
                VecOperand::HostGhost { len: 4 },
                VecOperand::HostGhost { len: 5 },
                2
            ),
            Err(RuntimeError::DimensionMismatch { .. })
        ));
    }
}
