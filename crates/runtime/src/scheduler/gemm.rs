//! The level-3 tile schedule: `C ← α·A·B + β·C` with square tiling, full
//! tile reuse, and 3-way overlap.
//!
//! Loop order is output-stationary: for each `C` tile `(i, j)`, the
//! reduction over `k` runs on the exec stream (the first step applies the
//! caller's `β`, later steps accumulate with `β = 1`), then the finished
//! tile drains on the d2h stream. `A`/`B`/`C` tiles are fetched at most once
//! each — the full-reuse behaviour Eq. 5 models.

use super::{OperandStore, Streams, TileFetcher};
use crate::error::RuntimeError;
use crate::fault::RetryPolicy;
use crate::operand::MatOperand;
use cocopelia_gpusim::{Gpu, KernelArgs, KernelShape, OpTag, OperandRole, SimScalar};
use cocopelia_hostblas::tiling::split;
use cocopelia_hostblas::Matrix;

/// Output of a scheduled gemm: the updated `C` (when it carried host data)
/// plus raw schedule facts.
#[derive(Debug)]
pub(crate) struct GemmRun<T> {
    pub c: Option<Matrix<T>>,
    pub subkernels: usize,
    pub tile_hits: u64,
    pub tile_misses: u64,
    /// Transient-fault retries performed by the tile fetcher.
    pub retries: u64,
}

/// Validates dimensions and returns `(m, n, k)`.
pub(crate) fn check_dims<T: cocopelia_hostblas::Scalar>(
    a: &MatOperand<T>,
    b: &MatOperand<T>,
    c: &MatOperand<T>,
) -> Result<(usize, usize, usize), RuntimeError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(RuntimeError::DimensionMismatch {
            what: format!("gemm: A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    if c.rows() != m || c.cols() != n {
        return Err(RuntimeError::DimensionMismatch {
            what: format!("gemm: C is {}x{} but A·B is {m}x{n}", c.rows(), c.cols()),
        });
    }
    Ok((m, n, k))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run<T: SimScalar>(
    gpu: &mut Gpu,
    streams: Streams,
    call: u64,
    policy: RetryPolicy,
    alpha: f64,
    a: MatOperand<T>,
    b: MatOperand<T>,
    beta: f64,
    c: MatOperand<T>,
    tile: usize,
) -> Result<GemmRun<T>, RuntimeError> {
    let (m, n, k) = check_dims(&a, &b, &c)?;
    let tag = |tile: (usize, usize), operand: Option<OperandRole>, get: bool, set: bool| OpTag {
        routine: "gemm",
        call,
        tile,
        operand,
        get,
        set,
    };
    let c_rows = m;
    let store_a = OperandStore::from_mat(gpu, a);
    let store_b = OperandStore::from_mat(gpu, b);
    let store_c = OperandStore::from_mat(gpu, c);
    let row_tiles = split(m, tile);
    let col_tiles = split(n, tile);
    let depth_tiles = split(k, tile);
    let mut fetcher = TileFetcher::with_policy(policy);
    let fetch_c = beta != 0.0;
    let mut subkernels = 0usize;

    for (i, &ri) in row_tiles.iter().enumerate() {
        for (j, &cj) in col_tiles.iter().enumerate() {
            gpu.set_op_tag(tag((i, j), Some(OperandRole::C), fetch_c, false));
            let c_tile =
                fetcher.tile::<T>(gpu, streams.h2d, 2, store_c, (i, ri), (j, cj), fetch_c)?;
            for (p, &kp) in depth_tiles.iter().enumerate() {
                gpu.set_op_tag(tag((i, p), Some(OperandRole::A), true, false));
                let a_tile =
                    fetcher.tile::<T>(gpu, streams.h2d, 0, store_a, (i, ri), (p, kp), true)?;
                gpu.set_op_tag(tag((p, j), Some(OperandRole::B), true, false));
                let b_tile =
                    fetcher.tile::<T>(gpu, streams.h2d, 1, store_b, (p, kp), (j, cj), true)?;
                for ev in [a_tile.ready, b_tile.ready].into_iter().flatten() {
                    gpu.wait_event(streams.exec, ev)?;
                }
                if p == 0 {
                    if let Some(ev) = c_tile.ready {
                        gpu.wait_event(streams.exec, ev)?;
                    }
                }
                let beta_p = if p == 0 { beta } else { 1.0 };
                gpu.set_op_tag(tag((i, j), None, false, false));
                fetcher.launch(
                    gpu,
                    streams.exec,
                    KernelShape::Gemm {
                        dtype: T::DTYPE,
                        m: ri.len,
                        n: cj.len,
                        k: kp.len,
                    },
                    Some(KernelArgs::Gemm {
                        alpha,
                        beta: beta_p,
                        a: a_tile.mat,
                        b: b_tile.mat,
                        c: c_tile.mat,
                    }),
                )?;
                subkernels += 1;
            }
            // Drain the finished C tile (host-staged C only).
            if store_c.host_id().is_some() {
                let done = gpu.record_event(streams.exec)?;
                gpu.wait_event(streams.d2h, done)?;
                gpu.set_op_tag(tag((i, j), Some(OperandRole::C), false, true));
                fetcher.write_back(gpu, streams.d2h, store_c, c_tile, ri, cj)?;
            }
        }
    }
    gpu.clear_op_tag();

    gpu.synchronize()?;
    let (tile_hits, tile_misses) = fetcher.hit_miss();
    let retries = fetcher.retries();
    fetcher.release(gpu)?;
    let c_data = super::take_host_data::<T>(gpu, store_c)?;
    // Release the A/B staging registrations too (drop host copies).
    for s in [store_a, store_b] {
        if let Some(h) = s.host_id() {
            gpu.take_host(h)?;
        }
    }
    Ok(GemmRun {
        c: c_data.map(|v| Matrix::from_vec(c_rows, n, v)),
        subkernels,
        tile_hits,
        tile_misses,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec};
    use cocopelia_hostblas::{level3, validate};

    fn quiet_gpu(functional: bool) -> Gpu {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mode = if functional {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        Gpu::new(tb, mode, 1)
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn reference(
        alpha: f64,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        beta: f64,
        c: &Matrix<f64>,
    ) -> Matrix<f64> {
        let mut out = c.clone();
        level3::gemm(alpha, &a.view(), &b.view(), beta, &mut out.view_mut());
        out
    }

    #[test]
    fn tiled_gemm_matches_reference_with_remainders() {
        // 70x50x90 with tile 32: remainder tiles in every dimension.
        let (m, n, k) = (70, 50, 90);
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        let c = rand_matrix(m, n, 3);
        let expect = reference(1.5, &a, &b, 0.5, &c);

        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.5,
            MatOperand::Host(a),
            MatOperand::Host(b),
            0.5,
            MatOperand::Host(c),
            32,
        )
        .expect("runs");
        let got = run.c.expect("functional C");
        assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
            "max rel err {}",
            validate::max_rel_err(got.as_slice(), expect.as_slice())
        );
        assert_eq!(run.subkernels, 3 * 2 * 3);
        assert_eq!(gpu.device_mem_used(), 0);
    }

    #[test]
    fn beta_zero_skips_c_fetch_and_overwrites() {
        let (m, n, k) = (16, 16, 16);
        let a = rand_matrix(m, k, 4);
        let b = rand_matrix(k, n, 5);
        let c = rand_matrix(m, n, 6); // junk that must be overwritten
        let expect = reference(2.0, &a, &b, 0.0, &c);

        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            2.0,
            MatOperand::Host(a),
            MatOperand::Host(b),
            0.0,
            MatOperand::Host(c),
            8,
        )
        .expect("runs");
        let got = run.c.expect("functional C");
        assert!(validate::matrices_close(&got, &expect, 1e-10));
        // No h2d bytes for C: A and B are 16x16 each, fetched in 8x8 tiles.
        let h2d_bytes = gpu
            .trace()
            .bytes_moved(cocopelia_gpusim::EngineKind::CopyH2d);
        assert_eq!(h2d_bytes, 2 * 16 * 16 * 8);
    }

    #[test]
    fn reuse_moves_each_tile_once() {
        let (m, n, k) = (64, 64, 64);
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            MatOperand::HostGhost { rows: m, cols: k },
            MatOperand::HostGhost { rows: k, cols: n },
            1.0,
            MatOperand::HostGhost { rows: m, cols: n },
            16,
        )
        .expect("runs");
        assert_eq!(run.subkernels, 4 * 4 * 4);
        // h2d volume = exactly one copy of A + B + C.
        let h2d_bytes = gpu
            .trace()
            .bytes_moved(cocopelia_gpusim::EngineKind::CopyH2d);
        assert_eq!(h2d_bytes, 3 * 64 * 64 * 8);
        // d2h volume = exactly one copy of C.
        let d2h_bytes = gpu
            .trace()
            .bytes_moved(cocopelia_gpusim::EngineKind::CopyD2h);
        assert_eq!(d2h_bytes, 64 * 64 * 8);
    }

    #[test]
    fn device_resident_inputs_transfer_nothing() {
        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let n = 32;
        let a = rand_matrix(n, n, 7);
        let b = rand_matrix(n, n, 8);
        let c = Matrix::<f64>::zeros(n, n);
        let expect = reference(1.0, &a, &b, 0.0, &c);

        // Upload A and B manually (whole-matrix resident buffers).
        let mut upload = |m: &Matrix<f64>| {
            let host = gpu.register_host(m.as_slice().to_vec(), true);
            let dev = gpu
                .alloc_device(cocopelia_hostblas::Dtype::F64, m.rows() * m.cols())
                .expect("alloc");
            gpu.memcpy_h2d_async(
                streams.h2d,
                cocopelia_gpusim::CopyDesc::contiguous(host, dev, m.rows() * m.cols()),
            )
            .expect("upload");
            dev
        };
        let da = upload(&a);
        let db = upload(&b);
        gpu.synchronize().expect("sync uploads");
        gpu.clear_trace();

        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            MatOperand::Device(crate::operand::DeviceMatrix {
                buf: da,
                rows: n,
                cols: n,
            }),
            MatOperand::Device(crate::operand::DeviceMatrix {
                buf: db,
                rows: n,
                cols: n,
            }),
            0.0,
            MatOperand::Host(c),
            16,
        )
        .expect("runs");
        assert_eq!(
            gpu.trace()
                .bytes_moved(cocopelia_gpusim::EngineKind::CopyH2d),
            0
        );
        let got = run.c.expect("functional C");
        assert!(validate::matrices_close(&got, &expect, 1e-10));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        let err = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            MatOperand::HostGhost { rows: 4, cols: 5 },
            MatOperand::HostGhost { rows: 6, cols: 4 },
            0.0,
            MatOperand::HostGhost { rows: 4, cols: 4 },
            2,
        )
        .expect_err("bad dims");
        assert!(matches!(err, RuntimeError::DimensionMismatch { .. }));
    }

    #[test]
    fn overlap_actually_happens() {
        // A transfer-heavy schedule must show h2d busy while exec is busy.
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            1.0,
            MatOperand::HostGhost {
                rows: 2048,
                cols: 2048,
            },
            512,
        )
        .expect("runs");
        let trace = gpu.trace();
        let total = trace
            .entries()
            .iter()
            .map(|e| e.end.as_nanos())
            .max()
            .expect("entries");
        let h2d = trace
            .engine_busy(cocopelia_gpusim::EngineKind::CopyH2d)
            .as_nanos();
        let exec = trace
            .engine_busy(cocopelia_gpusim::EngineKind::Compute)
            .as_nanos();
        let d2h = trace
            .engine_busy(cocopelia_gpusim::EngineKind::CopyD2h)
            .as_nanos();
        assert!(
            h2d + exec + d2h > total + total / 10,
            "busy {h2d}+{exec}+{d2h} vs makespan {total}: no overlap"
        );
    }
}
