//! The level-2 tile schedule: `y ← α·A·x + β·y` with square tiling of `A`
//! and 1-D tiling of the vectors — the "extension skeleton" routine of
//! §IV-B, exercising the generalised per-level tile scheduler.

use super::{OperandStore, Streams, TileFetcher};
use crate::error::RuntimeError;
use crate::fault::RetryPolicy;
use crate::operand::{MatOperand, VecOperand};
use cocopelia_gpusim::{DevVecRef, Gpu, KernelArgs, KernelShape, OpTag, OperandRole, SimScalar};
use cocopelia_hostblas::tiling::{split, TileRange};

/// Output of a scheduled gemv.
#[derive(Debug)]
pub(crate) struct GemvRun<T> {
    pub y: Option<Vec<T>>,
    pub subkernels: usize,
    pub tile_hits: u64,
    pub tile_misses: u64,
    /// Transient-fault retries performed by the tile fetcher.
    pub retries: u64,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run<T: SimScalar>(
    gpu: &mut Gpu,
    streams: Streams,
    call: u64,
    policy: RetryPolicy,
    alpha: f64,
    a: MatOperand<T>,
    x: VecOperand<T>,
    beta: f64,
    y: VecOperand<T>,
    tile: usize,
) -> Result<GemvRun<T>, RuntimeError> {
    let (m, n) = (a.rows(), a.cols());
    let tag = |tile: (usize, usize), operand: Option<OperandRole>, get: bool, set: bool| OpTag {
        routine: "gemv",
        call,
        tile,
        operand,
        get,
        set,
    };
    if x.len() != n || y.len() != m {
        return Err(RuntimeError::DimensionMismatch {
            what: format!(
                "gemv: A is {m}x{n} but x has {} and y has {} elements",
                x.len(),
                y.len()
            ),
        });
    }
    let store_a = OperandStore::from_mat(gpu, a);
    let store_x = OperandStore::from_vec(gpu, x);
    let store_y = OperandStore::from_vec(gpu, y);
    let one = TileRange { start: 0, len: 1 };
    let row_tiles = split(m, tile);
    let col_tiles = split(n, tile);
    let mut fetcher = TileFetcher::with_policy(policy);
    let fetch_y = beta != 0.0;
    let mut subkernels = 0usize;

    for (i, &ri) in row_tiles.iter().enumerate() {
        gpu.set_op_tag(tag((i, 0), Some(OperandRole::Y), fetch_y, false));
        let y_tile = fetcher.tile::<T>(gpu, streams.h2d, 2, store_y, (i, ri), (0, one), fetch_y)?;
        for (j, &cj) in col_tiles.iter().enumerate() {
            gpu.set_op_tag(tag((i, j), Some(OperandRole::A), true, false));
            let a_tile = fetcher.tile::<T>(gpu, streams.h2d, 0, store_a, (i, ri), (j, cj), true)?;
            gpu.set_op_tag(tag((j, 0), Some(OperandRole::X), true, false));
            let x_tile =
                fetcher.tile::<T>(gpu, streams.h2d, 1, store_x, (j, cj), (0, one), true)?;
            for ev in [a_tile.ready, x_tile.ready].into_iter().flatten() {
                gpu.wait_event(streams.exec, ev)?;
            }
            if j == 0 {
                if let Some(ev) = y_tile.ready {
                    gpu.wait_event(streams.exec, ev)?;
                }
            }
            let beta_j = if j == 0 { beta } else { 1.0 };
            gpu.set_op_tag(tag((i, j), None, false, false));
            fetcher.launch(
                gpu,
                streams.exec,
                KernelShape::Gemv {
                    dtype: T::DTYPE,
                    m: ri.len,
                    n: cj.len,
                },
                Some(KernelArgs::Gemv {
                    alpha,
                    beta: beta_j,
                    a: a_tile.mat,
                    x: DevVecRef {
                        buf: x_tile.mat.buf,
                        offset: x_tile.mat.offset,
                    },
                    y: DevVecRef {
                        buf: y_tile.mat.buf,
                        offset: y_tile.mat.offset,
                    },
                }),
            )?;
            subkernels += 1;
        }
        if store_y.host_id().is_some() {
            let done = gpu.record_event(streams.exec)?;
            gpu.wait_event(streams.d2h, done)?;
            gpu.set_op_tag(tag((i, 0), Some(OperandRole::Y), false, true));
            fetcher.write_back(gpu, streams.d2h, store_y, y_tile, ri, one)?;
        }
    }
    gpu.clear_op_tag();

    gpu.synchronize()?;
    let (tile_hits, tile_misses) = fetcher.hit_miss();
    let retries = fetcher.retries();
    fetcher.release(gpu)?;
    let y_data = super::take_host_data::<T>(gpu, store_y)?;
    for s in [store_a, store_x] {
        if let Some(h) = s.host_id() {
            gpu.take_host(h)?;
        }
    }
    Ok(GemvRun {
        y: y_data,
        subkernels,
        tile_hits,
        tile_misses,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec};
    use cocopelia_hostblas::{level2, Matrix};

    fn quiet_gpu(functional: bool) -> Gpu {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mode = if functional {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        Gpu::new(tb, mode, 1)
    }

    #[test]
    fn tiled_gemv_matches_reference() {
        let (m, n) = (37, 53);
        let a = Matrix::<f64>::from_fn(m, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.5).collect();
        let y: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let mut expect = y.clone();
        level2::gemv(1.5, &a.view(), &x, 0.25, &mut expect);

        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.5,
            MatOperand::Host(a),
            VecOperand::Host(x),
            0.25,
            VecOperand::Host(y),
            16,
        )
        .expect("runs");
        let got = run.y.expect("functional y");
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-10, "{g} vs {e}");
        }
        assert_eq!(run.subkernels, 3 * 4);
        assert_eq!(gpu.device_mem_used(), 0);
    }

    #[test]
    fn x_tiles_fetched_once_across_row_blocks() {
        let (m, n) = (64, 64);
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            MatOperand::HostGhost { rows: m, cols: n },
            VecOperand::HostGhost { len: n },
            1.0,
            VecOperand::HostGhost { len: m },
            16,
        )
        .expect("runs");
        // h2d = A (m*n) + x (n) + y (m); x reused across the 4 row blocks.
        let h2d = gpu
            .trace()
            .bytes_moved(cocopelia_gpusim::EngineKind::CopyH2d);
        assert_eq!(h2d, (m * n + n + m) * 8);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        let err = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            MatOperand::HostGhost { rows: 4, cols: 4 },
            VecOperand::HostGhost { len: 5 },
            0.0,
            VecOperand::HostGhost { len: 4 },
            2,
        )
        .expect_err("bad dims");
        assert!(matches!(err, RuntimeError::DimensionMismatch { .. }));
    }
}
