//! The tile scheduler (§IV-C): square tiling, address matching, lazy tile
//! fetching with full reuse, and stream assignment.
//!
//! One instance of [`TileFetcher`] lives for the duration of a routine call.
//! It hands out device-side tile references on demand:
//!
//! * operands already resident on the device yield zero-cost views;
//! * host operands get a packed device buffer per tile, fetched **once** on
//!   the h2d stream (this is the "full reuse" of Eq. 5 — subsequent
//!   sub-kernels find the tile in the cache);
//! * each fetch carries an event the exec stream waits on, which is what
//!   produces the 3-way pipeline.

pub(crate) mod axpy;
pub(crate) mod dot;
pub(crate) mod gemm;
pub(crate) mod gemv;

use crate::error::RuntimeError;
use crate::fault::RetryPolicy;
use crate::operand::{MatOperand, VecOperand};
use cocopelia_gpusim::{
    CopyDesc, DevBufId, DevMatRef, EventId, Gpu, HostBufId, KernelArgs, KernelShape, Region2d,
    SimError, SimScalar, SimTime, StreamId,
};
use cocopelia_hostblas::tiling::TileRange;
use std::collections::HashMap;

/// The three streams of the paper's library: "one stream per operation
/// (h2d transfer, d2h transfer, kernel execution)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Streams {
    pub h2d: StreamId,
    pub exec: StreamId,
    pub d2h: StreamId,
}

impl Streams {
    pub(crate) fn create(gpu: &mut Gpu) -> Streams {
        Streams {
            h2d: gpu.create_stream(),
            exec: gpu.create_stream(),
            d2h: gpu.create_stream(),
        }
    }
}

/// Where one operand's elements live for the duration of a call.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OperandStore {
    /// Staged in a registered host buffer (`ld == rows`).
    Host { host: HostBufId, rows: usize },
    /// Already resident in a packed device buffer (`ld == rows`).
    Device { buf: DevBufId, rows: usize },
}

impl OperandStore {
    pub(crate) fn from_mat<T: SimScalar>(gpu: &mut Gpu, op: MatOperand<T>) -> OperandStore {
        match op {
            MatOperand::Host(m) => {
                let rows = m.rows();
                let host = gpu.register_host(T::into_payload(m.into_vec()), true);
                OperandStore::Host { host, rows }
            }
            MatOperand::HostGhost { rows, cols } => {
                let host = gpu.register_host_ghost(T::DTYPE, rows * cols, true);
                OperandStore::Host { host, rows }
            }
            MatOperand::Device(d) => OperandStore::Device {
                buf: d.buf,
                rows: d.rows,
            },
        }
    }

    pub(crate) fn from_vec<T: SimScalar>(gpu: &mut Gpu, op: VecOperand<T>) -> OperandStore {
        match op {
            VecOperand::Host(v) => {
                let rows = v.len();
                let host = gpu.register_host(T::into_payload(v), true);
                OperandStore::Host { host, rows }
            }
            VecOperand::HostGhost { len } => {
                let host = gpu.register_host_ghost(T::DTYPE, len, true);
                OperandStore::Host { host, rows: len }
            }
            VecOperand::Device(d) => OperandStore::Device {
                buf: d.buf,
                rows: d.len,
            },
        }
    }

    /// Host buffer id, if staged on the host.
    pub(crate) fn host_id(&self) -> Option<HostBufId> {
        match self {
            OperandStore::Host { host, .. } => Some(*host),
            OperandStore::Device { .. } => None,
        }
    }
}

/// A device-side tile with the event (if any) that signals its readiness.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileRef {
    pub mat: DevMatRef,
    pub ready: Option<EventId>,
}

/// Per-call tile cache and allocator.
#[derive(Debug, Default)]
pub(crate) struct TileFetcher {
    cache: HashMap<(u8, usize, usize), TileRef>,
    allocated: Vec<DevBufId>,
    /// Requests served from the cache (a tile already on the device).
    hits: u64,
    /// Requests that allocated and (possibly) fetched a fresh tile.
    misses: u64,
    /// Retry/backoff policy for transient enqueue faults.
    policy: RetryPolicy,
    /// Transient-fault retries performed so far in this call.
    retries: u64,
}

impl TileFetcher {
    /// Creates a fetcher with an explicit retry policy (the default policy
    /// is [`RetryPolicy::default`]).
    pub(crate) fn with_policy(policy: RetryPolicy) -> Self {
        TileFetcher {
            policy,
            ..TileFetcher::default()
        }
    }

    /// Transient-fault retries performed so far in this call.
    pub(crate) fn retries(&self) -> u64 {
        self.retries
    }

    /// Runs an enqueue-level device call, retrying transient faults with the
    /// policy's capped exponential backoff. Backoff waits advance the
    /// device's virtual clock, so retry latency shows up in timing results
    /// (and delays everything enqueued afterwards, as a host-side sleep
    /// would). Out-of-memory never reaches this helper — allocations are not
    /// wrapped, because recovering from OOM requires an executor-level
    /// reclaim, not a blind retry.
    fn retry_sim<R>(
        &mut self,
        gpu: &mut Gpu,
        mut f: impl FnMut(&mut Gpu) -> Result<R, SimError>,
    ) -> Result<R, RuntimeError> {
        let mut attempt: u32 = 0;
        loop {
            match f(gpu) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let err = RuntimeError::Sim(e);
                    if !err.fault_class().retryable() || attempt + 1 >= self.policy.max_attempts {
                        return Err(err);
                    }
                    gpu.advance_clock(SimTime::from_secs_f64(self.policy.backoff_secs(attempt)));
                    attempt += 1;
                    self.retries += 1;
                }
            }
        }
    }

    /// Launches a kernel with transient-fault retry.
    pub(crate) fn launch(
        &mut self,
        gpu: &mut Gpu,
        stream: StreamId,
        shape: KernelShape,
        args: Option<KernelArgs>,
    ) -> Result<(), RuntimeError> {
        self.retry_sim(gpu, |g| g.launch_kernel(stream, shape, args))
    }

    /// Enqueues a raw d2h copy with transient-fault retry (used for
    /// partial-result drains that bypass the tile write-back path).
    pub(crate) fn copy_d2h(
        &mut self,
        gpu: &mut Gpu,
        stream: StreamId,
        desc: CopyDesc,
    ) -> Result<(), RuntimeError> {
        self.retry_sim(gpu, |g| g.memcpy_d2h_async(stream, desc))
    }
    /// Returns a device reference for tile `(ri, ci)` of operand `op_idx`.
    ///
    /// `fetch` controls whether host data is actually copied (false for
    /// write-only output tiles, which only need backing storage).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tile<T: SimScalar>(
        &mut self,
        gpu: &mut Gpu,
        h2d: StreamId,
        op_idx: u8,
        store: OperandStore,
        (ri, rr): (usize, TileRange),
        (ci, cr): (usize, TileRange),
        fetch: bool,
    ) -> Result<TileRef, RuntimeError> {
        match store {
            OperandStore::Device { buf, rows } => Ok(TileRef {
                mat: DevMatRef {
                    buf,
                    offset: rr.start + cr.start * rows,
                    ld: rows,
                },
                ready: None,
            }),
            OperandStore::Host { host, rows } => {
                if let Some(t) = self.cache.get(&(op_idx, ri, ci)) {
                    self.hits += 1;
                    return Ok(*t);
                }
                self.misses += 1;
                let buf = gpu.alloc_device(T::DTYPE, rr.len * cr.len)?;
                self.allocated.push(buf);
                let ready = if fetch {
                    let desc = CopyDesc {
                        host,
                        host_region: Region2d {
                            offset: rr.start + cr.start * rows,
                            ld: rows,
                            rows: rr.len,
                            cols: cr.len,
                        },
                        dev: buf,
                        dev_region: Region2d {
                            offset: 0,
                            ld: rr.len,
                            rows: rr.len,
                            cols: cr.len,
                        },
                    };
                    self.retry_sim(gpu, |g| g.memcpy_h2d_async(h2d, desc))?;
                    Some(gpu.record_event(h2d)?)
                } else {
                    None
                };
                let t = TileRef {
                    mat: DevMatRef {
                        buf,
                        offset: 0,
                        ld: rr.len,
                    },
                    ready,
                };
                self.cache.insert((op_idx, ri, ci), t);
                Ok(t)
            }
        }
    }

    /// Writes a (host-operand) tile back to its host region on the d2h
    /// stream. No-op for device-resident stores.
    pub(crate) fn write_back(
        &mut self,
        gpu: &mut Gpu,
        d2h: StreamId,
        store: OperandStore,
        tile: TileRef,
        rr: TileRange,
        cr: TileRange,
    ) -> Result<(), RuntimeError> {
        let OperandStore::Host { host, rows } = store else {
            return Ok(());
        };
        self.copy_d2h(
            gpu,
            d2h,
            CopyDesc {
                host,
                host_region: Region2d {
                    offset: rr.start + cr.start * rows,
                    ld: rows,
                    rows: rr.len,
                    cols: cr.len,
                },
                dev: tile.mat.buf,
                dev_region: Region2d {
                    offset: tile.mat.offset,
                    ld: tile.mat.ld,
                    rows: rr.len,
                    cols: cr.len,
                },
            },
        )
    }

    /// Frees every tile buffer this fetcher allocated. Call after
    /// synchronisation.
    pub(crate) fn release(self, gpu: &mut Gpu) -> Result<(), RuntimeError> {
        for buf in self.allocated {
            gpu.free_device(buf)?;
        }
        Ok(())
    }

    /// `(hits, misses)` of the tile cache so far.
    pub(crate) fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct cached (host-operand) tiles.
    #[cfg(test)]
    pub(crate) fn cached_tiles(&self) -> usize {
        self.cache.len()
    }
}

/// Reads back the payload of a host-staged operand as a typed vector, if
/// data is present (functional mode).
pub(crate) fn take_host_data<T: SimScalar>(
    gpu: &mut Gpu,
    store: OperandStore,
) -> Result<Option<Vec<T>>, RuntimeError> {
    match store {
        OperandStore::Host { host, .. } => {
            let buf = gpu.take_host(host)?;
            if buf.payload.is_functional() {
                Ok(Some(T::payload_into_vec(buf.payload)))
            } else {
                Ok(None)
            }
        }
        OperandStore::Device { .. } => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec, TestbedSpec};
    use cocopelia_hostblas::tiling::split;
    use cocopelia_hostblas::Matrix;

    fn quiet_gpu(functional: bool) -> Gpu {
        let mut tb: TestbedSpec = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mode = if functional {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        Gpu::new(tb, mode, 1)
    }

    #[test]
    fn fetch_caches_tiles() {
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        let store = OperandStore::from_mat::<f64>(
            &mut gpu,
            crate::operand::MatOperand::HostGhost { rows: 8, cols: 8 },
        );
        let mut f = TileFetcher::default();
        let rows = split(8, 4);
        let cols = split(8, 4);
        let t1 = f
            .tile::<f64>(
                &mut gpu,
                streams.h2d,
                0,
                store,
                (0, rows[0]),
                (1, cols[1]),
                true,
            )
            .expect("tile");
        let t2 = f
            .tile::<f64>(
                &mut gpu,
                streams.h2d,
                0,
                store,
                (0, rows[0]),
                (1, cols[1]),
                true,
            )
            .expect("tile again");
        assert_eq!(t1.mat.buf, t2.mat.buf);
        assert_eq!(f.cached_tiles(), 1);
        // Different tile indices allocate a new buffer.
        let t3 = f
            .tile::<f64>(
                &mut gpu,
                streams.h2d,
                0,
                store,
                (1, rows[1]),
                (1, cols[1]),
                true,
            )
            .expect("other tile");
        assert_ne!(t1.mat.buf, t3.mat.buf);
        assert_eq!(f.cached_tiles(), 2);
        gpu.synchronize().expect("sync");
        f.release(&mut gpu).expect("release");
        assert_eq!(gpu.device_mem_used(), 0);
    }

    #[test]
    fn device_store_yields_views_without_alloc() {
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        let dev = gpu
            .alloc_device(cocopelia_hostblas::Dtype::F64, 64)
            .expect("alloc");
        let store = OperandStore::Device { buf: dev, rows: 8 };
        let mut f = TileFetcher::default();
        let rows = split(8, 4);
        let t = f
            .tile::<f64>(
                &mut gpu,
                streams.h2d,
                0,
                store,
                (1, rows[1]),
                (1, rows[1]),
                true,
            )
            .expect("view");
        assert_eq!(t.mat.offset, 4 + 4 * 8);
        assert_eq!(t.mat.ld, 8);
        assert!(t.ready.is_none());
        assert_eq!(f.cached_tiles(), 0);
    }

    #[test]
    fn round_trip_tile_fetch_and_write_back() {
        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let m = Matrix::<f64>::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let store =
            OperandStore::from_mat::<f64>(&mut gpu, crate::operand::MatOperand::Host(m.clone()));
        let mut f = TileFetcher::default();
        let rows = split(6, 4);
        let cols = split(6, 4);
        // Fetch tile (1,1) — the 2x2 remainder corner — and write it back.
        let t = f
            .tile::<f64>(
                &mut gpu,
                streams.h2d,
                0,
                store,
                (1, rows[1]),
                (1, cols[1]),
                true,
            )
            .expect("tile");
        // Order the write-back after the fetch, as the schedulers do.
        gpu.wait_event(streams.d2h, t.ready.expect("host fetch has event"))
            .expect("wait");
        f.write_back(&mut gpu, streams.d2h, store, t, rows[1], cols[1])
            .expect("wb");
        gpu.synchronize().expect("sync");
        let back = take_host_data::<f64>(&mut gpu, store)
            .expect("data")
            .expect("functional");
        assert_eq!(back, m.as_slice());
    }
}
