//! The level-1 tile schedule: `y ← α·x + y` split into 1-D chunks, each a
//! textbook 3-way pipeline stage (fetch x/y → kernel → drain y).

use super::{OperandStore, Streams, TileFetcher};
use crate::error::RuntimeError;
use crate::fault::RetryPolicy;
use crate::operand::VecOperand;
use cocopelia_gpusim::{DevVecRef, Gpu, KernelArgs, KernelShape, OpTag, OperandRole, SimScalar};
use cocopelia_hostblas::tiling::split;

/// Output of a scheduled axpy.
#[derive(Debug)]
pub(crate) struct AxpyRun<T> {
    pub y: Option<Vec<T>>,
    pub subkernels: usize,
    pub tile_hits: u64,
    pub tile_misses: u64,
    /// Transient-fault retries performed by the tile fetcher.
    pub retries: u64,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run<T: SimScalar>(
    gpu: &mut Gpu,
    streams: Streams,
    call: u64,
    policy: RetryPolicy,
    alpha: f64,
    x: VecOperand<T>,
    y: VecOperand<T>,
    tile: usize,
) -> Result<AxpyRun<T>, RuntimeError> {
    if x.len() != y.len() {
        return Err(RuntimeError::DimensionMismatch {
            what: format!("axpy: x has {} elements but y has {}", x.len(), y.len()),
        });
    }
    let n = x.len();
    let tag = |chunk: usize, operand: Option<OperandRole>, get: bool, set: bool| OpTag {
        routine: "axpy",
        call,
        tile: (chunk, 0),
        operand,
        get,
        set,
    };
    let store_x = OperandStore::from_vec(gpu, x);
    let store_y = OperandStore::from_vec(gpu, y);
    let one = cocopelia_hostblas::tiling::TileRange { start: 0, len: 1 };
    let mut fetcher = TileFetcher::with_policy(policy);
    let mut subkernels = 0usize;

    for (i, &t) in split(n, tile).iter().enumerate() {
        gpu.set_op_tag(tag(i, Some(OperandRole::X), true, false));
        let x_tile = fetcher.tile::<T>(gpu, streams.h2d, 0, store_x, (i, t), (0, one), true)?;
        gpu.set_op_tag(tag(i, Some(OperandRole::Y), true, false));
        let y_tile = fetcher.tile::<T>(gpu, streams.h2d, 1, store_y, (i, t), (0, one), true)?;
        for ev in [x_tile.ready, y_tile.ready].into_iter().flatten() {
            gpu.wait_event(streams.exec, ev)?;
        }
        gpu.set_op_tag(tag(i, None, false, false));
        fetcher.launch(
            gpu,
            streams.exec,
            KernelShape::Axpy {
                dtype: T::DTYPE,
                n: t.len,
            },
            Some(KernelArgs::Axpy {
                alpha,
                x: DevVecRef {
                    buf: x_tile.mat.buf,
                    offset: x_tile.mat.offset,
                },
                y: DevVecRef {
                    buf: y_tile.mat.buf,
                    offset: y_tile.mat.offset,
                },
            }),
        )?;
        subkernels += 1;
        if store_y.host_id().is_some() {
            let done = gpu.record_event(streams.exec)?;
            gpu.wait_event(streams.d2h, done)?;
            gpu.set_op_tag(tag(i, Some(OperandRole::Y), false, true));
            fetcher.write_back(gpu, streams.d2h, store_y, y_tile, t, one)?;
        }
    }
    gpu.clear_op_tag();

    gpu.synchronize()?;
    let (tile_hits, tile_misses) = fetcher.hit_miss();
    let retries = fetcher.retries();
    fetcher.release(gpu)?;
    let y_data = super::take_host_data::<T>(gpu, store_y)?;
    if let Some(h) = store_x.host_id() {
        gpu.take_host(h)?;
    }
    Ok(AxpyRun {
        y: y_data,
        subkernels,
        tile_hits,
        tile_misses,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_gpusim::{testbed_i, ExecMode, NoiseSpec};

    fn quiet_gpu(functional: bool) -> Gpu {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        let mode = if functional {
            ExecMode::Functional
        } else {
            ExecMode::TimingOnly
        };
        Gpu::new(tb, mode, 1)
    }

    #[test]
    fn tiled_axpy_matches_reference() {
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let expect: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.5 * a + b).collect();

        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            2.5,
            VecOperand::Host(x),
            VecOperand::Host(y),
            256, // 4 tiles, last one short
        )
        .expect("runs");
        assert_eq!(run.subkernels, 4);
        assert_eq!(run.y.expect("functional y"), expect);
        assert_eq!(gpu.device_mem_used(), 0);
    }

    #[test]
    fn transfer_volume_is_2n_in_n_out() {
        let n = 1 << 20;
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            VecOperand::HostGhost { len: n },
            VecOperand::HostGhost { len: n },
            1 << 18,
        )
        .expect("runs");
        assert_eq!(
            gpu.trace()
                .bytes_moved(cocopelia_gpusim::EngineKind::CopyH2d),
            2 * n * 8
        );
        assert_eq!(
            gpu.trace()
                .bytes_moved(cocopelia_gpusim::EngineKind::CopyD2h),
            n * 8
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut gpu = quiet_gpu(false);
        let streams = Streams::create(&mut gpu);
        let err = run::<f64>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            1.0,
            VecOperand::HostGhost { len: 10 },
            VecOperand::HostGhost { len: 11 },
            4,
        )
        .expect_err("mismatch");
        assert!(matches!(err, RuntimeError::DimensionMismatch { .. }));
    }

    #[test]
    fn f32_axpy_works() {
        let n = 100;
        let x = vec![1.0f32; n];
        let y = vec![2.0f32; n];
        let mut gpu = quiet_gpu(true);
        let streams = Streams::create(&mut gpu);
        let run = run::<f32>(
            &mut gpu,
            streams,
            0,
            RetryPolicy::default(),
            3.0,
            VecOperand::Host(x),
            VecOperand::Host(y),
            32,
        )
        .expect("runs");
        assert!(run.y.expect("functional").iter().all(|&v| v == 5.0));
    }
}
