//! Retry/backoff policy for fault-tolerant execution in virtual time.

/// Capped exponential backoff policy applied by the tile schedulers to
/// transient device faults (see
/// [`RuntimeError::fault_class`](crate::RuntimeError::fault_class)).
///
/// Backoff waits advance the device's *virtual* clock
/// ([`Gpu::advance_clock`](cocopelia_gpusim::Gpu::advance_clock)), so retry
/// latency is visible in every simulated timing result exactly as a real
/// host-side `usleep` loop would be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per tile-level operation (1 disables retrying).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual seconds.
    pub base_secs: f64,
    /// Ceiling on a single backoff wait, in virtual seconds.
    pub cap_secs: f64,
}

impl RetryPolicy {
    /// The no-retry policy: a single attempt, faults propagate immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_secs: 0.0,
            cap_secs: 0.0,
        }
    }

    /// Backoff before retry number `retry` (0-based): `base · 2^retry`,
    /// capped at [`cap_secs`](RetryPolicy::cap_secs).
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        let exp = 2f64.powi(retry.min(62) as i32);
        (self.base_secs * exp).min(self.cap_secs)
    }
}

impl Default for RetryPolicy {
    /// Three attempts with 100µs base backoff capped at 10ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_secs: 1e-4,
            cap_secs: 1e-2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_secs: 1e-4,
            cap_secs: 1e-3,
        };
        assert_eq!(p.backoff_secs(0), 1e-4);
        assert_eq!(p.backoff_secs(1), 2e-4);
        assert_eq!(p.backoff_secs(2), 4e-4);
        assert_eq!(p.backoff_secs(3), 8e-4);
        assert_eq!(p.backoff_secs(4), 1e-3); // capped
        assert_eq!(p.backoff_secs(40), 1e-3); // stays capped, no overflow
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_secs(0), 0.0);
    }
}
