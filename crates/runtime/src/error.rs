//! Error type of the CoCoPeLia runtime.

use cocopelia_core::models::ModelError;
use cocopelia_gpusim::SimError;
use std::error::Error;
use std::fmt;

/// Errors returned by the CoCoPeLia runtime library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Operand dimensions are inconsistent with the routine.
    DimensionMismatch {
        /// Human-readable description of the inconsistency.
        what: String,
    },
    /// The system profile lacks an execution table for the requested
    /// routine/precision (deployment did not benchmark it).
    MissingExecTable {
        /// Canonical routine name, e.g. `"dgemm"`.
        routine: String,
    },
    /// A model evaluation failed.
    Model(ModelError),
    /// Data was requested from a timing-only (ghost) execution.
    NotFunctional,
    /// The underlying simulated device reported a failure.
    Sim(SimError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            RuntimeError::MissingExecTable { routine } => {
                write!(f, "no execution table for {routine} in the system profile")
            }
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
            RuntimeError::NotFunctional => {
                write!(
                    f,
                    "no data available: device is running in timing-only mode"
                )
            }
            RuntimeError::Sim(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Model(e) => Some(e),
            RuntimeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ModelError> for RuntimeError {
    fn from(e: ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[doc(hidden)]
impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        RuntimeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let e = RuntimeError::DimensionMismatch {
            what: "A cols != B rows".into(),
        };
        assert!(e.to_string().contains("A cols"));
        let e = RuntimeError::MissingExecTable {
            routine: "dgemm".into(),
        };
        assert!(e.to_string().contains("dgemm"));
    }

    #[test]
    fn sources_chain() {
        let e = RuntimeError::Model(ModelError::EmptyExecTable);
        assert!(e.source().is_some());
        let e = RuntimeError::DimensionMismatch { what: "x".into() };
        assert!(e.source().is_none());
    }
}
