//! Error type of the CoCoPeLia runtime.

use cocopelia_core::models::ModelError;
use cocopelia_gpusim::SimError;
use std::error::Error;
use std::fmt;

/// Errors returned by the CoCoPeLia runtime library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Operand dimensions are inconsistent with the routine.
    DimensionMismatch {
        /// Human-readable description of the inconsistency.
        what: String,
    },
    /// The system profile lacks an execution table for the requested
    /// routine/precision (deployment did not benchmark it).
    MissingExecTable {
        /// Canonical routine name, e.g. `"dgemm"`.
        routine: String,
    },
    /// A model evaluation failed.
    Model(ModelError),
    /// Data was requested from a timing-only (ghost) execution.
    NotFunctional,
    /// The underlying simulated device reported a failure.
    Sim(SimError),
    /// A request referenced a shared residency-cache operand outside an
    /// executor (direct `submit`/`run` calls take inline operands only).
    SharedOperand {
        /// The residency-cache key the request referenced.
        key: String,
    },
}

/// Coarse recoverability classification of a [`RuntimeError`], the single
/// source of truth for retry/quarantine decisions in the schedulers and the
/// serving executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Safe to retry as-is (possibly after reclaiming device memory):
    /// out-of-memory, injected transfer faults, kernel launch faults.
    Transient,
    /// The operation must be redone and the hardware is suspect (ECC-style
    /// corruption): retry, preferably counting toward quarantine faster.
    Degraded,
    /// Retrying cannot help: programming errors (dimension mismatches,
    /// stale ids, missing tables) and terminal device loss.
    Fatal,
}

impl FaultClass {
    /// Whether a retry of the failed operation can ever succeed.
    pub fn retryable(self) -> bool {
        !matches!(self, FaultClass::Fatal)
    }
}

impl RuntimeError {
    /// Classifies this error for fault-tolerance purposes.
    ///
    /// Unknown future [`SimError`] variants (the enum is `#[non_exhaustive]`)
    /// classify as [`FaultClass::Fatal`]: an unrecognised failure must not be
    /// silently retried.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            RuntimeError::Sim(e) => match e {
                SimError::OutOfDeviceMemory { .. }
                | SimError::TransferFault { .. }
                | SimError::KernelFault { .. } => FaultClass::Transient,
                SimError::EccError { .. } => FaultClass::Degraded,
                _ => FaultClass::Fatal,
            },
            _ => FaultClass::Fatal,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            RuntimeError::MissingExecTable { routine } => {
                write!(f, "no execution table for {routine} in the system profile")
            }
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
            RuntimeError::NotFunctional => {
                write!(
                    f,
                    "no data available: device is running in timing-only mode"
                )
            }
            RuntimeError::Sim(e) => write!(f, "device error: {e}"),
            RuntimeError::SharedOperand { key } => {
                write!(
                    f,
                    "operand '{key}' references a residency cache; shared operands \
                     require an executor"
                )
            }
        }
    }
}

/// Identifier the serving layer assigns to each submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// A runtime failure annotated with the request it occurred in.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RequestError {
    /// The failing request.
    pub id: RequestId,
    /// Canonical routine name of the request ("dgemm", "daxpy", …).
    pub routine: &'static str,
    /// The underlying runtime failure.
    pub source: RuntimeError,
}

impl RequestError {
    /// Annotates a runtime failure with request context.
    pub fn new(id: RequestId, routine: &'static str, source: RuntimeError) -> Self {
        RequestError {
            id,
            routine,
            source,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {} ({}): {}", self.id, self.routine, self.source)
    }
}

impl Error for RequestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Model(e) => Some(e),
            RuntimeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ModelError> for RuntimeError {
    fn from(e: ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[doc(hidden)]
impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        RuntimeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let e = RuntimeError::DimensionMismatch {
            what: "A cols != B rows".into(),
        };
        assert!(e.to_string().contains("A cols"));
        let e = RuntimeError::MissingExecTable {
            routine: "dgemm".into(),
        };
        assert!(e.to_string().contains("dgemm"));
    }

    #[test]
    fn sources_chain() {
        let e = RuntimeError::Model(ModelError::EmptyExecTable);
        assert!(e.source().is_some());
        let e = RuntimeError::DimensionMismatch { what: "x".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn fault_classes_cover_the_taxonomy() {
        let class = |e: SimError| RuntimeError::Sim(e).fault_class();
        assert_eq!(
            class(SimError::OutOfDeviceMemory {
                requested: 1,
                available: 0
            }),
            FaultClass::Transient
        );
        assert_eq!(
            class(SimError::TransferFault { what: "x".into() }),
            FaultClass::Transient
        );
        assert_eq!(
            class(SimError::KernelFault { what: "x".into() }),
            FaultClass::Transient
        );
        assert_eq!(
            class(SimError::EccError { what: "x".into() }),
            FaultClass::Degraded
        );
        assert_eq!(class(SimError::DeviceLost), FaultClass::Fatal);
        assert_eq!(
            class(SimError::UnknownBuffer { what: "x".into() }),
            FaultClass::Fatal
        );
        assert_eq!(
            RuntimeError::DimensionMismatch { what: "x".into() }.fault_class(),
            FaultClass::Fatal
        );
        assert_eq!(RuntimeError::NotFunctional.fault_class(), FaultClass::Fatal);
        assert!(FaultClass::Transient.retryable());
        assert!(FaultClass::Degraded.retryable());
        assert!(!FaultClass::Fatal.retryable());
    }

    #[test]
    fn request_error_carries_context() {
        let e = RequestError::new(
            RequestId(7),
            "dgemm",
            RuntimeError::SharedOperand { key: "A".into() },
        );
        let s = e.to_string();
        assert!(s.contains("req-7"), "{s}");
        assert!(s.contains("dgemm"), "{s}");
        assert!(s.contains("'A'"), "{s}");
        assert!(e.source().is_some());
    }
}
