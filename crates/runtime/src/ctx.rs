//! The CoCoPeLia library handle: routine wrappers, runtime tiling-size
//! selection with model reuse, and device-residency management.

use crate::error::RuntimeError;
use crate::fault::RetryPolicy;
use crate::operand::{DeviceMatrix, DeviceVector, MatOperand, TileChoice, VecOperand};
use crate::request::{
    AxpyRequest, DotRequest, GemmRequest, GemvRequest, MatArg, RoutineRequest, VecArg,
};
use crate::scheduler::{axpy, dot, gemm, gemv, Streams};
use cocopelia_core::models::{ModelCtx, ModelKind};
use cocopelia_core::params::{Loc, ProblemSpec, RoutineClass};
use cocopelia_core::profile::SystemProfile;
use cocopelia_core::select::{Selection, TileSelector};
use cocopelia_gpusim::{CopyDesc, Gpu, SimScalar, SimTime, StreamId};
use cocopelia_hostblas::{Dtype, Matrix};
use cocopelia_obs::{score_models, CallObservation, DriftRecord, Observer, OverlapStats};
use std::collections::HashMap;

/// Key for the model-reuse cache (§IV-C: "initialize the corresponding
/// model only the first time a user makes a call … with a set of
/// parameters").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SelectKey {
    routine: RoutineClass,
    dtype: Dtype,
    dims: Vec<usize>,
    /// Per-operand (location, input, output) — everything the models read
    /// from the operand list.
    flags: Vec<(Loc, bool, bool)>,
    model: ModelKind,
}

impl SelectKey {
    fn of(problem: &ProblemSpec, model: ModelKind) -> Self {
        SelectKey {
            routine: problem.routine,
            dtype: problem.dtype,
            dims: problem.dims(),
            flags: problem
                .operands
                .iter()
                .map(|o| (o.loc, o.input, o.output))
                .collect(),
            model,
        }
    }
}

/// Facts about one executed routine call.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineReport {
    /// Virtual wall time of the call (enqueue through device sync).
    pub elapsed: SimTime,
    /// Tiling size used.
    pub tile: usize,
    /// Sub-kernels launched.
    pub subkernels: usize,
    /// Useful floating-point operations of the problem.
    pub flops: f64,
    /// The tile selection, when `T` was chosen by a model (absent for
    /// [`TileChoice::Fixed`]).
    pub selection: Option<Selection>,
    /// Exact 3-way overlap statistics of the call's trace slice.
    pub overlap: OverlapStats,
    /// Per-model prediction-drift records scored against the achieved time
    /// (empty when the profile has no exec table for the routine).
    pub drift: Vec<DriftRecord>,
    /// Tile-buffer reuse hits during the call (§IV-C full tile reuse).
    pub tile_hits: u64,
    /// Tile-buffer fetches that missed the reuse cache.
    pub tile_misses: u64,
    /// Tile-level operation retries the scheduler performed against
    /// transient device faults (0 when the device is healthy).
    pub op_retries: u64,
}

impl RoutineReport {
    /// Achieved throughput in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.elapsed.as_secs_f64() / 1e9
    }

    /// Tile-cache hit rate `hits/(hits+misses)`, or 0 when no tile was
    /// ever fetched.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.tile_hits + self.tile_misses;
        if total == 0 {
            0.0
        } else {
            self.tile_hits as f64 / total as f64
        }
    }
}

/// Result of a gemm call.
#[derive(Debug)]
pub struct GemmResult<T> {
    /// The updated `C`, when it was passed as host data in functional mode.
    pub c: Option<Matrix<T>>,
    /// Schedule facts.
    pub report: RoutineReport,
}

/// Result of a dot call.
#[derive(Debug)]
pub struct DotResult {
    /// The reduction value, when host data was provided in functional mode.
    pub value: Option<f64>,
    /// Schedule facts.
    pub report: RoutineReport,
}

/// Result of an axpy or gemv call.
#[derive(Debug)]
pub struct VecResult<T> {
    /// The updated `y`, when it was passed as host data in functional mode.
    pub y: Option<Vec<T>>,
    /// Schedule facts.
    pub report: RoutineReport,
}

/// The end-to-end CoCoPeLia library of §IV-C: BLAS wrappers with 3-way
/// overlap, full tile reuse, and automatic tiling-size selection.
///
/// # Example
///
/// ```no_run
/// use cocopelia_deploy::{deploy, DeployConfig};
/// use cocopelia_gpusim::{testbed_ii, ExecMode, Gpu};
/// use cocopelia_hostblas::Matrix;
/// use cocopelia_runtime::{Cocopelia, GemmRequest, TileChoice};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let report = deploy(&testbed_ii(), &DeployConfig::quick())?;
/// let gpu = Gpu::new(testbed_ii(), ExecMode::Functional, 42);
/// let mut ctx = Cocopelia::new(gpu, report.profile);
///
/// let n = 4096;
/// let a = Matrix::<f64>::from_fn(n, n, |i, j| (i + j) as f64 / n as f64);
/// let b = Matrix::<f64>::from_fn(n, n, |i, j| (i as f64 - j as f64) / n as f64);
/// let c = Matrix::<f64>::zeros(n, n);
/// let out = GemmRequest::new(a, b, c).tile(TileChoice::Auto).run(&mut ctx)?;
/// println!("T = {}, {:.1} GFLOP/s", out.report.tile, out.report.gflops());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cocopelia {
    gpu: Gpu,
    profile: SystemProfile,
    selector: TileSelector,
    streams: Option<Streams>,
    prefetch_stream: Option<StreamId>,
    cache: HashMap<SelectKey, Selection>,
    obs: Observer,
    retry: RetryPolicy,
}

impl Cocopelia {
    /// Wraps a device with a deployed system profile.
    pub fn new(gpu: Gpu, profile: SystemProfile) -> Self {
        Cocopelia {
            gpu,
            profile,
            selector: TileSelector::default(),
            streams: None,
            prefetch_stream: None,
            cache: HashMap::new(),
            obs: Observer::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the tile-selection policy.
    pub fn set_selector(&mut self, selector: TileSelector) {
        self.selector = selector;
    }

    /// Replaces the tile-level retry/backoff policy applied to transient
    /// device faults ([`RetryPolicy::none`] disables retrying).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The retry/backoff policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The wrapped device.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Mutable access to the wrapped device (trace inspection etc.).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Consumes the handle and returns the device.
    pub fn into_gpu(self) -> Gpu {
        self.gpu
    }

    /// The deployed profile in use.
    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    /// The pipeline observer: metrics, per-call overlap statistics, and
    /// prediction-drift aggregates accumulated across routine calls.
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Mutable access to the pipeline observer.
    pub fn observer_mut(&mut self) -> &mut Observer {
        &mut self.obs
    }

    fn ensure_streams(&mut self) -> Streams {
        // Streams are created once and reused across calls (§IV-C).
        match self.streams {
            Some(s) => s,
            None => {
                let s = Streams::create(&mut self.gpu);
                self.streams = Some(s);
                s
            }
        }
    }

    /// The dedicated background stream cross-request prefetch copies ride
    /// on: the copy engine serves it only in its idle gaps, so staged
    /// transfers drain in the h2d slack under the running routine's
    /// compute and never delay its own uploads. Never created on
    /// prefetch-off runs, so their schedules are untouched.
    fn ensure_prefetch_stream(&mut self) -> StreamId {
        match self.prefetch_stream {
            Some(s) => s,
            None => {
                let s = self.gpu.create_stream_background();
                self.prefetch_stream = Some(s);
                s
            }
        }
    }

    /// Runs `CoCoPeLia_select` for `problem` under `model`, with model
    /// reuse across calls.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::MissingExecTable`] if deployment did not benchmark
    /// the routine; model errors propagate as [`RuntimeError::Model`].
    pub fn select_tile(
        &mut self,
        problem: &ProblemSpec,
        model: ModelKind,
    ) -> Result<Selection, RuntimeError> {
        let key = SelectKey::of(problem, model);
        if let Some(sel) = self.cache.get(&key).cloned() {
            self.obs.record_selection_lookup(true);
            return Ok(sel);
        }
        self.obs.record_selection_lookup(false);
        let exec = self
            .profile
            .exec_table(problem.routine, problem.dtype)
            .ok_or_else(|| RuntimeError::MissingExecTable {
                routine: problem.routine.name(problem.dtype),
            })?;
        let ctx = ModelCtx {
            problem,
            transfer: &self.profile.transfer,
            exec,
            full_kernel_time: None,
        };
        let sel = self.selector.select(model, &ctx)?;
        self.cache.insert(key, sel.clone());
        Ok(sel)
    }

    fn resolve_tile(
        &mut self,
        problem: &ProblemSpec,
        choice: TileChoice,
    ) -> Result<(usize, Option<Selection>), RuntimeError> {
        match choice {
            TileChoice::Fixed(t) => {
                if t == 0 {
                    return Err(RuntimeError::DimensionMismatch {
                        what: "tiling size must be positive".to_owned(),
                    });
                }
                Ok((t, None))
            }
            TileChoice::Auto => {
                let model = ModelKind::recommended_for(problem.routine);
                let sel = self.select_tile(problem, model)?;
                Ok((sel.tile, Some(sel)))
            }
            TileChoice::Model(model) => {
                let sel = self.select_tile(problem, model)?;
                Ok((sel.tile, Some(sel)))
            }
        }
    }

    /// Scores the finished call against every evaluable model, feeds the
    /// observer, and returns the overlap stats and drift records for the
    /// call's [`RoutineReport`].
    #[allow(clippy::too_many_arguments)]
    fn finish_call(
        &mut self,
        routine: &'static str,
        call: u64,
        problem: &ProblemSpec,
        tile: usize,
        selection: Option<&Selection>,
        subkernels: usize,
        elapsed: SimTime,
        trace_start: usize,
        tile_hits: u64,
        tile_misses: u64,
    ) -> (OverlapStats, Vec<DriftRecord>) {
        let actual_secs = elapsed.as_secs_f64();
        let drift = match self.profile.exec_table(problem.routine, problem.dtype) {
            Some(exec) => {
                let mctx = ModelCtx {
                    problem,
                    transfer: &self.profile.transfer,
                    exec,
                    full_kernel_time: None,
                };
                score_models(routine, call, &mctx, tile, actual_secs)
            }
            None => Vec::new(),
        };
        let entries = &self.gpu.trace().entries()[trace_start..];
        let overlap = OverlapStats::from_entries(entries);
        self.obs.observe_call(CallObservation {
            routine,
            call,
            tile,
            model: selection.map(|s| s.prediction.model),
            subkernels,
            elapsed_secs: actual_secs,
            entries,
            tile_hits,
            tile_misses,
            drift: drift.clone(),
        });
        (overlap, drift)
    }

    /// Executes a [`GemmRequest`]: `C ← α·A·B + β·C` with 3-way overlap.
    ///
    /// # Errors
    ///
    /// Dimension mismatches, missing exec tables (for model-driven tile
    /// choices), shared operands (executor-only), and simulator failures.
    pub fn run_gemm<T: SimScalar>(
        &mut self,
        req: GemmRequest<T>,
    ) -> Result<GemmResult<T>, RuntimeError> {
        let GemmRequest {
            a,
            b,
            c,
            alpha,
            beta,
            tile: choice,
            deadline: _,
        } = req;
        let a = inline_mat(a)?;
        let b = inline_mat(b)?;
        let c = inline_mat(c)?;
        let (m, n, k) = gemm::check_dims(&a, &b, &c)?;
        let problem = ProblemSpec::gemm(T::DTYPE, m, n, k, a.loc(), b.loc(), c.loc(), beta != 0.0);
        let (tile, selection) = self.resolve_tile(&problem, choice)?;
        let streams = self.ensure_streams();
        let call = self.obs.next_call_id();
        let trace_start = self.gpu.trace().len();
        let t0 = self.gpu.now();
        let run = gemm::run(
            &mut self.gpu,
            streams,
            call,
            self.retry,
            alpha,
            a,
            b,
            beta,
            c,
            tile,
        )?;
        let elapsed = self.gpu.now().saturating_since(t0);
        let (overlap, drift) = self.finish_call(
            "gemm",
            call,
            &problem,
            tile,
            selection.as_ref(),
            run.subkernels,
            elapsed,
            trace_start,
            run.tile_hits,
            run.tile_misses,
        );
        Ok(GemmResult {
            c: run.c,
            report: RoutineReport {
                elapsed,
                tile,
                subkernels: run.subkernels,
                flops: problem.flops(),
                selection,
                overlap,
                drift,
                tile_hits: run.tile_hits,
                tile_misses: run.tile_misses,
                op_retries: run.retries,
            },
        })
    }

    /// Executes an [`AxpyRequest`]: `y ← α·x + y` with 3-way overlap.
    ///
    /// # Errors
    ///
    /// As for [`run_gemm`](Self::run_gemm).
    pub fn run_axpy<T: SimScalar>(
        &mut self,
        req: AxpyRequest<T>,
    ) -> Result<VecResult<T>, RuntimeError> {
        let AxpyRequest {
            alpha,
            x,
            y,
            tile: choice,
            deadline: _,
        } = req;
        let x = inline_vec(x)?;
        let y = inline_vec(y)?;
        if x.len() != y.len() {
            return Err(RuntimeError::DimensionMismatch {
                what: format!("axpy: x has {} elements but y has {}", x.len(), y.len()),
            });
        }
        let problem = ProblemSpec::axpy(T::DTYPE, x.len(), x.loc(), y.loc());
        let (tile, selection) = self.resolve_tile(&problem, choice)?;
        let streams = self.ensure_streams();
        let call = self.obs.next_call_id();
        let trace_start = self.gpu.trace().len();
        let t0 = self.gpu.now();
        let run = axpy::run(&mut self.gpu, streams, call, self.retry, alpha, x, y, tile)?;
        let elapsed = self.gpu.now().saturating_since(t0);
        let (overlap, drift) = self.finish_call(
            "axpy",
            call,
            &problem,
            tile,
            selection.as_ref(),
            run.subkernels,
            elapsed,
            trace_start,
            run.tile_hits,
            run.tile_misses,
        );
        Ok(VecResult {
            y: run.y,
            report: RoutineReport {
                elapsed,
                tile,
                subkernels: run.subkernels,
                flops: problem.flops(),
                selection,
                overlap,
                drift,
                tile_hits: run.tile_hits,
                tile_misses: run.tile_misses,
                op_retries: run.retries,
            },
        })
    }

    /// Executes a [`DotRequest`]: tiled reduction `result ← xᵀy` with
    /// 3-way overlap (the partials drain in one transfer and are summed on
    /// the host).
    ///
    /// # Errors
    ///
    /// As for [`run_gemm`](Self::run_gemm).
    pub fn run_dot<T: SimScalar>(&mut self, req: DotRequest<T>) -> Result<DotResult, RuntimeError> {
        let DotRequest {
            x,
            y,
            tile: choice,
            deadline: _,
        } = req;
        let x = inline_vec(x)?;
        let y = inline_vec(y)?;
        if x.len() != y.len() {
            return Err(RuntimeError::DimensionMismatch {
                what: format!("dot: x has {} elements but y has {}", x.len(), y.len()),
            });
        }
        let problem = ProblemSpec::dot(T::DTYPE, x.len(), x.loc(), y.loc());
        let (tile, selection) = self.resolve_tile(&problem, choice)?;
        let streams = self.ensure_streams();
        let call = self.obs.next_call_id();
        let trace_start = self.gpu.trace().len();
        let t0 = self.gpu.now();
        let run = dot::run(&mut self.gpu, streams, call, self.retry, x, y, tile)?;
        let elapsed = self.gpu.now().saturating_since(t0);
        let (overlap, drift) = self.finish_call(
            "dot",
            call,
            &problem,
            tile,
            selection.as_ref(),
            run.subkernels,
            elapsed,
            trace_start,
            run.tile_hits,
            run.tile_misses,
        );
        Ok(DotResult {
            value: run.value,
            report: RoutineReport {
                elapsed,
                tile,
                subkernels: run.subkernels,
                flops: problem.flops(),
                selection,
                overlap,
                drift,
                tile_hits: run.tile_hits,
                tile_misses: run.tile_misses,
                op_retries: run.retries,
            },
        })
    }

    /// Double-precision dot (BLAS `ddot`). See [`run_dot`](Self::run_dot).
    ///
    /// # Errors
    ///
    /// As for [`run_dot`](Self::run_dot).
    #[deprecated(note = "use DotRequest::new(x, y).tile(choice).run(ctx)")]
    pub fn ddot(
        &mut self,
        x: VecOperand<f64>,
        y: VecOperand<f64>,
        choice: TileChoice,
    ) -> Result<DotResult, RuntimeError> {
        self.run_dot(DotRequest::new(x, y).tile(choice))
    }

    /// Executes a [`GemvRequest`]: `y ← α·A·x + β·y` with 3-way overlap
    /// (the extension routine).
    ///
    /// # Errors
    ///
    /// As for [`run_gemm`](Self::run_gemm).
    pub fn run_gemv<T: SimScalar>(
        &mut self,
        req: GemvRequest<T>,
    ) -> Result<VecResult<T>, RuntimeError> {
        let GemvRequest {
            alpha,
            a,
            x,
            beta,
            y,
            tile: choice,
            deadline: _,
        } = req;
        let a = inline_mat(a)?;
        let x = inline_vec(x)?;
        let y = inline_vec(y)?;
        if x.len() != a.cols() || y.len() != a.rows() {
            return Err(RuntimeError::DimensionMismatch {
                what: format!(
                    "gemv: A is {}x{} but x has {} and y has {} elements",
                    a.rows(),
                    a.cols(),
                    x.len(),
                    y.len()
                ),
            });
        }
        let problem = ProblemSpec::gemv(
            T::DTYPE,
            a.rows(),
            a.cols(),
            a.loc(),
            x.loc(),
            y.loc(),
            beta != 0.0,
        );
        let (tile, selection) = self.resolve_tile(&problem, choice)?;
        let streams = self.ensure_streams();
        let call = self.obs.next_call_id();
        let trace_start = self.gpu.trace().len();
        let t0 = self.gpu.now();
        let run = gemv::run(
            &mut self.gpu,
            streams,
            call,
            self.retry,
            alpha,
            a,
            x,
            beta,
            y,
            tile,
        )?;
        let elapsed = self.gpu.now().saturating_since(t0);
        let (overlap, drift) = self.finish_call(
            "gemv",
            call,
            &problem,
            tile,
            selection.as_ref(),
            run.subkernels,
            elapsed,
            trace_start,
            run.tile_hits,
            run.tile_misses,
        );
        Ok(VecResult {
            y: run.y,
            report: RoutineReport {
                elapsed,
                tile,
                subkernels: run.subkernels,
                flops: problem.flops(),
                selection,
                overlap,
                drift,
                tile_hits: run.tile_hits,
                tile_misses: run.tile_misses,
                op_retries: run.retries,
            },
        })
    }

    /// Executes a type-erased [`RoutineRequest`], returning its report.
    /// This is the single-call twin of queued executor submission; typed
    /// results (output matrices, reduction values) are only available
    /// through the typed `run` paths.
    ///
    /// # Errors
    ///
    /// As for the underlying routine.
    pub fn submit(
        &mut self,
        req: impl Into<RoutineRequest>,
    ) -> Result<RoutineReport, RuntimeError> {
        match req.into() {
            RoutineRequest::GemmF64(r) => Ok(self.run_gemm(r)?.report),
            RoutineRequest::GemmF32(r) => Ok(self.run_gemm(r)?.report),
            RoutineRequest::AxpyF64(r) => Ok(self.run_axpy(r)?.report),
            RoutineRequest::DotF64(r) => Ok(self.run_dot(r)?.report),
            RoutineRequest::GemvF64(r) => Ok(self.run_gemv(r)?.report),
        }
    }

    /// General matrix multiply `C ← α·A·B + β·C` with 3-way overlap.
    ///
    /// # Errors
    ///
    /// As for [`run_gemm`](Self::run_gemm).
    #[deprecated(note = "use GemmRequest::new(a, b, c).alpha(..).beta(..).tile(choice).run(ctx)")]
    pub fn gemm<T: SimScalar>(
        &mut self,
        alpha: f64,
        a: MatOperand<T>,
        b: MatOperand<T>,
        beta: f64,
        c: MatOperand<T>,
        choice: TileChoice,
    ) -> Result<GemmResult<T>, RuntimeError> {
        self.run_gemm(
            GemmRequest::new(a, b, c)
                .alpha(alpha)
                .beta(beta)
                .tile(choice),
        )
    }

    /// `y ← α·x + y` with 3-way overlap.
    ///
    /// # Errors
    ///
    /// As for [`run_axpy`](Self::run_axpy).
    #[deprecated(note = "use AxpyRequest::new(x, y).alpha(..).tile(choice).run(ctx)")]
    pub fn axpy<T: SimScalar>(
        &mut self,
        alpha: f64,
        x: VecOperand<T>,
        y: VecOperand<T>,
        choice: TileChoice,
    ) -> Result<VecResult<T>, RuntimeError> {
        self.run_axpy(AxpyRequest::new(x, y).alpha(alpha).tile(choice))
    }

    /// Tiled reduction `result ← xᵀy` with 3-way overlap.
    ///
    /// # Errors
    ///
    /// As for [`run_dot`](Self::run_dot).
    #[deprecated(note = "use DotRequest::new(x, y).tile(choice).run(ctx)")]
    pub fn dot<T: SimScalar>(
        &mut self,
        x: VecOperand<T>,
        y: VecOperand<T>,
        choice: TileChoice,
    ) -> Result<DotResult, RuntimeError> {
        self.run_dot(DotRequest::new(x, y).tile(choice))
    }

    /// `y ← α·A·x + β·y` with 3-way overlap (the extension routine).
    ///
    /// # Errors
    ///
    /// As for [`run_gemv`](Self::run_gemv).
    #[deprecated(note = "use GemvRequest::new(a, x, y).alpha(..).beta(..).tile(choice).run(ctx)")]
    pub fn gemv<T: SimScalar>(
        &mut self,
        alpha: f64,
        a: MatOperand<T>,
        x: VecOperand<T>,
        beta: f64,
        y: VecOperand<T>,
        choice: TileChoice,
    ) -> Result<VecResult<T>, RuntimeError> {
        self.run_gemv(
            GemvRequest::new(a, x, y)
                .alpha(alpha)
                .beta(beta)
                .tile(choice),
        )
    }

    /// Double-precision gemm (BLAS `dgemm`). See [`run_gemm`](Self::run_gemm).
    ///
    /// # Errors
    ///
    /// As for [`run_gemm`](Self::run_gemm).
    #[deprecated(note = "use GemmRequest::new(a, b, c).alpha(..).beta(..).tile(choice).run(ctx)")]
    pub fn dgemm(
        &mut self,
        alpha: f64,
        a: MatOperand<f64>,
        b: MatOperand<f64>,
        beta: f64,
        c: MatOperand<f64>,
        choice: TileChoice,
    ) -> Result<GemmResult<f64>, RuntimeError> {
        self.run_gemm(
            GemmRequest::new(a, b, c)
                .alpha(alpha)
                .beta(beta)
                .tile(choice),
        )
    }

    /// Single-precision gemm (BLAS `sgemm`). See [`run_gemm`](Self::run_gemm).
    ///
    /// # Errors
    ///
    /// As for [`run_gemm`](Self::run_gemm).
    #[deprecated(note = "use GemmRequest::new(a, b, c).alpha(..).beta(..).tile(choice).run(ctx)")]
    pub fn sgemm(
        &mut self,
        alpha: f64,
        a: MatOperand<f32>,
        b: MatOperand<f32>,
        beta: f64,
        c: MatOperand<f32>,
        choice: TileChoice,
    ) -> Result<GemmResult<f32>, RuntimeError> {
        self.run_gemm(
            GemmRequest::new(a, b, c)
                .alpha(alpha)
                .beta(beta)
                .tile(choice),
        )
    }

    /// Double-precision axpy (BLAS `daxpy`). See [`run_axpy`](Self::run_axpy).
    ///
    /// # Errors
    ///
    /// As for [`run_axpy`](Self::run_axpy).
    #[deprecated(note = "use AxpyRequest::new(x, y).alpha(..).tile(choice).run(ctx)")]
    pub fn daxpy(
        &mut self,
        alpha: f64,
        x: VecOperand<f64>,
        y: VecOperand<f64>,
        choice: TileChoice,
    ) -> Result<VecResult<f64>, RuntimeError> {
        self.run_axpy(AxpyRequest::new(x, y).alpha(alpha).tile(choice))
    }

    /// Double-precision gemv (BLAS `dgemv`). See [`run_gemv`](Self::run_gemv).
    ///
    /// # Errors
    ///
    /// As for [`run_gemv`](Self::run_gemv).
    #[deprecated(note = "use GemvRequest::new(a, x, y).alpha(..).beta(..).tile(choice).run(ctx)")]
    pub fn dgemv(
        &mut self,
        alpha: f64,
        a: MatOperand<f64>,
        x: VecOperand<f64>,
        beta: f64,
        y: VecOperand<f64>,
        choice: TileChoice,
    ) -> Result<VecResult<f64>, RuntimeError> {
        self.run_gemv(
            GemvRequest::new(a, x, y)
                .alpha(alpha)
                .beta(beta)
                .tile(choice),
        )
    }

    /// Copies a host matrix into device memory and returns a resident
    /// handle (the "data already on the GPU" scenario of §III-A2).
    ///
    /// # Errors
    ///
    /// Out-of-memory and other simulator failures.
    pub fn upload_matrix<T: SimScalar>(
        &mut self,
        m: &Matrix<T>,
    ) -> Result<DeviceMatrix, RuntimeError> {
        let len = m.rows() * m.cols();
        let host = self
            .gpu
            .register_host(T::into_payload(m.as_slice().to_vec()), true);
        let dev = self.gpu.alloc_device(T::DTYPE, len)?;
        let streams = self.ensure_streams();
        self.gpu
            .memcpy_h2d_async(streams.h2d, CopyDesc::contiguous(host, dev, len))?;
        self.gpu.synchronize()?;
        self.gpu.take_host(host)?;
        Ok(DeviceMatrix {
            buf: dev,
            rows: m.rows(),
            cols: m.cols(),
        })
    }

    /// Charges the h2d transfer of a `rows × cols` ghost matrix and returns
    /// the resident handle — the timing-only twin of
    /// [`upload_matrix`](Self::upload_matrix). The serving layer uses this
    /// to pay upload cost for residency-cache fills without host data.
    ///
    /// # Errors
    ///
    /// Out-of-memory and other simulator failures.
    pub fn upload_ghost_matrix(
        &mut self,
        dtype: Dtype,
        rows: usize,
        cols: usize,
    ) -> Result<DeviceMatrix, RuntimeError> {
        let len = rows * cols;
        let host = self.gpu.register_host_ghost(dtype, len, true);
        let dev = self.gpu.alloc_device(dtype, len)?;
        let streams = self.ensure_streams();
        self.gpu
            .memcpy_h2d_async(streams.h2d, CopyDesc::contiguous(host, dev, len))?;
        self.gpu.synchronize()?;
        self.gpu.take_host(host)?;
        Ok(DeviceMatrix {
            buf: dev,
            rows,
            cols,
        })
    }

    /// Enqueues the h2d transfer of a ghost matrix *without* synchronizing
    /// — the copy is queued on the dedicated prefetch stream under `tag`
    /// and overlaps whatever the device executes before its next
    /// synchronize. The
    /// returned [`HostBufId`](cocopelia_gpusim::HostBufId) names the
    /// staging ghost; the caller must `take_host` it after a synchronize
    /// (or free the device buffer and take the ghost on abandonment). The
    /// cross-request prefetcher uses this to hide a queued request's
    /// uploads under the running request's compute.
    ///
    /// # Errors
    ///
    /// Out-of-memory and enqueue-time fault injection. On error nothing
    /// stays allocated.
    pub(crate) fn enqueue_ghost_matrix(
        &mut self,
        dtype: Dtype,
        rows: usize,
        cols: usize,
        tag: cocopelia_gpusim::OpTag,
    ) -> Result<(DeviceMatrix, cocopelia_gpusim::HostBufId), RuntimeError> {
        let len = rows * cols;
        let host = self.gpu.register_host_ghost(dtype, len, true);
        let dev = match self.gpu.alloc_device(dtype, len) {
            Ok(dev) => dev,
            Err(e) => {
                let _ = self.gpu.take_host(host);
                return Err(e.into());
            }
        };
        let stream = self.ensure_prefetch_stream();
        self.gpu.set_op_tag(tag);
        let res = self
            .gpu
            .memcpy_h2d_async(stream, CopyDesc::contiguous(host, dev, len));
        self.gpu.clear_op_tag();
        if let Err(e) = res {
            let _ = self.gpu.free_device(dev);
            let _ = self.gpu.take_host(host);
            return Err(e.into());
        }
        Ok((
            DeviceMatrix {
                buf: dev,
                rows,
                cols,
            },
            host,
        ))
    }

    /// Enqueues the h2d transfer of a ghost vector without synchronizing;
    /// see [`enqueue_ghost_matrix`](Self::enqueue_ghost_matrix).
    ///
    /// # Errors
    ///
    /// As for [`enqueue_ghost_matrix`](Self::enqueue_ghost_matrix).
    pub(crate) fn enqueue_ghost_vector(
        &mut self,
        dtype: Dtype,
        len: usize,
        tag: cocopelia_gpusim::OpTag,
    ) -> Result<(DeviceVector, cocopelia_gpusim::HostBufId), RuntimeError> {
        let host = self.gpu.register_host_ghost(dtype, len, true);
        let dev = match self.gpu.alloc_device(dtype, len) {
            Ok(dev) => dev,
            Err(e) => {
                let _ = self.gpu.take_host(host);
                return Err(e.into());
            }
        };
        let stream = self.ensure_prefetch_stream();
        self.gpu.set_op_tag(tag);
        let res = self
            .gpu
            .memcpy_h2d_async(stream, CopyDesc::contiguous(host, dev, len));
        self.gpu.clear_op_tag();
        if let Err(e) = res {
            let _ = self.gpu.free_device(dev);
            let _ = self.gpu.take_host(host);
            return Err(e.into());
        }
        Ok((DeviceVector { buf: dev, len }, host))
    }

    /// Allocates a device-resident matrix without data (timing sweeps).
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn alloc_matrix(
        &mut self,
        dtype: Dtype,
        rows: usize,
        cols: usize,
    ) -> Result<DeviceMatrix, RuntimeError> {
        let dev = self.gpu.alloc_device(dtype, rows * cols)?;
        Ok(DeviceMatrix {
            buf: dev,
            rows,
            cols,
        })
    }

    /// Copies a device-resident matrix back to the host.
    ///
    /// # Errors
    ///
    /// Fails in timing-only mode (no data to download) with
    /// [`RuntimeError::NotFunctional`].
    pub fn download_matrix<T: SimScalar>(
        &mut self,
        d: &DeviceMatrix,
    ) -> Result<Matrix<T>, RuntimeError> {
        if !self.gpu.is_functional() {
            return Err(RuntimeError::NotFunctional);
        }
        let len = d.rows * d.cols;
        let host = self
            .gpu
            .register_host(T::into_payload(vec![T::ZERO; len]), true);
        let streams = self.ensure_streams();
        self.gpu
            .memcpy_d2h_async(streams.d2h, CopyDesc::contiguous(host, d.buf, len))?;
        self.gpu.synchronize()?;
        let buf = self.gpu.take_host(host)?;
        Ok(Matrix::from_vec(
            d.rows,
            d.cols,
            T::payload_into_vec(buf.payload),
        ))
    }

    /// Releases a device-resident matrix.
    ///
    /// # Errors
    ///
    /// Stale handles and in-flight work.
    pub fn free_matrix(&mut self, d: DeviceMatrix) -> Result<(), RuntimeError> {
        self.gpu.free_device(d.buf)?;
        Ok(())
    }

    /// Copies a host vector into device memory.
    ///
    /// # Errors
    ///
    /// Out-of-memory and other simulator failures.
    pub fn upload_vector<T: SimScalar>(&mut self, v: &[T]) -> Result<DeviceVector, RuntimeError> {
        let host = self.gpu.register_host(T::into_payload(v.to_vec()), true);
        let dev = self.gpu.alloc_device(T::DTYPE, v.len())?;
        let streams = self.ensure_streams();
        self.gpu
            .memcpy_h2d_async(streams.h2d, CopyDesc::contiguous(host, dev, v.len()))?;
        self.gpu.synchronize()?;
        self.gpu.take_host(host)?;
        Ok(DeviceVector {
            buf: dev,
            len: v.len(),
        })
    }

    /// Charges the h2d transfer of a ghost vector of `len` elements and
    /// returns the resident handle. See
    /// [`upload_ghost_matrix`](Self::upload_ghost_matrix).
    ///
    /// # Errors
    ///
    /// Out-of-memory and other simulator failures.
    pub fn upload_ghost_vector(
        &mut self,
        dtype: Dtype,
        len: usize,
    ) -> Result<DeviceVector, RuntimeError> {
        let host = self.gpu.register_host_ghost(dtype, len, true);
        let dev = self.gpu.alloc_device(dtype, len)?;
        let streams = self.ensure_streams();
        self.gpu
            .memcpy_h2d_async(streams.h2d, CopyDesc::contiguous(host, dev, len))?;
        self.gpu.synchronize()?;
        self.gpu.take_host(host)?;
        Ok(DeviceVector { buf: dev, len })
    }

    /// Allocates a device-resident vector without data.
    ///
    /// # Errors
    ///
    /// Out-of-memory.
    pub fn alloc_vector(&mut self, dtype: Dtype, len: usize) -> Result<DeviceVector, RuntimeError> {
        let dev = self.gpu.alloc_device(dtype, len)?;
        Ok(DeviceVector { buf: dev, len })
    }

    /// Copies a device-resident vector back to the host.
    ///
    /// # Errors
    ///
    /// Fails in timing-only mode with [`RuntimeError::NotFunctional`].
    pub fn download_vector<T: SimScalar>(
        &mut self,
        d: &DeviceVector,
    ) -> Result<Vec<T>, RuntimeError> {
        if !self.gpu.is_functional() {
            return Err(RuntimeError::NotFunctional);
        }
        let host = self
            .gpu
            .register_host(T::into_payload(vec![T::ZERO; d.len]), true);
        let streams = self.ensure_streams();
        self.gpu
            .memcpy_d2h_async(streams.d2h, CopyDesc::contiguous(host, d.buf, d.len))?;
        self.gpu.synchronize()?;
        let buf = self.gpu.take_host(host)?;
        Ok(T::payload_into_vec(buf.payload))
    }

    /// Releases a device-resident vector.
    ///
    /// # Errors
    ///
    /// Stale handles and in-flight work.
    pub fn free_vector(&mut self, d: DeviceVector) -> Result<(), RuntimeError> {
        self.gpu.free_device(d.buf)?;
        Ok(())
    }

    /// Number of cached tile selections (model reuse, §IV-C).
    pub fn cached_selections(&self) -> usize {
        self.cache.len()
    }
}

/// Rejects shared matrix arguments outside an executor.
fn inline_mat<T>(arg: MatArg<T>) -> Result<MatOperand<T>, RuntimeError> {
    match arg {
        MatArg::Inline(op) => Ok(op),
        MatArg::Shared(s) => Err(RuntimeError::SharedOperand { key: s.key }),
    }
}

/// Rejects shared vector arguments outside an executor.
fn inline_vec<T>(arg: VecArg<T>) -> Result<VecOperand<T>, RuntimeError> {
    match arg {
        VecArg::Inline(op) => Ok(op),
        VecArg::Shared(s) => Err(RuntimeError::SharedOperand { key: s.key }),
    }
}
