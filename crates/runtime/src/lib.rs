//! # cocopelia-runtime
//!
//! The end-to-end CoCoPeLia BLAS offload library of §IV-C: a tile scheduler
//! with square tiling, full tile reuse, 3-way overlap over one stream per
//! operation type, and runtime tiling-size selection driven by the
//! `cocopelia-core` prediction models.
//!
//! Entry point: [`Cocopelia`], wrapping a simulated device
//! ([`cocopelia_gpusim::Gpu`]) and a deployed
//! [`SystemProfile`](cocopelia_core::profile::SystemProfile).
//!
//! Routines are described by typed request builders — [`GemmRequest`],
//! [`AxpyRequest`], [`DotRequest`], [`GemvRequest`] (the paper's "extension
//! skeleton" routine) — executed either directly
//! ([`GemmRequest::run`], [`Cocopelia::submit`]) or queued through the
//! concurrent serving layer ([`serve::Executor`]). Each operand lives on
//! the host (with or without data), already on the device, or in the
//! executor's cross-request residency cache, and each request carries a
//! [`TileChoice`]: automatic model-driven selection, a specific model (for
//! the Fig. 6 comparisons), or a fixed `T` à la cuBLASXt.

#![deny(missing_docs)]

mod ctx;
mod error;
mod fault;
mod operand;
mod request;
mod scheduler;

pub mod multigpu;
pub mod serve;

pub use ctx::{Cocopelia, DotResult, GemmResult, RoutineReport, VecResult};
pub use error::{FaultClass, RequestError, RequestId, RuntimeError};
pub use fault::RetryPolicy;
pub use multigpu::{MultiGemmResult, MultiGpu};
pub use operand::{DeviceMatrix, DeviceVector, MatOperand, TileChoice, VecOperand};
pub use request::{
    AxpyRequest, DotRequest, GemmRequest, GemvRequest, MatArg, RoutineRequest, SharedMat,
    SharedOperandSpec, SharedVec, VecArg,
};
