//! # cocopelia-runtime
//!
//! The end-to-end CoCoPeLia BLAS offload library of §IV-C: a tile scheduler
//! with square tiling, full tile reuse, 3-way overlap over one stream per
//! operation type, and runtime tiling-size selection driven by the
//! `cocopelia-core` prediction models.
//!
//! Entry point: [`Cocopelia`], wrapping a simulated device
//! ([`cocopelia_gpusim::Gpu`]) and a deployed
//! [`SystemProfile`](cocopelia_core::profile::SystemProfile).
//!
//! Routines: [`Cocopelia::dgemm`], [`Cocopelia::sgemm`],
//! [`Cocopelia::daxpy`], plus [`Cocopelia::dgemv`] as the paper's
//! "extension skeleton" routine. Each accepts operands on the host (with or
//! without data) or already resident on the device, and a [`TileChoice`]:
//! automatic model-driven selection, a specific model (for the Fig. 6
//! comparisons), or a fixed `T` à la cuBLASXt.

#![deny(missing_docs)]

mod ctx;
mod error;
mod operand;
mod scheduler;

pub mod multigpu;

pub use ctx::{Cocopelia, DotResult, GemmResult, RoutineReport, VecResult};
pub use error::RuntimeError;
pub use multigpu::{MultiGemmResult, MultiGpu};
pub use operand::{DeviceMatrix, DeviceVector, MatOperand, TileChoice, VecOperand};
