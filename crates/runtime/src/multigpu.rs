//! Multi-GPU execution — the paper's first "future work" item (§VI: "…
//! includes multi-GPU and host-assisted execution, with the vision of
//! providing a portable auto-tuned heterogeneous BLAS library").
//!
//! The decomposition follows the multi-GPU mode of the comparator libraries
//! (cuBLASXt/BLASX split the output matrix across devices): `C` is divided
//! into contiguous column blocks, one per device; each device receives the
//! whole of `A`, its column block of `B` and `C`, and runs the ordinary
//! CoCoPeLia tile schedule — including per-device tiling-size selection,
//! which now sees a *rectangular* sub-problem (`M × N/G × K`) and adapts
//! accordingly.
//!
//! Modelling note: each simulated device owns an independent host link
//! (separate PCIe slots, as in DGX-class nodes), so cross-device link
//! contention is not modelled; the makespan is the slowest device's virtual
//! time.

use crate::ctx::{Cocopelia, RoutineReport};
use crate::error::RuntimeError;
use crate::operand::{MatOperand, TileChoice};
use crate::request::GemmRequest;
use cocopelia_core::profile::SystemProfile;
use cocopelia_gpusim::{ExecMode, FaultSpec, Gpu, SimScalar, SimTime, TestbedSpec};
use cocopelia_hostblas::{tiling::split, Matrix};

/// A homogeneous group of simulated devices driven by one CoCoPeLia profile.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Cocopelia>,
}

/// Outcome of a multi-device routine call.
#[derive(Debug)]
pub struct MultiGemmResult<T> {
    /// The assembled `C`, when host data was provided in functional mode.
    pub c: Option<Matrix<T>>,
    /// Per-device reports, in device order.
    pub per_device: Vec<RoutineReport>,
    /// Makespan: the slowest device's elapsed virtual time.
    pub elapsed: SimTime,
    /// Total useful floating-point operations.
    pub flops: f64,
}

impl<T> MultiGemmResult<T> {
    /// Aggregate throughput in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.elapsed.as_secs_f64() / 1e9
    }
}

impl MultiGpu {
    /// Creates `count` identical devices of `testbed`, all consulting the
    /// same deployed `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(
        testbed: &TestbedSpec,
        count: usize,
        mode: ExecMode,
        seed: u64,
        profile: SystemProfile,
    ) -> Self {
        Self::with_faults(testbed, count, mode, seed, profile, &FaultSpec::none())
    }

    /// Like [`MultiGpu::new`], but every device carries the given fault
    /// plan, re-seeded per device (`faults.seed + i`) so the devices fail
    /// independently. [`FaultSpec::none`] reproduces [`MultiGpu::new`]
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn with_faults(
        testbed: &TestbedSpec,
        count: usize,
        mode: ExecMode,
        seed: u64,
        profile: SystemProfile,
        faults: &FaultSpec,
    ) -> Self {
        assert!(count > 0, "need at least one device");
        let devices = (0..count)
            .map(|i| {
                let mut spec = faults.clone();
                spec.seed = faults.seed.wrapping_add(i as u64);
                Cocopelia::new(
                    Gpu::with_faults(testbed.clone(), mode, seed.wrapping_add(i as u64), spec),
                    profile.clone(),
                )
            })
            .collect();
        MultiGpu { devices }
    }

    /// Like [`MultiGpu::with_faults`], but every device carries its *own*
    /// fault plan (`plans[i]`, used verbatim — no per-device re-seeding),
    /// so asymmetric scenarios — one straggling device behind a degraded
    /// link while its peers stay healthy — are expressible. The pool size
    /// is `plans.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    pub fn with_fault_plans(
        testbed: &TestbedSpec,
        mode: ExecMode,
        seed: u64,
        profile: SystemProfile,
        plans: &[FaultSpec],
    ) -> Self {
        assert!(!plans.is_empty(), "need at least one device");
        let devices = plans
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                Cocopelia::new(
                    Gpu::with_faults(
                        testbed.clone(),
                        mode,
                        seed.wrapping_add(i as u64),
                        spec.clone(),
                    ),
                    profile.clone(),
                )
            })
            .collect();
        MultiGpu { devices }
    }

    /// Number of devices in the group.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Per-device CoCoPeLia handles (for inspection).
    pub fn devices(&self) -> &[Cocopelia] {
        &self.devices
    }

    /// Mutable access to one device handle (residency management, trace
    /// inspection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device_mut(&mut self, i: usize) -> &mut Cocopelia {
        &mut self.devices[i]
    }

    /// Mutable access to every device handle.
    pub fn devices_mut(&mut self) -> &mut [Cocopelia] {
        &mut self.devices
    }

    /// Snapshots every device's trace as device-attributed lanes — the
    /// merge path that keeps device identity, which a flat
    /// `Vec<TraceEntry>` concatenation loses. Feed the result to
    /// `cocopelia_obs::export::to_chrome_trace_multi` or
    /// `cocopelia_obs::perfetto::to_perfetto`.
    pub fn trace_lanes(&self) -> Vec<cocopelia_obs::DeviceLane> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| cocopelia_obs::DeviceLane {
                device: i,
                name: format!("dev{i}"),
                entries: d.gpu().trace().entries().to_vec(),
            })
            .collect()
    }

    /// `C ← α·A·B + β·C` split column-wise across the device group, with
    /// host data (functional verification supported).
    ///
    /// # Errors
    ///
    /// Dimension mismatches and per-device runtime failures.
    pub fn gemm_host<T: SimScalar>(
        &mut self,
        alpha: f64,
        a: &Matrix<T>,
        b: &Matrix<T>,
        beta: f64,
        c: &Matrix<T>,
        choice: TileChoice,
    ) -> Result<MultiGemmResult<T>, RuntimeError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if b.rows() != k || c.rows() != m || c.cols() != n {
            return Err(RuntimeError::DimensionMismatch {
                what: format!(
                    "multi-gpu gemm: A {m}x{k}, B {}x{}, C {}x{}",
                    b.rows(),
                    b.cols(),
                    c.rows(),
                    c.cols()
                ),
            });
        }
        let g = self.devices.len();
        let col_blocks = split(n, n.div_ceil(g).max(1));
        let mut per_device = Vec::with_capacity(col_blocks.len());
        let mut parts: Vec<Option<Matrix<T>>> = Vec::with_capacity(col_blocks.len());
        for (dev, blk) in self.devices.iter_mut().zip(&col_blocks) {
            let b_blk = b.block(0, blk.start, k, blk.len).to_matrix();
            let c_blk = c.block(0, blk.start, m, blk.len).to_matrix();
            let out = dev.run_gemm::<T>(
                GemmRequest::new(
                    MatOperand::Host(a.clone()),
                    MatOperand::Host(b_blk),
                    MatOperand::Host(c_blk),
                )
                .alpha(alpha)
                .beta(beta)
                .tile(choice),
            )?;
            per_device.push(out.report);
            parts.push(out.c);
        }
        let elapsed = per_device
            .iter()
            .map(|r| r.elapsed)
            .max()
            .expect("at least one device ran");
        let c_out = if parts.iter().all(Option::is_some) {
            let mut full = Matrix::<T>::zeros(m, n);
            for (blk, part) in col_blocks.iter().zip(parts) {
                let part = part.expect("checked");
                for j in 0..blk.len {
                    for i in 0..m {
                        full.set(i, blk.start + j, part.get(i, j));
                    }
                }
            }
            Some(full)
        } else {
            None
        };
        Ok(MultiGemmResult {
            c: c_out,
            per_device,
            elapsed,
            flops: 2.0 * m as f64 * n as f64 * k as f64,
        })
    }

    /// Timing-only variant over ghost operands: `C (m×n) ← A (m×k)·B`,
    /// all data host-resident.
    ///
    /// # Errors
    ///
    /// Per-device runtime failures.
    pub fn gemm_ghost(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        choice: TileChoice,
    ) -> Result<MultiGemmResult<f64>, RuntimeError> {
        let g = self.devices.len();
        let col_blocks = split(n, n.div_ceil(g).max(1));
        let mut per_device = Vec::with_capacity(col_blocks.len());
        for (dev, blk) in self.devices.iter_mut().zip(&col_blocks) {
            let out = dev.run_gemm::<f64>(
                GemmRequest::new(
                    MatOperand::HostGhost { rows: m, cols: k },
                    MatOperand::HostGhost {
                        rows: k,
                        cols: blk.len,
                    },
                    MatOperand::HostGhost {
                        rows: m,
                        cols: blk.len,
                    },
                )
                .alpha(1.0)
                .beta(1.0)
                .tile(choice),
            )?;
            per_device.push(out.report);
        }
        let elapsed = per_device
            .iter()
            .map(|r| r.elapsed)
            .max()
            .expect("at least one device ran");
        Ok(MultiGemmResult {
            c: None,
            per_device,
            elapsed,
            flops: 2.0 * m as f64 * n as f64 * k as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocopelia_core::transfer::{LatBw, TransferModel};
    use cocopelia_gpusim::{testbed_i, NoiseSpec};
    use cocopelia_hostblas::{level3, validate};

    fn quiet() -> TestbedSpec {
        let mut tb = testbed_i();
        tb.noise = NoiseSpec::NONE;
        tb
    }

    fn dummy_profile() -> SystemProfile {
        SystemProfile::new(
            "multi",
            TransferModel {
                h2d: LatBw { t_l: 0.0, t_b: 0.0 },
                d2h: LatBw { t_l: 0.0, t_b: 0.0 },
                sl_h2d: 1.0,
                sl_d2h: 1.0,
            },
        )
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn functional_multi_gpu_matches_reference() {
        let (m, n, k) = (48, 50, 32);
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        let c = rand_matrix(m, n, 3);
        let mut expect = c.clone();
        level3::gemm(1.0, &a.view(), &b.view(), 0.5, &mut expect.view_mut());

        let mut mg = MultiGpu::new(&quiet(), 3, ExecMode::Functional, 9, dummy_profile());
        let out = mg
            .gemm_host(1.0, &a, &b, 0.5, &c, TileChoice::Fixed(16))
            .expect("runs");
        assert_eq!(out.per_device.len(), 3);
        let got = out.c.expect("functional");
        assert!(
            validate::matrices_close(&got, &expect, validate::gemm_tolerance::<f64>(k)),
            "max rel err {}",
            validate::max_rel_err(got.as_slice(), expect.as_slice())
        );
    }

    #[test]
    fn more_devices_reduce_makespan() {
        let run = |g: usize| {
            let mut mg = MultiGpu::new(&quiet(), g, ExecMode::TimingOnly, 1, dummy_profile());
            mg.gemm_ghost(4096, 4096, 4096, TileChoice::Fixed(512))
                .expect("runs")
                .elapsed
                .as_secs_f64()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert!(two < one, "2 GPUs {two} !< 1 GPU {one}");
        assert!(four < two, "4 GPUs {four} !< 2 GPUs {two}");
        // Sub-linear: A is replicated to every device.
        assert!(four > one / 4.0, "scaling cannot be super-linear here");
    }

    #[test]
    fn uneven_split_covers_all_columns() {
        // n = 50 over 3 devices: blocks of 17, 17, 16.
        let mut mg = MultiGpu::new(&quiet(), 3, ExecMode::TimingOnly, 1, dummy_profile());
        let out = mg
            .gemm_ghost(64, 50, 64, TileChoice::Fixed(16))
            .expect("runs");
        assert_eq!(out.per_device.len(), 3);
        let total_sub: usize = out.per_device.iter().map(|r| r.subkernels).sum();
        // 4 row tiles x 4 depth tiles x (2+2+1) col tiles... all columns
        // covered: sum of per-device col tiles = ceil(17/16)*2 + 1 = 5.
        assert_eq!(total_sub, 4 * 4 * 5);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut mg = MultiGpu::new(&quiet(), 2, ExecMode::Functional, 1, dummy_profile());
        let a = Matrix::<f64>::zeros(4, 5);
        let b = Matrix::<f64>::zeros(6, 4);
        let c = Matrix::<f64>::zeros(4, 4);
        assert!(matches!(
            mg.gemm_host(1.0, &a, &b, 0.0, &c, TileChoice::Fixed(2)),
            Err(RuntimeError::DimensionMismatch { .. })
        ));
    }
}
