//! Typed routine-request builders: the single entry-point vocabulary shared
//! by direct calls ([`Cocopelia::submit`](crate::Cocopelia::submit)) and the
//! queued executor ([`serve::Executor`](crate::serve::Executor)).
//!
//! A request names its operands either *inline* (a concrete
//! [`MatOperand`]/[`VecOperand`] owned by the request) or *shared* (a
//! string key naming an operand that the serving layer keeps device-resident
//! across requests). Shared operands are only meaningful under an executor;
//! submitting one directly yields
//! [`RuntimeError::SharedOperand`](crate::RuntimeError::SharedOperand).

use crate::ctx::{Cocopelia, DotResult, GemmResult, VecResult};
use crate::error::RuntimeError;
use crate::operand::{DeviceMatrix, DeviceVector, MatOperand, TileChoice, VecOperand};
use cocopelia_gpusim::SimScalar;
use cocopelia_hostblas::Matrix;

/// A named matrix operand kept device-resident by the serving layer and
/// shared across requests (the BLASX-style residency cache).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedMat {
    pub(crate) key: String,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
}

impl SharedMat {
    /// Names a shared matrix of the given shape.
    pub fn new(key: impl Into<String>, rows: usize, cols: usize) -> Self {
        SharedMat {
            key: key.into(),
            rows,
            cols,
        }
    }

    /// The residency-cache key.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// A named vector operand kept device-resident by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedVec {
    pub(crate) key: String,
    pub(crate) len: usize,
}

impl SharedVec {
    /// Names a shared vector of the given length.
    pub fn new(key: impl Into<String>, len: usize) -> Self {
        SharedVec {
            key: key.into(),
            len,
        }
    }

    /// The residency-cache key.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// A matrix argument of a routine request: inline data or a shared key.
#[derive(Debug, Clone, PartialEq)]
pub enum MatArg<T> {
    /// A concrete operand owned by this request.
    Inline(MatOperand<T>),
    /// A reference into the executor's cross-request residency cache.
    Shared(SharedMat),
}

impl<T: SimScalar> MatArg<T> {
    /// A shared-residency argument of the given shape.
    pub fn shared(key: impl Into<String>, rows: usize, cols: usize) -> Self {
        MatArg::Shared(SharedMat::new(key, rows, cols))
    }

    /// Row count of the argument.
    pub fn rows(&self) -> usize {
        match self {
            MatArg::Inline(op) => op.rows(),
            MatArg::Shared(s) => s.rows,
        }
    }

    /// Column count of the argument.
    pub fn cols(&self) -> usize {
        match self {
            MatArg::Inline(op) => op.cols(),
            MatArg::Shared(s) => s.cols,
        }
    }

    /// Device bytes the argument occupies once scheduled. Inline
    /// device-resident operands contribute 0 (already charged).
    pub fn footprint_bytes(&self) -> usize {
        match self {
            MatArg::Inline(MatOperand::Device(_)) => 0,
            _ => self.rows() * self.cols() * T::DTYPE.width(),
        }
    }

    /// The shared key, when this argument references the residency cache.
    pub fn shared_key(&self) -> Option<&str> {
        match self {
            MatArg::Inline(_) => None,
            MatArg::Shared(s) => Some(&s.key),
        }
    }

    /// Initial residence as the prediction models see it. Shared operands
    /// count as device-resident: the executor resolves them onto the
    /// device before the routine runs, and the dispatch cost model charges
    /// any upload separately.
    pub fn loc(&self) -> cocopelia_core::params::Loc {
        match self {
            MatArg::Inline(op) => op.loc(),
            MatArg::Shared(_) => cocopelia_core::params::Loc::Device,
        }
    }

    /// The shared key and its device footprint in bytes, when this
    /// argument references the residency cache.
    pub fn shared_footprint(&self) -> Option<(&str, usize)> {
        match self {
            MatArg::Inline(_) => None,
            MatArg::Shared(s) => Some((&s.key, s.rows * s.cols * T::DTYPE.width())),
        }
    }

    /// Replaces a shared reference with an inline ghost of the same shape
    /// (the no-residency-reuse baseline).
    pub fn without_sharing(self) -> Self {
        match self {
            MatArg::Inline(op) => MatArg::Inline(op),
            MatArg::Shared(s) => MatArg::Inline(MatOperand::HostGhost {
                rows: s.rows,
                cols: s.cols,
            }),
        }
    }

    /// Coalescing identity of the argument: `Some` for shared keys and
    /// anonymous host ghosts (whose device work is fully shape-determined),
    /// `None` for concrete host data or device handles — those make the
    /// whole request non-coalescable.
    fn coalesce_token(&self) -> Option<String> {
        match self {
            MatArg::Shared(s) => Some(format!("s:{}:{}x{}", s.key, s.rows, s.cols)),
            MatArg::Inline(MatOperand::HostGhost { rows, cols }) => {
                Some(format!("g:{rows}x{cols}"))
            }
            MatArg::Inline(_) => None,
        }
    }
}

impl<T> From<MatOperand<T>> for MatArg<T> {
    fn from(op: MatOperand<T>) -> Self {
        MatArg::Inline(op)
    }
}

impl<T> From<Matrix<T>> for MatArg<T> {
    fn from(m: Matrix<T>) -> Self {
        MatArg::Inline(MatOperand::Host(m))
    }
}

impl<T> From<DeviceMatrix> for MatArg<T> {
    fn from(d: DeviceMatrix) -> Self {
        MatArg::Inline(MatOperand::Device(d))
    }
}

impl<T> From<SharedMat> for MatArg<T> {
    fn from(s: SharedMat) -> Self {
        MatArg::Shared(s)
    }
}

/// A vector argument of a routine request: inline data or a shared key.
#[derive(Debug, Clone, PartialEq)]
pub enum VecArg<T> {
    /// A concrete operand owned by this request.
    Inline(VecOperand<T>),
    /// A reference into the executor's cross-request residency cache.
    Shared(SharedVec),
}

impl<T: SimScalar> VecArg<T> {
    /// A shared-residency argument of the given length.
    pub fn shared(key: impl Into<String>, len: usize) -> Self {
        VecArg::Shared(SharedVec::new(key, len))
    }

    /// Element count of the argument.
    pub fn len(&self) -> usize {
        match self {
            VecArg::Inline(op) => op.len(),
            VecArg::Shared(s) => s.len,
        }
    }

    /// True when the argument has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device bytes the argument occupies once scheduled.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            VecArg::Inline(VecOperand::Device(_)) => 0,
            _ => self.len() * T::DTYPE.width(),
        }
    }

    /// The shared key, when this argument references the residency cache.
    pub fn shared_key(&self) -> Option<&str> {
        match self {
            VecArg::Inline(_) => None,
            VecArg::Shared(s) => Some(&s.key),
        }
    }

    /// Initial residence as the prediction models see it; see
    /// [`MatArg::loc`].
    pub fn loc(&self) -> cocopelia_core::params::Loc {
        match self {
            VecArg::Inline(op) => op.loc(),
            VecArg::Shared(_) => cocopelia_core::params::Loc::Device,
        }
    }

    /// The shared key and its device footprint in bytes, when this
    /// argument references the residency cache.
    pub fn shared_footprint(&self) -> Option<(&str, usize)> {
        match self {
            VecArg::Inline(_) => None,
            VecArg::Shared(s) => Some((&s.key, s.len * T::DTYPE.width())),
        }
    }

    /// Replaces a shared reference with an inline ghost of the same length.
    pub fn without_sharing(self) -> Self {
        match self {
            VecArg::Inline(op) => VecArg::Inline(op),
            VecArg::Shared(s) => VecArg::Inline(VecOperand::HostGhost { len: s.len }),
        }
    }

    /// Coalescing identity of the argument; see [`MatArg::coalesce_token`].
    fn coalesce_token(&self) -> Option<String> {
        match self {
            VecArg::Shared(s) => Some(format!("s:{}:{}", s.key, s.len)),
            VecArg::Inline(VecOperand::HostGhost { len }) => Some(format!("g:{len}")),
            VecArg::Inline(_) => None,
        }
    }
}

impl<T> From<VecOperand<T>> for VecArg<T> {
    fn from(op: VecOperand<T>) -> Self {
        VecArg::Inline(op)
    }
}

impl<T> From<Vec<T>> for VecArg<T> {
    fn from(v: Vec<T>) -> Self {
        VecArg::Inline(VecOperand::Host(v))
    }
}

impl<T> From<DeviceVector> for VecArg<T> {
    fn from(d: DeviceVector) -> Self {
        VecArg::Inline(VecOperand::Device(d))
    }
}

impl<T> From<SharedVec> for VecArg<T> {
    fn from(s: SharedVec) -> Self {
        VecArg::Shared(s)
    }
}

/// Builder for `C ← α·A·B + β·C`.
///
/// # Example
///
/// ```no_run
/// # use cocopelia_runtime::{GemmRequest, MatOperand, TileChoice};
/// # fn demo(mut ctx: cocopelia_runtime::Cocopelia) {
/// let a = MatOperand::<f64>::HostGhost { rows: 4096, cols: 4096 };
/// let b = MatOperand::<f64>::HostGhost { rows: 4096, cols: 4096 };
/// let c = MatOperand::<f64>::HostGhost { rows: 4096, cols: 4096 };
/// let out = GemmRequest::new(a, b, c)
///     .alpha(1.0)
///     .beta(0.5)
///     .tile(TileChoice::Auto)
///     .run(&mut ctx);
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRequest<T> {
    pub(crate) a: MatArg<T>,
    pub(crate) b: MatArg<T>,
    pub(crate) c: MatArg<T>,
    pub(crate) alpha: f64,
    pub(crate) beta: f64,
    pub(crate) tile: TileChoice,
    pub(crate) deadline: Option<f64>,
}

impl<T: SimScalar> GemmRequest<T> {
    /// A gemm request with `alpha = 1`, `beta = 0`, automatic tiling, and
    /// no deadline.
    pub fn new(a: impl Into<MatArg<T>>, b: impl Into<MatArg<T>>, c: impl Into<MatArg<T>>) -> Self {
        GemmRequest {
            a: a.into(),
            b: b.into(),
            c: c.into(),
            alpha: 1.0,
            beta: 0.0,
            tile: TileChoice::Auto,
            deadline: None,
        }
    }

    /// Sets the `α` scalar.
    pub fn alpha(mut self, v: f64) -> Self {
        self.alpha = v;
        self
    }

    /// Sets the `β` scalar.
    pub fn beta(mut self, v: f64) -> Self {
        self.beta = v;
        self
    }

    /// Sets the tiling-size policy.
    pub fn tile(mut self, choice: TileChoice) -> Self {
        self.tile = choice;
        self
    }

    /// Gives the request a virtual-time budget on its *flow time*: the
    /// executor compares it against the serving device's virtual clock at
    /// completion, measured from the start of the run, so time spent
    /// queued behind other requests counts. Ignored on direct
    /// [`run`](Self::run).
    pub fn deadline_secs(mut self, secs: f64) -> Self {
        self.deadline = Some(secs);
        self
    }

    /// Executes the request on a library handle.
    ///
    /// # Errors
    ///
    /// As for the routine itself, plus
    /// [`RuntimeError::SharedOperand`](crate::RuntimeError::SharedOperand)
    /// when an argument references a residency cache (executor-only).
    pub fn run(self, ctx: &mut Cocopelia) -> Result<GemmResult<T>, RuntimeError> {
        ctx.run_gemm(self)
    }
}

/// Builder for `y ← α·x + y`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxpyRequest<T> {
    pub(crate) alpha: f64,
    pub(crate) x: VecArg<T>,
    pub(crate) y: VecArg<T>,
    pub(crate) tile: TileChoice,
    pub(crate) deadline: Option<f64>,
}

impl<T: SimScalar> AxpyRequest<T> {
    /// An axpy request with `alpha = 1`, automatic tiling, no deadline.
    pub fn new(x: impl Into<VecArg<T>>, y: impl Into<VecArg<T>>) -> Self {
        AxpyRequest {
            alpha: 1.0,
            x: x.into(),
            y: y.into(),
            tile: TileChoice::Auto,
            deadline: None,
        }
    }

    /// Sets the `α` scalar.
    pub fn alpha(mut self, v: f64) -> Self {
        self.alpha = v;
        self
    }

    /// Sets the tiling-size policy.
    pub fn tile(mut self, choice: TileChoice) -> Self {
        self.tile = choice;
        self
    }

    /// Gives the request a virtual-time budget on its *flow time*: the
    /// executor compares it against the serving device's virtual clock at
    /// completion, measured from the start of the run, so time spent
    /// queued behind other requests counts. Ignored on direct
    /// [`run`](Self::run).
    pub fn deadline_secs(mut self, secs: f64) -> Self {
        self.deadline = Some(secs);
        self
    }

    /// Executes the request on a library handle.
    ///
    /// # Errors
    ///
    /// As for [`GemmRequest::run`].
    pub fn run(self, ctx: &mut Cocopelia) -> Result<VecResult<T>, RuntimeError> {
        ctx.run_axpy(self)
    }
}

/// Builder for the tiled reduction `result ← xᵀy`.
#[derive(Debug, Clone, PartialEq)]
pub struct DotRequest<T> {
    pub(crate) x: VecArg<T>,
    pub(crate) y: VecArg<T>,
    pub(crate) tile: TileChoice,
    pub(crate) deadline: Option<f64>,
}

impl<T: SimScalar> DotRequest<T> {
    /// A dot request with automatic tiling and no deadline.
    pub fn new(x: impl Into<VecArg<T>>, y: impl Into<VecArg<T>>) -> Self {
        DotRequest {
            x: x.into(),
            y: y.into(),
            tile: TileChoice::Auto,
            deadline: None,
        }
    }

    /// Sets the tiling-size policy.
    pub fn tile(mut self, choice: TileChoice) -> Self {
        self.tile = choice;
        self
    }

    /// Gives the request a virtual-time budget on its *flow time*: the
    /// executor compares it against the serving device's virtual clock at
    /// completion, measured from the start of the run, so time spent
    /// queued behind other requests counts. Ignored on direct
    /// [`run`](Self::run).
    pub fn deadline_secs(mut self, secs: f64) -> Self {
        self.deadline = Some(secs);
        self
    }

    /// Executes the request on a library handle.
    ///
    /// # Errors
    ///
    /// As for [`GemmRequest::run`].
    pub fn run(self, ctx: &mut Cocopelia) -> Result<DotResult, RuntimeError> {
        ctx.run_dot(self)
    }
}

/// Builder for `y ← α·A·x + β·y`.
#[derive(Debug, Clone, PartialEq)]
pub struct GemvRequest<T> {
    pub(crate) alpha: f64,
    pub(crate) a: MatArg<T>,
    pub(crate) x: VecArg<T>,
    pub(crate) beta: f64,
    pub(crate) y: VecArg<T>,
    pub(crate) tile: TileChoice,
    pub(crate) deadline: Option<f64>,
}

impl<T: SimScalar> GemvRequest<T> {
    /// A gemv request with `alpha = 1`, `beta = 0`, automatic tiling, and
    /// no deadline.
    pub fn new(a: impl Into<MatArg<T>>, x: impl Into<VecArg<T>>, y: impl Into<VecArg<T>>) -> Self {
        GemvRequest {
            alpha: 1.0,
            a: a.into(),
            x: x.into(),
            beta: 0.0,
            y: y.into(),
            tile: TileChoice::Auto,
            deadline: None,
        }
    }

    /// Sets the `α` scalar.
    pub fn alpha(mut self, v: f64) -> Self {
        self.alpha = v;
        self
    }

    /// Sets the `β` scalar.
    pub fn beta(mut self, v: f64) -> Self {
        self.beta = v;
        self
    }

    /// Sets the tiling-size policy.
    pub fn tile(mut self, choice: TileChoice) -> Self {
        self.tile = choice;
        self
    }

    /// Gives the request a virtual-time budget on its *flow time*: the
    /// executor compares it against the serving device's virtual clock at
    /// completion, measured from the start of the run, so time spent
    /// queued behind other requests counts. Ignored on direct
    /// [`run`](Self::run).
    pub fn deadline_secs(mut self, secs: f64) -> Self {
        self.deadline = Some(secs);
        self
    }

    /// Executes the request on a library handle.
    ///
    /// # Errors
    ///
    /// As for [`GemmRequest::run`].
    pub fn run(self, ctx: &mut Cocopelia) -> Result<VecResult<T>, RuntimeError> {
        ctx.run_gemv(self)
    }
}

/// One shared operand of a request, described precisely enough for the
/// serving layer to stage its upload *without* the request in hand: the
/// residency key, element type, and full shape. Produced by
/// [`RoutineRequest::shared_operand_specs`]; consumed by the executor's
/// cross-request prefetcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedOperandSpec {
    /// A shared matrix operand.
    Mat {
        /// Residency-cache key.
        key: String,
        /// Element type.
        dtype: cocopelia_hostblas::Dtype,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// A shared vector operand.
    Vec {
        /// Residency-cache key.
        key: String,
        /// Element type.
        dtype: cocopelia_hostblas::Dtype,
        /// Element count.
        len: usize,
    },
}

impl SharedOperandSpec {
    /// The operand's residency-cache key.
    pub fn key(&self) -> &str {
        match self {
            SharedOperandSpec::Mat { key, .. } | SharedOperandSpec::Vec { key, .. } => key,
        }
    }

    /// Device bytes the operand occupies when resident in full.
    pub fn bytes(&self) -> usize {
        match self {
            SharedOperandSpec::Mat {
                dtype, rows, cols, ..
            } => rows * cols * dtype.width(),
            SharedOperandSpec::Vec { dtype, len, .. } => len * dtype.width(),
        }
    }
}

/// A type-erased routine request, the unit the serving layer queues.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RoutineRequest {
    /// Double-precision gemm.
    GemmF64(GemmRequest<f64>),
    /// Single-precision gemm.
    GemmF32(GemmRequest<f32>),
    /// Double-precision axpy.
    AxpyF64(AxpyRequest<f64>),
    /// Double-precision dot.
    DotF64(DotRequest<f64>),
    /// Double-precision gemv.
    GemvF64(GemvRequest<f64>),
}

impl RoutineRequest {
    /// Canonical BLAS name of the routine ("dgemm", "sgemm", …).
    pub fn routine(&self) -> &'static str {
        match self {
            RoutineRequest::GemmF64(_) => "dgemm",
            RoutineRequest::GemmF32(_) => "sgemm",
            RoutineRequest::AxpyF64(_) => "daxpy",
            RoutineRequest::DotF64(_) => "ddot",
            RoutineRequest::GemvF64(_) => "dgemv",
        }
    }

    /// Worst-case device bytes the request needs resident at once (every
    /// non-device operand uploaded in full, per §IV-C full tile reuse).
    /// Admission control compares this against device capacity.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            RoutineRequest::GemmF64(r) => {
                r.a.footprint_bytes() + r.b.footprint_bytes() + r.c.footprint_bytes()
            }
            RoutineRequest::GemmF32(r) => {
                r.a.footprint_bytes() + r.b.footprint_bytes() + r.c.footprint_bytes()
            }
            RoutineRequest::AxpyF64(r) => r.x.footprint_bytes() + r.y.footprint_bytes(),
            RoutineRequest::DotF64(r) => r.x.footprint_bytes() + r.y.footprint_bytes(),
            RoutineRequest::GemvF64(r) => {
                r.a.footprint_bytes() + r.x.footprint_bytes() + r.y.footprint_bytes()
            }
        }
    }

    /// The request's virtual-time budget, if any.
    pub fn deadline(&self) -> Option<f64> {
        match self {
            RoutineRequest::GemmF64(r) => r.deadline,
            RoutineRequest::GemmF32(r) => r.deadline,
            RoutineRequest::AxpyF64(r) => r.deadline,
            RoutineRequest::DotF64(r) => r.deadline,
            RoutineRequest::GemvF64(r) => r.deadline,
        }
    }

    /// Residency-cache keys the request references, in operand order.
    pub fn shared_keys(&self) -> Vec<&str> {
        match self {
            RoutineRequest::GemmF64(r) => [&r.a, &r.b, &r.c]
                .into_iter()
                .filter_map(MatArg::shared_key)
                .collect(),
            RoutineRequest::GemmF32(r) => [&r.a, &r.b, &r.c]
                .into_iter()
                .filter_map(MatArg::shared_key)
                .collect(),
            RoutineRequest::AxpyF64(r) => [&r.x, &r.y]
                .into_iter()
                .filter_map(VecArg::shared_key)
                .collect(),
            RoutineRequest::DotF64(r) => [&r.x, &r.y]
                .into_iter()
                .filter_map(VecArg::shared_key)
                .collect(),
            RoutineRequest::GemvF64(r) => {
                let mut keys: Vec<&str> = r.a.shared_key().into_iter().collect();
                keys.extend([&r.x, &r.y].into_iter().filter_map(VecArg::shared_key));
                keys
            }
        }
    }

    /// Residency-cache keys the request references, with each key's device
    /// footprint in bytes, in operand order. The executor's dispatch cost
    /// model charges a device the estimated upload time of the keys it is
    /// missing.
    pub fn shared_footprints(&self) -> Vec<(&str, usize)> {
        match self {
            RoutineRequest::GemmF64(r) => [&r.a, &r.b, &r.c]
                .into_iter()
                .filter_map(MatArg::shared_footprint)
                .collect(),
            RoutineRequest::GemmF32(r) => [&r.a, &r.b, &r.c]
                .into_iter()
                .filter_map(MatArg::shared_footprint)
                .collect(),
            RoutineRequest::AxpyF64(r) => [&r.x, &r.y]
                .into_iter()
                .filter_map(VecArg::shared_footprint)
                .collect(),
            RoutineRequest::DotF64(r) => [&r.x, &r.y]
                .into_iter()
                .filter_map(VecArg::shared_footprint)
                .collect(),
            RoutineRequest::GemvF64(r) => {
                let mut out: Vec<(&str, usize)> = r.a.shared_footprint().into_iter().collect();
                out.extend(
                    [&r.x, &r.y]
                        .into_iter()
                        .filter_map(VecArg::shared_footprint),
                );
                out
            }
        }
    }

    /// Shape and dtype of every shared operand, in operand order — what
    /// the cross-request prefetcher needs to stage an upload for a queued
    /// request it does not yet hold: the residency key, the element type,
    /// and the full operand extent.
    pub fn shared_operand_specs(&self) -> Vec<SharedOperandSpec> {
        fn mat<T: SimScalar>(arg: &MatArg<T>) -> Option<SharedOperandSpec> {
            match arg {
                MatArg::Shared(s) => Some(SharedOperandSpec::Mat {
                    key: s.key.clone(),
                    dtype: T::DTYPE,
                    rows: s.rows,
                    cols: s.cols,
                }),
                MatArg::Inline(_) => None,
            }
        }
        fn vec<T: SimScalar>(arg: &VecArg<T>) -> Option<SharedOperandSpec> {
            match arg {
                VecArg::Shared(s) => Some(SharedOperandSpec::Vec {
                    key: s.key.clone(),
                    dtype: T::DTYPE,
                    len: s.len,
                }),
                VecArg::Inline(_) => None,
            }
        }
        match self {
            RoutineRequest::GemmF64(r) => [&r.a, &r.b, &r.c].into_iter().filter_map(mat).collect(),
            RoutineRequest::GemmF32(r) => [&r.a, &r.b, &r.c].into_iter().filter_map(mat).collect(),
            RoutineRequest::AxpyF64(r) => [&r.x, &r.y].into_iter().filter_map(vec).collect(),
            RoutineRequest::DotF64(r) => [&r.x, &r.y].into_iter().filter_map(vec).collect(),
            RoutineRequest::GemvF64(r) => {
                let mut out: Vec<SharedOperandSpec> = mat(&r.a).into_iter().collect();
                out.extend([&r.x, &r.y].into_iter().filter_map(vec));
                out
            }
        }
    }

    /// The request's tiling-size policy.
    pub fn tile_choice(&self) -> TileChoice {
        match self {
            RoutineRequest::GemmF64(r) => r.tile,
            RoutineRequest::GemmF32(r) => r.tile,
            RoutineRequest::AxpyF64(r) => r.tile,
            RoutineRequest::DotF64(r) => r.tile,
            RoutineRequest::GemvF64(r) => r.tile,
        }
    }

    /// The request as the prediction models see it — the bridge between
    /// the serving layer and `core::models::predict`. Shared operands
    /// count as device-resident ([`MatArg::loc`]); the scheduler charges
    /// their upload through its own cost model.
    pub fn problem_spec(&self) -> cocopelia_core::params::ProblemSpec {
        use cocopelia_core::params::ProblemSpec;
        use cocopelia_hostblas::Dtype;
        match self {
            RoutineRequest::GemmF64(r) => ProblemSpec::gemm(
                Dtype::F64,
                r.a.rows(),
                r.b.cols(),
                r.a.cols(),
                r.a.loc(),
                r.b.loc(),
                r.c.loc(),
                r.beta != 0.0,
            ),
            RoutineRequest::GemmF32(r) => ProblemSpec::gemm(
                Dtype::F32,
                r.a.rows(),
                r.b.cols(),
                r.a.cols(),
                r.a.loc(),
                r.b.loc(),
                r.c.loc(),
                r.beta != 0.0,
            ),
            RoutineRequest::AxpyF64(r) => {
                ProblemSpec::axpy(Dtype::F64, r.x.len(), r.x.loc(), r.y.loc())
            }
            RoutineRequest::DotF64(r) => {
                ProblemSpec::dot(Dtype::F64, r.x.len(), r.x.loc(), r.y.loc())
            }
            RoutineRequest::GemvF64(r) => ProblemSpec::gemv(
                Dtype::F64,
                r.a.rows(),
                r.a.cols(),
                r.a.loc(),
                r.x.loc(),
                r.y.loc(),
                r.beta != 0.0,
            ),
        }
    }

    /// Coalescing identity of the request, when it is coalescable:
    /// routine, tiling policy, scalars, and the per-position operand
    /// identity (shared key + shape, or anonymous ghost shape). Two
    /// requests with equal keys perform identical device work on
    /// identical operands, so the executor may run one and fan its report
    /// out to the others.
    ///
    /// `None` — never coalesced — when the request shares no operand (a
    /// fully private request gains nothing from dedup) or names concrete
    /// host data / device handles (whose contents make it unique). The
    /// deadline is deliberately excluded: followers are judged against
    /// their own budgets at fan-out.
    pub fn coalesce_key(&self) -> Option<String> {
        if self.shared_keys().is_empty() {
            return None;
        }
        let (scalars, tokens): (String, Vec<Option<String>>) = match self {
            RoutineRequest::GemmF64(r) => (
                format!("alpha={};beta={}", r.alpha, r.beta),
                vec![
                    r.a.coalesce_token(),
                    r.b.coalesce_token(),
                    r.c.coalesce_token(),
                ],
            ),
            RoutineRequest::GemmF32(r) => (
                format!("alpha={};beta={}", r.alpha, r.beta),
                vec![
                    r.a.coalesce_token(),
                    r.b.coalesce_token(),
                    r.c.coalesce_token(),
                ],
            ),
            RoutineRequest::AxpyF64(r) => (
                format!("alpha={}", r.alpha),
                vec![r.x.coalesce_token(), r.y.coalesce_token()],
            ),
            RoutineRequest::DotF64(r) => (
                String::new(),
                vec![r.x.coalesce_token(), r.y.coalesce_token()],
            ),
            RoutineRequest::GemvF64(r) => (
                format!("alpha={};beta={}", r.alpha, r.beta),
                vec![
                    r.a.coalesce_token(),
                    r.x.coalesce_token(),
                    r.y.coalesce_token(),
                ],
            ),
        };
        let tokens: Option<Vec<String>> = tokens.into_iter().collect();
        Some(format!(
            "{}|{:?}|{}|{}",
            self.routine(),
            self.tile_choice(),
            scalars,
            tokens?.join("|")
        ))
    }

    /// Rewrites every shared operand to an inline ghost of the same shape —
    /// the "no residency reuse" baseline the throughput acceptance test
    /// submits sequentially.
    pub fn without_sharing(self) -> Self {
        match self {
            RoutineRequest::GemmF64(mut r) => {
                r.a = r.a.without_sharing();
                r.b = r.b.without_sharing();
                r.c = r.c.without_sharing();
                RoutineRequest::GemmF64(r)
            }
            RoutineRequest::GemmF32(mut r) => {
                r.a = r.a.without_sharing();
                r.b = r.b.without_sharing();
                r.c = r.c.without_sharing();
                RoutineRequest::GemmF32(r)
            }
            RoutineRequest::AxpyF64(mut r) => {
                r.x = r.x.without_sharing();
                r.y = r.y.without_sharing();
                RoutineRequest::AxpyF64(r)
            }
            RoutineRequest::DotF64(mut r) => {
                r.x = r.x.without_sharing();
                r.y = r.y.without_sharing();
                RoutineRequest::DotF64(r)
            }
            RoutineRequest::GemvF64(mut r) => {
                r.a = r.a.without_sharing();
                r.x = r.x.without_sharing();
                r.y = r.y.without_sharing();
                RoutineRequest::GemvF64(r)
            }
        }
    }
}

impl From<GemmRequest<f64>> for RoutineRequest {
    fn from(r: GemmRequest<f64>) -> Self {
        RoutineRequest::GemmF64(r)
    }
}

impl From<GemmRequest<f32>> for RoutineRequest {
    fn from(r: GemmRequest<f32>) -> Self {
        RoutineRequest::GemmF32(r)
    }
}

impl From<AxpyRequest<f64>> for RoutineRequest {
    fn from(r: AxpyRequest<f64>) -> Self {
        RoutineRequest::AxpyF64(r)
    }
}

impl From<DotRequest<f64>> for RoutineRequest {
    fn from(r: DotRequest<f64>) -> Self {
        RoutineRequest::DotF64(r)
    }
}

impl From<GemvRequest<f64>> for RoutineRequest {
    fn from(r: GemvRequest<f64>) -> Self {
        RoutineRequest::GemvF64(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let r = GemmRequest::<f64>::new(
            MatOperand::HostGhost { rows: 8, cols: 4 },
            MatOperand::HostGhost { rows: 4, cols: 6 },
            MatOperand::HostGhost { rows: 8, cols: 6 },
        );
        assert_eq!(r.alpha, 1.0);
        assert_eq!(r.beta, 0.0);
        assert_eq!(r.tile, TileChoice::Auto);
        assert_eq!(r.deadline, None);
        let r = r
            .alpha(2.0)
            .beta(0.5)
            .tile(TileChoice::Fixed(2))
            .deadline_secs(0.1);
        assert_eq!((r.alpha, r.beta), (2.0, 0.5));
        assert_eq!(r.tile, TileChoice::Fixed(2));
        assert_eq!(r.deadline, Some(0.1));
    }

    #[test]
    fn footprint_counts_non_device_operands() {
        let mut gpu = cocopelia_gpusim::Gpu::new(
            cocopelia_gpusim::testbed_i(),
            cocopelia_gpusim::ExecMode::TimingOnly,
            0,
        );
        let buf = gpu
            .alloc_device(cocopelia_hostblas::Dtype::F64, 100)
            .expect("alloc");
        let req: RoutineRequest = GemmRequest::<f64>::new(
            MatArg::shared("A", 10, 10),
            MatOperand::HostGhost { rows: 10, cols: 10 },
            MatOperand::Device(DeviceMatrix::from_raw(buf, 10, 10)),
        )
        .into();
        // A (shared) + B (host ghost) count; device-resident C does not.
        assert_eq!(req.footprint_bytes(), 2 * 10 * 10 * 8);
        assert_eq!(req.routine(), "dgemm");
        assert_eq!(req.shared_keys(), vec!["A"]);
    }

    #[test]
    fn without_sharing_inlines_ghosts() {
        let req: RoutineRequest = AxpyRequest::<f64>::new(VecArg::shared("x", 100), vec![0.0; 100])
            .alpha(3.0)
            .into();
        assert_eq!(req.shared_keys(), vec!["x"]);
        let plain = req.clone().without_sharing();
        assert!(plain.shared_keys().is_empty());
        assert_eq!(plain.footprint_bytes(), req.footprint_bytes());
        match plain {
            RoutineRequest::AxpyF64(r) => {
                assert_eq!(r.alpha, 3.0);
                assert_eq!(r.x, VecArg::Inline(VecOperand::HostGhost { len: 100 }));
            }
            other => panic!("unexpected variant: {other:?}"),
        }
    }

    #[test]
    fn problem_spec_mirrors_request_shape_and_residence() {
        use cocopelia_core::params::{Loc, RoutineClass};
        let req: RoutineRequest = GemmRequest::<f64>::new(
            MatArg::shared("A", 128, 64),
            MatOperand::HostGhost { rows: 64, cols: 32 },
            MatOperand::HostGhost {
                rows: 128,
                cols: 32,
            },
        )
        .beta(1.0)
        .tile(TileChoice::Fixed(32))
        .into();
        let p = req.problem_spec();
        assert_eq!(p.routine, RoutineClass::Gemm);
        assert_eq!(p.dims(), vec![128, 32, 64]);
        assert_eq!(p.flops(), 2.0 * 128.0 * 32.0 * 64.0);
        // Shared A reads as device-resident; inline host ghosts as host.
        assert_eq!(p.operands[0].loc, Loc::Device);
        assert_eq!(p.operands[1].loc, Loc::Host);
        assert_eq!(req.tile_choice(), TileChoice::Fixed(32));

        let req: RoutineRequest =
            AxpyRequest::<f64>::new(VecArg::shared("x", 100), vec![0.0; 100]).into();
        let p = req.problem_spec();
        assert_eq!(p.routine, RoutineClass::Axpy);
        assert_eq!(p.dims(), vec![100]);
        assert_eq!(p.operands[0].loc, Loc::Device);
        assert_eq!(req.tile_choice(), TileChoice::Auto);
    }

    #[test]
    fn coalesce_key_identifies_identical_shapes() {
        let gemm = |alpha: f64| -> RoutineRequest {
            GemmRequest::<f64>::new(
                MatArg::shared("A", 64, 64),
                MatArg::shared("B", 64, 64),
                MatOperand::HostGhost { rows: 64, cols: 64 },
            )
            .alpha(alpha)
            .beta(1.0)
            .into()
        };
        let k1 = gemm(1.0).coalesce_key().expect("coalescable");
        assert_eq!(gemm(1.0).coalesce_key().as_deref(), Some(k1.as_str()));
        assert_ne!(gemm(2.0).coalesce_key().expect("key"), k1, "scalars count");
        // A deadline does not change the identity; followers keep theirs.
        let with_dl: RoutineRequest = GemmRequest::<f64>::new(
            MatArg::shared("A", 64, 64),
            MatArg::shared("B", 64, 64),
            MatOperand::HostGhost { rows: 64, cols: 64 },
        )
        .alpha(1.0)
        .beta(1.0)
        .deadline_secs(0.5)
        .into();
        assert_eq!(with_dl.coalesce_key().expect("key"), k1);
        // Fully private requests and concrete host data never coalesce.
        let private: RoutineRequest = GemmRequest::<f64>::new(
            MatOperand::HostGhost { rows: 64, cols: 64 },
            MatOperand::HostGhost { rows: 64, cols: 64 },
            MatOperand::HostGhost { rows: 64, cols: 64 },
        )
        .into();
        assert!(private.coalesce_key().is_none());
        let concrete: RoutineRequest =
            AxpyRequest::<f64>::new(VecArg::shared("x", 8), vec![0.0; 8]).into();
        assert!(concrete.coalesce_key().is_none());
    }

    #[test]
    fn vector_and_matrix_conversions() {
        let _: VecArg<f64> = vec![1.0, 2.0].into();
        let _: VecArg<f64> = VecOperand::HostGhost { len: 3 }.into();
        let _: MatArg<f32> = Matrix::<f32>::zeros(2, 2).into();
        let m: MatArg<f64> = SharedMat::new("A", 3, 4).into();
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m.shared_key(), Some("A"));
        let v: VecArg<f64> = SharedVec::new("x", 9).into();
        assert_eq!(v.len(), 9);
        assert!(!v.is_empty());
    }
}
